#!/usr/bin/env python3
"""Splices the key measured tables from results/full_report.txt into
EXPERIMENTS.md (replacing the MEASURED-PLACEHOLDER marker).

Usage: python3 scripts/finalize_experiments.py
"""
import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
report = (ROOT / "results" / "full_report.txt").read_text()

# Keep the summary/series tables; skip the three 20-row CDF tables per
# figure (they live in the CSVs).
KEEP_PREFIXES = [
    "== Figure 8 (FCC): median n-QoE summary",
    "== Figure 8 (HSDPA): median n-QoE summary",
    "== Figure 8 (Synthetic): median n-QoE summary",
    "== Figure 9 (FCC): fraction of sessions",
    "== Figure 10 (HSDPA): fraction of sessions",
    "== Figure 11a",
    "== Figure 11b",
    "== Figure 11c",
    "== Figure 11d",
    "== Figure 12a",
    "== Figure 12b",
    "== Table 1",
    "== Bitrate levels sweep",
    "== §7.4 overhead",
    "== Ablation",
    "== Extension",
    "== Multi-player",
    "== run info",
]

blocks = []
current = None
for line in report.splitlines():
    if line.startswith("== "):
        if current:
            blocks.append(current)
        current = {"title": line, "lines": [line]}
    elif current is not None:
        current["lines"].append(line)
if current:
    blocks.append(current)

kept = []
for b in blocks:
    if any(b["title"].startswith(p) for p in KEEP_PREFIXES):
        # Also keep the trailing RobustMPC-vs summary line emitted after
        # the fig8 summaries (it lives inside the block's lines already).
        text = "\n".join(b["lines"]).rstrip()
        kept.append(text)

measured = (
    "## Measured results (seed 42, 150 traces/dataset)\n\n"
    "Key tables from `results/full_report.txt` (CDF series in `results/*.csv`):\n\n"
    "```text\n" + "\n\n".join(kept) + "\n```\n"
)

exp = ROOT / "EXPERIMENTS.md"
content = exp.read_text()
assert "MEASURED-PLACEHOLDER" in content, "placeholder already replaced"
exp.write_text(content.replace("MEASURED-PLACEHOLDER", measured))
print(f"spliced {len(kept)} tables into EXPERIMENTS.md")
