#!/usr/bin/env bash
# Local CI gate: lint clean, tests green, benches compile.
#
#   scripts/ci.sh          full gate
#   scripts/ci.sh quick    skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace -q

echo "== differential gate: indexed trace kernels vs naive oracles =="
# The indexed/cursor'd scan layer must stay bit-identical to the preserved
# naive scans (proptests in abr-trace), and the session engine's steady
# state must stay off the allocator (counting-allocator test in abr-sim).
cargo test -p abr-trace -q
cargo test -p abr-sim -q --test no_alloc

if [[ "${1:-}" != "quick" ]]; then
  echo "== release build =="
  cargo build --release --workspace

  echo "== harness smoke: OPT + table cache parity =="
  # The full report must be byte-identical with the OPT cache on and off,
  # and with the FastMPC table cache on and off. The §7.4 overhead section
  # (wall-clock microbenchmarks + the caches' own stats) and the run-info
  # footer (elapsed) describe the run rather than the results, so those
  # sections are stripped before comparing.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "$smoke_dir"' EXIT
  filter_report() {
    awk '/^== / { skip = ($0 ~ /overhead|run info/) } !skip { print }'
  }
  ./target/release/abr_harness all --traces 5 --quick \
    | filter_report > "$smoke_dir/full_report.cached.txt"
  ./target/release/abr_harness all --traces 5 --quick --no-opt-cache \
    | filter_report > "$smoke_dir/full_report.no_opt_cache.txt"
  ./target/release/abr_harness all --traces 5 --quick --no-table-cache \
    | filter_report > "$smoke_dir/full_report.no_table_cache.txt"
  diff -u "$smoke_dir/full_report.cached.txt" "$smoke_dir/full_report.no_opt_cache.txt"
  diff -u "$smoke_dir/full_report.cached.txt" "$smoke_dir/full_report.no_table_cache.txt"
  echo "cache on/off reports identical"

  echo "== fault-matrix smoke: zero-rate invisibility + robustness determinism =="
  # Arming the fault layer at rate 0 must leave every experiment byte-for-byte
  # identical to the plain run (the armed-but-idle plan may not perturb a
  # single float), and the robustness sweep must replay bit-identically under
  # a fixed --fault-seed. A second seed exercises a different fault stream to
  # completion as a no-panic/no-hang gate.
  ./target/release/abr_harness all --traces 5 --quick --fault-rate 0 --fault-seed 7 \
    | filter_report > "$smoke_dir/full_report.rate0.txt"
  diff -u "$smoke_dir/full_report.cached.txt" "$smoke_dir/full_report.rate0.txt"
  ./target/release/abr_harness robustness --traces 5 --quick --fault-seed 7 \
    --out "$smoke_dir/rob_a" > /dev/null
  ./target/release/abr_harness robustness --traces 5 --quick --fault-seed 7 \
    --out "$smoke_dir/rob_b" > /dev/null
  diff -u "$smoke_dir/rob_a/robustness.csv" "$smoke_dir/rob_b/robustness.csv"
  ./target/release/abr_harness robustness --traces 5 --quick --fault-seed 99 > /dev/null
  echo "fault-matrix smoke passed"

  echo "== batch-equivalence gate: lockstep grid vs scalar =="
  # The batched decision path (SessionStepper lockstep + decide_batch) must
  # leave every experiment byte-for-byte identical to the scalar per-session
  # loop — same floats, same tables, same CSVs. Both sides pin the flag so
  # an inherited ABR_BATCH cannot skew the comparison.
  ./target/release/abr_harness all --traces 5 --quick --batch-size 1 \
    | filter_report > "$smoke_dir/full_report.batch1.txt"
  ./target/release/abr_harness all --traces 5 --quick --batch-size 64 \
    | filter_report > "$smoke_dir/full_report.batch64.txt"
  diff -u "$smoke_dir/full_report.batch1.txt" "$smoke_dir/full_report.batch64.txt"
  echo "batch-equivalence gate passed"

  echo "== serve-bench smoke: remote decisions bit-identical to in-process =="
  # Every remote player's decision sequence is diffed against an in-process
  # run_session twin inside the experiment; any divergence panics, so a clean
  # exit IS the differential gate. Quick mode sweeps FastMPC + RobustMPC.
  # The second run drives the same sessions through bulk POST /decisions
  # (8 sessions coalesced per request) under the same zero-mismatch bar.
  ./target/release/abr_harness serve-bench --sessions 16 --workers 2 --quick \
    --out "$smoke_dir/serve" > /dev/null
  test -s "$smoke_dir/serve/serve_bench.csv"
  ./target/release/abr_harness serve-bench --sessions 16 --workers 2 --quick \
    --batch-size 8 --out "$smoke_dir/serve_bulk" > /dev/null
  test -s "$smoke_dir/serve_bulk/serve_bench.csv"
  echo "serve-bench differential gates passed (scalar + bulk)"

  echo "== event-engine smoke: 512 multiplexed sessions, zero mismatches =="
  # The epoll readiness-loop server under the multiplexed load generator:
  # 512 virtual closed-loop sessions pipelined over a bounded connection
  # pool, every one verified bit-identical to its in-process twin after
  # the timed window. A divergence panics, so a clean exit is the gate.
  ./target/release/abr_harness serve-bench --sessions 512 --event-loops 2 \
    --backend fastmpc --quick --out "$smoke_dir/serve_event" > /dev/null
  test -s "$smoke_dir/serve_event/serve_bench.csv"
  echo "event-engine smoke passed"

  echo "== catalog smoke: 512 sessions, 64-video Zipf catalog, exactly-once tables =="
  # The tiered table catalog under a fleet-shaped workload: 512 concurrent
  # sessions Zipf-assigned across a 64-video catalog, swept against the
  # unbounded baseline and a bounded hot tier with an mmap'd warm tier.
  # The experiment itself asserts (a) every session bit-identical to its
  # in-process twin and (b) exactly one table generation per distinct
  # video at every budget — eviction must refill from the warm tier, not
  # regenerate. A divergence or a double generation panics, so a clean
  # exit is the gate.
  ./target/release/abr_harness catalog-bench --sessions 512 --quick \
    --out "$smoke_dir/catalog" > /dev/null
  test -s "$smoke_dir/catalog/catalog_bench.csv"
  echo "catalog smoke passed: exactly-once generation under 512 sessions"

  echo "== report-diff gate: engines produce byte-identical decision sequences =="
  # Drive the thread-per-connection engine and the event-driven engine with
  # the same seed and record every session's full decision sequence (levels
  # plus QoE/wall-clock bit patterns). The two files must be byte-equal:
  # the transport rewrite may not move a single decision.
  ./target/release/abr_harness serve-bench --sessions 64 --workers 2 --quick \
    --backend fastmpc --decisions-out "$smoke_dir/decisions_threaded.txt" > /dev/null
  ./target/release/abr_harness serve-bench --sessions 64 --event-loops 2 --quick \
    --backend fastmpc --decisions-out "$smoke_dir/decisions_event.txt" > /dev/null
  diff -u "$smoke_dir/decisions_threaded.txt" "$smoke_dir/decisions_event.txt"
  echo "report-diff gate passed: engines byte-identical"

  echo "== fairness smoke: 64 players / 4 bottlenecks, coordinated fleets =="
  # Shared-bottleneck fleets through the scaled multiplayer engine with the
  # fault layer armed. The experiment asserts 0 twin mismatches — every run
  # is replayed decision-for-decision through a real AbrService (and links
  # with <= 8 players additionally through the preserved small-N reference
  # loop) — so a clean exit IS the differential gate. The grep sanity-checks
  # the coordinator counters: joint allocations happened, and grouped
  # decisions split cleanly into coordinated + scalar fallbacks.
  ./target/release/abr_harness fairness --players 64 --bottlenecks 4 --quick \
    --out "$smoke_dir/fairness_a" > "$smoke_dir/fairness_report.txt"
  test -s "$smoke_dir/fairness_a/fairness.csv"
  grep -Eq '[1-9][0-9]*/[0-9]+' "$smoke_dir/fairness_report.txt" \
    || { echo "fairness smoke: no coordinated decisions recorded"; exit 1; }
  echo "fairness smoke passed: 0 twin mismatches, coordinator counters sane"

  echo "== fairness determinism gate: byte-identical CSV across processes =="
  # Coordinated runs are a pure function of (seed, config): a second fresh
  # process (different thread count to rule out scheduling effects) must
  # reproduce results/fairness.csv byte for byte.
  ./target/release/abr_harness fairness --players 64 --bottlenecks 4 --quick \
    --threads 2 --out "$smoke_dir/fairness_b" > /dev/null
  diff -u "$smoke_dir/fairness_a/fairness.csv" "$smoke_dir/fairness_b/fairness.csv"
  diff -u "$smoke_dir/fairness_a/fairness_cdf.csv" "$smoke_dir/fairness_b/fairness_cdf.csv"
  echo "fairness determinism gate passed"

  echo "== live smoke: availability-gated sessions + live serve leg =="
  # The live/low-latency subsystem end to end: a quick {delay} x {cap} x
  # {BB, RobustMPC, FastMPC-live} sweep with the fault layer armed, then
  # the serve leg driving live sessions through the event engine via the
  # multiplexed load generator. The experiment asserts 0 wire-twin
  # mismatches and a non-empty GET /metrics latency histogram for every
  # backend, so a clean exit is the differential gate; the greps pin the
  # report shape (frontier verdict + twin confirmation) and the CSVs.
  ./target/release/abr_harness live --quick --traces 4 \
    --out "$smoke_dir/live" > "$smoke_dir/live_report.txt"
  test -s "$smoke_dir/live/live.csv"
  test -s "$smoke_dir/live/live_frontier.csv"
  test -s "$smoke_dir/live/live_serve.csv"
  grep -q "dominates buffer-based" "$smoke_dir/live_report.txt" \
    || { echo "live smoke: missing frontier verdict"; exit 1; }
  grep -q "bit-identical to its in-process twin" "$smoke_dir/live_report.txt" \
    || { echo "live smoke: missing wire-twin confirmation"; exit 1; }
  echo "live smoke passed: 0 wire-twin mismatches, latency histogram non-empty"

  echo "== VOD invariance gate: live layer off leaves fig8 byte-identical =="
  # With no --live flags the whole live layer must be dormant: two fig8
  # runs (the headline VOD artifact) bracketing this gate establish the
  # sweep is still a pure function of (seed, config) with live code
  # linked in, and the serve report-diff gate above already pins VOD
  # decision sequences byte-identical across engines.
  ./target/release/abr_harness fig8 --quick --traces 6 \
    --out "$smoke_dir/vod_a" > /dev/null
  ./target/release/abr_harness fig8 --quick --traces 6 \
    --threads 2 --out "$smoke_dir/vod_b" > /dev/null
  for f in "$smoke_dir"/vod_a/*.csv; do
    diff -u "$f" "$smoke_dir/vod_b/$(basename "$f")"
  done
  echo "VOD invariance gate passed"
fi

echo "== benches compile =="
cargo bench --workspace --no-run

echo "CI gate passed."
