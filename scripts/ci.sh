#!/usr/bin/env bash
# Local CI gate: lint clean, tests green, benches compile.
#
#   scripts/ci.sh          full gate
#   scripts/ci.sh quick    skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace -q

if [[ "${1:-}" != "quick" ]]; then
  echo "== release build =="
  cargo build --release --workspace
fi

echo "== benches compile =="
cargo bench --workspace --no-run

echo "CI gate passed."
