#!/usr/bin/env bash
# Local CI gate: lint clean, tests green, benches compile.
#
#   scripts/ci.sh          full gate
#   scripts/ci.sh quick    skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace -q

echo "== differential gate: indexed trace kernels vs naive oracles =="
# The indexed/cursor'd scan layer must stay bit-identical to the preserved
# naive scans (proptests in abr-trace), and the session engine's steady
# state must stay off the allocator (counting-allocator test in abr-sim).
cargo test -p abr-trace -q
cargo test -p abr-sim -q --test no_alloc

if [[ "${1:-}" != "quick" ]]; then
  echo "== release build =="
  cargo build --release --workspace

  echo "== harness smoke: OPT + table cache parity =="
  # The full report must be byte-identical with the OPT cache on and off,
  # and with the FastMPC table cache on and off. The §7.4 overhead section
  # (wall-clock microbenchmarks + the caches' own stats) and the run-info
  # footer (elapsed) describe the run rather than the results, so those
  # sections are stripped before comparing.
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "$smoke_dir"' EXIT
  filter_report() {
    awk '/^== / { skip = ($0 ~ /overhead|run info/) } !skip { print }'
  }
  ./target/release/abr_harness all --traces 5 --quick \
    | filter_report > "$smoke_dir/full_report.cached.txt"
  ./target/release/abr_harness all --traces 5 --quick --no-opt-cache \
    | filter_report > "$smoke_dir/full_report.no_opt_cache.txt"
  ./target/release/abr_harness all --traces 5 --quick --no-table-cache \
    | filter_report > "$smoke_dir/full_report.no_table_cache.txt"
  diff -u "$smoke_dir/full_report.cached.txt" "$smoke_dir/full_report.no_opt_cache.txt"
  diff -u "$smoke_dir/full_report.cached.txt" "$smoke_dir/full_report.no_table_cache.txt"
  echo "cache on/off reports identical"
fi

echo "== benches compile =="
cargo bench --workspace --no-run

echo "CI gate passed."
