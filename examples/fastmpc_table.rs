//! The FastMPC deployment story (Section 5): generate the decision table
//! offline, compress it, persist it, and serve online decisions by lookup —
//! then compare lookup decisions and speed against the exact online solver.
//!
//! ```sh
//! cargo run --release --example fastmpc_table
//! ```

use mpc_dash::core::mpc::optimize_horizon;
use mpc_dash::fastmpc::{FastMpcTable, TableConfig};
use mpc_dash::video::{envivio_video, LevelIdx, QoeWeights};
use std::time::Instant;

fn main() {
    let video = envivio_video();

    // Offline: enumerate the binned state space and solve each scenario.
    println!("generating the 100x5x100 decision table (offline step)...");
    let t0 = Instant::now();
    let table = FastMpcTable::generate(&video, 30.0, TableConfig::paper_default());
    println!(
        "  {} scenarios solved in {:.2}s",
        table.num_entries(),
        t0.elapsed().as_secs_f64()
    );
    println!(
        "  full table {} bytes -> run-length coded {} bytes ({} runs, {:.0}% of full)",
        table.full_size_bytes(),
        table.rle_size_bytes(),
        table.num_runs(),
        100.0 * table.rle_size_bytes() as f64 / table.full_size_bytes() as f64
    );

    // Persist and reload — the artifact a player would download.
    let json = table.to_json();
    println!("  serialized artifact: {} bytes of JSON", json.len());
    let reloaded = FastMpcTable::from_json(&json).expect("round-trips");

    // Online: lookups vs exact solves on a grid of live states.
    println!("\nonline decisions (buffer x throughput, prev level 1000 kbps):");
    print!("{:>10}", "");
    for thr in [400.0, 800.0, 1500.0, 2500.0, 4000.0] {
        print!("{:>9.0}k", thr / 1000.0 * 1000.0);
    }
    println!();
    let weights = QoeWeights::balanced();
    let mut disagreements = 0;
    let mut checked = 0;
    for buffer in [2.0, 6.0, 10.0, 15.0, 22.0, 28.0] {
        print!("{buffer:>8.0}s  ");
        for thr in [400.0, 800.0, 1500.0, 2500.0, 4000.0] {
            let fast = reloaded.lookup(buffer, LevelIdx(2), thr);
            let exact = optimize_horizon(
                &video,
                0,
                5,
                buffer,
                30.0,
                Some(LevelIdx(2)),
                thr,
                &weights,
            )
            .first();
            checked += 1;
            if fast != exact {
                disagreements += 1;
            }
            let marker = if fast == exact { ' ' } else { '*' };
            print!("{:>9}{marker}", video.ladder().kbps(fast) as u64);
        }
        println!();
    }
    println!("\n({disagreements}/{checked} lookups differ from the exact solve — bin-boundary effects, marked *)");

    // Speed: the reason FastMPC exists.
    let states: Vec<(f64, f64)> = (0..10_000)
        .map(|i| ((i % 300) as f64 / 10.0, 300.0 + (i % 97) as f64 * 40.0))
        .collect();
    let t1 = Instant::now();
    let mut acc = 0usize;
    for &(b, c) in &states {
        acc += reloaded.lookup(b, LevelIdx(2), c).get();
    }
    let lookup_ns = t1.elapsed().as_nanos() as f64 / states.len() as f64;
    let t2 = Instant::now();
    for &(b, c) in &states[..500] {
        acc += optimize_horizon(&video, 0, 5, b, 30.0, Some(LevelIdx(2)), c, &weights)
            .first()
            .get();
    }
    let solve_ns = t2.elapsed().as_nanos() as f64 / 500.0;
    std::hint::black_box(acc);
    println!(
        "lookup {:.0} ns/decision vs exact solve {:.0} ns/decision ({:.0}x faster)",
        lookup_ns,
        solve_ns,
        solve_ns / lookup_ns
    );
}
