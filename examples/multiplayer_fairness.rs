//! Multi-player fairness (the paper's §8 extension): four players share one
//! bottleneck; compare how each algorithm family divides the link.
//!
//! ```sh
//! cargo run --release --example multiplayer_fairness
//! ```

use mpc_dash::baselines::{BufferBased, Festive, RateBased};
use mpc_dash::core::{BitrateController, Mpc};
use mpc_dash::net::multiplayer::{run_shared_session, SharedPlayer};
use mpc_dash::predictor::HarmonicMean;
use mpc_dash::sim::SimConfig;
use mpc_dash::trace::Dataset;
use mpc_dash::video::envivio_video;

fn main() {
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    // A broadband bottleneck big enough that 4 players can coexist.
    let trace = Dataset::Fcc.generate(42, 1).remove(0).scaled(4.0);
    println!(
        "bottleneck: mean {:.0} kbps shared by 4 players ({:.0} kbps fair share)\n",
        trace.mean_kbps(),
        trace.mean_kbps() / 4.0
    );

    type Maker = (&'static str, fn() -> Box<dyn BitrateController>);
    let families: [Maker; 4] = [
        ("RB", || Box::new(RateBased::paper_default())),
        ("BB", || Box::new(BufferBased::paper_default())),
        ("FESTIVE", || Box::new(Festive::paper_default())),
        ("RobustMPC", || Box::new(Mpc::robust())),
    ];

    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>12} {:>11}",
        "algorithm", "Jain", "bitrate", "rebuffer", "switches", "utilization"
    );
    println!("{}", "-".repeat(66));
    for (name, make) in families {
        let players = (0..4)
            .map(|i| SharedPlayer {
                controller: make(),
                predictor: Box::new(HarmonicMean::paper_default()),
                start_offset_secs: i as f64 * 3.0, // staggered joins
            })
            .collect();
        let out = run_shared_session(players, &trace, &video, &cfg);
        let avg = |f: &dyn Fn(&mpc_dash::sim::SessionResult) -> f64| -> f64 {
            out.sessions.iter().map(|s| f(s)).sum::<f64>() / out.sessions.len() as f64
        };
        let capacity = trace.integrate_kbits(0.0, out.span_secs);
        println!(
            "{name:<10} {:>8.3} {:>9.0}k {:>9.2}s {:>12.1} {:>11.2}",
            out.bitrate_fairness,
            avg(&|s| s.avg_bitrate_kbps()),
            avg(&|s| s.total_rebuffer_secs()),
            avg(&|s| s.qoe.switches as f64),
            out.delivered_kbits / capacity,
        );
    }
    println!("\n(Jain index: 1.0 = all four players average the same bitrate)");
}
