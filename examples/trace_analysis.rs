//! Checking MPC's premise: "network conditions are reasonably stable on
//! short timescales" (Section 4.1). Quantifies throughput constancy,
//! autocorrelation and rolling stability for the three datasets.
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use mpc_dash::trace::analysis::{autocorrelation, constancy_profile, resample, rolling_cov};
use mpc_dash::trace::Dataset;

fn main() {
    let horizons = [4.0, 8.0, 20.0, 40.0];
    println!("mean relative throughput change, next-vs-previous window:\n");
    print!("{:<10}", "dataset");
    for h in horizons {
        print!("{:>9.0}s", h);
    }
    println!("{:>12} {:>12}", "lag-4s acf", "rolling CoV");
    println!("{}", "-".repeat(72));

    for ds in Dataset::ALL {
        let traces = ds.generate(42, 30);
        let mut change = [0.0f64; 4];
        let mut acf = 0.0;
        let mut cov = 0.0;
        for t in &traces {
            let p = constancy_profile(t, &horizons);
            for (i, c) in p.mean_rel_change.iter().enumerate() {
                change[i] += c / traces.len() as f64;
            }
            let series = resample(t, 4.0, t.cycle_secs());
            acf += autocorrelation(&series, 1).unwrap_or(0.0) / traces.len() as f64;
            cov += rolling_cov(t, 20.0, 1.0) / traces.len() as f64;
        }
        print!("{:<10}", ds.label());
        for c in change {
            print!("{c:>9.3} ");
        }
        println!("{acf:>11.3} {cov:>12.3}");
    }

    println!(
        "\nReading: small window-to-window change at 20s = the short-horizon\n\
         predictability MPC needs; HSDPA's larger numbers are why RobustMPC's\n\
         error-adjusted lower bound matters there (Figure 8b)."
    );
}
