//! The paper's Figure 2 in your terminal: buffer dynamics of two
//! controllers on the same volatile link, side by side.
//!
//! ```sh
//! cargo run --release --example buffer_timeline
//! ```

use mpc_dash::baselines::RateBased;
use mpc_dash::core::Mpc;
use mpc_dash::predictor::HarmonicMean;
use mpc_dash::sim::{ascii_chart, buffer_timeline, run_session, SimConfig};
use mpc_dash::trace::Trace;
use mpc_dash::video::envivio_video;

fn main() {
    let video = envivio_video();
    // A link that halves mid-stream and recovers — the classic trap.
    let trace = Trace::new(vec![
        (60.0, 2800.0),
        (60.0, 900.0),
        (60.0, 2200.0),
    ])
    .expect("valid trace");
    let cfg = SimConfig::paper_default();

    for mk in [0usize, 1] {
        let (name, result) = if mk == 0 {
            let mut c = Mpc::robust();
            (
                "RobustMPC",
                run_session(&mut c, HarmonicMean::paper_default(), &trace, &video, &cfg),
            )
        } else {
            let mut c = RateBased::paper_default();
            (
                "RB",
                run_session(&mut c, HarmonicMean::paper_default(), &trace, &video, &cfg),
            )
        };
        let pts = buffer_timeline(&result);
        println!(
            "{name}: avg bitrate {:.0} kbps, {} switches, {:.1}s rebuffer, QoE {:.0}",
            result.avg_bitrate_kbps(),
            result.qoe.switches,
            result.total_rebuffer_secs(),
            result.qoe.qoe
        );
        print!("{}", ascii_chart(&pts, 76, 12, 34.0));
        println!();
    }
    println!("(buffer occupancy over wall-clock time; link drops from 2.8 to 0.9 Mbps at t=60s)");
}
