//! Real sockets end to end: spawn the DASH chunk server on localhost,
//! fetch and parse its manifest, and stream the whole (short) video over
//! genuine TCP with receive-side throttling — the workspace's miniature
//! version of the paper's client/server testbed.
//!
//! ```sh
//! cargo run --release --example dash_server
//! ```

use mpc_dash::baselines::BufferBased;
use mpc_dash::net::http::ChunkServer;
use mpc_dash::net::player::run_real_session;
use mpc_dash::predictor::HarmonicMean;
use mpc_dash::sim::SimConfig;
use mpc_dash::video::{Ladder, VideoBuilder};

fn main() {
    // A short video so the example finishes in about a second of real
    // time: 12 chunks x 0.5 s at three bitrate levels.
    let ladder = Ladder::new(vec![200.0, 600.0, 1500.0]).expect("valid ladder");
    let video = VideoBuilder::new(ladder).chunks(12).chunk_secs(0.5).cbr();

    let addr = ChunkServer::spawn(video).expect("bind localhost");
    println!("DASH origin listening on http://{addr}");
    println!("  GET /manifest.mpd");
    println!("  GET /video/{{level}}/{{chunk}}.m4s\n");

    let mut controller = BufferBased::new(0.5, 1.5);
    let cfg = SimConfig {
        buffer_max_secs: 5.0,
        ..SimConfig::paper_default()
    };
    // Throttle the receiver to 3 Mbps — the real-time stand-in for the
    // paper's `tc`-shaped links.
    let result = run_real_session(
        addr,
        &mut controller,
        HarmonicMean::paper_default(),
        3_000.0,
        &cfg,
    )
    .expect("session completes");

    println!("chunk  level  bytes     download   throughput");
    for r in &result.records {
        println!(
            "{:>5}  {:>5}  {:>8.0}  {:>7.1}ms  {:>8.0} kbps",
            r.index,
            r.level.get(),
            r.size_kbits * 125.0, // kilobits -> bytes
            r.download_secs * 1000.0,
            r.throughput_kbps
        );
    }
    println!(
        "\nstreamed {} chunks over real TCP in {:.2}s wall time; QoE {:.0}",
        result.records.len(),
        result.total_secs,
        result.qoe.qoe
    );
}
