//! Quickstart: stream the paper's reference video over a generated
//! broadband trace with RobustMPC and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mpc_dash::core::Mpc;
use mpc_dash::predictor::HarmonicMean;
use mpc_dash::sim::{run_session, SimConfig};
use mpc_dash::trace::Dataset;
use mpc_dash::video::envivio_video;

fn main() {
    // The paper's test video: 65 chunks x 4 s, five bitrate levels
    // {350, 600, 1000, 2000, 3000} kbps, 30 s playout buffer.
    let video = envivio_video();

    // A broadband-like throughput trace (seeded: fully reproducible).
    let trace = Dataset::Fcc.generate(7, 1).remove(0);
    println!(
        "trace: mean {:.0} kbps, std {:.0} kbps, {:.0} s per cycle",
        trace.mean_kbps(),
        trace.std_kbps(),
        trace.cycle_secs()
    );

    // RobustMPC with the paper's configuration (horizon 5, balanced QoE
    // weights), fed by a harmonic-mean throughput predictor.
    let mut controller = Mpc::robust();
    let result = run_session(
        &mut controller,
        HarmonicMean::paper_default(),
        &trace,
        &video,
        &SimConfig::paper_default(),
    );

    println!("\nper-chunk log (first 10 chunks):");
    println!("chunk  bitrate  buffer->   download  rebuffer");
    for r in result.records.iter().take(10) {
        println!(
            "{:>5}  {:>6.0}k  {:>5.1}s     {:>5.2}s    {:>5.2}s",
            r.index, r.bitrate_kbps, r.buffer_after_secs, r.download_secs, r.rebuffer_secs
        );
    }

    println!("\nsession summary ({}):", result.algorithm);
    println!("  average bitrate   {:>8.0} kbps", result.avg_bitrate_kbps());
    println!(
        "  bitrate switches  {:>8}   ({:.0} kbps/chunk average change)",
        result.qoe.switches,
        result.avg_bitrate_change_kbps()
    );
    println!(
        "  rebuffering       {:>8.2} s across {} events",
        result.total_rebuffer_secs(),
        result.rebuffer_events()
    );
    println!("  startup delay     {:>8.2} s", result.startup_secs);
    println!("  QoE (Eq. 5)       {:>8.0}", result.qoe.qoe);
}
