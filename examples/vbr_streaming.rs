//! Variable-bitrate content over a cellular trace: builds a VBR video where
//! scene complexity oscillates, publishes it as a DASH manifest with
//! explicit per-chunk sizes (the extension the paper argues the standard
//! needs), parses the manifest back, and streams it through the emulated
//! HTTP path with RobustMPC vs. the rate-based baseline.
//!
//! ```sh
//! cargo run --release --example vbr_streaming
//! ```

use mpc_dash::baselines::RateBased;
use mpc_dash::core::Mpc;
use mpc_dash::net::player::{run_emulated_session, NetConfig};
use mpc_dash::net::mpd;
use mpc_dash::predictor::HarmonicMean;
use mpc_dash::sim::{SessionResult, SimConfig};
use mpc_dash::trace::Dataset;
use mpc_dash::video::{Ladder, VideoBuilder};

fn main() {
    // VBR: action scenes cost up to 1.4x the nominal bitrate, static
    // scenes as little as 0.7x, oscillating through the film.
    let ladder = Ladder::new(vec![350.0, 600.0, 1000.0, 2000.0, 3000.0]).expect("valid");
    let video = VideoBuilder::new(ladder)
        .chunks(65)
        .chunk_secs(4.0)
        .vbr(|k| 1.05 + 0.35 * ((k as f64) * 0.45).sin());

    // Publish and re-parse the manifest: the streaming side only ever sees
    // what the manifest declares.
    let manifest = mpd::generate(&video);
    println!(
        "manifest: {} bytes, advertises per-chunk sizes for {} chunks x {} levels",
        manifest.len(),
        video.num_chunks(),
        video.ladder().len()
    );
    let video = mpd::parse(&manifest).expect("round-trips");

    let trace = Dataset::Hsdpa.generate(11, 1).remove(0);
    println!(
        "cellular trace: mean {:.0} kbps, std {:.0} kbps\n",
        trace.mean_kbps(),
        trace.std_kbps()
    );

    let cfg = SimConfig::paper_default();
    let net = NetConfig::typical();
    let mut robust = Mpc::robust();
    let r_mpc = run_emulated_session(
        &mut robust,
        HarmonicMean::paper_default(),
        &trace,
        &video,
        &cfg,
        &net,
    );
    let mut rb = RateBased::paper_default();
    let r_rb = run_emulated_session(
        &mut rb,
        HarmonicMean::paper_default(),
        &trace,
        &video,
        &cfg,
        &net,
    );

    let report = |r: &SessionResult| {
        format!(
            "{:<10} avg bitrate {:>5.0} kbps | switches {:>2} | rebuffer {:>6.2}s | QoE {:>8.0}",
            r.algorithm,
            r.avg_bitrate_kbps(),
            r.qoe.switches,
            r.total_rebuffer_secs(),
            r.qoe.qoe
        )
    };
    println!("{}", report(&r_mpc));
    println!("{}", report(&r_rb));
    println!(
        "\nRobustMPC QoE advantage on VBR cellular content: {:+.0}",
        r_mpc.qoe.qoe - r_rb.qoe.qoe
    );
}
