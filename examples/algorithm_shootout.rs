//! Algorithm shootout: every adaptation algorithm of the paper's evaluation
//! over one dataset, with normalized QoE against the clairvoyant optimum —
//! a miniature Figure 8.
//!
//! ```sh
//! cargo run --release --example algorithm_shootout -- [fcc|hsdpa|synthetic] [traces]
//! ```

use mpc_dash::harness::registry::Algo;
use mpc_dash::harness::runner::{evaluate_dataset, EvalConfig};
use mpc_dash::trace::stats::Summary;
use mpc_dash::trace::Dataset;
use mpc_dash::video::envivio_video;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset = match args.first().map(String::as_str) {
        Some("hsdpa") => Dataset::Hsdpa,
        Some("synthetic") => Dataset::Synthetic,
        _ => Dataset::Fcc,
    };
    let n: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    println!("evaluating {} traces from the {} dataset...", n, dataset.label());
    let video = envivio_video();
    let traces = dataset.generate(42, n);
    let cfg = EvalConfig {
        fastmpc_levels: 60, // keep the example snappy; 100 in the harness
        ..EvalConfig::paper_default()
    };
    let out = evaluate_dataset(&Algo::FIGURE8, &traces, &video, &cfg);

    println!(
        "\n{:<10} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "algorithm", "median", "mean", "bitrate", "switches", "rebuffer"
    );
    println!("{}", "-".repeat(62));
    for algo in &out.algos {
        let nq = out.n_qoe_samples(*algo);
        let s = Summary::of(&nq).expect("non-empty");
        let sessions = out.sessions_of(*algo);
        let avg_bitrate: f64 = sessions.iter().map(|r| r.avg_bitrate_kbps()).sum::<f64>()
            / sessions.len() as f64;
        let avg_switches: f64 = sessions.iter().map(|r| r.qoe.switches as f64).sum::<f64>()
            / sessions.len() as f64;
        let avg_rebuf: f64 = sessions
            .iter()
            .map(|r| r.total_rebuffer_secs())
            .sum::<f64>()
            / sessions.len() as f64;
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>9.0}k {:>10.1} {:>9.2}s",
            algo.name(),
            s.median,
            s.mean,
            avg_bitrate,
            avg_switches,
            avg_rebuf
        );
    }
    if out.skipped > 0 {
        println!(
            "\n({} traces skipped: the clairvoyant optimum itself was negative)",
            out.skipped
        );
    }
    println!("\n(median/mean are normalized QoE: 1.0 = clairvoyant continuous-rate optimum)");
}
