//! # mpc-dash
//!
//! A complete Rust reproduction of *Yin, Jindal, Sekar & Sinopoli,
//! "A Control-Theoretic Approach for Dynamic Adaptive Video Streaming over
//! HTTP" (SIGCOMM 2015)* — the MPC/RobustMPC/FastMPC family of bitrate
//! adaptation algorithms, every baseline the paper compares against, and
//! the full evaluation apparatus.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a short name.
//!
//! | Module | Crate | What's inside |
//! |---|---|---|
//! | [`video`] | `abr-video` | Bitrate ladders, chunked video, QoE objective (Eq. 5) |
//! | [`trace`] | `abr-trace` | Throughput traces, dataset generators, statistics |
//! | [`predictor`] | `abr-predictor` | Harmonic-mean & friends, error tracking |
//! | [`core`] | `abr-core` | Buffer model (Eqs. 1–4), MPC, RobustMPC, MDP |
//! | [`baselines`] | `abr-baselines` | RB, BB, FESTIVE, dash.js rules, BOLA |
//! | [`fastmpc`] | `abr-fastmpc` | Offline table enumeration + RLE + lookup |
//! | [`offline`] | `abr-offline` | Clairvoyant optimum (normalized-QoE denominator) |
//! | [`sim`] | `abr-sim` | Trace-driven streaming simulator |
//! | [`net`] | `abr-net` | HTTP/1.1, DASH manifests, shaped links, players |
//! | [`harness`] | `abr-harness` | Regenerators for every paper figure/table |
//!
//! ## Five-line quickstart
//!
//! ```
//! use mpc_dash::{core::Mpc, predictor::HarmonicMean,
//!                sim::{run_session, SimConfig}, trace::Trace,
//!                video::envivio_video};
//!
//! let video = envivio_video();
//! let trace = Trace::constant(1500.0, 60.0).unwrap();
//! let mut controller = Mpc::robust();
//! let result = run_session(&mut controller, HarmonicMean::paper_default(),
//!                          &trace, &video, &SimConfig::paper_default());
//! assert_eq!(result.records.len(), 65);
//! ```
//!
//! See README.md for the architecture diagram, DESIGN.md for the system
//! inventory and experiment index, and EXPERIMENTS.md for paper-vs-measured
//! results.

#![forbid(unsafe_code)]

pub use abr_baselines as baselines;
pub use abr_core as core;
pub use abr_fastmpc as fastmpc;
pub use abr_harness as harness;
pub use abr_net as net;
pub use abr_offline as offline;
pub use abr_predictor as predictor;
pub use abr_sim as sim;
pub use abr_trace as trace;
pub use abr_video as video;
