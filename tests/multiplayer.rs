//! Integration tests of the multi-player shared-bottleneck extension.

use mpc_dash::baselines::{Festive, RateBased};
use mpc_dash::core::Mpc;
use mpc_dash::net::multiplayer::{jain_index, run_shared_session, SharedPlayer};
use mpc_dash::predictor::HarmonicMean;
use mpc_dash::sim::SimConfig;
use mpc_dash::trace::{Dataset, Trace};
use mpc_dash::video::envivio_video;

fn hm() -> Box<HarmonicMean> {
    Box::new(HarmonicMean::paper_default())
}

#[test]
fn heterogeneous_mix_completes_and_accounts() {
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let trace = Dataset::Fcc.generate(8, 1).remove(0).scaled(3.0);
    let out = run_shared_session(
        vec![
            SharedPlayer {
                controller: Box::new(Mpc::robust()),
                predictor: hm(),
                start_offset_secs: 0.0,
            },
            SharedPlayer {
                controller: Box::new(RateBased::paper_default()),
                predictor: hm(),
                start_offset_secs: 1.0,
            },
            SharedPlayer {
                controller: Box::new(Festive::paper_default()),
                predictor: hm(),
                start_offset_secs: 2.0,
            },
        ],
        &trace,
        &video,
        &cfg,
    );
    assert_eq!(out.sessions.len(), 3);
    for s in &out.sessions {
        assert_eq!(s.records.len(), 65, "{}", s.algorithm);
        assert!(s.qoe.qoe.is_finite());
        for r in &s.records {
            assert!(r.buffer_after_secs >= -1e-9 && r.buffer_after_secs <= 30.0 + 1e-9);
        }
    }
    assert!(out.bitrate_fairness > 0.3 && out.bitrate_fairness <= 1.0 + 1e-12);
    // The link never delivers more than its capacity over the span.
    let capacity = trace.integrate_kbits(0.0, out.span_secs);
    assert!(
        out.delivered_kbits <= capacity + 1e-6 * capacity,
        "delivered {} exceeds capacity {capacity}",
        out.delivered_kbits
    );
}

#[test]
fn more_players_mean_less_each() {
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let trace = Trace::constant(6000.0, 60.0).unwrap();
    let mean_bitrate = |n: usize| -> f64 {
        let players = (0..n)
            .map(|i| SharedPlayer {
                controller: Box::new(Mpc::robust()),
                predictor: hm(),
                start_offset_secs: i as f64,
            })
            .collect();
        let out = run_shared_session(players, &trace, &video, &cfg);
        out.sessions.iter().map(|s| s.avg_bitrate_kbps()).sum::<f64>() / n as f64
    };
    let two = mean_bitrate(2);
    let four = mean_bitrate(4);
    assert!(
        four < two,
        "four players ({four} kbps avg) must average less than two ({two} kbps)"
    );
}

#[test]
fn fairness_index_reflects_capacity_split() {
    // Two identical FESTIVE players on a stable link: near-perfect Jain.
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let trace = Trace::constant(4000.0, 60.0).unwrap();
    let players = (0..2)
        .map(|i| SharedPlayer {
            controller: Box::new(Festive::paper_default()),
            predictor: hm(),
            start_offset_secs: i as f64 * 2.0,
        })
        .collect();
    let out = run_shared_session(players, &trace, &video, &cfg);
    assert!(out.bitrate_fairness > 0.95, "{}", out.bitrate_fairness);
    assert!((jain_index(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
}
