//! Failure injection: hostile inputs the real Internet produces — outages,
//! pathological VBR, absurd ladders — must degrade QoE, never correctness.

use mpc_dash::baselines::{BufferBased, DashJs, Festive, RateBased};
use mpc_dash::core::{BitrateController, Mpc, MdpConfig, MdpController, MdpPolicy, ThroughputChain};
use mpc_dash::net::{
    run_emulated_session, run_emulated_session_faulted, FaultConfig, FaultPlan, NetConfig,
    RetryPolicy,
};
use mpc_dash::predictor::HarmonicMean;
use mpc_dash::sim::{run_session, SimConfig};
use mpc_dash::trace::{Dataset, Trace};
use mpc_dash::video::{envivio_video, Ladder, VideoBuilder};
use std::sync::Arc;

fn all_controllers() -> Vec<Box<dyn BitrateController>> {
    vec![
        Box::new(RateBased::paper_default()),
        Box::new(BufferBased::paper_default()),
        Box::new(Festive::paper_default()),
        Box::new(DashJs::paper_default()),
        Box::new(Mpc::paper_default()),
        Box::new(Mpc::robust()),
    ]
}

#[test]
fn mid_session_outage_is_survivable() {
    // 40 s of good link, a 25 s total outage, then recovery. Everyone must
    // finish with finite, heavily penalized QoE and correct accounting.
    let video = envivio_video();
    let trace = Trace::new(vec![
        (40.0, 2500.0),
        (25.0, 0.0),
        (60.0, 2500.0),
    ])
    .unwrap();
    let cfg = SimConfig::paper_default();
    for mut c in all_controllers() {
        let r = run_session(
            c.as_mut(),
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
        );
        assert_eq!(r.records.len(), 65, "{}", r.algorithm);
        assert!(r.qoe.qoe.is_finite(), "{}", r.algorithm);
        // The outage strands at most Bmax=30s of buffer against 25s of
        // darkness; depending on phase most algorithms rebuffer. At minimum
        // the wall clock must absorb the outage.
        assert!(
            r.total_secs >= 65.0,
            "{}: session too fast ({:.1}s) to have crossed the outage",
            r.algorithm,
            r.total_secs
        );
    }
}

#[test]
fn repeated_short_outages_accumulate_rebuffering_for_aggressive_policies() {
    let video = envivio_video();
    // 10 s on, 8 s off, repeating: harsh ON/OFF.
    let trace = Trace::new(vec![(10.0, 3000.0), (8.0, 0.0)]).unwrap();
    let cfg = SimConfig::paper_default();
    let mut rb = RateBased::paper_default();
    let r = run_session(&mut rb, HarmonicMean::paper_default(), &trace, &video, &cfg);
    assert_eq!(r.records.len(), 65);
    assert!(r.qoe.qoe.is_finite());
    // RB predicts from in-ON throughput and gets repeatedly caught.
    assert!(
        r.total_rebuffer_secs() > 0.0,
        "an ON/OFF link should catch the rate-based policy at least once"
    );
}

#[test]
fn extreme_vbr_is_handled_by_every_controller() {
    // 5x swing between static and action scenes.
    let ladder = Ladder::new(vec![350.0, 600.0, 1000.0, 2000.0, 3000.0]).unwrap();
    let video = VideoBuilder::new(ladder)
        .chunks(65)
        .chunk_secs(4.0)
        .vbr(|k| if k % 2 == 0 { 0.4 } else { 2.0 });
    let trace = Dataset::Fcc.generate(3, 1).remove(0);
    let cfg = SimConfig::paper_default();
    for mut c in all_controllers() {
        let r = run_session(
            c.as_mut(),
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
        );
        assert_eq!(r.records.len(), 65, "{}", r.algorithm);
        assert!(r.qoe.qoe.is_finite());
    }
}

#[test]
fn mid_session_outage_is_survivable_on_the_emulated_path() {
    // The emulated twin of the outage test above: real HTTP messages
    // through the shaped link must survive the same 25 s of darkness with
    // the same invariants — every chunk delivered, finite QoE.
    let video = envivio_video();
    let trace = Trace::new(vec![(40.0, 2500.0), (25.0, 0.0), (60.0, 2500.0)]).unwrap();
    let cfg = SimConfig::paper_default();
    for mut c in all_controllers() {
        let r = run_emulated_session(
            c.as_mut(),
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::parity(),
        );
        assert_eq!(r.records.len(), 65, "{}", r.algorithm);
        assert!(r.qoe.qoe.is_finite(), "{}", r.algorithm);
        assert!(
            r.total_secs >= 65.0,
            "{}: session too fast ({:.1}s) to have crossed the outage",
            r.algorithm,
            r.total_secs
        );
        // No faults were injected, so the fault accounting must be silent.
        assert_eq!(r.total_retries(), 0, "{}", r.algorithm);
        assert_eq!(r.total_wasted_kbits(), 0.0, "{}", r.algorithm);
        assert!(!r.aborted, "{}", r.algorithm);
    }
}

#[test]
fn armed_but_disabled_fault_layer_is_invisible() {
    // Threading a fault plan that never fires through the outage scenario
    // must reproduce the plain emulated run bit for bit.
    let video = envivio_video();
    let trace = Trace::new(vec![(40.0, 2500.0), (25.0, 0.0), (60.0, 2500.0)]).unwrap();
    let cfg = SimConfig::paper_default();
    let mut a = Mpc::robust();
    let plain = run_emulated_session(
        &mut a,
        HarmonicMean::paper_default(),
        &trace,
        &video,
        &cfg,
        &NetConfig::parity(),
    );
    let mut b = Mpc::robust();
    let armed = run_emulated_session_faulted(
        &mut b,
        HarmonicMean::paper_default(),
        &trace,
        &video,
        &cfg,
        &NetConfig::parity(),
        FaultPlan::new(123, FaultConfig::disabled()),
        &RetryPolicy::no_timeout(),
    );
    assert_eq!(plain.records.len(), armed.records.len());
    assert_eq!(plain.qoe.qoe.to_bits(), armed.qoe.qoe.to_bits());
    for (p, f) in plain.records.iter().zip(&armed.records) {
        assert_eq!(p.level, f.level);
        assert_eq!(p.download_secs.to_bits(), f.download_secs.to_bits());
        assert_eq!(p.throughput_kbps.to_bits(), f.throughput_kbps.to_bits());
        assert_eq!(p.rebuffer_secs.to_bits(), f.rebuffer_secs.to_bits());
    }
}

#[test]
fn injected_faults_degrade_but_never_break_the_emulated_session() {
    // A genuinely hostile network: every fault kind armed at a high rate
    // plus request jitter. Every controller must still finish every chunk
    // or abort cleanly — finite QoE, no panic, no hang.
    let video = envivio_video();
    let trace = Trace::new(vec![(60.0, 3000.0), (30.0, 1200.0)]).unwrap();
    let cfg = SimConfig::paper_default();
    let mut config = FaultConfig::uniform(0.4);
    config.jitter_max_secs = 0.05;
    for (i, mut c) in all_controllers().into_iter().enumerate() {
        let r = run_emulated_session_faulted(
            c.as_mut(),
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::typical(),
            FaultPlan::new(0xFA_u64 + i as u64, config.clone()),
            &RetryPolicy::hostile(),
        );
        assert!(r.qoe.qoe.is_finite(), "{}", r.algorithm);
        if !r.aborted {
            assert_eq!(r.records.len(), 65, "{}", r.algorithm);
        }
        // At a 40 % fault rate across 65 chunks, the retry machinery
        // cannot have stayed idle.
        assert!(
            r.total_retries() > 0 || r.aborted,
            "{}: no retries at 40% fault rate",
            r.algorithm
        );
    }
}

#[test]
fn single_level_ladder_degenerates_gracefully() {
    let ladder = Ladder::new(vec![800.0]).unwrap();
    let video = VideoBuilder::new(ladder).chunks(30).chunk_secs(4.0).cbr();
    let trace = Trace::constant(1000.0, 60.0).unwrap();
    let cfg = SimConfig::paper_default();
    for mut c in all_controllers() {
        let r = run_session(
            c.as_mut(),
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
        );
        assert!(r.records.iter().all(|x| x.bitrate_kbps == 800.0));
        assert_eq!(r.qoe.switches, 0, "{}", r.algorithm);
    }
}

#[test]
fn mdp_controller_completes_sessions_end_to_end() {
    // The closed-loop MDP test (unit crate can't host it: dev-dep cycle).
    let video = envivio_video();
    let train = Dataset::Fcc.generate(5, 8);
    let chain = ThroughputChain::fit(&train, 10, 50.0, 8000.0, 4.0);
    let policy = Arc::new(MdpPolicy::solve(&video, 30.0, chain, &MdpConfig::default()));
    let cfg = SimConfig::paper_default();
    for trace in Dataset::Fcc.generate(6, 3) {
        let mut mdp = MdpController::new(Arc::clone(&policy));
        let r = run_session(&mut mdp, HarmonicMean::paper_default(), &trace, &video, &cfg);
        assert_eq!(r.records.len(), 65);
        assert!(r.qoe.qoe.is_finite());
        assert!(
            r.avg_bitrate_kbps() >= 350.0,
            "policy collapsed to nothing: {}",
            r.avg_bitrate_kbps()
        );
        assert!(
            r.total_rebuffer_secs() < 120.0,
            "in-distribution MDP rebuffering exploded: {}",
            r.total_rebuffer_secs()
        );
    }
}

#[test]
fn tiny_buffer_is_rejected_loudly_not_silently() {
    let video = envivio_video();
    let trace = Trace::constant(1000.0, 30.0).unwrap();
    let mut cfg = SimConfig::paper_default();
    cfg.buffer_max_secs = 1.0; // smaller than one chunk
    let mut bb = BufferBased::paper_default();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_session(&mut bb, HarmonicMean::paper_default(), &trace, &video, &cfg)
    }));
    assert!(result.is_err(), "sub-chunk buffers must be a hard error");
}
