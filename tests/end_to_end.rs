//! Cross-crate integration: the full pipeline from trace generation through
//! controllers, simulator, offline optimum and normalization.

use mpc_dash::harness::registry::Algo;
use mpc_dash::harness::runner::{evaluate_dataset, EvalConfig};
use mpc_dash::offline::{optimal_qoe, OfflineConfig};
use mpc_dash::predictor::HarmonicMean;
use mpc_dash::sim::{run_session, SimConfig};
use mpc_dash::trace::Dataset;
use mpc_dash::video::envivio_video;

fn quick_cfg() -> EvalConfig {
    EvalConfig {
        fastmpc_levels: 15,
        ..EvalConfig::paper_default()
    }
}

#[test]
fn full_grid_invariants_on_every_dataset() {
    let video = envivio_video();
    let algos = [
        Algo::Rb,
        Algo::Bb,
        Algo::Festive,
        Algo::DashJs,
        Algo::FastMpc,
        Algo::RobustMpc,
        Algo::Mpc,
        Algo::MpcOpt,
    ];
    for ds in Dataset::ALL {
        let traces = ds.generate(1234, 4);
        let out = evaluate_dataset(&algos, &traces, &video, &quick_cfg());
        assert!(!out.traces.is_empty(), "{}: everything skipped", ds.label());
        for t in &out.traces {
            assert!(t.opt_qoe > 0.0);
            for (i, session) in t.sessions.iter().enumerate() {
                let name = algos[i].name();
                assert_eq!(session.records.len(), 65, "{name}");
                // Buffer invariant everywhere.
                for r in &session.records {
                    assert!(
                        (0.0 - 1e-9..=30.0 + 1e-9).contains(&r.buffer_after_secs),
                        "{name}: buffer {}",
                        r.buffer_after_secs
                    );
                    assert!(r.download_secs > 0.0 && r.download_secs.is_finite());
                    assert!(r.rebuffer_secs >= 0.0);
                }
                // Nobody beats the clairvoyant continuous optimum by more
                // than numerical noise.
                assert!(
                    t.n_qoe(i) <= 1.02,
                    "{name} on {}: n-QoE {} vs OPT {}",
                    ds.label(),
                    t.n_qoe(i),
                    t.opt_qoe
                );
            }
        }
    }
}

#[test]
fn mpc_opt_dominates_plain_mpc_in_aggregate() {
    // Perfect prediction can only help MPC on average.
    let video = envivio_video();
    let traces = Dataset::Hsdpa.generate(77, 6);
    let out = evaluate_dataset(&[Algo::Mpc, Algo::MpcOpt], &traces, &video, &quick_cfg());
    let mpc: f64 = out.n_qoe_samples(Algo::Mpc).iter().sum();
    let opt: f64 = out.n_qoe_samples(Algo::MpcOpt).iter().sum();
    assert!(
        opt >= mpc - 0.1,
        "MPC-OPT {opt} should not trail MPC {mpc} in aggregate"
    );
}

#[test]
fn offline_optimum_upper_bounds_every_session() {
    let video = envivio_video();
    let sim = SimConfig::paper_default();
    let off = OfflineConfig::paper_default();
    for ds in Dataset::ALL {
        for trace in ds.generate(31, 3) {
            let opt = optimal_qoe(&trace, &video, &off);
            let mut mpc = mpc_dash::core::Mpc::robust();
            let session = run_session(
                &mut mpc,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &sim,
            );
            assert!(
                session.qoe.qoe <= opt.qoe + 0.02 * opt.qoe.abs() + 1.0,
                "{}: online {} beat OPT {}",
                ds.label(),
                session.qoe.qoe,
                opt.qoe
            );
        }
    }
}

#[test]
fn sessions_are_deterministic_end_to_end() {
    let video = envivio_video();
    let traces = Dataset::Synthetic.generate(5, 2);
    let cfg = quick_cfg();
    let a = evaluate_dataset(&Algo::FIGURE8, &traces, &video, &cfg);
    let b = evaluate_dataset(&Algo::FIGURE8, &traces, &video, &cfg);
    for (x, y) in a.traces.iter().zip(&b.traces) {
        for (sx, sy) in x.sessions.iter().zip(&y.sessions) {
            assert_eq!(sx.qoe.qoe, sy.qoe.qoe, "{}", sx.algorithm);
            assert_eq!(sx.records.len(), sy.records.len());
        }
    }
}

#[test]
fn facade_reexports_compose() {
    // The public API a downstream user sees: everything reachable from the
    // facade, composed without touching internal crates.
    use mpc_dash::baselines::BufferBased;
    let video = mpc_dash::video::envivio_video();
    let trace = mpc_dash::trace::Trace::constant(1200.0, 60.0).unwrap();
    let mut bb = BufferBased::paper_default();
    let result = mpc_dash::sim::run_session(
        &mut bb,
        mpc_dash::predictor::HarmonicMean::paper_default(),
        &trace,
        &video,
        &mpc_dash::sim::SimConfig::paper_default(),
    );
    assert_eq!(result.records.len(), 65);
    assert!(result.qoe.qoe.is_finite());
}
