//! Cross-validation between the two independent execution paths (analytic
//! simulator vs. HTTP emulation) and between FastMPC and the exact solver.

use mpc_dash::core::Mpc;
use mpc_dash::fastmpc::{FastMpc, FastMpcTable, TableConfig};
use mpc_dash::net::player::{run_emulated_session, NetConfig};
use mpc_dash::predictor::HarmonicMean;
use mpc_dash::sim::{run_session, SimConfig};
use mpc_dash::trace::Dataset;
use mpc_dash::video::envivio_video;
use std::sync::Arc;

#[test]
fn simulator_and_emulator_agree_across_datasets_and_algorithms() {
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let net = NetConfig::parity();
    for ds in Dataset::ALL {
        for trace in ds.generate(50, 2) {
            type Maker = fn() -> Box<dyn mpc_dash::core::BitrateController>;
            let makers: [Maker; 3] = [
                || Box::new(mpc_dash::baselines::RateBased::paper_default()),
                || Box::new(mpc_dash::baselines::BufferBased::paper_default()),
                || Box::new(Mpc::robust()),
            ];
            for make in makers {
                let mut c1 = make();
                let sim = run_session(
                    c1.as_mut(),
                    HarmonicMean::paper_default(),
                    &trace,
                    &video,
                    &cfg,
                );
                let mut c2 = make();
                let emu = run_emulated_session(
                    c2.as_mut(),
                    HarmonicMean::paper_default(),
                    &trace,
                    &video,
                    &cfg,
                    &net,
                );
                // HTTP headers add a few hundred bytes per chunk, shifting
                // buffer trajectories slightly; stateful controllers (BB's
                // hysteresis) can amplify one flipped hold/switch, so allow
                // a modest relative gap.
                let rel = (sim.qoe.qoe - emu.qoe.qoe).abs() / sim.qoe.qoe.abs().max(1000.0);
                assert!(
                    rel < 0.05,
                    "{} on {}: sim {} vs emu {}",
                    sim.algorithm,
                    ds.label(),
                    sim.qoe.qoe,
                    emu.qoe.qoe
                );
            }
        }
    }
}

#[test]
fn fastmpc_approaches_exact_mpc_as_bins_grow() {
    // Figure 12a's monotone trend, as an aggregate over traces: finer
    // tables close the gap to the exact optimizer.
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let traces = Dataset::Fcc.generate(13, 6);

    let mut exact_total = 0.0;
    for trace in &traces {
        let mut mpc = Mpc::paper_default();
        exact_total +=
            run_session(&mut mpc, HarmonicMean::paper_default(), trace, &video, &cfg)
                .qoe
                .qoe;
    }

    let total_for = |levels: usize| -> f64 {
        let table = Arc::new(FastMpcTable::generate(
            &video,
            30.0,
            TableConfig::with_levels(levels, 30.0),
        ));
        traces
            .iter()
            .map(|trace| {
                let mut c = FastMpc::new(Arc::clone(&table));
                run_session(&mut c, HarmonicMean::paper_default(), trace, &video, &cfg)
                    .qoe
                    .qoe
            })
            .sum()
    };

    let coarse = total_for(5);
    let fine = total_for(120);
    assert!(
        fine >= coarse,
        "finer table should help: coarse {coarse}, fine {fine}"
    );
    let gap = (exact_total - fine).abs() / exact_total.abs();
    assert!(
        gap < 0.12,
        "fine FastMPC {fine} should be within ~10% of exact {exact_total} (gap {gap})"
    );
}

#[test]
fn robust_mpc_rebuffers_less_than_plain_mpc_under_volatility() {
    // Section 7.2's HSDPA finding, in aggregate: RobustMPC trades a little
    // bitrate for a lot less rebuffering when predictions are unreliable.
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let traces = Dataset::Hsdpa.generate(2024, 12);
    let mut rebuf_plain = 0.0;
    let mut rebuf_robust = 0.0;
    let mut bitrate_plain = 0.0;
    let mut bitrate_robust = 0.0;
    for trace in &traces {
        let mut plain = Mpc::paper_default();
        let a = run_session(&mut plain, HarmonicMean::paper_default(), trace, &video, &cfg);
        rebuf_plain += a.total_rebuffer_secs();
        bitrate_plain += a.avg_bitrate_kbps();
        let mut robust = Mpc::robust();
        let b = run_session(&mut robust, HarmonicMean::paper_default(), trace, &video, &cfg);
        rebuf_robust += b.total_rebuffer_secs();
        bitrate_robust += b.avg_bitrate_kbps();
    }
    assert!(
        rebuf_robust < rebuf_plain,
        "robust rebuffer {rebuf_robust} should beat plain {rebuf_plain}"
    );
    assert!(
        bitrate_robust <= bitrate_plain * 1.02,
        "robustness is bought with (slightly) lower bitrate"
    );
}

#[test]
fn robust_theorem_holds_in_closed_loop() {
    // Theorem 1 in vivo: a RobustMPC session equals a plain-MPC session
    // that is fed the identical lower-bound predictions. We verify via the
    // controller context plumbing: robust uses robust_lower_kbps, which the
    // simulator derives as pred/(1+err). Equality of decisions follows from
    // the unit tests; here we double-check the session-level wiring by
    // asserting RobustMPC never exceeds plain MPC's per-chunk level when
    // both see the same history... which holds only chunk-by-chunk given
    // identical histories, so compare first-divergence behaviour instead:
    // on a constant trace (zero prediction error) the two must be
    // indistinguishable.
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let trace = mpc_dash::trace::Trace::constant(1700.0, 60.0).unwrap();
    let mut plain = Mpc::paper_default();
    let a = run_session(&mut plain, HarmonicMean::paper_default(), &trace, &video, &cfg);
    let mut robust = Mpc::robust();
    let b = run_session(&mut robust, HarmonicMean::paper_default(), &trace, &video, &cfg);
    assert_eq!(
        a.records.iter().map(|r| r.level).collect::<Vec<_>>(),
        b.records.iter().map(|r| r.level).collect::<Vec<_>>(),
        "zero prediction error must make RobustMPC == MPC"
    );
}
