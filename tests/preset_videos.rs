//! Generality across content shapes: the preset videos (fine HD ladder,
//! low-latency live, VBR film) streamed end-to-end by the full algorithm
//! roster. The paper evaluates only the Envivio clip; a library must not
//! be overfitted to it.

use mpc_dash::baselines::{BufferBased, DashJs, Festive, RateBased};
use mpc_dash::core::{BitrateController, Mpc};
use mpc_dash::fastmpc::{FastMpc, FastMpcTable, TableConfig};
use mpc_dash::predictor::HarmonicMean;
use mpc_dash::sim::{run_session, SimConfig};
use mpc_dash::trace::Dataset;
use mpc_dash::video::presets;
use std::sync::Arc;

fn roster() -> Vec<Box<dyn BitrateController>> {
    vec![
        Box::new(RateBased::paper_default()),
        Box::new(BufferBased::paper_default()),
        Box::new(Festive::paper_default()),
        Box::new(DashJs::paper_default()),
        Box::new(Mpc::paper_default()),
        Box::new(Mpc::robust()),
    ]
}

#[test]
fn hd_catalogue_with_fine_ladder_streams_cleanly() {
    // An 8-level ladder exercises the horizon search's branching (8^5
    // plans) and every baseline's level arithmetic.
    let video = presets::hd_catalogue();
    let trace = Dataset::Fcc.generate(8, 1).remove(0).scaled(2.0);
    let cfg = SimConfig::paper_default();
    for mut c in roster() {
        let r = run_session(
            c.as_mut(),
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
        );
        assert_eq!(r.records.len(), 150, "{}", r.algorithm);
        assert!(r.qoe.qoe.is_finite(), "{}", r.algorithm);
        assert!(
            r.avg_bitrate_kbps() >= 235.0,
            "{}: {}",
            r.algorithm,
            r.avg_bitrate_kbps()
        );
    }
}

#[test]
fn low_latency_live_with_small_buffer() {
    let video = presets::low_latency_live();
    let trace = Dataset::Hsdpa.generate(5, 1).remove(0);
    let cfg = SimConfig {
        buffer_max_secs: 8.0, // small live buffer
        ..SimConfig::paper_default()
    };
    for mut c in roster() {
        let r = run_session(
            c.as_mut(),
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
        );
        assert_eq!(r.records.len(), 90, "{}", r.algorithm);
        for rec in &r.records {
            assert!(rec.buffer_after_secs <= 8.0 + 1e-9, "{}", r.algorithm);
        }
    }
}

#[test]
fn fastmpc_table_adapts_to_other_ladders() {
    // The table pipeline must regenerate cleanly for non-Envivio ladders.
    let video = presets::hd_catalogue();
    let table = Arc::new(FastMpcTable::generate(
        &video,
        30.0,
        TableConfig::with_levels(20, 30.0),
    ));
    assert_eq!(table.num_entries(), 20 * 8 * 20);
    let trace = Dataset::Fcc.generate(3, 1).remove(0).scaled(2.0);
    let mut c = FastMpc::new(table);
    let r = run_session(
        &mut c,
        HarmonicMean::paper_default(),
        &trace,
        &video,
        &SimConfig::paper_default(),
    );
    assert_eq!(r.records.len(), 150);
    assert!(r.qoe.qoe.is_finite());
}

#[test]
fn vbr_film_mpc_anticipates_big_chunks() {
    // On VBR content the optimizer sees true per-chunk sizes; it must not
    // rebuffer more than the rate-based baseline that only tracks
    // throughput.
    let video = presets::vbr_film();
    let trace = Dataset::Synthetic.generate(4, 1).remove(0);
    let cfg = SimConfig::paper_default();
    let mut mpc = Mpc::robust();
    let r_mpc = run_session(
        &mut mpc,
        HarmonicMean::paper_default(),
        &trace,
        &video,
        &cfg,
    );
    let mut rb = RateBased::paper_default();
    let r_rb = run_session(&mut rb, HarmonicMean::paper_default(), &trace, &video, &cfg);
    assert!(
        r_mpc.total_rebuffer_secs() <= r_rb.total_rebuffer_secs() + 1.0,
        "MPC rebuffered {} vs RB {}",
        r_mpc.total_rebuffer_secs(),
        r_rb.total_rebuffer_secs()
    );
    assert!(r_mpc.qoe.qoe >= r_rb.qoe.qoe - 1000.0);
}
