//! Qualitative claims from the paper's evaluation, checked in aggregate on
//! seeded data. These encode the *shape* of the results — who wins, where,
//! and why — rather than absolute numbers.

use mpc_dash::harness::registry::{Algo, PredictorSpec};
use mpc_dash::harness::runner::{evaluate_dataset, run_algo_session, EvalConfig};
use mpc_dash::trace::Dataset;
use mpc_dash::video::envivio_video;

fn cfg() -> EvalConfig {
    EvalConfig {
        fastmpc_levels: 40,
        ..EvalConfig::paper_default()
    }
}

/// "RobustMPC outperforms existing algorithms in both broadband (FCC) and
/// cellular (HSDPA) datasets" — Section 7.5, finding 1.
#[test]
fn robustmpc_wins_on_fcc_and_hsdpa() {
    let video = envivio_video();
    for ds in [Dataset::Fcc, Dataset::Hsdpa] {
        let traces = ds.generate(42, 12);
        let out = evaluate_dataset(&Algo::FIGURE8, &traces, &video, &cfg());
        let robust = out.median_n_qoe(Algo::RobustMpc);
        for other in [Algo::Rb, Algo::Bb, Algo::Festive, Algo::DashJs] {
            assert!(
                robust >= out.median_n_qoe(other),
                "{}: RobustMPC {robust} vs {} {}",
                ds.label(),
                other.name(),
                out.median_n_qoe(other)
            );
        }
    }
}

/// "Regular FastMPC does not show advantage in cellular network due to high
/// throughput instability" — Section 7.5, finding 1 (and Figure 8b).
#[test]
fn plain_fastmpc_loses_its_edge_on_cellular() {
    let video = envivio_video();
    let traces = Dataset::Hsdpa.generate(42, 12);
    let out = evaluate_dataset(
        &[Algo::FastMpc, Algo::RobustMpc, Algo::Bb],
        &traces,
        &video,
        &cfg(),
    );
    // RobustMPC must clearly beat plain FastMPC under prediction error.
    assert!(
        out.median_n_qoe(Algo::RobustMpc) > out.median_n_qoe(Algo::FastMpc),
        "robust {} vs fastmpc {}",
        out.median_n_qoe(Algo::RobustMpc),
        out.median_n_qoe(Algo::FastMpc)
    );
}

/// "dash.js achieves low rebuffer time, but incurs many unnecessary
/// switches" — Section 7.2.
#[test]
fn dashjs_switches_most_on_broadband() {
    let video = envivio_video();
    let traces = Dataset::Fcc.generate(42, 10);
    let out = evaluate_dataset(&Algo::FIGURE8, &traces, &video, &cfg());
    let avg_switches = |a: Algo| -> f64 {
        let s = out.sessions_of(a);
        s.iter().map(|r| r.qoe.switches as f64).sum::<f64>() / s.len() as f64
    };
    let dashjs = avg_switches(Algo::DashJs);
    for other in [Algo::RobustMpc, Algo::Rb, Algo::Festive] {
        assert!(
            dashjs >= avg_switches(other),
            "dash.js {dashjs} vs {} {}",
            other.name(),
            avg_switches(other)
        );
    }
}

/// "BB is unaffected [by prediction error] as it does not use any throughput
/// information" — Section 7.3, Figure 11a.
#[test]
fn bb_is_invariant_to_prediction_error() {
    let video = envivio_video();
    let traces = Dataset::Synthetic.generate(9, 4);
    let cfg = cfg();
    for trace in &traces {
        let base = run_algo_session(
            Algo::Bb,
            None,
            PredictorSpec::Oracle(0.0),
            1,
            trace,
            &video,
            &cfg,
        );
        let noisy = run_algo_session(
            Algo::Bb,
            None,
            PredictorSpec::Oracle(0.45),
            2,
            trace,
            &video,
            &cfg,
        );
        assert_eq!(
            base.qoe.qoe, noisy.qoe.qoe,
            "BB must ignore the predictor entirely"
        );
    }
}

/// "As prediction error grows, MPC can be even worse than BB" — Figure 11a's
/// crossover.
#[test]
fn large_prediction_error_erodes_mpc_advantage() {
    let video = envivio_video();
    let traces = Dataset::Synthetic.generate(99, 10);
    let cfg = cfg();
    let mean = |algo: Algo, err: f64| -> f64 {
        let total: f64 = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                run_algo_session(
                    algo,
                    None,
                    PredictorSpec::Oracle(err),
                    i as u64,
                    t,
                    &video,
                    &cfg,
                )
                .qoe
                .qoe
            })
            .sum();
        total / traces.len() as f64
    };
    let mpc_good = mean(Algo::Mpc, 0.05);
    let mpc_bad = mean(Algo::Mpc, 0.5);
    assert!(
        mpc_good > mpc_bad,
        "more prediction error must hurt MPC: {mpc_good} vs {mpc_bad}"
    );
    // And the degradation must be material (the basis of the crossover).
    assert!(
        mpc_bad < 0.97 * mpc_good,
        "degradation too small to ever cross over: {mpc_good} -> {mpc_bad}"
    );
}

/// "A larger buffer protects the player against rebuffering... performances
/// stay constant once buffer size reaches a certain level" — Figure 11c.
#[test]
fn bigger_buffers_help_then_saturate() {
    let video = envivio_video();
    let traces = Dataset::Hsdpa.generate(3, 8);
    let mean_for = |bmax: f64| -> f64 {
        let mut cfg = cfg();
        cfg.sim.buffer_max_secs = bmax;
        let total: f64 = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                run_algo_session(
                    Algo::RobustMpc,
                    None,
                    PredictorSpec::Harmonic,
                    i as u64,
                    t,
                    &video,
                    &cfg,
                )
                .qoe
                .qoe
            })
            .sum();
        total / traces.len() as f64
    };
    let small = mean_for(8.0);
    let medium = mean_for(30.0);
    assert!(
        medium > small,
        "going from 8s to 30s of buffer must help: {small} vs {medium}"
    );
}

/// Startup-delay credit makes every algorithm's life easier — Figure 11d's
/// direction.
#[test]
fn longer_fixed_startup_improves_core_qoe() {
    use mpc_dash::sim::StartupPolicy;
    let video = envivio_video();
    let traces = Dataset::Hsdpa.generate(8, 8);
    let mean_excl = |ts: f64| -> f64 {
        let mut cfg = cfg();
        cfg.sim.startup = StartupPolicy::Fixed(ts);
        let total: f64 = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let r = run_algo_session(
                    Algo::Rb,
                    None,
                    PredictorSpec::Harmonic,
                    i as u64,
                    t,
                    &video,
                    &cfg,
                );
                r.qoe.qoe_excluding_startup(cfg.weights())
            })
            .sum();
        total / traces.len() as f64
    };
    let short = mean_excl(2.0);
    let long = mean_excl(10.0);
    assert!(
        long >= short,
        "10s of startup credit must not hurt core QoE: {short} vs {long}"
    );
}
