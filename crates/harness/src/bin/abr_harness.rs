//! The experiment CLI — regenerates every table and figure of Section 7.
//!
//! ```text
//! abr-harness <command> [--traces N] [--seed S] [--out DIR] [--quick] [--threads T]
//! ```
//!
//! Commands: `fig7 fig8 fig9 fig10 fig11a fig11b fig11c fig11d fig12a
//! fig12b table1 levels overhead all`.

use abr_harness::experiments::{self, ExpOptions};
use abr_harness::report::Table;
use abr_trace::Dataset;
use std::path::PathBuf;
use std::time::Instant;

const USAGE: &str = "usage: abr-harness <command> [--traces N] [--seed S] [--out DIR] [--quick] [--threads T] [--opt-cache PATH] [--no-opt-cache] [--no-table-cache] [--fault-rate R] [--fault-seed S] [--sessions N] [--workers N] [--backend NAME] [--batch-size N] [--event-loops N] [--max-conns N] [--scale-sessions LIST] [--decisions-out PATH] [--table-budget-mb MB] [--catalog-videos N] [--zipf-alpha A] [--players N] [--bottlenecks N] [--fairness-alpha A] [--live] [--encode-delay D] [--max-buffer-live B] [--latency-weight W]

commands:
  fig7      dataset characteristics (3 CDF panels)
  fig8      normalized-QoE CDFs on FCC / HSDPA / Synthetic (emulation path)
  fig9      FCC detail CDFs (bitrate, switches, rebuffer)
  fig10     HSDPA detail CDFs
  fig11a    n-QoE vs prediction error
  fig11b    n-QoE vs QoE preference presets
  fig11c    n-QoE vs buffer size
  fig11d    n-QoE vs fixed startup delay
  fig12a    FastMPC discretization sweep
  fig12b    MPC look-ahead horizon sweep
  table1    FastMPC table sizes (full vs run-length coded)
  levels    bitrate-ladder granularity sweep (§7.3, unplotted)
  overhead  per-decision CPU cost and table memory (§7.4)
  ablation  design-choice ablations (predictors, robust bound, MDP, binning)
  multi     multi-player shared-bottleneck fairness (§8 extension)
  robustness fault-rate sweep: QoE + retry/waste accounting under injected
             connection resets, truncation, stalls, 404/503 and jitter
  serve-bench
             closed-loop load on the abr-serve decision service: concurrent
             remote players, latency quantiles, decisions/sec, and a
             bit-identical differential check against in-process sessions
  serve-scale
             sessions-vs-latency scaling curve for the event-driven serve
             engine: sweeps concurrent sessions (256 -> 50k by default)
             through the multiplexed load generator and writes
             serve_scale.csv
  catalog-bench
             tiered table catalog under a synthesized many-video fleet:
             Zipf(alpha) sessions through the event engine, sweeping the
             hot-tier byte budget against the unbounded baseline and
             writing catalog_bench.csv
  fairness  shared-bottleneck fleets: coordinated vs uncoordinated players
             over faulted links, with bit-exact reference-loop and served
             wire-replay twins (a twin mismatch aborts the run), writing
             fairness.csv and fairness_cdf.csv
  live      live/low-latency frontier: {encode delay} x {live buffer cap}
             x {BB, RobustMPC, FastMPC-live} over FCC and 3G traces with
             the fault layer armed, writing live.csv, plus a live serve
             leg through the event engine with bit-identical wire twins
  all       everything above except robustness, serve-bench, serve-scale,
             catalog-bench, fairness and live

options:
  --traces N   traces per dataset (default 100)
  --seed S     RNG seed (default 42)
  --out DIR    also write CSV series under DIR
  --quick      smaller sweeps for a fast smoke run
  --threads T  worker threads for parallel sections (default: the
               ABR_THREADS environment variable if set, else all cores)
  --opt-cache PATH
               persist offline-optimal results at PATH: load before the run,
               save after, so repeat invocations skip the offline DP
  --no-opt-cache
               disable the shared OPT result cache (each experiment solves
               its own OPT problems; results are identical, only slower)
  --no-table-cache
               disable the shared FastMPC table cache (each experiment
               generates its own decision tables; results are identical,
               only slower)
  --fault-rate R
               inject faults into every emulated session at rate R in
               [0, 1] (R/5 per fault kind); also pins the robustness
               sweep to that single rate. R = 0 arms the layer but never
               fires — output is byte-identical to omitting the flag
  --fault-seed S
               base seed for fault streams (default 7), independent of
               --seed so fault schedules and predictor noise can be
               varied separately
  --sessions N
               serve-bench: concurrent load-generator sessions per backend
               (default 64, must be positive)
  --workers N  serve-bench: decision-server worker threads (default 4,
               must be positive)
  --backend NAME
               serve-bench: benchmark a single backend (fastmpc, robustmpc,
               mpc, bb, rb, festive, dash.js, bola) instead of the default
               sweep
  --batch-size N
               decisions resolved per batch (must be positive): grid
               experiments step N sessions in lockstep through the columnar
               decide_batch kernel, and serve-bench coalesces N virtual
               sessions per bulk POST /decisions request. Defaults to the
               ABR_BATCH environment variable if set, else 1 (the scalar
               path). Results are bit-identical at every size
  --event-loops N
               run the serve benchmarks on the event-driven engine with N
               epoll loop threads (must be positive). serve-bench defaults
               to the threaded engine; serve-scale defaults to 2 loops.
               Incompatible with --batch-size > 1 (the multiplexed
               generator pipelines scalar /decision requests)
  --max-conns N
               open-connection cap for the event-driven server (default
               16384, must be positive); excess accepts are shed
  --scale-sessions LIST
               serve-scale: comma-separated session counts to sweep
               (e.g. 256,1024,4096; each must be positive)
  --decisions-out PATH
               serve benchmarks: record every session's decision sequence
               to PATH, one line per session — byte-identical across
               server engines for the same seed (the CI report-diff gate)
  --table-budget-mb MB
               catalog-bench: pin the hot-tier byte budget to MB MiB
               (positive, at most 65536; rejected at run time if smaller
               than one decision table) instead of sweeping the default
               budget ladder derived from the measured working set
  --catalog-videos N
               catalog-bench: synthesized catalog size (default 10000,
               positive, at most 1000000); --quick trims the catalog to 64
  --zipf-alpha A
               catalog-bench: Zipf popularity exponent in [0, 10]
               (default 1.0; 0 is a uniform catalog)
  --players N  fairness: players per shared bottleneck (positive); omit to
               sweep the default grid (8 and 64; 4 and 16 under --quick)
  --bottlenecks N
               fairness: independent bottleneck groups per cell (default 4,
               positive), each a shared-link run over its own trace and
               fault stream
  --fairness-alpha A
               fairness: weight of the coordinator's fairness term (finite,
               non-negative, default 1.0; 0 is pure efficiency)
  --live       live mode opt-in; required by the three value flags below.
               Without them the live experiment sweeps its default
               regime grid
  --encode-delay D
               live: pin the encoder delay to D seconds past each chunk's
               nominal end (finite, positive; requires --live)
  --max-buffer-live B
               live: pin the player-side live buffer cap to B seconds
               (finite, positive; requires --live). Values below one
               chunk duration are rejected at run time
  --latency-weight W
               live: latency QoE weight w_lat (finite, non-negative;
               requires --live; 0 disables the latency term)";

fn parse(args: &[String]) -> Result<(String, ExpOptions), String> {
    let mut cmd = None;
    let mut opts = ExpOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--traces" => {
                opts.traces = it
                    .next()
                    .ok_or("--traces needs a value")?
                    .parse()
                    .map_err(|_| "--traces must be a positive integer".to_string())?;
                if opts.traces == 0 {
                    return Err("--traces must be positive".into());
                }
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--out" => {
                opts.out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?));
            }
            "--quick" => opts.quick = true,
            "--threads" => {
                let t: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_string())?;
                if t == 0 {
                    return Err("--threads must be positive".into());
                }
                opts.threads = Some(t);
            }
            "--opt-cache" => {
                opts.opt_cache_path =
                    Some(PathBuf::from(it.next().ok_or("--opt-cache needs a value")?));
            }
            "--no-opt-cache" => opts.no_opt_cache = true,
            "--no-table-cache" => opts.no_table_cache = true,
            "--fault-rate" => {
                let r: f64 = it
                    .next()
                    .ok_or("--fault-rate needs a value")?
                    .parse()
                    .map_err(|_| "--fault-rate must be a number".to_string())?;
                if !(0.0..=1.0).contains(&r) {
                    return Err("--fault-rate must be in [0, 1]".into());
                }
                opts.fault_rate = Some(r);
            }
            "--fault-seed" => {
                opts.fault_seed = it
                    .next()
                    .ok_or("--fault-seed needs a value")?
                    .parse()
                    .map_err(|_| "--fault-seed must be an integer".to_string())?;
            }
            "--sessions" => {
                opts.sessions = it
                    .next()
                    .ok_or("--sessions needs a value")?
                    .parse()
                    .map_err(|_| "--sessions must be a positive integer".to_string())?;
                if opts.sessions == 0 {
                    return Err("--sessions must be positive".into());
                }
            }
            "--workers" => {
                opts.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?;
                if opts.workers == 0 {
                    return Err("--workers must be positive".into());
                }
            }
            "--batch-size" => {
                let n: usize = it
                    .next()
                    .ok_or("--batch-size needs a value")?
                    .parse()
                    .map_err(|_| "--batch-size must be a positive integer".to_string())?;
                if n == 0 {
                    return Err("--batch-size must be positive".into());
                }
                opts.batch = Some(n);
            }
            "--backend" => {
                let name = it.next().ok_or("--backend needs a value")?;
                if abr_serve::Backend::parse(name).is_none() {
                    return Err(format!(
                        "--backend: unknown backend '{name}' (expected one of \
                         fastmpc, robustmpc, mpc, bb, rb, festive, dash.js, bola)"
                    ));
                }
                opts.backend = Some(name.clone());
            }
            "--event-loops" => {
                let n: usize = it
                    .next()
                    .ok_or("--event-loops needs a value")?
                    .parse()
                    .map_err(|_| "--event-loops must be a positive integer".to_string())?;
                if n == 0 {
                    return Err("--event-loops must be positive".into());
                }
                opts.event_loops = Some(n);
            }
            "--max-conns" => {
                let n: usize = it
                    .next()
                    .ok_or("--max-conns needs a value")?
                    .parse()
                    .map_err(|_| "--max-conns must be a positive integer".to_string())?;
                if n == 0 {
                    return Err("--max-conns must be positive".into());
                }
                opts.max_conns = n;
            }
            "--scale-sessions" => {
                let list = it.next().ok_or("--scale-sessions needs a value")?;
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse::<usize>()).collect();
                let sessions = parsed.map_err(|_| {
                    "--scale-sessions must be a comma-separated list of positive integers"
                        .to_string()
                })?;
                if sessions.is_empty() || sessions.contains(&0) {
                    return Err(
                        "--scale-sessions entries must all be positive".into()
                    );
                }
                opts.scale_sessions = Some(sessions);
            }
            "--decisions-out" => {
                opts.decisions_out = Some(PathBuf::from(
                    it.next().ok_or("--decisions-out needs a value")?,
                ));
            }
            "--table-budget-mb" => {
                let mb: f64 = it
                    .next()
                    .ok_or("--table-budget-mb needs a value")?
                    .parse()
                    .map_err(|_| "--table-budget-mb must be a number".to_string())?;
                if !mb.is_finite() || mb <= 0.0 || mb > 65536.0 {
                    return Err("--table-budget-mb must be in (0, 65536]".into());
                }
                opts.table_budget_mb = Some(mb);
            }
            "--catalog-videos" => {
                let n: usize = it
                    .next()
                    .ok_or("--catalog-videos needs a value")?
                    .parse()
                    .map_err(|_| "--catalog-videos must be a positive integer".to_string())?;
                if n == 0 || n > 1_000_000 {
                    return Err("--catalog-videos must be in [1, 1000000]".into());
                }
                opts.catalog_videos = n;
            }
            "--zipf-alpha" => {
                let a: f64 = it
                    .next()
                    .ok_or("--zipf-alpha needs a value")?
                    .parse()
                    .map_err(|_| "--zipf-alpha must be a number".to_string())?;
                if !a.is_finite() || !(0.0..=10.0).contains(&a) {
                    return Err("--zipf-alpha must be in [0, 10]".into());
                }
                opts.zipf_alpha = a;
            }
            "--players" => {
                let n: usize = it
                    .next()
                    .ok_or("--players needs a value")?
                    .parse()
                    .map_err(|_| "--players must be a positive integer".to_string())?;
                if n == 0 {
                    return Err("--players must be positive".into());
                }
                opts.players = Some(n);
            }
            "--bottlenecks" => {
                let n: usize = it
                    .next()
                    .ok_or("--bottlenecks needs a value")?
                    .parse()
                    .map_err(|_| "--bottlenecks must be a positive integer".to_string())?;
                if n == 0 {
                    return Err("--bottlenecks must be positive".into());
                }
                opts.bottlenecks = n;
            }
            "--fairness-alpha" => {
                let a: f64 = it
                    .next()
                    .ok_or("--fairness-alpha needs a value")?
                    .parse()
                    .map_err(|_| "--fairness-alpha must be a number".to_string())?;
                if !a.is_finite() || a < 0.0 {
                    return Err("--fairness-alpha must be finite and non-negative".into());
                }
                opts.fairness_alpha = a;
            }
            "--live" => opts.live = true,
            "--encode-delay" => {
                let d: f64 = it
                    .next()
                    .ok_or("--encode-delay needs a value")?
                    .parse()
                    .map_err(|_| "--encode-delay must be a number".to_string())?;
                if !d.is_finite() || d <= 0.0 {
                    return Err("--encode-delay must be finite and positive".into());
                }
                opts.encode_delay = Some(d);
            }
            "--max-buffer-live" => {
                let b: f64 = it
                    .next()
                    .ok_or("--max-buffer-live needs a value")?
                    .parse()
                    .map_err(|_| "--max-buffer-live must be a number".to_string())?;
                if !b.is_finite() || b <= 0.0 {
                    return Err("--max-buffer-live must be finite and positive".into());
                }
                opts.max_buffer_live = Some(b);
            }
            "--latency-weight" => {
                let w: f64 = it
                    .next()
                    .ok_or("--latency-weight needs a value")?
                    .parse()
                    .map_err(|_| "--latency-weight must be a number".to_string())?;
                if !w.is_finite() || w < 0.0 {
                    return Err("--latency-weight must be finite and non-negative".into());
                }
                opts.latency_weight = Some(w);
            }
            other if !other.starts_with("--") && cmd.is_none() => {
                cmd = Some(other.to_string());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if !opts.live {
        for (flag, set) in [
            ("--encode-delay", opts.encode_delay.is_some()),
            ("--max-buffer-live", opts.max_buffer_live.is_some()),
            ("--latency-weight", opts.latency_weight.is_some()),
        ] {
            if set {
                return Err(format!("{flag} requires --live"));
            }
        }
    }
    if opts.event_loops.is_some() && opts.batch.is_some_and(|b| b > 1) {
        return Err(
            "--event-loops cannot be combined with --batch-size > 1 (the \
             multiplexed generator pipelines scalar /decision requests)"
                .into(),
        );
    }
    Ok((cmd.ok_or("no command given")?, opts))
}

fn run_command(cmd: &str, opts: &ExpOptions) -> Result<String, String> {
    Ok(match cmd {
        "fig7" => experiments::fig7::run(opts),
        "fig8" => experiments::fig8::run(opts),
        "fig9" => experiments::fig8::run_fig9(opts),
        "fig10" => experiments::fig8::run_fig10(opts),
        "fig11a" => experiments::fig11::run_fig11a(opts),
        "fig11b" => experiments::fig11::run_fig11b(opts),
        "fig11c" => experiments::fig11::run_fig11c(opts),
        "fig11d" => experiments::fig11::run_fig11d(opts),
        "fig12a" => experiments::fig12::run_fig12a(opts),
        "fig12b" => experiments::fig12::run_fig12b(opts),
        "table1" => experiments::table1::run(opts),
        "levels" => experiments::levels::run(opts),
        "overhead" => experiments::overhead::run(opts),
        "ablation" => experiments::ablation::run(opts),
        "multi" => experiments::multiplayer::run(opts),
        "robustness" => experiments::robustness::run(opts),
        "serve-bench" => experiments::serve_bench::run(opts),
        "serve-scale" => experiments::serve_scale::run(opts),
        "catalog-bench" => experiments::catalog_bench::run(opts),
        "fairness" => experiments::fairness::run(opts),
        "live" => experiments::live::run(opts),
        "all" => {
            let mut out = String::new();
            // Share the expensive dataset evaluations between Figures 8,
            // 9 and 10 instead of recomputing per figure.
            out.push_str(&experiments::fig7::run(opts));
            for ds in Dataset::ALL {
                let eval = experiments::fig8::dataset_eval(ds, opts);
                out.push_str(&experiments::fig8::render_fig8_panel(ds, &eval, opts));
                match ds {
                    Dataset::Fcc => out.push_str(&experiments::fig8::render_detail_panel(
                        "Figure 9", ds, &eval, opts,
                    )),
                    Dataset::Hsdpa => out.push_str(&experiments::fig8::render_detail_panel(
                        "Figure 10",
                        ds,
                        &eval,
                        opts,
                    )),
                    Dataset::Synthetic => {}
                }
            }
            for sub in [
                "fig11a", "fig11b", "fig11c", "fig11d", "fig12a", "fig12b", "table1", "levels",
                "overhead", "ablation", "multi",
            ] {
                out.push_str(&run_command(sub, opts)?);
            }
            out
        }
        _ => return Err(format!("unknown command '{cmd}'\n{USAGE}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let (cmd, opts) = parse(&args(&[
            "fig8", "--traces", "25", "--seed", "7", "--quick", "--out", "/tmp/x", "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(cmd, "fig8");
        assert_eq!(opts.traces, 25);
        assert_eq!(opts.seed, 7);
        assert!(opts.quick);
        assert_eq!(opts.out.as_deref().unwrap().to_str().unwrap(), "/tmp/x");
        assert_eq!(opts.threads, Some(4));
        assert!(opts.opt_cache_path.is_none());
        assert!(!opts.no_opt_cache);
    }

    #[test]
    fn parses_opt_cache_flags() {
        let (_, opts) = parse(&args(&["all", "--opt-cache", "results/opt_cache.bin"])).unwrap();
        assert_eq!(
            opts.opt_cache_path.as_deref().unwrap().to_str().unwrap(),
            "results/opt_cache.bin"
        );
        assert!(!opts.no_opt_cache);

        let (_, opts) = parse(&args(&["all", "--no-opt-cache"])).unwrap();
        assert!(opts.no_opt_cache);
        assert!(opts.opt_cache_path.is_none());

        assert!(parse(&args(&["all", "--opt-cache"])).is_err());
    }

    #[test]
    fn parses_table_cache_flag() {
        let (_, opts) = parse(&args(&["all"])).unwrap();
        assert!(!opts.no_table_cache);

        let (_, opts) = parse(&args(&["all", "--no-table-cache"])).unwrap();
        assert!(opts.no_table_cache);
        assert!(!opts.no_opt_cache, "flags are independent");
    }

    #[test]
    fn parses_fault_flags() {
        let (_, opts) = parse(&args(&["robustness"])).unwrap();
        assert!(opts.fault_rate.is_none());
        assert_eq!(opts.fault_seed, 7);

        let (cmd, opts) = parse(&args(&[
            "robustness",
            "--fault-rate",
            "0.1",
            "--fault-seed",
            "99",
        ]))
        .unwrap();
        assert_eq!(cmd, "robustness");
        assert_eq!(opts.fault_rate, Some(0.1));
        assert_eq!(opts.fault_seed, 99);

        assert!(parse(&args(&["robustness", "--fault-rate"])).is_err());
        assert!(parse(&args(&["robustness", "--fault-rate", "1.5"])).is_err());
        assert!(parse(&args(&["robustness", "--fault-rate", "-0.1"])).is_err());
        assert!(parse(&args(&["robustness", "--fault-seed", "x"])).is_err());
    }

    #[test]
    fn parses_serve_bench_flags() {
        let (cmd, opts) = parse(&args(&["serve-bench"])).unwrap();
        assert_eq!(cmd, "serve-bench");
        assert_eq!(opts.sessions, 64);
        assert_eq!(opts.workers, 4);
        assert!(opts.backend.is_none());

        let (_, opts) = parse(&args(&[
            "serve-bench",
            "--sessions",
            "256",
            "--workers",
            "8",
            "--backend",
            "FastMPC",
        ]))
        .unwrap();
        assert_eq!(opts.sessions, 256);
        assert_eq!(opts.workers, 8);
        assert_eq!(opts.backend.as_deref(), Some("FastMPC"));

        assert!(parse(&args(&["serve-bench", "--sessions", "0"])).is_err());
        assert!(parse(&args(&["serve-bench", "--sessions", "-3"])).is_err());
        assert!(parse(&args(&["serve-bench", "--workers", "0"])).is_err());
        assert!(parse(&args(&["serve-bench", "--workers"])).is_err());
        assert!(parse(&args(&["serve-bench", "--backend", "hal9000"])).is_err());
    }

    #[test]
    fn parses_batch_size_flag() {
        let (_, opts) = parse(&args(&["fig8"])).unwrap();
        assert!(opts.batch.is_none());

        let (_, opts) = parse(&args(&["fig8", "--batch-size", "64"])).unwrap();
        assert_eq!(opts.batch, Some(64));

        let (_, opts) = parse(&args(&["serve-bench", "--batch-size", "1"])).unwrap();
        assert_eq!(opts.batch, Some(1));

        assert!(parse(&args(&["fig8", "--batch-size"])).is_err());
        assert!(parse(&args(&["fig8", "--batch-size", "0"])).is_err());
        assert!(parse(&args(&["fig8", "--batch-size", "-4"])).is_err());
        assert!(parse(&args(&["fig8", "--batch-size", "many"])).is_err());
        // usize overflow is rejected with the same error style.
        assert!(parse(&args(&["fig8", "--batch-size", "99999999999999999999999999"])).is_err());
    }

    #[test]
    fn parses_event_engine_flags() {
        let (_, opts) = parse(&args(&["serve-bench"])).unwrap();
        assert!(opts.event_loops.is_none());
        assert_eq!(opts.max_conns, 16 * 1024);
        assert!(opts.scale_sessions.is_none());
        assert!(opts.decisions_out.is_none());

        let (_, opts) = parse(&args(&[
            "serve-scale",
            "--event-loops",
            "3",
            "--max-conns",
            "2048",
            "--scale-sessions",
            "256,1024,4096",
            "--decisions-out",
            "/tmp/dec.txt",
        ]))
        .unwrap();
        assert_eq!(opts.event_loops, Some(3));
        assert_eq!(opts.max_conns, 2048);
        assert_eq!(opts.scale_sessions, Some(vec![256, 1024, 4096]));
        assert_eq!(
            opts.decisions_out.as_deref().unwrap().to_str().unwrap(),
            "/tmp/dec.txt"
        );

        // Same rejection style as --sessions / --workers.
        assert!(parse(&args(&["serve-bench", "--event-loops", "0"])).is_err());
        assert!(parse(&args(&["serve-bench", "--event-loops", "-2"])).is_err());
        assert!(parse(&args(&["serve-bench", "--event-loops", "many"])).is_err());
        assert!(parse(&args(&["serve-bench", "--event-loops"])).is_err());
        assert!(parse(&args(&["serve-bench", "--max-conns", "0"])).is_err());
        assert!(parse(&args(&["serve-bench", "--max-conns", "-1"])).is_err());
        assert!(parse(&args(&["serve-scale", "--scale-sessions", ""])).is_err());
        assert!(parse(&args(&["serve-scale", "--scale-sessions", "256,0,1024"])).is_err());
        assert!(parse(&args(&["serve-scale", "--scale-sessions", "256,,512"])).is_err());
        assert!(parse(&args(&["serve-scale", "--scale-sessions", "lots"])).is_err());
        assert!(parse(&args(&["serve-scale", "--decisions-out"])).is_err());
    }

    #[test]
    fn parses_catalog_bench_flags() {
        let (cmd, opts) = parse(&args(&["catalog-bench"])).unwrap();
        assert_eq!(cmd, "catalog-bench");
        assert!(opts.table_budget_mb.is_none());
        assert_eq!(opts.catalog_videos, 10_000);
        assert_eq!(opts.zipf_alpha, 1.0);

        let (_, opts) = parse(&args(&[
            "catalog-bench",
            "--table-budget-mb",
            "32.5",
            "--catalog-videos",
            "50000",
            "--zipf-alpha",
            "0.8",
        ]))
        .unwrap();
        assert_eq!(opts.table_budget_mb, Some(32.5));
        assert_eq!(opts.catalog_videos, 50_000);
        assert_eq!(opts.zipf_alpha, 0.8);

        // Same rejection style as --sessions / --fault-rate.
        assert!(parse(&args(&["catalog-bench", "--table-budget-mb"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--table-budget-mb", "0"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--table-budget-mb", "-4"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--table-budget-mb", "inf"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--table-budget-mb", "nan"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--table-budget-mb", "65537"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--table-budget-mb", "lots"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--catalog-videos"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--catalog-videos", "0"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--catalog-videos", "-1"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--catalog-videos", "1000001"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--catalog-videos", "many"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--zipf-alpha"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--zipf-alpha", "-0.1"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--zipf-alpha", "10.5"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--zipf-alpha", "nan"])).is_err());
        assert!(parse(&args(&["catalog-bench", "--zipf-alpha", "steep"])).is_err());

        // alpha = 0 (uniform) is a legal corner.
        let (_, opts) = parse(&args(&["catalog-bench", "--zipf-alpha", "0"])).unwrap();
        assert_eq!(opts.zipf_alpha, 0.0);
    }

    #[test]
    fn parses_fairness_flags() {
        let (cmd, opts) = parse(&args(&["fairness"])).unwrap();
        assert_eq!(cmd, "fairness");
        assert!(opts.players.is_none());
        assert_eq!(opts.bottlenecks, 4);
        assert_eq!(opts.fairness_alpha, 1.0);

        let (_, opts) = parse(&args(&[
            "fairness",
            "--players",
            "64",
            "--bottlenecks",
            "8",
            "--fairness-alpha",
            "2.5",
        ]))
        .unwrap();
        assert_eq!(opts.players, Some(64));
        assert_eq!(opts.bottlenecks, 8);
        assert_eq!(opts.fairness_alpha, 2.5);

        assert!(parse(&args(&["fairness", "--players"])).is_err());
        assert!(parse(&args(&["fairness", "--players", "0"])).is_err());
        assert!(parse(&args(&["fairness", "--players", "-4"])).is_err());
        assert!(parse(&args(&["fairness", "--players", "many"])).is_err());
        assert!(parse(&args(&["fairness", "--bottlenecks"])).is_err());
        assert!(parse(&args(&["fairness", "--bottlenecks", "0"])).is_err());
        assert!(parse(&args(&["fairness", "--bottlenecks", "-1"])).is_err());
        assert!(parse(&args(&["fairness", "--fairness-alpha"])).is_err());
        assert!(parse(&args(&["fairness", "--fairness-alpha", "-0.1"])).is_err());
        assert!(parse(&args(&["fairness", "--fairness-alpha", "inf"])).is_err());
        assert!(parse(&args(&["fairness", "--fairness-alpha", "nan"])).is_err());
        assert!(parse(&args(&["fairness", "--fairness-alpha", "fair"])).is_err());

        // alpha = 0 (pure efficiency) is a legal corner.
        let (_, opts) = parse(&args(&["fairness", "--fairness-alpha", "0"])).unwrap();
        assert_eq!(opts.fairness_alpha, 0.0);
    }

    #[test]
    fn parses_live_flags() {
        let (cmd, opts) = parse(&args(&["live"])).unwrap();
        assert_eq!(cmd, "live");
        assert!(!opts.live);
        assert!(opts.encode_delay.is_none());
        assert!(opts.max_buffer_live.is_none());
        assert!(opts.latency_weight.is_none());

        let (_, opts) = parse(&args(&["live", "--live"])).unwrap();
        assert!(opts.live);

        let (_, opts) = parse(&args(&[
            "live",
            "--live",
            "--encode-delay",
            "1.5",
            "--max-buffer-live",
            "12",
            "--latency-weight",
            "25",
        ]))
        .unwrap();
        assert!(opts.live);
        assert_eq!(opts.encode_delay, Some(1.5));
        assert_eq!(opts.max_buffer_live, Some(12.0));
        assert_eq!(opts.latency_weight, Some(25.0));

        // w_lat = 0 (latency term disabled) is a legal corner.
        let (_, opts) = parse(&args(&["live", "--live", "--latency-weight", "0"])).unwrap();
        assert_eq!(opts.latency_weight, Some(0.0));

        // Same rejection style as the other numeric flags.
        assert!(parse(&args(&["live", "--live", "--encode-delay"])).is_err());
        assert!(parse(&args(&["live", "--live", "--encode-delay", "0"])).is_err());
        assert!(parse(&args(&["live", "--live", "--encode-delay", "-1"])).is_err());
        assert!(parse(&args(&["live", "--live", "--encode-delay", "inf"])).is_err());
        assert!(parse(&args(&["live", "--live", "--encode-delay", "nan"])).is_err());
        assert!(parse(&args(&["live", "--live", "--encode-delay", "slow"])).is_err());
        assert!(parse(&args(&["live", "--live", "--max-buffer-live"])).is_err());
        assert!(parse(&args(&["live", "--live", "--max-buffer-live", "0"])).is_err());
        assert!(parse(&args(&["live", "--live", "--max-buffer-live", "-8"])).is_err());
        assert!(parse(&args(&["live", "--live", "--max-buffer-live", "inf"])).is_err());
        assert!(parse(&args(&["live", "--live", "--max-buffer-live", "big"])).is_err());
        assert!(parse(&args(&["live", "--live", "--latency-weight"])).is_err());
        assert!(parse(&args(&["live", "--live", "--latency-weight", "-0.1"])).is_err());
        assert!(parse(&args(&["live", "--live", "--latency-weight", "inf"])).is_err());
        assert!(parse(&args(&["live", "--live", "--latency-weight", "nan"])).is_err());
        assert!(parse(&args(&["live", "--live", "--latency-weight", "low"])).is_err());

        // The value flags conflict with a missing --live opt-in.
        let err = parse(&args(&["live", "--encode-delay", "1.5"])).unwrap_err();
        assert!(err.contains("requires --live"), "{err}");
        assert!(parse(&args(&["live", "--max-buffer-live", "12"])).is_err());
        assert!(parse(&args(&["live", "--latency-weight", "25"])).is_err());
    }

    #[test]
    fn event_loops_reject_bulk_batches() {
        // The multiplexed generator is scalar-pipelined; coalesced bulk
        // batches belong to the threaded path.
        assert!(parse(&args(&[
            "serve-bench",
            "--event-loops",
            "2",
            "--batch-size",
            "8"
        ]))
        .is_err());
        // batch 1 is the scalar path and composes fine.
        assert!(parse(&args(&[
            "serve-bench",
            "--event-loops",
            "2",
            "--batch-size",
            "1"
        ]))
        .is_ok());
    }

    #[test]
    fn defaults_apply() {
        let (cmd, opts) = parse(&args(&["table1"])).unwrap();
        assert_eq!(cmd, "table1");
        assert_eq!(opts.traces, 100);
        assert_eq!(opts.seed, 42);
        assert!(!opts.quick);
        assert!(opts.out.is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&args(&[])).is_err());
        assert!(parse(&args(&["fig8", "--traces"])).is_err());
        assert!(parse(&args(&["fig8", "--traces", "abc"])).is_err());
        assert!(parse(&args(&["fig8", "--traces", "0"])).is_err());
        assert!(parse(&args(&["fig8", "--threads", "0"])).is_err());
        assert!(parse(&args(&["fig8", "--threads", "many"])).is_err());
        assert!(parse(&args(&["fig8", "--bogus"])).is_err());
        assert!(parse(&args(&["fig8", "extra-command"])).is_err());
    }

    #[test]
    fn unknown_command_is_reported_at_dispatch() {
        let (cmd, opts) = parse(&args(&["not-an-experiment"])).unwrap();
        assert!(run_command(&cmd, &opts).is_err());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{USAGE}");
        return;
    }
    let (cmd, opts) = match parse(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Applies to every parallel section: trace grids and table generation.
    abr_par::set_max_threads(opts.threads);
    // Decide the batch-size policy before any experiment builds an
    // EvalConfig. Unset leaves the ABR_BATCH-then-scalar fallback in
    // place; results are bit-identical at every size.
    if let Some(batch) = opts.batch {
        abr_harness::set_batch_size(batch);
    }
    // Decide the OPT-cache policy before any experiment builds an
    // EvalConfig; preload persisted results if a cache file was given.
    // Cache chatter goes to stderr so stdout stays byte-comparable across
    // cache-on / cache-off runs.
    abr_harness::set_opt_cache_enabled(!opts.no_opt_cache);
    abr_harness::set_table_cache_enabled(!opts.no_table_cache);
    // Arm fault injection for every emulated session in the run. At rate 0
    // the armed layer never fires and output stays byte-identical to a run
    // without the flag; the robustness experiment builds its own per-rate
    // specs either way.
    if let Some(rate) = opts.fault_rate {
        abr_harness::set_fault_spec(Some(abr_harness::FaultSpec::for_rate(
            rate,
            opts.fault_seed,
        )));
    }
    if let Some(path) = &opts.opt_cache_path {
        if opts.no_opt_cache {
            eprintln!("error: --opt-cache and --no-opt-cache are mutually exclusive");
            std::process::exit(2);
        }
        match abr_harness::global_opt_cache().load_file(path) {
            Ok(n) => eprintln!("opt cache: preloaded {n} results from {}", path.display()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!("opt cache: {} not found, starting empty", path.display());
            }
            Err(e) => {
                eprintln!("error: failed to load opt cache {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    let start = Instant::now();
    match run_command(&cmd, &opts) {
        Ok(report) => {
            print!("{report}");
            let mut meta = Table::new("run info", &["key", "value"]);
            meta.row(vec!["command".into(), cmd]);
            meta.row(vec!["traces/dataset".into(), opts.traces.to_string()]);
            meta.row(vec!["seed".into(), opts.seed.to_string()]);
            meta.row(vec![
                "elapsed".into(),
                format!("{:.1}s", start.elapsed().as_secs_f64()),
            ]);
            print!("{}", meta.render());
            if let Some(path) = &opts.opt_cache_path {
                let cache = abr_harness::global_opt_cache();
                match cache.save_file(path) {
                    Ok(()) => eprintln!(
                        "opt cache: saved {} results to {}",
                        cache.len(),
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("error: failed to save opt cache {}: {e}", path.display());
                        std::process::exit(2);
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
