//! Experiment harness for the Section 7 evaluation.
//!
//! Every table and figure in the paper has a regenerator here (see
//! DESIGN.md's experiment index). The `abr-harness` binary exposes them as
//! subcommands:
//!
//! ```text
//! abr-harness fig7      # dataset characteristics (3 CDF panels)
//! abr-harness fig8      # normalized-QoE CDFs on FCC / HSDPA / Synthetic
//! abr-harness fig9      # FCC per-factor CDFs (bitrate, switches, rebuffer)
//! abr-harness fig10     # HSDPA per-factor CDFs
//! abr-harness fig11a    # n-QoE vs prediction error
//! abr-harness fig11b    # n-QoE vs QoE preference presets
//! abr-harness fig11c    # n-QoE vs buffer size
//! abr-harness fig11d    # n-QoE vs fixed startup delay
//! abr-harness fig12a    # FastMPC discretization sweep
//! abr-harness fig12b    # MPC look-ahead horizon sweep
//! abr-harness table1    # FastMPC table sizes, full vs run-length coded
//! abr-harness levels    # bitrate-ladder granularity sweep (§7.3, unshown)
//! abr-harness overhead  # per-decision CPU cost + table memory (§7.4)
//! abr-harness robustness # fault-rate sweep on the emulated path
//! abr-harness all       # everything above except robustness
//! ```
//!
//! Output is aligned text (the same rows/series the paper plots) plus CSV
//! files under `--out DIR` for plotting. Runs are deterministic in
//! `--seed`; `--traces N` trades precision for time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod registry;
pub mod report;
pub mod runner;

pub use registry::{Algo, PredictorSpec};
pub use runner::{
    default_batch_size, default_fault_spec, default_opt_cache, default_table_cache,
    evaluate_dataset, fastmpc_table, global_opt_cache, global_table_cache, opt_cache_enabled,
    opt_results, run_algo_session, run_algo_session_with, set_batch_size, set_fault_spec,
    set_opt_cache_enabled, set_table_cache_enabled, table_cache_enabled, EvalConfig, EvalOutcome,
    FaultSpec, TraceEval,
};
