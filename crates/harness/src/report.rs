//! Plain-text tables and CSV series — the harness's output layer.

use abr_trace::stats::Cdf;
use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a number with a sensible number of digits for tables.
pub fn fmt_num(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Builds a CDF table from named sample sets, downsampled onto `points`
/// quantiles — the series the paper plots. Columns: probability, then one
/// value column per series.
pub fn cdf_table(title: &str, series: &[(&str, &[f64])], points: usize) -> Table {
    let mut header = vec!["p"];
    for (name, _) in series {
        header.push(name);
    }
    let mut t = Table::new(title, &header);
    let cdfs: Vec<Option<Cdf>> = series.iter().map(|(_, s)| Cdf::of(s)).collect();
    for i in 0..points {
        let p = (i as f64 + 1.0) / points as f64;
        let mut row = vec![format!("{p:.2}")];
        for cdf in &cdfs {
            row.push(match cdf {
                Some(c) => fmt_num(c.quantile(p)),
                None => "-".to_string(),
            });
        }
        t.row(row);
    }
    t
}

/// Writes a table's CSV to `dir/name.csv` (creates `dir` if needed);
/// silently skips when `dir` is `None`.
pub fn write_csv(dir: Option<&Path>, name: &str, table: &Table) -> std::io::Result<()> {
    let Some(dir) = dir else { return Ok(()) };
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.csv")), table.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        // Aligned right: the short name is padded.
        assert!(s.lines().any(|l| l.trim_start().starts_with('x')));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("t", &["a,b", "c"]);
        t.row(vec!["has\"quote".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c"));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn cdf_table_shapes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let t = cdf_table("cdf", &[("A", &a), ("B", &b)], 4);
        let s = t.render();
        assert!(s.contains("1.00"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 5); // header + 4 points
    }

    #[test]
    fn fmt_num_scales() {
        assert_eq!(fmt_num(12345.6), "12346");
        assert_eq!(fmt_num(99.87), "99.9");
        assert_eq!(fmt_num(0.912), "0.912");
    }

    #[test]
    fn write_csv_none_is_noop() {
        let t = Table::new("t", &["a"]);
        write_csv(None, "x", &t).unwrap();
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("empty", &["col1", "col2"]);
        let s = t.render();
        assert!(s.contains("== empty =="));
        assert!(s.contains("col1"));
        assert_eq!(t.to_csv().lines().count(), 1);
    }

    #[test]
    fn cdf_table_empty_series_prints_dashes() {
        let t = cdf_table("cdf", &[("empty", &[])], 3);
        let s = t.render();
        assert!(s.contains('-'), "{s}");
        assert!(s.lines().skip(3).all(|l| l.trim_end().ends_with('-')), "{s}");
    }

    #[test]
    fn write_csv_creates_dir_and_file() {
        let dir = std::env::temp_dir().join("abr_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        write_csv(Some(&dir), "out", &t).unwrap();
        let content = std::fs::read_to_string(dir.join("out.csv")).unwrap();
        assert_eq!(content, "a\n1\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
