//! Evaluation driver: runs algorithm × trace grids, computes normalized QoE
//! against the offline optimum, and fans work across CPU cores.

use crate::registry::{Algo, PredictorSpec};
use abr_core::BitrateController;
use abr_fastmpc::{FastMpcTable, TableCache, TableConfig};
use abr_net::{
    run_emulated_session_faulted_with, run_emulated_session_with, FaultConfig, FaultPlan,
    NetConfig, RetryPolicy,
};
use abr_offline::{OfflineConfig, OfflineResult, OptCache};
use abr_sim::{
    run_session_with, SessionResult, SessionScratch, SessionStepper, SimConfig, TraceDownloader,
};
use abr_trace::Trace;
use abr_video::{QoeWeights, Video};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Whether [`EvalConfig::paper_default`] attaches the process-wide OPT
/// cache. On by default; the CLI's `--no-opt-cache` flag clears it.
static OPT_CACHE_ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-wide OPT cache shared by every experiment in a harness run.
static GLOBAL_OPT_CACHE: OnceLock<Arc<OptCache>> = OnceLock::new();

/// Enables or disables attaching the shared OPT cache to configurations
/// built by [`EvalConfig::paper_default`]. Explicitly-set `opt_cache`
/// fields are unaffected.
pub fn set_opt_cache_enabled(enabled: bool) {
    OPT_CACHE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether [`EvalConfig::paper_default`] currently attaches the shared
/// OPT cache.
pub fn opt_cache_enabled() -> bool {
    OPT_CACHE_ENABLED.load(Ordering::Relaxed)
}

/// The process-wide OPT cache (created on first use). One shared cache is
/// what makes `abr_harness all` solve each distinct (trace, video, offline
/// config) problem exactly once across all experiments.
pub fn global_opt_cache() -> &'static Arc<OptCache> {
    GLOBAL_OPT_CACHE.get_or_init(|| Arc::new(OptCache::new()))
}

/// The cache handle [`EvalConfig::paper_default`] attaches: the shared
/// cache when enabled, `None` when disabled via [`set_opt_cache_enabled`].
pub fn default_opt_cache() -> Option<Arc<OptCache>> {
    if opt_cache_enabled() {
        Some(Arc::clone(global_opt_cache()))
    } else {
        None
    }
}

/// Whether [`EvalConfig::paper_default`] attaches the process-wide FastMPC
/// table cache. On by default; the CLI's `--no-table-cache` flag clears it.
static TABLE_CACHE_ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-wide table cache shared by every experiment in a harness run.
static GLOBAL_TABLE_CACHE: OnceLock<Arc<TableCache>> = OnceLock::new();

/// Enables or disables attaching the shared table cache to configurations
/// built by [`EvalConfig::paper_default`]. Explicitly-set `table_cache`
/// fields are unaffected.
pub fn set_table_cache_enabled(enabled: bool) {
    TABLE_CACHE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether [`EvalConfig::paper_default`] currently attaches the shared
/// table cache.
pub fn table_cache_enabled() -> bool {
    TABLE_CACHE_ENABLED.load(Ordering::Relaxed)
}

/// The process-wide table cache (created on first use). One shared cache is
/// what makes `abr_harness all` generate each distinct FastMPC table exactly
/// once across experiments.
pub fn global_table_cache() -> &'static Arc<TableCache> {
    GLOBAL_TABLE_CACHE.get_or_init(|| Arc::new(TableCache::new()))
}

/// The cache handle [`EvalConfig::paper_default`] attaches: the shared
/// cache when enabled, `None` when disabled via [`set_table_cache_enabled`].
pub fn default_table_cache() -> Option<Arc<TableCache>> {
    if table_cache_enabled() {
        Some(Arc::clone(global_table_cache()))
    } else {
        None
    }
}

/// Deterministic fault injection for the emulated path: per-request odds,
/// the retry policy, and a base seed mixed with each session's seed so
/// every (trace, algorithm) cell draws an independent, reproducible fault
/// stream.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Per-request fault odds.
    pub config: FaultConfig,
    /// Timeout/retry/backoff policy the player survives faults with.
    pub policy: RetryPolicy,
    /// Base fault seed (independent of the predictor seed).
    pub seed: u64,
}

impl FaultSpec {
    /// A spec firing each fault kind with `rate / 5` probability plus a
    /// little request jitter, under the hostile-network retry policy. At
    /// `rate == 0` the plan never fires, jitter is zero, and the policy
    /// imposes no timeout, so sessions are byte-identical to the
    /// fault-free path.
    pub fn for_rate(rate: f64, seed: u64) -> Self {
        let mut config = FaultConfig::uniform(rate);
        let policy = if rate > 0.0 {
            config.jitter_max_secs = 0.03;
            RetryPolicy::hostile()
        } else {
            RetryPolicy::no_timeout()
        };
        FaultSpec {
            config,
            policy,
            seed,
        }
    }
}

/// The process-wide fault spec attached by [`EvalConfig::paper_default`].
/// `None` (the default) runs fault-free; the CLI's `--fault-rate` flag
/// installs one.
static FAULT_SPEC: Mutex<Option<FaultSpec>> = Mutex::new(None);

/// Installs (or clears) the fault spec [`EvalConfig::paper_default`]
/// attaches. Explicitly-set `faults` fields are unaffected.
pub fn set_fault_spec(spec: Option<FaultSpec>) {
    *FAULT_SPEC.lock().expect("fault spec lock") = spec;
}

/// The fault spec [`EvalConfig::paper_default`] currently attaches.
pub fn default_fault_spec() -> Option<FaultSpec> {
    FAULT_SPEC.lock().expect("fault spec lock").clone()
}

/// The decision batch size [`EvalConfig::paper_default`] picks up. `0`
/// means "unset": fall back to the `ABR_BATCH` environment variable, then
/// to 1 (the scalar path). The CLI's `--batch-size` flag stores here.
static BATCH_SIZE: AtomicUsize = AtomicUsize::new(0);

/// Sets the batch size [`EvalConfig::paper_default`] attaches (0 restores
/// the `ABR_BATCH`-then-1 fallback). Explicitly-set `batch_size` fields
/// are unaffected.
pub fn set_batch_size(n: usize) {
    BATCH_SIZE.store(n, Ordering::Relaxed);
}

/// The batch size [`EvalConfig::paper_default`] currently attaches: the
/// [`set_batch_size`] override when set, else the `ABR_BATCH` environment
/// variable, else 1 (scalar decisions). Batching is a pure wall-clock
/// optimization — results are bit-identical at every size.
pub fn default_batch_size() -> usize {
    match BATCH_SIZE.load(Ordering::Relaxed) {
        0 => std::env::var("ABR_BATCH")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1),
        n => n,
    }
}

/// The FastMPC table for `(video, buffer, weights, levels)`, through `cache`
/// when one is attached (each distinct table generated once per process) or
/// by a direct generation otherwise. Every experiment that needs a table
/// goes through this helper — none call the generator directly — so the
/// cache policy is decided in exactly one place. Builds the same
/// [`TableConfig`] as [`Algo::default_table`], so a hit is bit-identical to
/// a fresh generation.
pub fn fastmpc_table(
    video: &Video,
    buffer_max_secs: f64,
    weights: &QoeWeights,
    levels: usize,
    cache: Option<&Arc<TableCache>>,
) -> Arc<FastMpcTable> {
    let mut cfg = TableConfig::with_levels(levels, buffer_max_secs);
    cfg.weights = weights.clone();
    match cache {
        Some(cache) => cache.ensure(video, buffer_max_secs, &cfg),
        None => Arc::new(FastMpcTable::generate(video, buffer_max_secs, cfg)),
    }
}

/// Configuration of one evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Simulator configuration (buffer size, weights, startup policy).
    pub sim: SimConfig,
    /// Offline-optimal solver configuration (normalized-QoE denominator).
    pub offline: OfflineConfig,
    /// Use the emulation path (real HTTP through the shaped link) instead
    /// of the analytic simulator. The headline Figure 8/9/10 experiments
    /// run emulated, matching the paper's testbed methodology; the
    /// sensitivity studies run simulated, matching Section 7.3.
    pub emulated: bool,
    /// Network parameters of the emulation path.
    pub net: NetConfig,
    /// MPC look-ahead horizon.
    pub horizon: usize,
    /// FastMPC discretization levels per continuous dimension.
    pub fastmpc_levels: usize,
    /// Base RNG seed (oracle predictors derive per-session seeds from it).
    pub seed: u64,
    /// Memo table for offline-optimal results ([`opt_results`] consults it
    /// before solving). `None` solves from scratch every time; results are
    /// bit-identical either way, only wall-clock differs.
    pub opt_cache: Option<Arc<OptCache>>,
    /// Memo table for generated FastMPC decision tables ([`fastmpc_table`]
    /// consults it before generating). `None` generates from scratch every
    /// time; tables are bit-identical either way, only wall-clock differs.
    pub table_cache: Option<Arc<TableCache>>,
    /// Fault injection for the emulated path (`None` = fault-free). Only
    /// consulted when `emulated` is set; the analytic simulator has no
    /// request/response layer to fault.
    pub faults: Option<FaultSpec>,
    /// Decision batch size for [`evaluate_dataset`]: table-backed
    /// algorithms on the simulated path step up to this many sessions in
    /// lockstep per chunk, resolving each tick's decisions through the
    /// columnar `decide_batch` kernel. `1` (or `0`) takes the scalar path
    /// verbatim; the emulated path and non-tabular algorithms always fall
    /// back to scalar. Results are bit-identical at every size — batching
    /// only changes wall-clock.
    pub batch_size: usize,
}

impl EvalConfig {
    /// The paper's defaults.
    pub fn paper_default() -> Self {
        Self {
            sim: SimConfig::paper_default(),
            offline: OfflineConfig::paper_default(),
            emulated: false,
            net: NetConfig::parity(),
            horizon: 5,
            fastmpc_levels: 100,
            seed: 42,
            opt_cache: default_opt_cache(),
            table_cache: default_table_cache(),
            faults: default_fault_spec(),
            batch_size: default_batch_size(),
        }
    }

    /// QoE weights in effect.
    pub fn weights(&self) -> &QoeWeights {
        &self.sim.weights
    }
}

/// The offline optimum for every trace, through `cfg.opt_cache` when one is
/// attached (each distinct problem solved once per process) or by direct
/// parallel solves otherwise. Every experiment that normalizes by
/// `QoE(OPT)` goes through this helper — none call the solver directly —
/// so the cache policy is decided in exactly one place.
pub fn opt_results(traces: &[Trace], video: &Video, cfg: &EvalConfig) -> Vec<Arc<OfflineResult>> {
    match &cfg.opt_cache {
        Some(cache) => cache.ensure(traces, video, &cfg.offline),
        None => par_map(traces.len(), |i| {
            Arc::new(abr_offline::optimal_qoe(&traces[i], video, &cfg.offline))
        }),
    }
}

/// Evaluation of one trace: the offline optimum plus one session per
/// algorithm.
#[derive(Debug, Clone)]
pub struct TraceEval {
    /// Index of the trace within the dataset.
    pub trace_idx: usize,
    /// `QoE(OPT)` for this trace.
    pub opt_qoe: f64,
    /// One session per algorithm, in the order supplied to
    /// [`evaluate_dataset`].
    pub sessions: Vec<SessionResult>,
}

impl TraceEval {
    /// Normalized QoE of algorithm `i`: `QoE(A) / QoE(OPT)`.
    pub fn n_qoe(&self, i: usize) -> f64 {
        self.sessions[i].qoe.qoe / self.opt_qoe
    }
}

/// The full grid result.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Algorithms evaluated, in column order.
    pub algos: Vec<Algo>,
    /// Per-trace evaluations (traces whose offline optimum was not positive
    /// are skipped — normalization is meaningless there; see `skipped`).
    pub traces: Vec<TraceEval>,
    /// Number of traces skipped because `QoE(OPT) <= 0`.
    pub skipped: usize,
}

impl EvalOutcome {
    /// Normalized-QoE samples of one algorithm across all traces.
    pub fn n_qoe_samples(&self, algo: Algo) -> Vec<f64> {
        let i = self.col(algo);
        self.traces.iter().map(|t| t.n_qoe(i)).collect()
    }

    /// All sessions of one algorithm.
    pub fn sessions_of(&self, algo: Algo) -> Vec<&SessionResult> {
        let i = self.col(algo);
        self.traces.iter().map(|t| &t.sessions[i]).collect()
    }

    /// Median normalized QoE of one algorithm.
    pub fn median_n_qoe(&self, algo: Algo) -> f64 {
        abr_trace::stats::median(&self.n_qoe_samples(algo))
    }

    fn col(&self, algo: Algo) -> usize {
        self.algos
            .iter()
            .position(|a| *a == algo)
            .unwrap_or_else(|| panic!("{} was not evaluated", algo.name()))
    }
}

/// Derives a deterministic per-session seed.
fn session_seed(base: u64, trace_idx: usize, algo_idx: usize) -> u64 {
    base ^ (trace_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (algo_idx as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// Runs one algorithm over one trace under `cfg`, using `spec` as the
/// predictor (pass `algo.default_predictor()` unless an experiment overrides
/// it).
#[allow(clippy::too_many_arguments)]
pub fn run_algo_session(
    algo: Algo,
    table: Option<&Arc<FastMpcTable>>,
    spec: PredictorSpec,
    seed: u64,
    trace: &Trace,
    video: &Video,
    cfg: &EvalConfig,
) -> SessionResult {
    let mut scratch = SessionScratch::new();
    let mut out = SessionResult::default();
    run_algo_session_with(
        &mut scratch,
        &mut out,
        algo,
        table,
        spec,
        seed,
        trace,
        video,
        cfg,
    );
    out
}

/// [`run_algo_session`] writing into caller-owned buffers: `scratch` carries
/// the session engine's reusable working memory across calls and `out` is
/// overwritten with the result. Grid drivers keep one scratch per worker so
/// the steady-state loop never touches the allocator; results are
/// bit-identical to [`run_algo_session`].
#[allow(clippy::too_many_arguments)]
pub fn run_algo_session_with(
    scratch: &mut SessionScratch,
    out: &mut SessionResult,
    algo: Algo,
    table: Option<&Arc<FastMpcTable>>,
    spec: PredictorSpec,
    seed: u64,
    trace: &Trace,
    video: &Video,
    cfg: &EvalConfig,
) {
    let mut controller = algo.build(table, cfg.weights(), cfg.horizon);
    let predictor = spec.build(seed);
    if cfg.emulated {
        if let Some(spec) = &cfg.faults {
            run_emulated_session_faulted_with(
                scratch,
                out,
                controller.as_mut(),
                predictor,
                trace,
                video,
                &cfg.sim,
                &cfg.net,
                FaultPlan::new(spec.seed ^ seed, spec.config.clone()),
                &spec.policy,
            );
        } else {
            run_emulated_session_with(
                scratch,
                out,
                controller.as_mut(),
                predictor,
                trace,
                video,
                &cfg.sim,
                &cfg.net,
            );
        }
    } else {
        run_session_with(
            scratch,
            out,
            controller.as_mut(),
            predictor,
            trace,
            video,
            &cfg.sim,
        );
    }
}

/// Fork-join parallel map over trace indices. Re-exported from `abr-par`
/// (the same substrate the FastMPC table generator fans rows across), so the
/// `--threads` flag and the `ABR_THREADS` environment variable govern every
/// parallel section of the harness uniformly.
pub use abr_par::par_map;

/// Evaluates `algos` over `traces`, computing the offline optimum per trace
/// for normalization. Traces with a non-positive optimum are skipped.
///
/// With `cfg.batch_size > 1`, table-backed algorithms on the simulated
/// path run in lockstep blocks through the columnar `decide_batch` kernel
/// (see [`EvalConfig::batch_size`]); results are bit-identical to the
/// scalar path, verified by the `batched_grid_is_bit_identical_to_scalar`
/// test and the CI batch-equivalence gate.
pub fn evaluate_dataset(
    algos: &[Algo],
    traces: &[Trace],
    video: &Video,
    cfg: &EvalConfig,
) -> EvalOutcome {
    let table = if algos.iter().any(|a| a.needs_table()) {
        Some(fastmpc_table(
            video,
            cfg.sim.buffer_max_secs,
            cfg.weights(),
            cfg.fastmpc_levels,
            cfg.table_cache.as_ref(),
        ))
    } else {
        None
    };

    // One OPT result per trace, hoisted out of the session loop so the shared
    // cache (when attached) is consulted and filled exactly once per problem.
    let opts = opt_results(traces, video, cfg);

    let batch = cfg.batch_size.max(1);
    if batch > 1 && !cfg.emulated && algos.iter().any(|a| a.needs_table()) {
        return evaluate_dataset_batched(algos, traces, video, cfg, table.as_ref(), &opts, batch);
    }

    let evals: Vec<Option<TraceEval>> = par_map(traces.len(), |t_idx| {
        let trace = &traces[t_idx];
        let opt = &opts[t_idx];
        if opt.qoe <= 0.0 {
            return None;
        }
        // One scratch per par_map item: every session on this trace reuses
        // the same working buffers, so the engine's steady state stays off
        // the allocator while each result lands in its own `SessionResult`.
        let mut scratch = SessionScratch::new();
        let sessions = algos
            .iter()
            .enumerate()
            .map(|(a_idx, algo)| {
                let mut out = SessionResult::default();
                run_algo_session_with(
                    &mut scratch,
                    &mut out,
                    *algo,
                    table.as_ref(),
                    algo.default_predictor(),
                    session_seed(cfg.seed, t_idx, a_idx),
                    trace,
                    video,
                    cfg,
                );
                out
            })
            .collect();
        Some(TraceEval {
            trace_idx: t_idx,
            opt_qoe: opt.qoe,
            sessions,
        })
    });

    let skipped = evals.iter().filter(|e| e.is_none()).count();
    EvalOutcome {
        algos: algos.to_vec(),
        traces: evals.into_iter().flatten().collect(),
        skipped,
    }
}

/// The batched grid: each table-backed algorithm column is computed in
/// lockstep blocks of `batch` sessions sharing one controller (one
/// `decide_batch` call per chunk tick); every other column runs the scalar
/// session engine per trace. Trace order, per-session seeds, and the
/// skip rule are exactly the scalar path's, so the assembled
/// [`EvalOutcome`] is bit-identical — only the decision dispatch differs.
fn evaluate_dataset_batched(
    algos: &[Algo],
    traces: &[Trace],
    video: &Video,
    cfg: &EvalConfig,
    table: Option<&Arc<FastMpcTable>>,
    opts: &[Arc<OfflineResult>],
    batch: usize,
) -> EvalOutcome {
    // Same skip rule as the scalar path: traces with a non-positive
    // optimum never run a session.
    let live: Vec<usize> = (0..traces.len()).filter(|&i| opts[i].qoe > 0.0).collect();
    let skipped = traces.len() - live.len();

    // Column-major: sessions[a_idx][j] is algorithm `a_idx` on live trace
    // `j`. Lockstep columns parallelize over blocks, scalar columns over
    // traces; both index seeds by the trace's position in `traces`.
    let mut columns: Vec<Vec<SessionResult>> = Vec::with_capacity(algos.len());
    for (a_idx, algo) in algos.iter().enumerate() {
        if algo.needs_table() {
            let blocks = live.len().div_ceil(batch);
            let col: Vec<Vec<SessionResult>> = par_map(blocks, |b| {
                let idxs = &live[b * batch..((b + 1) * batch).min(live.len())];
                run_lockstep_block(*algo, a_idx, idxs, traces, table, video, cfg)
            });
            columns.push(col.into_iter().flatten().collect());
        } else {
            columns.push(par_map(live.len(), |j| {
                let t_idx = live[j];
                let mut scratch = SessionScratch::new();
                let mut out = SessionResult::default();
                run_algo_session_with(
                    &mut scratch,
                    &mut out,
                    *algo,
                    table,
                    algo.default_predictor(),
                    session_seed(cfg.seed, t_idx, a_idx),
                    &traces[t_idx],
                    video,
                    cfg,
                );
                out
            }));
        }
    }

    // Reassemble into the scalar path's row-major (trace, algo) layout.
    let evals = live
        .iter()
        .enumerate()
        .map(|(j, &t_idx)| TraceEval {
            trace_idx: t_idx,
            opt_qoe: opts[t_idx].qoe,
            sessions: columns
                .iter_mut()
                .map(|col| std::mem::take(&mut col[j]))
                .collect(),
        })
        .collect();
    EvalOutcome {
        algos: algos.to_vec(),
        traces: evals,
        skipped,
    }
}

/// One lockstep block: up to `batch` sessions of one table-backed
/// algorithm advanced chunk by chunk together, each tick's decisions
/// resolved by a single `decide_batch` call on one shared controller. The
/// controller is stateless across decisions (a table lookup), so sharing
/// it is observationally identical to the scalar path's
/// controller-per-session.
fn run_lockstep_block(
    algo: Algo,
    a_idx: usize,
    trace_idxs: &[usize],
    traces: &[Trace],
    table: Option<&Arc<FastMpcTable>>,
    video: &Video,
    cfg: &EvalConfig,
) -> Vec<SessionResult> {
    let mut controller = algo.build(table, cfg.weights(), cfg.horizon);
    controller.reset();
    let mut scratches: Vec<SessionScratch> =
        trace_idxs.iter().map(|_| SessionScratch::new()).collect();
    let mut outs: Vec<SessionResult> =
        trace_idxs.iter().map(|_| SessionResult::default()).collect();
    {
        let mut steppers: Vec<_> = scratches
            .iter_mut()
            .zip(outs.iter_mut())
            .zip(trace_idxs.iter())
            .map(|((scratch, out), &t_idx)| {
                let trace = &traces[t_idx];
                SessionStepper::start(
                    scratch,
                    out,
                    algo.default_predictor()
                        .build(session_seed(cfg.seed, t_idx, a_idx)),
                    TraceDownloader::new(trace),
                    trace,
                    video,
                    &cfg.sim,
                )
            })
            .collect();
        let mut decisions = Vec::new();
        // All sessions share one video, so live steppers stay aligned on
        // the same chunk index; a session only leaves the batch when it
        // finishes (the simulated path never aborts mid-stream).
        while steppers.iter().any(|s| !s.is_done()) {
            let mut tick: Vec<_> = steppers.iter_mut().filter(|s| !s.is_done()).collect();
            let ctxs: Vec<_> = tick.iter_mut().map(|s| s.context()).collect();
            controller.decide_batch(&ctxs, &mut decisions);
            for (s, d) in tick.iter_mut().zip(decisions.iter()) {
                assert!(
                    d.level.get() < video.ladder().len(),
                    "{} chose out-of-range level {:?}",
                    controller.name(),
                    d.level
                );
                s.apply(*d);
            }
        }
        let name = controller.name();
        for s in steppers {
            s.finish(name);
        }
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_trace::Dataset;
    use abr_video::envivio_video;

    fn quick_cfg() -> EvalConfig {
        EvalConfig {
            fastmpc_levels: 12,
            // Pinned so tests stay independent of the process-wide
            // `set_batch_size` knob and the ABR_BATCH environment.
            batch_size: 1,
            ..EvalConfig::paper_default()
        }
    }

    #[test]
    fn par_map_matches_serial() {
        let out = par_map(100, |i| i * i);
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u32> = par_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn evaluate_small_grid() {
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(7, 4);
        let cfg = quick_cfg();
        let algos = [Algo::Rb, Algo::Bb, Algo::RobustMpc, Algo::FastMpc];
        let out = evaluate_dataset(&algos, &traces, &video, &cfg);
        assert_eq!(out.traces.len() + out.skipped, 4);
        for t in &out.traces {
            assert!(t.opt_qoe > 0.0);
            assert_eq!(t.sessions.len(), 4);
            for i in 0..4 {
                let n = t.n_qoe(i);
                assert!(n.is_finite());
                // No algorithm should (meaningfully) beat clairvoyant OPT.
                assert!(n <= 1.05, "n-QoE {n} for {}", out.algos[i].name());
            }
        }
        // Median accessor works.
        let med = out.median_n_qoe(Algo::RobustMpc);
        assert!(med.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let video = envivio_video();
        let traces = Dataset::Hsdpa.generate(3, 2);
        let cfg = quick_cfg();
        let a = evaluate_dataset(&[Algo::RobustMpc], &traces, &video, &cfg);
        let b = evaluate_dataset(&[Algo::RobustMpc], &traces, &video, &cfg);
        assert_eq!(a.traces.len(), b.traces.len());
        for (x, y) in a.traces.iter().zip(&b.traces) {
            assert_eq!(x.sessions[0].qoe.qoe, y.sessions[0].qoe.qoe);
        }
    }

    #[test]
    fn opt_cache_does_not_change_results_and_solves_once() {
        let video = envivio_video();
        let traces = Dataset::Hsdpa.generate(11, 3);

        // A private cache (not the process-global one) keeps this test
        // independent of whatever other tests have cached.
        let cache = Arc::new(OptCache::new());
        let cached_cfg = EvalConfig {
            opt_cache: Some(Arc::clone(&cache)),
            ..quick_cfg()
        };
        let plain_cfg = EvalConfig {
            opt_cache: None,
            ..quick_cfg()
        };

        let first = evaluate_dataset(&[Algo::Rb], &traces, &video, &cached_cfg);
        let second = evaluate_dataset(&[Algo::Rb], &traces, &video, &cached_cfg);
        let plain = evaluate_dataset(&[Algo::Rb], &traces, &video, &plain_cfg);

        let stats = cache.stats();
        assert_eq!(
            stats.solves as usize, stats.entries,
            "each distinct problem must be solved exactly once"
        );
        assert_eq!(stats.entries, traces.len());
        assert!(stats.hits >= traces.len() as u64);

        assert_eq!(first.traces.len(), plain.traces.len());
        assert_eq!(first.skipped, plain.skipped);
        for ((a, b), c) in first.traces.iter().zip(&second.traces).zip(&plain.traces) {
            assert_eq!(a.opt_qoe.to_bits(), b.opt_qoe.to_bits());
            assert_eq!(a.opt_qoe.to_bits(), c.opt_qoe.to_bits());
            assert_eq!(a.sessions[0].qoe.qoe.to_bits(), c.sessions[0].qoe.qoe.to_bits());
        }
    }

    #[test]
    fn table_cache_does_not_change_results_and_generates_once() {
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(13, 3);

        // A private cache (not the process-global one) keeps this test
        // independent of whatever other tests have cached.
        let cache = Arc::new(TableCache::new());
        let cached_cfg = EvalConfig {
            table_cache: Some(Arc::clone(&cache)),
            ..quick_cfg()
        };
        let plain_cfg = EvalConfig {
            table_cache: None,
            ..quick_cfg()
        };

        let first = evaluate_dataset(&[Algo::FastMpc], &traces, &video, &cached_cfg);
        let second = evaluate_dataset(&[Algo::FastMpc], &traces, &video, &cached_cfg);
        let plain = evaluate_dataset(&[Algo::FastMpc], &traces, &video, &plain_cfg);

        let stats = cache.stats();
        assert_eq!(
            stats.generates as usize, stats.entries,
            "each distinct table must be generated exactly once"
        );
        assert_eq!(stats.entries, 1);
        assert!(stats.hits >= 1);

        assert_eq!(first.traces.len(), plain.traces.len());
        assert_eq!(first.skipped, plain.skipped);
        for ((a, b), c) in first.traces.iter().zip(&second.traces).zip(&plain.traces) {
            assert_eq!(a.sessions[0].qoe.qoe.to_bits(), b.sessions[0].qoe.qoe.to_bits());
            assert_eq!(a.sessions[0].qoe.qoe.to_bits(), c.sessions[0].qoe.qoe.to_bits());
        }
    }

    #[test]
    fn batched_grid_is_bit_identical_to_scalar() {
        // The acceptance bar for the whole batch layer: every batch size
        // must reproduce the scalar grid bit for bit, across a mixed
        // algorithm set (lockstep FastMPC column + scalar columns) and a
        // trace count that exercises a ragged final block.
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(7, 9);
        let scalar_cfg = quick_cfg();
        let algos = [Algo::Rb, Algo::FastMpc, Algo::RobustMpc];
        let scalar = evaluate_dataset(&algos, &traces, &video, &scalar_cfg);
        for batch in [2, 4, 64] {
            let batched_cfg = EvalConfig {
                batch_size: batch,
                ..quick_cfg()
            };
            let batched = evaluate_dataset(&algos, &traces, &video, &batched_cfg);
            assert_eq!(scalar.skipped, batched.skipped);
            assert_eq!(scalar.traces.len(), batched.traces.len());
            for (x, y) in scalar.traces.iter().zip(&batched.traces) {
                assert_eq!(x.trace_idx, y.trace_idx);
                assert_eq!(x.opt_qoe.to_bits(), y.opt_qoe.to_bits());
                assert_eq!(x.sessions.len(), y.sessions.len());
                for (sx, sy) in x.sessions.iter().zip(&y.sessions) {
                    assert_eq!(sx, sy, "batch={batch} diverged from scalar");
                    assert_eq!(sx.qoe.qoe.to_bits(), sy.qoe.qoe.to_bits());
                    for (rx, ry) in sx.records.iter().zip(&sy.records) {
                        assert_eq!(rx.download_secs.to_bits(), ry.download_secs.to_bits());
                        assert_eq!(
                            rx.buffer_after_secs.to_bits(),
                            ry.buffer_after_secs.to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_size_knob_feeds_paper_default() {
        // The global knob (set from --batch-size) lands in paper_default;
        // 0 restores the fallback. Batching is bit-identical at any size,
        // so a concurrent test observing the override stays correct.
        set_batch_size(5);
        assert_eq!(default_batch_size(), 5);
        assert_eq!(EvalConfig::paper_default().batch_size, 5);
        set_batch_size(0);
    }

    #[test]
    fn emulated_grid_runs() {
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(9, 2);
        let cfg = EvalConfig {
            emulated: true,
            fastmpc_levels: 12,
            faults: None,
            ..EvalConfig::paper_default()
        };
        let out = evaluate_dataset(&[Algo::Bb], &traces, &video, &cfg);
        assert!(!out.traces.is_empty());
    }

    #[test]
    fn zero_rate_fault_spec_is_bit_identical_to_fault_free() {
        // The acceptance bar for the whole fault layer: arming it at rate
        // zero must not move a single bit of any result.
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(21, 2);
        let plain_cfg = EvalConfig {
            emulated: true,
            fastmpc_levels: 12,
            faults: None,
            ..EvalConfig::paper_default()
        };
        let armed_cfg = EvalConfig {
            faults: Some(FaultSpec::for_rate(0.0, 7)),
            ..plain_cfg.clone()
        };
        let plain = evaluate_dataset(&[Algo::Rb, Algo::Bb], &traces, &video, &plain_cfg);
        let armed = evaluate_dataset(&[Algo::Rb, Algo::Bb], &traces, &video, &armed_cfg);
        assert_eq!(plain.traces.len(), armed.traces.len());
        for (p, a) in plain.traces.iter().zip(&armed.traces) {
            for (ps, as_) in p.sessions.iter().zip(&a.sessions) {
                assert_eq!(ps.qoe.qoe.to_bits(), as_.qoe.qoe.to_bits());
                assert_eq!(ps.records.len(), as_.records.len());
                assert_eq!(ps.total_retries(), 0);
                assert_eq!(as_.total_retries(), 0);
                for (pr, ar) in ps.records.iter().zip(&as_.records) {
                    assert_eq!(pr.download_secs.to_bits(), ar.download_secs.to_bits());
                    assert_eq!(pr.throughput_kbps.to_bits(), ar.throughput_kbps.to_bits());
                }
            }
        }
    }

    #[test]
    fn faulted_grid_is_deterministic_and_finite() {
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(27, 2);
        let cfg = EvalConfig {
            emulated: true,
            fastmpc_levels: 12,
            faults: Some(FaultSpec::for_rate(0.3, 99)),
            ..EvalConfig::paper_default()
        };
        let a = evaluate_dataset(&[Algo::RobustMpc], &traces, &video, &cfg);
        let b = evaluate_dataset(&[Algo::RobustMpc], &traces, &video, &cfg);
        assert_eq!(a.traces.len(), b.traces.len());
        for (x, y) in a.traces.iter().zip(&b.traces) {
            let (sx, sy) = (&x.sessions[0], &y.sessions[0]);
            assert!(sx.qoe.qoe.is_finite());
            assert_eq!(sx.qoe.qoe.to_bits(), sy.qoe.qoe.to_bits());
            assert_eq!(sx.total_retries(), sy.total_retries());
            assert_eq!(
                sx.total_wasted_kbits().to_bits(),
                sy.total_wasted_kbits().to_bits()
            );
        }
    }
}
