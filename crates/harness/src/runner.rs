//! Evaluation driver: runs algorithm × trace grids, computes normalized QoE
//! against the offline optimum, and fans work across CPU cores.

use crate::registry::{Algo, PredictorSpec};
use abr_fastmpc::{FastMpcTable, TableCache, TableConfig};
use abr_net::{
    run_emulated_session_faulted_with, run_emulated_session_with, FaultConfig, FaultPlan,
    NetConfig, RetryPolicy,
};
use abr_offline::{OfflineConfig, OfflineResult, OptCache};
use abr_sim::{run_session_with, SessionResult, SessionScratch, SimConfig};
use abr_trace::Trace;
use abr_video::{QoeWeights, Video};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Whether [`EvalConfig::paper_default`] attaches the process-wide OPT
/// cache. On by default; the CLI's `--no-opt-cache` flag clears it.
static OPT_CACHE_ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-wide OPT cache shared by every experiment in a harness run.
static GLOBAL_OPT_CACHE: OnceLock<Arc<OptCache>> = OnceLock::new();

/// Enables or disables attaching the shared OPT cache to configurations
/// built by [`EvalConfig::paper_default`]. Explicitly-set `opt_cache`
/// fields are unaffected.
pub fn set_opt_cache_enabled(enabled: bool) {
    OPT_CACHE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether [`EvalConfig::paper_default`] currently attaches the shared
/// OPT cache.
pub fn opt_cache_enabled() -> bool {
    OPT_CACHE_ENABLED.load(Ordering::Relaxed)
}

/// The process-wide OPT cache (created on first use). One shared cache is
/// what makes `abr_harness all` solve each distinct (trace, video, offline
/// config) problem exactly once across all experiments.
pub fn global_opt_cache() -> &'static Arc<OptCache> {
    GLOBAL_OPT_CACHE.get_or_init(|| Arc::new(OptCache::new()))
}

/// The cache handle [`EvalConfig::paper_default`] attaches: the shared
/// cache when enabled, `None` when disabled via [`set_opt_cache_enabled`].
pub fn default_opt_cache() -> Option<Arc<OptCache>> {
    if opt_cache_enabled() {
        Some(Arc::clone(global_opt_cache()))
    } else {
        None
    }
}

/// Whether [`EvalConfig::paper_default`] attaches the process-wide FastMPC
/// table cache. On by default; the CLI's `--no-table-cache` flag clears it.
static TABLE_CACHE_ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-wide table cache shared by every experiment in a harness run.
static GLOBAL_TABLE_CACHE: OnceLock<Arc<TableCache>> = OnceLock::new();

/// Enables or disables attaching the shared table cache to configurations
/// built by [`EvalConfig::paper_default`]. Explicitly-set `table_cache`
/// fields are unaffected.
pub fn set_table_cache_enabled(enabled: bool) {
    TABLE_CACHE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether [`EvalConfig::paper_default`] currently attaches the shared
/// table cache.
pub fn table_cache_enabled() -> bool {
    TABLE_CACHE_ENABLED.load(Ordering::Relaxed)
}

/// The process-wide table cache (created on first use). One shared cache is
/// what makes `abr_harness all` generate each distinct FastMPC table exactly
/// once across experiments.
pub fn global_table_cache() -> &'static Arc<TableCache> {
    GLOBAL_TABLE_CACHE.get_or_init(|| Arc::new(TableCache::new()))
}

/// The cache handle [`EvalConfig::paper_default`] attaches: the shared
/// cache when enabled, `None` when disabled via [`set_table_cache_enabled`].
pub fn default_table_cache() -> Option<Arc<TableCache>> {
    if table_cache_enabled() {
        Some(Arc::clone(global_table_cache()))
    } else {
        None
    }
}

/// Deterministic fault injection for the emulated path: per-request odds,
/// the retry policy, and a base seed mixed with each session's seed so
/// every (trace, algorithm) cell draws an independent, reproducible fault
/// stream.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Per-request fault odds.
    pub config: FaultConfig,
    /// Timeout/retry/backoff policy the player survives faults with.
    pub policy: RetryPolicy,
    /// Base fault seed (independent of the predictor seed).
    pub seed: u64,
}

impl FaultSpec {
    /// A spec firing each fault kind with `rate / 5` probability plus a
    /// little request jitter, under the hostile-network retry policy. At
    /// `rate == 0` the plan never fires, jitter is zero, and the policy
    /// imposes no timeout, so sessions are byte-identical to the
    /// fault-free path.
    pub fn for_rate(rate: f64, seed: u64) -> Self {
        let mut config = FaultConfig::uniform(rate);
        let policy = if rate > 0.0 {
            config.jitter_max_secs = 0.03;
            RetryPolicy::hostile()
        } else {
            RetryPolicy::no_timeout()
        };
        FaultSpec {
            config,
            policy,
            seed,
        }
    }
}

/// The process-wide fault spec attached by [`EvalConfig::paper_default`].
/// `None` (the default) runs fault-free; the CLI's `--fault-rate` flag
/// installs one.
static FAULT_SPEC: Mutex<Option<FaultSpec>> = Mutex::new(None);

/// Installs (or clears) the fault spec [`EvalConfig::paper_default`]
/// attaches. Explicitly-set `faults` fields are unaffected.
pub fn set_fault_spec(spec: Option<FaultSpec>) {
    *FAULT_SPEC.lock().expect("fault spec lock") = spec;
}

/// The fault spec [`EvalConfig::paper_default`] currently attaches.
pub fn default_fault_spec() -> Option<FaultSpec> {
    FAULT_SPEC.lock().expect("fault spec lock").clone()
}

/// The FastMPC table for `(video, buffer, weights, levels)`, through `cache`
/// when one is attached (each distinct table generated once per process) or
/// by a direct generation otherwise. Every experiment that needs a table
/// goes through this helper — none call the generator directly — so the
/// cache policy is decided in exactly one place. Builds the same
/// [`TableConfig`] as [`Algo::default_table`], so a hit is bit-identical to
/// a fresh generation.
pub fn fastmpc_table(
    video: &Video,
    buffer_max_secs: f64,
    weights: &QoeWeights,
    levels: usize,
    cache: Option<&Arc<TableCache>>,
) -> Arc<FastMpcTable> {
    let mut cfg = TableConfig::with_levels(levels, buffer_max_secs);
    cfg.weights = weights.clone();
    match cache {
        Some(cache) => cache.ensure(video, buffer_max_secs, &cfg),
        None => Arc::new(FastMpcTable::generate(video, buffer_max_secs, cfg)),
    }
}

/// Configuration of one evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Simulator configuration (buffer size, weights, startup policy).
    pub sim: SimConfig,
    /// Offline-optimal solver configuration (normalized-QoE denominator).
    pub offline: OfflineConfig,
    /// Use the emulation path (real HTTP through the shaped link) instead
    /// of the analytic simulator. The headline Figure 8/9/10 experiments
    /// run emulated, matching the paper's testbed methodology; the
    /// sensitivity studies run simulated, matching Section 7.3.
    pub emulated: bool,
    /// Network parameters of the emulation path.
    pub net: NetConfig,
    /// MPC look-ahead horizon.
    pub horizon: usize,
    /// FastMPC discretization levels per continuous dimension.
    pub fastmpc_levels: usize,
    /// Base RNG seed (oracle predictors derive per-session seeds from it).
    pub seed: u64,
    /// Memo table for offline-optimal results ([`opt_results`] consults it
    /// before solving). `None` solves from scratch every time; results are
    /// bit-identical either way, only wall-clock differs.
    pub opt_cache: Option<Arc<OptCache>>,
    /// Memo table for generated FastMPC decision tables ([`fastmpc_table`]
    /// consults it before generating). `None` generates from scratch every
    /// time; tables are bit-identical either way, only wall-clock differs.
    pub table_cache: Option<Arc<TableCache>>,
    /// Fault injection for the emulated path (`None` = fault-free). Only
    /// consulted when `emulated` is set; the analytic simulator has no
    /// request/response layer to fault.
    pub faults: Option<FaultSpec>,
}

impl EvalConfig {
    /// The paper's defaults.
    pub fn paper_default() -> Self {
        Self {
            sim: SimConfig::paper_default(),
            offline: OfflineConfig::paper_default(),
            emulated: false,
            net: NetConfig::parity(),
            horizon: 5,
            fastmpc_levels: 100,
            seed: 42,
            opt_cache: default_opt_cache(),
            table_cache: default_table_cache(),
            faults: default_fault_spec(),
        }
    }

    /// QoE weights in effect.
    pub fn weights(&self) -> &QoeWeights {
        &self.sim.weights
    }
}

/// The offline optimum for every trace, through `cfg.opt_cache` when one is
/// attached (each distinct problem solved once per process) or by direct
/// parallel solves otherwise. Every experiment that normalizes by
/// `QoE(OPT)` goes through this helper — none call the solver directly —
/// so the cache policy is decided in exactly one place.
pub fn opt_results(traces: &[Trace], video: &Video, cfg: &EvalConfig) -> Vec<Arc<OfflineResult>> {
    match &cfg.opt_cache {
        Some(cache) => cache.ensure(traces, video, &cfg.offline),
        None => par_map(traces.len(), |i| {
            Arc::new(abr_offline::optimal_qoe(&traces[i], video, &cfg.offline))
        }),
    }
}

/// Evaluation of one trace: the offline optimum plus one session per
/// algorithm.
#[derive(Debug, Clone)]
pub struct TraceEval {
    /// Index of the trace within the dataset.
    pub trace_idx: usize,
    /// `QoE(OPT)` for this trace.
    pub opt_qoe: f64,
    /// One session per algorithm, in the order supplied to
    /// [`evaluate_dataset`].
    pub sessions: Vec<SessionResult>,
}

impl TraceEval {
    /// Normalized QoE of algorithm `i`: `QoE(A) / QoE(OPT)`.
    pub fn n_qoe(&self, i: usize) -> f64 {
        self.sessions[i].qoe.qoe / self.opt_qoe
    }
}

/// The full grid result.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Algorithms evaluated, in column order.
    pub algos: Vec<Algo>,
    /// Per-trace evaluations (traces whose offline optimum was not positive
    /// are skipped — normalization is meaningless there; see `skipped`).
    pub traces: Vec<TraceEval>,
    /// Number of traces skipped because `QoE(OPT) <= 0`.
    pub skipped: usize,
}

impl EvalOutcome {
    /// Normalized-QoE samples of one algorithm across all traces.
    pub fn n_qoe_samples(&self, algo: Algo) -> Vec<f64> {
        let i = self.col(algo);
        self.traces.iter().map(|t| t.n_qoe(i)).collect()
    }

    /// All sessions of one algorithm.
    pub fn sessions_of(&self, algo: Algo) -> Vec<&SessionResult> {
        let i = self.col(algo);
        self.traces.iter().map(|t| &t.sessions[i]).collect()
    }

    /// Median normalized QoE of one algorithm.
    pub fn median_n_qoe(&self, algo: Algo) -> f64 {
        abr_trace::stats::median(&self.n_qoe_samples(algo))
    }

    fn col(&self, algo: Algo) -> usize {
        self.algos
            .iter()
            .position(|a| *a == algo)
            .unwrap_or_else(|| panic!("{} was not evaluated", algo.name()))
    }
}

/// Derives a deterministic per-session seed.
fn session_seed(base: u64, trace_idx: usize, algo_idx: usize) -> u64 {
    base ^ (trace_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (algo_idx as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// Runs one algorithm over one trace under `cfg`, using `spec` as the
/// predictor (pass `algo.default_predictor()` unless an experiment overrides
/// it).
#[allow(clippy::too_many_arguments)]
pub fn run_algo_session(
    algo: Algo,
    table: Option<&Arc<FastMpcTable>>,
    spec: PredictorSpec,
    seed: u64,
    trace: &Trace,
    video: &Video,
    cfg: &EvalConfig,
) -> SessionResult {
    let mut scratch = SessionScratch::new();
    let mut out = SessionResult::default();
    run_algo_session_with(
        &mut scratch,
        &mut out,
        algo,
        table,
        spec,
        seed,
        trace,
        video,
        cfg,
    );
    out
}

/// [`run_algo_session`] writing into caller-owned buffers: `scratch` carries
/// the session engine's reusable working memory across calls and `out` is
/// overwritten with the result. Grid drivers keep one scratch per worker so
/// the steady-state loop never touches the allocator; results are
/// bit-identical to [`run_algo_session`].
#[allow(clippy::too_many_arguments)]
pub fn run_algo_session_with(
    scratch: &mut SessionScratch,
    out: &mut SessionResult,
    algo: Algo,
    table: Option<&Arc<FastMpcTable>>,
    spec: PredictorSpec,
    seed: u64,
    trace: &Trace,
    video: &Video,
    cfg: &EvalConfig,
) {
    let mut controller = algo.build(table, cfg.weights(), cfg.horizon);
    let predictor = spec.build(seed);
    if cfg.emulated {
        if let Some(spec) = &cfg.faults {
            run_emulated_session_faulted_with(
                scratch,
                out,
                controller.as_mut(),
                predictor,
                trace,
                video,
                &cfg.sim,
                &cfg.net,
                FaultPlan::new(spec.seed ^ seed, spec.config.clone()),
                &spec.policy,
            );
        } else {
            run_emulated_session_with(
                scratch,
                out,
                controller.as_mut(),
                predictor,
                trace,
                video,
                &cfg.sim,
                &cfg.net,
            );
        }
    } else {
        run_session_with(
            scratch,
            out,
            controller.as_mut(),
            predictor,
            trace,
            video,
            &cfg.sim,
        );
    }
}

/// Fork-join parallel map over trace indices. Re-exported from `abr-par`
/// (the same substrate the FastMPC table generator fans rows across), so the
/// `--threads` flag and the `ABR_THREADS` environment variable govern every
/// parallel section of the harness uniformly.
pub use abr_par::par_map;

/// Evaluates `algos` over `traces`, computing the offline optimum per trace
/// for normalization. Traces with a non-positive optimum are skipped.
pub fn evaluate_dataset(
    algos: &[Algo],
    traces: &[Trace],
    video: &Video,
    cfg: &EvalConfig,
) -> EvalOutcome {
    let table = if algos.iter().any(|a| a.needs_table()) {
        Some(fastmpc_table(
            video,
            cfg.sim.buffer_max_secs,
            cfg.weights(),
            cfg.fastmpc_levels,
            cfg.table_cache.as_ref(),
        ))
    } else {
        None
    };

    // One OPT result per trace, hoisted out of the session loop so the shared
    // cache (when attached) is consulted and filled exactly once per problem.
    let opts = opt_results(traces, video, cfg);

    let evals: Vec<Option<TraceEval>> = par_map(traces.len(), |t_idx| {
        let trace = &traces[t_idx];
        let opt = &opts[t_idx];
        if opt.qoe <= 0.0 {
            return None;
        }
        // One scratch per par_map item: every session on this trace reuses
        // the same working buffers, so the engine's steady state stays off
        // the allocator while each result lands in its own `SessionResult`.
        let mut scratch = SessionScratch::new();
        let sessions = algos
            .iter()
            .enumerate()
            .map(|(a_idx, algo)| {
                let mut out = SessionResult::default();
                run_algo_session_with(
                    &mut scratch,
                    &mut out,
                    *algo,
                    table.as_ref(),
                    algo.default_predictor(),
                    session_seed(cfg.seed, t_idx, a_idx),
                    trace,
                    video,
                    cfg,
                );
                out
            })
            .collect();
        Some(TraceEval {
            trace_idx: t_idx,
            opt_qoe: opt.qoe,
            sessions,
        })
    });

    let skipped = evals.iter().filter(|e| e.is_none()).count();
    EvalOutcome {
        algos: algos.to_vec(),
        traces: evals.into_iter().flatten().collect(),
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_trace::Dataset;
    use abr_video::envivio_video;

    fn quick_cfg() -> EvalConfig {
        EvalConfig {
            fastmpc_levels: 12,
            ..EvalConfig::paper_default()
        }
    }

    #[test]
    fn par_map_matches_serial() {
        let out = par_map(100, |i| i * i);
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u32> = par_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn evaluate_small_grid() {
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(7, 4);
        let cfg = quick_cfg();
        let algos = [Algo::Rb, Algo::Bb, Algo::RobustMpc, Algo::FastMpc];
        let out = evaluate_dataset(&algos, &traces, &video, &cfg);
        assert_eq!(out.traces.len() + out.skipped, 4);
        for t in &out.traces {
            assert!(t.opt_qoe > 0.0);
            assert_eq!(t.sessions.len(), 4);
            for i in 0..4 {
                let n = t.n_qoe(i);
                assert!(n.is_finite());
                // No algorithm should (meaningfully) beat clairvoyant OPT.
                assert!(n <= 1.05, "n-QoE {n} for {}", out.algos[i].name());
            }
        }
        // Median accessor works.
        let med = out.median_n_qoe(Algo::RobustMpc);
        assert!(med.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let video = envivio_video();
        let traces = Dataset::Hsdpa.generate(3, 2);
        let cfg = quick_cfg();
        let a = evaluate_dataset(&[Algo::RobustMpc], &traces, &video, &cfg);
        let b = evaluate_dataset(&[Algo::RobustMpc], &traces, &video, &cfg);
        assert_eq!(a.traces.len(), b.traces.len());
        for (x, y) in a.traces.iter().zip(&b.traces) {
            assert_eq!(x.sessions[0].qoe.qoe, y.sessions[0].qoe.qoe);
        }
    }

    #[test]
    fn opt_cache_does_not_change_results_and_solves_once() {
        let video = envivio_video();
        let traces = Dataset::Hsdpa.generate(11, 3);

        // A private cache (not the process-global one) keeps this test
        // independent of whatever other tests have cached.
        let cache = Arc::new(OptCache::new());
        let cached_cfg = EvalConfig {
            opt_cache: Some(Arc::clone(&cache)),
            ..quick_cfg()
        };
        let plain_cfg = EvalConfig {
            opt_cache: None,
            ..quick_cfg()
        };

        let first = evaluate_dataset(&[Algo::Rb], &traces, &video, &cached_cfg);
        let second = evaluate_dataset(&[Algo::Rb], &traces, &video, &cached_cfg);
        let plain = evaluate_dataset(&[Algo::Rb], &traces, &video, &plain_cfg);

        let stats = cache.stats();
        assert_eq!(
            stats.solves as usize, stats.entries,
            "each distinct problem must be solved exactly once"
        );
        assert_eq!(stats.entries, traces.len());
        assert!(stats.hits >= traces.len() as u64);

        assert_eq!(first.traces.len(), plain.traces.len());
        assert_eq!(first.skipped, plain.skipped);
        for ((a, b), c) in first.traces.iter().zip(&second.traces).zip(&plain.traces) {
            assert_eq!(a.opt_qoe.to_bits(), b.opt_qoe.to_bits());
            assert_eq!(a.opt_qoe.to_bits(), c.opt_qoe.to_bits());
            assert_eq!(a.sessions[0].qoe.qoe.to_bits(), c.sessions[0].qoe.qoe.to_bits());
        }
    }

    #[test]
    fn table_cache_does_not_change_results_and_generates_once() {
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(13, 3);

        // A private cache (not the process-global one) keeps this test
        // independent of whatever other tests have cached.
        let cache = Arc::new(TableCache::new());
        let cached_cfg = EvalConfig {
            table_cache: Some(Arc::clone(&cache)),
            ..quick_cfg()
        };
        let plain_cfg = EvalConfig {
            table_cache: None,
            ..quick_cfg()
        };

        let first = evaluate_dataset(&[Algo::FastMpc], &traces, &video, &cached_cfg);
        let second = evaluate_dataset(&[Algo::FastMpc], &traces, &video, &cached_cfg);
        let plain = evaluate_dataset(&[Algo::FastMpc], &traces, &video, &plain_cfg);

        let stats = cache.stats();
        assert_eq!(
            stats.generates as usize, stats.entries,
            "each distinct table must be generated exactly once"
        );
        assert_eq!(stats.entries, 1);
        assert!(stats.hits >= 1);

        assert_eq!(first.traces.len(), plain.traces.len());
        assert_eq!(first.skipped, plain.skipped);
        for ((a, b), c) in first.traces.iter().zip(&second.traces).zip(&plain.traces) {
            assert_eq!(a.sessions[0].qoe.qoe.to_bits(), b.sessions[0].qoe.qoe.to_bits());
            assert_eq!(a.sessions[0].qoe.qoe.to_bits(), c.sessions[0].qoe.qoe.to_bits());
        }
    }

    #[test]
    fn emulated_grid_runs() {
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(9, 2);
        let cfg = EvalConfig {
            emulated: true,
            fastmpc_levels: 12,
            faults: None,
            ..EvalConfig::paper_default()
        };
        let out = evaluate_dataset(&[Algo::Bb], &traces, &video, &cfg);
        assert!(!out.traces.is_empty());
    }

    #[test]
    fn zero_rate_fault_spec_is_bit_identical_to_fault_free() {
        // The acceptance bar for the whole fault layer: arming it at rate
        // zero must not move a single bit of any result.
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(21, 2);
        let plain_cfg = EvalConfig {
            emulated: true,
            fastmpc_levels: 12,
            faults: None,
            ..EvalConfig::paper_default()
        };
        let armed_cfg = EvalConfig {
            faults: Some(FaultSpec::for_rate(0.0, 7)),
            ..plain_cfg.clone()
        };
        let plain = evaluate_dataset(&[Algo::Rb, Algo::Bb], &traces, &video, &plain_cfg);
        let armed = evaluate_dataset(&[Algo::Rb, Algo::Bb], &traces, &video, &armed_cfg);
        assert_eq!(plain.traces.len(), armed.traces.len());
        for (p, a) in plain.traces.iter().zip(&armed.traces) {
            for (ps, as_) in p.sessions.iter().zip(&a.sessions) {
                assert_eq!(ps.qoe.qoe.to_bits(), as_.qoe.qoe.to_bits());
                assert_eq!(ps.records.len(), as_.records.len());
                assert_eq!(ps.total_retries(), 0);
                assert_eq!(as_.total_retries(), 0);
                for (pr, ar) in ps.records.iter().zip(&as_.records) {
                    assert_eq!(pr.download_secs.to_bits(), ar.download_secs.to_bits());
                    assert_eq!(pr.throughput_kbps.to_bits(), ar.throughput_kbps.to_bits());
                }
            }
        }
    }

    #[test]
    fn faulted_grid_is_deterministic_and_finite() {
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(27, 2);
        let cfg = EvalConfig {
            emulated: true,
            fastmpc_levels: 12,
            faults: Some(FaultSpec::for_rate(0.3, 99)),
            ..EvalConfig::paper_default()
        };
        let a = evaluate_dataset(&[Algo::RobustMpc], &traces, &video, &cfg);
        let b = evaluate_dataset(&[Algo::RobustMpc], &traces, &video, &cfg);
        assert_eq!(a.traces.len(), b.traces.len());
        for (x, y) in a.traces.iter().zip(&b.traces) {
            let (sx, sy) = (&x.sessions[0], &y.sessions[0]);
            assert!(sx.qoe.qoe.is_finite());
            assert_eq!(sx.qoe.qoe.to_bits(), sy.qoe.qoe.to_bits());
            assert_eq!(sx.total_retries(), sy.total_retries());
            assert_eq!(
                sx.total_wasted_kbits().to_bits(),
                sy.total_wasted_kbits().to_bits()
            );
        }
    }
}
