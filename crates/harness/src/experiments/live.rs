//! `live`: the live/low-latency streaming frontier.
//!
//! Sweeps `{encode delay} × {live buffer cap} × {BB, RobustMPC,
//! FastMPC-live}` over the FCC (broadband) and HSDPA (3G) trace models
//! with the fault layer armed, through the emulated HTTP path — the same
//! shared stepping core that paces chunk availability at the encoder's
//! wall clock and skips chunks for catch-up when a stall pushes the
//! playhead too far behind the edge. Each cell reports the raw live QoE
//! (including the `−w_lat · latency` term every algorithm is scored
//! with), rebuffering, playback latency, and catch-up skips; `live.csv`
//! carries the grid.
//!
//! The MPC family plans with the same live information it is scored on:
//! the availability-truncated horizon plus the latency term, and
//! FastMPC-live looks its decisions up in the truncated-horizon table
//! slices enumerated at the effective live buffer cap. BB only sees the
//! tighter buffer cap — the frontier summary quantifies what latency-aware
//! planning buys over buffer-based heuristics per regime.
//!
//! A second leg drives live sessions through the event-driven serve
//! engine with the multiplexed load generator: every wire session must be
//! bit-identical to its in-process twin (a mismatch aborts the run), and
//! the server's live-latency histogram must have seen every decision
//! (`live_serve.csv`).

use super::ExpOptions;
use crate::registry::{Algo, PredictorSpec};
use crate::report::{fmt_num, write_csv, Table};
use crate::runner::{par_map, run_algo_session, EvalConfig, FaultSpec};
use abr_fastmpc::{FastMpcTable, TableConfig};
use abr_serve::{run_mux_load, Backend, EventConfig, EventServer, MuxOptions};
use abr_trace::stats::{median, percentile};
use abr_trace::Dataset;
use abr_video::{envivio_video, LiveSchedule, Video};
use std::sync::Arc;

/// Default encoder delays swept, seconds past each chunk's nominal end.
/// Smaller delays put the player closer to the edge with less slack.
pub const ENCODE_DELAYS: [f64; 2] = [0.5, 2.0];

/// Default live buffer caps swept, seconds (the VOD `B_max` stays 30 s;
/// the effective cap is the minimum of the two).
pub const LIVE_CAPS: [f64; 2] = [8.0, 16.0];

/// Default latency QoE weight `w_lat` when `--latency-weight` is absent:
/// every second behind the edge costs this much QoE per chunk, which makes
/// the latency term comparable to the switching penalty on the Envivio
/// ladder without drowning the bitrate utility.
pub const DEFAULT_LATENCY_WEIGHT: f64 = 10.0;

/// Fault rate armed for the sweep when `--fault-rate` is absent.
const DEFAULT_FAULT_RATE: f64 = 0.05;

/// The encoder delays a given options set sweeps.
pub fn encode_delays(opts: &ExpOptions) -> Vec<f64> {
    match opts.encode_delay {
        Some(d) => vec![d],
        None if opts.quick => vec![2.0],
        None => ENCODE_DELAYS.to_vec(),
    }
}

/// The live buffer caps a given options set sweeps.
pub fn live_caps(opts: &ExpOptions) -> Vec<f64> {
    match opts.max_buffer_live {
        Some(b) => vec![b],
        None if opts.quick => vec![8.0],
        None => LIVE_CAPS.to_vec(),
    }
}

/// The latency weight in effect.
pub fn latency_weight(opts: &ExpOptions) -> f64 {
    opts.latency_weight.unwrap_or(DEFAULT_LATENCY_WEIGHT)
}

/// The FastMPC table for a live regime: truncated-horizon slices (one per
/// effective horizon in `[1, horizon]`) enumerated at the *effective*
/// buffer cap — the same table the serve path builds for a live session,
/// so wire twins stay bit-identical.
fn live_table(video: &Video, cfg: &EvalConfig, cap_secs: f64) -> Arc<FastMpcTable> {
    let eff = cfg.sim.buffer_max_secs.min(cap_secs);
    let mut tcfg = TableConfig::with_levels(cfg.fastmpc_levels, eff);
    tcfg.weights = cfg.sim.weights.clone();
    let slices = tcfg.horizon;
    let tcfg = tcfg.live_slices(slices);
    match &cfg.table_cache {
        Some(cache) => cache.ensure(video, eff, &tcfg),
        None => Arc::new(FastMpcTable::generate(video, eff, tcfg)),
    }
}

/// Aggregates of one (dataset, regime, algorithm) cell.
struct Cell {
    median_qoe: f64,
    mean_rebuf: f64,
    median_lat: f64,
    p95_lat: f64,
    skips_per_session: f64,
}

/// Runs one cell: every trace through the emulated faulted path in live
/// mode, one session per trace.
fn run_cell(
    algo: Algo,
    table: Option<&Arc<FastMpcTable>>,
    traces: &[abr_trace::Trace],
    video: &Video,
    cfg: &EvalConfig,
) -> Cell {
    let results: Vec<(f64, f64, f64, f64)> = par_map(traces.len(), |i| {
        let r = run_algo_session(
            algo,
            table,
            PredictorSpec::Harmonic,
            cfg.seed ^ i as u64,
            &traces[i],
            video,
            cfg,
        );
        (
            r.qoe.qoe,
            r.total_rebuffer_secs(),
            r.mean_latency_secs().unwrap_or(f64::NAN),
            r.skipped_chunks() as f64,
        )
    });
    let qoe: Vec<f64> = results.iter().map(|x| x.0).collect();
    let rebuf: Vec<f64> = results.iter().map(|x| x.1).collect();
    let lat: Vec<f64> = results.iter().map(|x| x.2).filter(|x| x.is_finite()).collect();
    let skips: f64 = results.iter().map(|x| x.3).sum::<f64>() / results.len().max(1) as f64;
    Cell {
        median_qoe: median(&qoe),
        mean_rebuf: rebuf.iter().sum::<f64>() / rebuf.len().max(1) as f64,
        median_lat: median(&lat),
        p95_lat: percentile(&lat, 95.0),
        skips_per_session: skips,
    }
}

/// Runs the sweep plus the live serve leg and renders the report (also
/// writing `live.csv` and `live_serve.csv` under `--out`).
pub fn run(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let delays = encode_delays(opts);
    let caps = live_caps(opts);
    let w_lat = latency_weight(opts);
    let fault_rate = opts.fault_rate.unwrap_or(DEFAULT_FAULT_RATE);
    let n_traces = opts.traces_capped(if opts.quick { 6 } else { 20 });
    let datasets = [(Dataset::Fcc, "FCC"), (Dataset::Hsdpa, "HSDPA/3G")];
    // Live MPC plans every path with the paper-order enumeration; RobustMPC
    // is the representative (FastMPC-live is its table-compiled twin).
    let algos = [
        (Algo::Bb, "BB"),
        (Algo::RobustMpc, "RobustMPC"),
        (Algo::FastMpc, "FastMPC-live"),
    ];

    let mut t = Table::new(
        "live/low-latency frontier: emulated path, faults armed",
        &[
            "dataset",
            "encode_delay_s",
            "max_buffer_live_s",
            "algorithm",
            "median_qoe",
            "mean_rebuf_s",
            "median_latency_s",
            "p95_latency_s",
            "skips_per_session",
        ],
    );
    // (regime label, BB cell, RobustMPC cell) pairs for the frontier
    // summary below.
    let mut frontier: Vec<(String, Cell, Cell)> = Vec::new();

    for (ds, ds_name) in datasets {
        let traces = ds.generate(opts.seed, n_traces);
        for &delay in &delays {
            for &cap in &caps {
                let mut cfg = EvalConfig {
                    emulated: true,
                    fastmpc_levels: if opts.quick { 12 } else { 30 },
                    faults: Some(FaultSpec::for_rate(fault_rate, opts.fault_seed)),
                    seed: opts.seed,
                    ..EvalConfig::paper_default()
                };
                cfg.sim.live = Some(LiveSchedule {
                    encode_delay_secs: delay,
                    max_buffer_secs: cap,
                });
                // Every algorithm is scored on the same live QoE vector —
                // the MPC family additionally plans with it.
                cfg.sim.weights.w_lat = w_lat;
                let table = live_table(&video, &cfg, cap);
                let mut cells: Vec<Cell> = Vec::new();
                for (algo, label) in algos {
                    let tbl = algo.needs_table().then_some(&table);
                    let cell = run_cell(algo, tbl, &traces, &video, &cfg);
                    t.row(vec![
                        ds_name.to_string(),
                        fmt_num(delay),
                        fmt_num(cap),
                        label.to_string(),
                        fmt_num(cell.median_qoe),
                        fmt_num(cell.mean_rebuf),
                        fmt_num(cell.median_lat),
                        fmt_num(cell.p95_lat),
                        fmt_num(cell.skips_per_session),
                    ]);
                    cells.push(cell);
                }
                let mpc = cells.remove(1);
                let bb = cells.remove(0);
                frontier.push((format!("{ds_name} d={delay} cap={cap}"), bb, mpc));
            }
        }
    }
    write_csv(opts.out.as_deref(), "live", &t).expect("csv write");

    // The latency–QoE frontier: live-MPC dominates buffer-based in a
    // regime when it is no worse on both axes and strictly better on one.
    let mut summary = Table::new(
        "live frontier: latency-aware MPC vs buffer-based",
        &[
            "regime",
            "qoe BB",
            "qoe live-MPC",
            "latency BB",
            "latency live-MPC",
            "live-MPC dominates",
        ],
    );
    let mut dominated = 0usize;
    for (label, bb, mpc) in &frontier {
        let dominates = mpc.median_qoe >= bb.median_qoe
            && mpc.median_lat <= bb.median_lat
            && (mpc.median_qoe > bb.median_qoe || mpc.median_lat < bb.median_lat);
        dominated += usize::from(dominates);
        summary.row(vec![
            label.clone(),
            fmt_num(bb.median_qoe),
            fmt_num(mpc.median_qoe),
            fmt_num(bb.median_lat),
            fmt_num(mpc.median_lat),
            dominates.to_string(),
        ]);
    }
    write_csv(opts.out.as_deref(), "live_frontier", &summary).expect("csv write");

    // Serve leg: live sessions through the event engine, each wire
    // session verified bit-identical against its in-process twin, and the
    // server-side latency histogram sanity-checked.
    let serve_live = LiveSchedule {
        encode_delay_secs: delays[0],
        max_buffer_secs: caps[0],
    };
    let sessions = if opts.quick { 8 } else { 24 };
    let loops = opts.event_loops.unwrap_or(2);
    let mut twin = Table::new(
        "live serve: event engine, wire twins + live latency histogram",
        &[
            "backend",
            "sessions",
            "decisions",
            "mismatches",
            "live_latency_count",
            "live_p50_s",
            "live_p99_s",
        ],
    );
    for backend in [Backend::Bb, Backend::RobustMpc, Backend::FastMpc] {
        let mut handle = EventServer::spawn(EventConfig {
            loops,
            max_conns: opts.max_conns,
            ..EventConfig::default()
        })
        .expect("bind loopback event server");
        let mut load = MuxOptions::new(sessions);
        load.backend = backend;
        load.seed = opts.seed;
        load.conns = sessions.div_ceil(8).clamp(1, 16);
        load.live = Some(serve_live);
        load.latency_weight = w_lat;
        let mux = run_mux_load(handle.addr(), &load);
        let report = mux.report;
        assert_eq!(
            report.mismatches,
            0,
            "live wire-twin gate ({}):\n{}",
            backend.token(),
            report.mismatch_details.join("\n")
        );
        let hist = &handle.service().metrics().live_latency;
        assert!(
            hist.count() > 0,
            "live decisions must land in the server's latency histogram"
        );
        // The recorder scales latency-seconds by 1e9 into the histogram's
        // nanosecond domain, so `_us` readings are seconds * 1e6.
        twin.row(vec![
            backend.token().to_string(),
            sessions.to_string(),
            report.decisions.to_string(),
            report.mismatches.to_string(),
            hist.count().to_string(),
            fmt_num(hist.quantile_us(0.50) / 1e6),
            fmt_num(hist.quantile_us(0.99) / 1e6),
        ]);
        handle.shutdown();
    }
    write_csv(opts.out.as_deref(), "live_serve", &twin).expect("csv write");

    let mut s = t.render();
    s.push_str(&summary.render());
    s.push_str(&format!(
        "live-MPC dominates buffer-based on the latency-QoE frontier in \
         {dominated}/{} regimes (w_lat {w_lat}, fault rate {fault_rate})\n\n",
        frontier.len()
    ));
    s.push_str(&twin.render());
    s.push_str(&format!(
        "live serve leg: encode delay {} s, live cap {} s, {loops} epoll \
         loop(s); every wire session bit-identical to its in-process twin\n\n",
        serve_live.encode_delay_secs, serve_live.max_buffer_secs
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_honor_flags() {
        let default = ExpOptions::default();
        assert_eq!(encode_delays(&default), ENCODE_DELAYS.to_vec());
        assert_eq!(live_caps(&default), LIVE_CAPS.to_vec());
        assert_eq!(latency_weight(&default), DEFAULT_LATENCY_WEIGHT);

        let quick = ExpOptions {
            quick: true,
            ..ExpOptions::default()
        };
        assert_eq!(encode_delays(&quick), vec![2.0]);
        assert_eq!(live_caps(&quick), vec![8.0]);

        let pinned = ExpOptions {
            live: true,
            encode_delay: Some(1.5),
            max_buffer_live: Some(12.0),
            latency_weight: Some(25.0),
            ..ExpOptions::default()
        };
        assert_eq!(encode_delays(&pinned), vec![1.5]);
        assert_eq!(live_caps(&pinned), vec![12.0]);
        assert_eq!(latency_weight(&pinned), 25.0);
    }

    #[test]
    fn live_smoke() {
        let opts = ExpOptions {
            traces: 2,
            quick: true,
            ..ExpOptions::default()
        };
        let s = run(&opts);
        assert!(s.contains("live/low-latency frontier"), "{s}");
        assert!(s.contains("FastMPC-live"), "{s}");
        assert!(s.contains("RobustMPC"), "{s}");
        assert!(s.contains("dominates buffer-based"), "{s}");
        // The serve leg ran all three backends through the twin gate.
        assert!(s.contains("wire twins"), "{s}");
        assert!(s.contains("bit-identical to its in-process twin"), "{s}");
    }
}
