//! `catalog-bench`: the tiered table catalog under a million-video-shaped
//! fleet workload.
//!
//! Synthesizes a large catalog of CBR videos with varied ladders, assigns
//! closed-loop sessions to videos by a Zipf(α) popularity law, and drives
//! them through the event-driven server with the multiplexed load
//! generator. The sweep compares the unbounded table cache (the baseline
//! this PR replaces) against the bounded hot tier at several byte
//! budgets, each with an mmap-backed warm tier, reporting decision
//! throughput, exact tail latency, and the store's tier counters.
//! Every point enforces two gates:
//!
//! * bit-identity — each session's remote decision sequence equals its
//!   in-process twin;
//! * exactly-once generation — `table_generates` equals the number of
//!   distinct videos the workload touched, at *every* budget: evicted
//!   tables must come back zero-copy from the warm tier, never from a
//!   second offline enumeration.
//!
//! `catalog_bench.csv` carries one row per budget point:
//!
//! ```text
//! budget_mb,videos,sessions,zipf_alpha,distinct,decisions,dec_per_sec,
//! p50_us,p99_us,p999_us,hot_entries,hot_bytes,hot_hits,warm_hits,
//! generates,evictions,mismatches
//! ```

use super::ExpOptions;
use crate::report::{fmt_num, write_csv, Table};
use abr_fastmpc::{FastMpcTable, TableConfig, TableStoreConfig, TableStoreStats};
use abr_serve::{run_mux_load, Backend, EventConfig, EventServer, LoadReport, MuxCatalog, MuxOptions};
use abr_sim::SimConfig;
use abr_video::{Ladder, Video, VideoBuilder};
use std::path::PathBuf;
use std::sync::Arc;

/// Target requests in flight per connection (see `serve_scale`).
const PIPE_DEPTH: usize = 16;

/// Connection-pool ceiling shared with the scale sweep.
const CONN_POOL_CAP: usize = 128;

/// Session-store shards: catalog runs stay in the low-thousands of
/// sessions, where the serve default is comfortable.
const CATALOG_SHARDS: usize = 32;

/// Quick mode trims the catalog to this many videos so smoke runs
/// generate at most a few dozen tables.
const QUICK_CATALOG: usize = 64;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)`.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Synthesizes `n` videos with varied ladders and lengths, deterministic
/// in `seed`: 4–9 levels, base rate 200–600 kbps, level ratio 1.5–2.0
/// with ±5% per-level jitter (still strictly ascending since
/// 1.5 × 0.95 / 1.05 > 1), 8–16 chunks of 4 s, constant bitrate.
///
/// Rates are quantized to whole bits per second: the session spec ships
/// the video as a DASH MPD whose `bandwidth` attribute is an integer, so
/// only bps-exact ladders survive the wire round-trip — anything finer
/// would leave the server's table a few ulps away from the client twin's
/// and flip near-tie decisions.
pub fn synthesize_catalog(n: usize, seed: u64) -> Vec<Video> {
    let mut state = seed ^ 0xCA7A_106B_E9C5_57A1;
    (0..n)
        .map(|_| {
            let levels = 4 + (splitmix64(&mut state) % 6) as usize;
            let base = 200.0 + unit(&mut state) * 400.0;
            let ratio = 1.5 + unit(&mut state) * 0.5;
            let rates: Vec<f64> = (0..levels)
                .map(|l| {
                    let kbps = base * ratio.powi(l as i32) * (0.95 + unit(&mut state) * 0.1);
                    (kbps * 1000.0).round() / 1000.0
                })
                .collect();
            let chunks = 8 + (splitmix64(&mut state) % 9) as usize;
            VideoBuilder::new(Ladder::new(rates).expect("synthesized ladder ascends"))
                .chunks(chunks)
                .chunk_secs(4.0)
                .cbr()
        })
        .collect()
}

/// Zipf(α) rank-frequency assignment: session `i` watches video
/// `assignment[i]`, with video 0 the most popular rank. Inverse-CDF
/// sampling over the normalized weights `1/(r+1)^α`.
pub fn zipf_assignment(sessions: usize, videos: usize, alpha: f64, seed: u64) -> Vec<usize> {
    assert!(videos > 0, "catalog must hold at least one video");
    let mut cdf = Vec::with_capacity(videos);
    let mut acc = 0.0;
    for r in 0..videos {
        acc += 1.0 / ((r + 1) as f64).powf(alpha);
        cdf.push(acc);
    }
    let total = acc;
    let mut state = seed ^ 0x51F0_ABCD_2210_9E37;
    (0..sessions)
        .map(|_| {
            let u = unit(&mut state) * total;
            cdf.partition_point(|&c| c < u).min(videos - 1)
        })
        .collect()
}

/// One generated table for the most popular video: the yardstick for the
/// "hot tier must hold at least one table" floor, built with the same
/// config the server derives from a paper-default session spec.
fn probe_table_bytes(video: &Video, sim: &SimConfig) -> usize {
    let mut cfg = TableConfig::with_levels(video.ladder().len(), sim.buffer_max_secs);
    cfg.weights = sim.weights.clone();
    FastMpcTable::generate(video, sim.buffer_max_secs, cfg).binary_size_bytes()
}

/// Spawns a fresh event server with the given store config, drives the
/// whole catalog workload through it, and returns the load report plus
/// the server-side tier counters (read before shutdown).
fn run_point(
    catalog: &Arc<MuxCatalog>,
    tables: TableStoreConfig,
    loops: usize,
    max_conns: usize,
    conns: usize,
    seed: u64,
) -> (LoadReport, TableStoreStats) {
    let sessions = catalog.assignment.len();
    let mut handle = EventServer::spawn(EventConfig {
        loops,
        max_conns,
        shards: CATALOG_SHARDS,
        tables,
        ..EventConfig::default()
    })
    .expect("bind loopback event server");
    let mut load = MuxOptions::new(sessions);
    load.backend = Backend::FastMpc;
    load.seed = seed;
    load.conns = conns;
    load.catalog = Some(Arc::clone(catalog));
    let mux = run_mux_load(handle.addr(), &load);
    let stats = handle.service().store().tables().stats();
    handle.shutdown();
    (mux.report, stats)
}

/// Scratch directory for one bounded point's warm tier.
fn warm_dir_for(point: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "abr-catalog-bench-{}-{point}",
        std::process::id()
    ))
}

/// Runs the budget sweep and renders the report (plus `catalog_bench.csv`).
pub fn run(opts: &ExpOptions) -> String {
    let videos_n = if opts.quick {
        opts.catalog_videos.min(QUICK_CATALOG)
    } else {
        opts.catalog_videos
    };
    let sessions = opts.sessions;
    let alpha = opts.zipf_alpha;
    let loops = opts.event_loops.unwrap_or(2);
    let sim = SimConfig::paper_default();

    let videos = synthesize_catalog(videos_n, opts.seed);
    let assignment = zipf_assignment(sessions, videos_n, alpha, opts.seed);
    let distinct = {
        let mut seen = vec![false; videos_n];
        assignment.iter().for_each(|&v| seen[v] = true);
        seen.iter().filter(|&&s| s).count()
    };
    let catalog = Arc::new(MuxCatalog { videos, assignment });
    let conns = sessions.div_ceil(PIPE_DEPTH).clamp(1, CONN_POOL_CAP);
    let max_conns = opts.max_conns.max(conns + 16);

    let mut t = Table::new(
        "catalog-bench: tiered table catalog, throughput vs hot-tier budget",
        &[
            "budget_mb",
            "videos",
            "sessions",
            "zipf_alpha",
            "distinct",
            "decisions",
            "dec_per_sec",
            "p50_us",
            "p99_us",
            "p999_us",
            "hot_entries",
            "hot_bytes",
            "hot_hits",
            "warm_hits",
            "generates",
            "evictions",
            "mismatches",
        ],
    );
    let mut row = |label: String, rep: &LoadReport, stats: &TableStoreStats| {
        t.row(vec![
            label,
            videos_n.to_string(),
            sessions.to_string(),
            fmt_num(alpha),
            distinct.to_string(),
            rep.decisions.to_string(),
            fmt_num(rep.decisions_per_sec),
            fmt_num(rep.p50_us),
            fmt_num(rep.p99_us),
            fmt_num(rep.p999_us),
            stats.hot_entries.to_string(),
            stats.hot_bytes.to_string(),
            stats.hot_hits.to_string(),
            stats.warm_hits.to_string(),
            stats.generates.to_string(),
            stats.evictions.to_string(),
            rep.mismatches.to_string(),
        ]);
    };

    let gate = |label: &str, rep: &LoadReport, stats: &TableStoreStats| {
        assert_eq!(
            rep.mismatches, 0,
            "differential gate at budget {label}:\n{}",
            rep.mismatch_details.join("\n")
        );
        assert_eq!(
            stats.generates, distinct as u64,
            "exactly-once gate at budget {label}: {} offline enumerations for \
             {distinct} distinct videos (evicted tables must come back from \
             the warm tier, not regeneration)",
            stats.generates
        );
    };

    // Baseline: the unbounded, memory-only cache this PR's store replaces.
    let (rep0, stats0) = run_point(
        &catalog,
        TableStoreConfig::default(),
        loops,
        max_conns,
        conns,
        opts.seed,
    );
    gate("unbounded", &rep0, &stats0);
    assert_eq!(stats0.evictions, 0, "unbounded store must never evict");
    // With every touched table resident, the hot tier's byte counter *is*
    // the workload's exact working-set size — the anchor for the budgets.
    let ws = stats0.hot_bytes;
    row("unbounded".into(), &rep0, &stats0);

    let probe = probe_table_bytes(&catalog.videos[0], &sim);
    let budgets: Vec<usize> = match opts.table_budget_mb {
        Some(mb) => {
            let bytes = (mb * 1024.0 * 1024.0) as usize;
            assert!(
                bytes >= probe,
                "--table-budget-mb {mb} is smaller than one decision table \
                 ({probe} bytes for the most popular video); the hot tier \
                 must hold at least one table"
            );
            vec![bytes]
        }
        None if opts.quick => vec![(ws / 2).max(probe)],
        None => vec![ws, (ws / 2).max(probe), (ws / 10).max(probe)],
    };

    for (i, &budget) in budgets.iter().enumerate() {
        let warm = warm_dir_for(i);
        std::fs::create_dir_all(&warm).expect("create warm-tier scratch dir");
        let (rep, stats) = run_point(
            &catalog,
            TableStoreConfig {
                hot_budget_bytes: budget,
                warm_dir: Some(warm.clone()),
            },
            loops,
            max_conns,
            conns,
            opts.seed,
        );
        let label = fmt_num(budget as f64 / (1024.0 * 1024.0));
        gate(&label, &rep, &stats);
        // The store's one documented overshoot: a single table larger than
        // the whole budget may be the lone resident.
        assert!(
            stats.hot_bytes <= budget || stats.hot_entries == 1,
            "hot tier ended at {} bytes across {} entries, over its \
             {budget}-byte budget",
            stats.hot_bytes,
            stats.hot_entries
        );
        row(label, &rep, &stats);
        let _ = std::fs::remove_dir_all(&warm);
    }

    drop(row);
    write_csv(opts.out.as_deref(), "catalog_bench", &t).expect("csv write");
    let mut s = t.render();
    s.push_str(&format!(
        "Zipf({}) over {videos_n} videos touched {distinct} distinct titles \
         (working set {ws} bytes). Every point spawns a fresh event-driven \
         server ({loops} loop(s)), verifies all {sessions} sessions \
         bit-identical to their in-process twins, and asserts exactly one \
         offline enumeration per distinct video — bounded points serve \
         evicted tables zero-copy from the mmap'd warm tier. Contract: with \
         the hot tier at the working-set size, bounded throughput stays \
         within 10% of the unbounded baseline.\n\n",
        fmt_num(alpha)
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_top_heavy_and_in_range() {
        let a = zipf_assignment(2000, 50, 1.2, 7);
        assert_eq!(a.len(), 2000);
        assert!(a.iter().all(|&v| v < 50));
        let count = |rank: usize| a.iter().filter(|&&v| v == rank).count();
        assert!(
            count(0) > count(25),
            "rank 0 ({}) should dominate rank 25 ({})",
            count(0),
            count(25)
        );
    }

    #[test]
    fn synthesized_catalog_is_deterministic_and_well_formed() {
        let a = synthesize_catalog(20, 42);
        let b = synthesize_catalog(20, 42);
        assert_eq!(a.len(), 20);
        for (va, vb) in a.iter().zip(&b) {
            assert_eq!(va.ladder().len(), vb.ladder().len());
            assert!((4..=9).contains(&va.ladder().len()));
            assert!((8..=16).contains(&va.num_chunks()));
            for l in va.ladder().iter() {
                assert_eq!(
                    va.ladder().kbps(l).to_bits(),
                    vb.ladder().kbps(l).to_bits()
                );
            }
        }
        // A different seed must shuffle the geometry somewhere.
        let c = synthesize_catalog(20, 43);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(va, vc)| va.ladder().len() != vc.ladder().len()
                || va.num_chunks() != vc.num_chunks()));
    }

    #[test]
    fn catalog_bench_smoke() {
        let opts = ExpOptions {
            quick: true,
            catalog_videos: 6,
            sessions: 12,
            ..ExpOptions::default()
        };
        let s = run(&opts);
        assert!(s.contains("catalog-bench"));
        assert!(s.contains("unbounded"));
        assert!(s.contains("within 10%"));
    }
}
