//! One regenerator per table/figure of the paper's evaluation.
//!
//! Each submodule exposes a `run(&ExpOptions) -> String` that prints the
//! same rows/series the paper plots and optionally writes CSV files. The
//! index mapping experiments to paper artifacts lives in DESIGN.md.

pub mod ablation;
pub mod catalog_bench;
pub mod fairness;
pub mod fig11;
pub mod fig12;
pub mod fig7;
pub mod fig8;
pub mod levels;
pub mod live;
pub mod multiplayer;
pub mod overhead;
pub mod robustness;
pub mod serve_bench;
pub mod serve_scale;
pub mod table1;

use std::path::PathBuf;

/// Options common to all experiments.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Traces per dataset.
    pub traces: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Directory for CSV output (`None` = text only).
    pub out: Option<PathBuf>,
    /// Quick mode: smaller sweeps for smoke runs.
    pub quick: bool,
    /// Worker-thread cap for parallel sections (`None` = `ABR_THREADS`
    /// environment variable if set, else all cores). Set from `--threads`.
    pub threads: Option<usize>,
    /// On-disk OPT cache: loaded before the run and saved after, so repeated
    /// harness invocations skip the offline DP entirely. Set from
    /// `--opt-cache PATH`.
    pub opt_cache_path: Option<PathBuf>,
    /// Disables the in-process OPT cache (every experiment solves its own
    /// OPT problems from scratch). Set from `--no-opt-cache`.
    pub no_opt_cache: bool,
    /// Disables the in-process FastMPC table cache (every experiment
    /// generates its own decision tables from scratch). Set from
    /// `--no-table-cache`.
    pub no_table_cache: bool,
    /// Fault rate for the emulated path (`--fault-rate`). `None` leaves
    /// every experiment fault-free; the `robustness` experiment sweeps its
    /// own grid unless this pins a single rate.
    pub fault_rate: Option<f64>,
    /// Base seed for fault streams (`--fault-seed`), independent of the
    /// predictor seed so the two sources of randomness can be varied
    /// separately.
    pub fault_seed: u64,
    /// Concurrent load-generator sessions for `serve-bench`
    /// (`--sessions`, must be positive).
    pub sessions: usize,
    /// Decision-server worker threads for `serve-bench` (`--workers`,
    /// must be positive).
    pub workers: usize,
    /// Restricts `serve-bench` to one backend (`--backend`); `None`
    /// sweeps the benchmark set.
    pub backend: Option<String>,
    /// Decision batch size (`--batch-size`, must be positive): grid
    /// experiments step this many sessions in lockstep through the
    /// columnar `decide_batch` kernel, and `serve-bench` coalesces this
    /// many virtual sessions per bulk `POST /decisions` request. `None`
    /// falls back to the `ABR_BATCH` environment variable, then to 1 (the
    /// scalar path). Results are bit-identical at every size.
    pub batch: Option<usize>,
    /// Event-loop threads for the event-driven serve engine
    /// (`--event-loops`, must be positive). `None` keeps `serve-bench`
    /// on the threaded engine; `serve-scale` defaults to 2.
    pub event_loops: Option<usize>,
    /// Open-connection cap for the event-driven server (`--max-conns`,
    /// must be positive).
    pub max_conns: usize,
    /// Session counts for the `serve-scale` sweep (`--scale-sessions`,
    /// comma-separated positive integers); `None` uses the default
    /// 256→50k grid (64, 256 under `--quick`).
    pub scale_sessions: Option<Vec<usize>>,
    /// Record every session's decision sequence to this file
    /// (`--decisions-out`), for byte-diffing runs across server engines.
    pub decisions_out: Option<PathBuf>,
    /// Hot-tier byte budget in MiB for `catalog-bench`
    /// (`--table-budget-mb`, positive and at most 65536). `None` sweeps
    /// the default budget ladder derived from the measured working set.
    pub table_budget_mb: Option<f64>,
    /// Catalog size for `catalog-bench` (`--catalog-videos`, positive and
    /// at most 1,000,000); `--quick` trims the catalog to 64.
    pub catalog_videos: usize,
    /// Zipf popularity exponent for `catalog-bench` (`--zipf-alpha`, in
    /// `[0, 10]`; 0 is uniform).
    pub zipf_alpha: f64,
    /// Players per shared bottleneck for the `fairness` experiment
    /// (`--players`, must be positive); `None` sweeps the default grid
    /// (8 and 64; 4 and 16 under `--quick`).
    pub players: Option<usize>,
    /// Independent bottleneck groups per fairness cell (`--bottlenecks`,
    /// must be positive). Each group is one shared-link run over its own
    /// trace and fault stream.
    pub bottlenecks: usize,
    /// Weight of the coordinator's fairness term (`--fairness-alpha`,
    /// finite and non-negative): 0 is pure efficiency, larger values
    /// approach max-min fairness.
    pub fairness_alpha: f64,
    /// Live mode opt-in (`--live`): required by the live value flags
    /// below; with no value flags the `live` experiment sweeps its
    /// default regime grid either way.
    pub live: bool,
    /// Pins the `live` experiment's encoder delay (`--encode-delay`,
    /// seconds past each chunk's nominal end; finite and positive,
    /// requires `--live`). `None` sweeps the default delays.
    pub encode_delay: Option<f64>,
    /// Pins the `live` experiment's player-side buffer cap
    /// (`--max-buffer-live`, seconds; finite and positive, requires
    /// `--live`). `None` sweeps the default caps.
    pub max_buffer_live: Option<f64>,
    /// Latency QoE weight `w_lat` for live sessions (`--latency-weight`,
    /// finite and non-negative, requires `--live`); `None` uses the live
    /// experiment's default.
    pub latency_weight: Option<f64>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            traces: 100,
            seed: 42,
            out: None,
            quick: false,
            threads: None,
            opt_cache_path: None,
            no_opt_cache: false,
            no_table_cache: false,
            fault_rate: None,
            fault_seed: 7,
            sessions: 64,
            workers: 4,
            backend: None,
            batch: None,
            event_loops: None,
            max_conns: 16 * 1024,
            scale_sessions: None,
            decisions_out: None,
            table_budget_mb: None,
            catalog_videos: 10_000,
            zipf_alpha: 1.0,
            players: None,
            bottlenecks: 4,
            fairness_alpha: 1.0,
            live: false,
            encode_delay: None,
            max_buffer_live: None,
            latency_weight: None,
        }
    }
}

impl ExpOptions {
    /// Trace count, reduced for expensive sweeps.
    pub fn traces_capped(&self, cap: usize) -> usize {
        self.traces.min(cap)
    }
}
