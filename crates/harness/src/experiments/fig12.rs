//! Figure 12 — MPC configuration parameters:
//!
//! * (a) FastMPC discretization levels vs. n-QoE, with perfect and
//!   harmonic-mean prediction;
//! * (b) look-ahead horizon vs. n-QoE at 10 / 15 / 20 % prediction error.

use super::ExpOptions;
use crate::registry::{Algo, PredictorSpec};
use crate::report::{fmt_num, write_csv, Table};
use crate::runner::{fastmpc_table, opt_results, par_map, run_algo_session, EvalConfig};
use abr_fastmpc::FastMpc;
use abr_sim::run_session;
use abr_trace::{Dataset, Trace};
use abr_video::envivio_video;
use std::sync::Arc;

fn traces_for(opts: &ExpOptions, n: usize) -> Vec<Trace> {
    let per = n.div_ceil(3);
    let mut traces = Vec::with_capacity(per * 3);
    for ds in Dataset::ALL {
        traces.extend(ds.generate(opts.seed ^ 0xF16, per));
    }
    traces.truncate(n);
    traces
}

/// Figure 12a: FastMPC discretization sweep.
///
/// Runs on the stable broadband family: Figure 12a isolates *discretization
/// granularity*, so prediction must stay accurate — on the volatile HSDPA
/// traces FastMPC's prediction sensitivity (Figure 8b) would drown the
/// binning signal.
pub fn run_fig12a(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let cfg = EvalConfig {
        seed: opts.seed,
        ..EvalConfig::paper_default()
    };
    let traces = Dataset::Fcc.generate(opts.seed ^ 0xF16A, opts.traces_capped(40));
    let opt: Vec<f64> = opt_results(&traces, &video, &cfg).iter().map(|r| r.qoe).collect();
    let levels = if opts.quick {
        vec![5usize, 50, 100]
    } else {
        vec![5, 10, 50, 100, 500]
    };
    let mut t = Table::new(
        "Figure 12a: FastMPC n-QoE vs discretization levels",
        &["levels", "perfect prediction", "harmonic mean"],
    );
    for &n in &levels {
        let table = fastmpc_table(
            &video,
            cfg.sim.buffer_max_secs,
            cfg.weights(),
            n,
            cfg.table_cache.as_ref(),
        );
        let mut row = vec![n.to_string()];
        for spec in [PredictorSpec::Oracle(0.0), PredictorSpec::Harmonic] {
            let scores: Vec<f64> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return f64::NAN;
                }
                let mut c = FastMpc::new(Arc::clone(&table));
                let r = run_session(
                    &mut c,
                    spec.build(cfg.seed ^ i as u64),
                    &traces[i],
                    &video,
                    &cfg.sim,
                );
                r.qoe.qoe / opt[i]
            });
            let kept: Vec<f64> = scores.into_iter().filter(|s| s.is_finite()).collect();
            row.push(fmt_num(abr_trace::stats::median(&kept)));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "fig12a", &t).expect("csv write");
    t.render() + "\n"
}

/// Figure 12b: look-ahead horizon sweep at several prediction-error levels.
pub fn run_fig12b(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let traces = traces_for(opts, opts.traces_capped(30));
    let base = EvalConfig {
        seed: opts.seed,
        ..EvalConfig::paper_default()
    };
    let opt: Vec<f64> = opt_results(&traces, &video, &base).iter().map(|r| r.qoe).collect();
    let horizons: Vec<usize> = if opts.quick {
        vec![2, 5, 8]
    } else {
        (2..=9).collect()
    };
    let errors = [0.10, 0.15, 0.20];
    let mut t = Table::new(
        "Figure 12b: MPC n-QoE vs look-ahead horizon",
        &["horizon", "error 10%", "error 15%", "error 20%"],
    );
    for &h in &horizons {
        let cfg = EvalConfig {
            horizon: h,
            ..base.clone()
        };
        let mut row = vec![h.to_string()];
        for &err in &errors {
            let scores: Vec<f64> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return f64::NAN;
                }
                let seed = cfg.seed ^ (i as u64) << 8 ^ (err * 1000.0) as u64;
                let r = run_algo_session(
                    Algo::Mpc,
                    None,
                    PredictorSpec::Oracle(err),
                    seed,
                    &traces[i],
                    &video,
                    &cfg,
                );
                r.qoe.qoe / opt[i]
            });
            let kept: Vec<f64> = scores.into_iter().filter(|s| s.is_finite()).collect();
            row.push(fmt_num(abr_trace::stats::median(&kept)));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "fig12b", &t).expect("csv write");
    t.render() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            traces: 3,
            quick: true,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn fig12a_renders() {
        let s = run_fig12a(&tiny());
        assert!(s.contains("Figure 12a"));
        assert!(s.contains("harmonic"));
    }

    #[test]
    fn fig12b_renders() {
        let s = run_fig12b(&tiny());
        assert!(s.contains("Figure 12b"));
        assert!(s.contains("error 15%"));
    }
}
