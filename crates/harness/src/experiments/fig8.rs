//! Figures 8, 9 and 10 — the headline comparison.
//!
//! Figure 8: CDF of normalized QoE for RB, BB, FastMPC, RobustMPC, dash.js
//! and FESTIVE over the FCC, HSDPA and Synthetic datasets, run on the
//! emulation path (real HTTP through the trace-shaped link), as in the
//! paper's testbed experiments.
//!
//! Figures 9 and 10 zoom into the FCC and HSDPA results respectively:
//! CDFs of average bitrate, average per-chunk bitrate change, and total
//! rebuffer time.

use super::ExpOptions;
use crate::registry::Algo;
use crate::report::{cdf_table, fmt_num, write_csv, Table};
use crate::runner::{evaluate_dataset, EvalConfig, EvalOutcome};
use abr_net::NetConfig;
use abr_trace::Dataset;
use abr_video::envivio_video;

/// Evaluates one dataset with the Figure 8 configuration.
pub fn dataset_eval(ds: Dataset, opts: &ExpOptions) -> EvalOutcome {
    let video = envivio_video();
    let cfg = EvalConfig {
        emulated: true,
        net: NetConfig::typical(),
        seed: opts.seed,
        fastmpc_levels: if opts.quick { 30 } else { 100 },
        ..EvalConfig::paper_default()
    };
    let traces = ds.generate(opts.seed, opts.traces);
    evaluate_dataset(&Algo::FIGURE8, &traces, &video, &cfg)
}

/// Renders the Figure 8 panel for one dataset.
pub fn render_fig8_panel(ds: Dataset, out: &EvalOutcome, opts: &ExpOptions) -> String {
    let samples: Vec<(&str, Vec<f64>)> = out
        .algos
        .iter()
        .map(|a| (a.name(), out.n_qoe_samples(*a)))
        .collect();
    let t = cdf_table(
        &format!("Figure 8 ({}): CDF of normalized QoE", ds.label()),
        &samples
            .iter()
            .map(|(n, v)| (*n, v.as_slice()))
            .collect::<Vec<_>>(),
        20,
    );
    write_csv(
        opts.out.as_deref(),
        &format!("fig8_{}", ds.label().to_lowercase()),
        &t,
    )
    .expect("csv write");

    let mut summary = Table::new(
        &format!("Figure 8 ({}): median n-QoE summary", ds.label()),
        &["algorithm", "median n-QoE"],
    );
    for a in &out.algos {
        summary.row(vec![a.name().to_string(), fmt_num(out.median_n_qoe(*a))]);
    }
    let best_non_mpc = [Algo::Rb, Algo::Bb, Algo::Festive, Algo::DashJs]
        .iter()
        .map(|a| out.median_n_qoe(*a))
        .fold(f64::NEG_INFINITY, f64::max);
    let robust = out.median_n_qoe(Algo::RobustMpc);
    let dashjs = out.median_n_qoe(Algo::DashJs);
    let mut s = t.render();
    s.push('\n');
    s.push_str(&summary.render());
    s.push_str(&format!(
        "RobustMPC vs best non-MPC median: {:+.1}%  |  vs dash.js: {:+.1}%  \
         (skipped {} traces with non-positive OPT)\n\n",
        (robust / best_non_mpc - 1.0) * 100.0,
        (robust / dashjs - 1.0) * 100.0,
        out.skipped
    ));
    s
}

/// Renders the Figure 9/10-style detail panel for one dataset.
pub fn render_detail_panel(figure: &str, ds: Dataset, out: &EvalOutcome, opts: &ExpOptions) -> String {
    let mut s = String::new();
    let metrics: [(&str, Box<dyn Fn(&abr_sim::SessionResult) -> f64>); 3] = [
        (
            "average bitrate (kbps)",
            Box::new(|r| r.avg_bitrate_kbps()),
        ),
        (
            "average bitrate change (kbps/chunk)",
            Box::new(|r| r.avg_bitrate_change_kbps()),
        ),
        (
            "total rebuffer time (s)",
            Box::new(|r| r.total_rebuffer_secs()),
        ),
    ];
    for (mi, (label, f)) in metrics.iter().enumerate() {
        let samples: Vec<(&str, Vec<f64>)> = out
            .algos
            .iter()
            .map(|a| {
                (
                    a.name(),
                    out.sessions_of(*a).iter().map(|r| f(r)).collect::<Vec<f64>>(),
                )
            })
            .collect();
        let t = cdf_table(
            &format!("{figure} ({}): CDF of {label}", ds.label()),
            &samples
                .iter()
                .map(|(n, v)| (*n, v.as_slice()))
                .collect::<Vec<_>>(),
            20,
        );
        write_csv(
            opts.out.as_deref(),
            &format!(
                "{}_{}_{mi}",
                figure.to_lowercase().replace(' ', ""),
                ds.label().to_lowercase()
            ),
            &t,
        )
        .expect("csv write");
        s.push_str(&t.render());
        s.push('\n');
    }
    // The zero-rebuffer headline the paper quotes for HSDPA.
    let mut zero = Table::new(
        &format!("{figure} ({}): fraction of sessions with zero rebuffering", ds.label()),
        &["algorithm", "zero-rebuffer fraction"],
    );
    for a in &out.algos {
        let sessions = out.sessions_of(*a);
        let frac = sessions
            .iter()
            .filter(|r| r.total_rebuffer_secs() < 1e-9)
            .count() as f64
            / sessions.len().max(1) as f64;
        zero.row(vec![a.name().to_string(), fmt_num(frac)]);
    }
    s.push_str(&zero.render());
    s.push('\n');
    s
}

/// Figure 8 over all three datasets.
pub fn run(opts: &ExpOptions) -> String {
    Dataset::ALL
        .iter()
        .map(|ds| render_fig8_panel(*ds, &dataset_eval(*ds, opts), opts))
        .collect()
}

/// Figure 9 (FCC detail).
pub fn run_fig9(opts: &ExpOptions) -> String {
    render_detail_panel("Figure 9", Dataset::Fcc, &dataset_eval(Dataset::Fcc, opts), opts)
}

/// Figure 10 (HSDPA detail).
pub fn run_fig10(opts: &ExpOptions) -> String {
    render_detail_panel(
        "Figure 10",
        Dataset::Hsdpa,
        &dataset_eval(Dataset::Hsdpa, opts),
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            traces: 3,
            quick: true,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn fig8_panel_renders() {
        let out = dataset_eval(Dataset::Fcc, &tiny());
        let s = render_fig8_panel(Dataset::Fcc, &out, &tiny());
        assert!(s.contains("Figure 8 (FCC)"));
        assert!(s.contains("RobustMPC"));
        assert!(s.contains("median n-QoE"));
    }

    #[test]
    fn detail_panel_renders_three_metrics() {
        let out = dataset_eval(Dataset::Fcc, &tiny());
        let s = render_detail_panel("Figure 9", Dataset::Fcc, &out, &tiny());
        assert!(s.contains("average bitrate (kbps)"));
        assert!(s.contains("bitrate change"));
        assert!(s.contains("rebuffer"));
        assert!(s.contains("zero-rebuffer"));
    }
}
