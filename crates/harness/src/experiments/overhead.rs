//! Section 7.4 overhead microbenchmark: per-decision CPU cost of each
//! algorithm and the FastMPC table's memory footprint (the paper reports
//! "similar CPU usage and only 60 kB extra memory").
//!
//! The rigorous statistics live in the Criterion benches (`abr-bench`);
//! this subcommand gives a quick same-binary measurement.

use super::ExpOptions;
use crate::registry::Algo;
use crate::report::{write_csv, Table};
use crate::runner::{
    global_opt_cache, global_table_cache, opt_cache_enabled, table_cache_enabled,
};
use abr_core::ControllerContext;
use abr_fastmpc::{FastMpcTable, GenMode, TableConfig};
use abr_video::{envivio_video, LevelIdx, QoeWeights};
use std::time::Instant;

/// Runs the experiment and returns the rendered report.
pub fn run(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let weights = QoeWeights::balanced();
    let levels = if opts.quick { 30 } else { 100 };

    // Offline table generation: the sequential reference vs the parallel
    // and run-aware pipelines (all byte-identical; see GenMode).
    let mut gen = Table::new(
        "§7.4 overhead: offline table generation",
        &["mode", "seconds", "speedup vs sequential"],
    );
    let mut table = None;
    let mut seq_secs = 0.0;
    for (mode, name) in [
        (GenMode::Sequential, "sequential"),
        (GenMode::Parallel, "parallel rows"),
        (GenMode::RunAware, "parallel + run-aware"),
    ] {
        let cfg = TableConfig {
            weights: weights.clone(),
            ..TableConfig::with_levels(levels, 30.0)
        };
        let t0 = Instant::now();
        let t = FastMpcTable::generate_with(&video, 30.0, cfg, mode);
        let secs = t0.elapsed().as_secs_f64();
        if mode == GenMode::Sequential {
            seq_secs = secs;
        }
        gen.row(vec![
            name.to_string(),
            format!("{secs:.2}"),
            format!("{:.2}x", seq_secs / secs.max(1e-12)),
        ]);
        table = Some(t);
    }
    write_csv(opts.out.as_deref(), "overhead_tablegen", &gen).expect("csv write");
    let table = std::sync::Arc::new(table.expect("generated above"));

    let algos = [
        Algo::Rb,
        Algo::Bb,
        Algo::Festive,
        Algo::DashJs,
        Algo::FastMpc,
        Algo::Mpc,
        Algo::RobustMpc,
    ];
    let mut t = Table::new(
        "§7.4 overhead: per-decision CPU cost",
        &["algorithm", "ns/decision", "decisions/s"],
    );
    let iters = if opts.quick { 2_000 } else { 20_000 };
    for algo in algos {
        let mut controller = algo.build(Some(&table), &weights, 5);
        // A mid-stream state; vary buffer/prediction per iteration so
        // nothing gets branch-predicted away unrealistically.
        let start = Instant::now();
        for i in 0..iters {
            let ctx = ControllerContext {
                chunk_index: 10 + (i % 40),
                buffer_secs: (i % 30) as f64,
                prev_level: Some(LevelIdx(i % 5)),
                prediction_kbps: Some(400.0 + (i % 50) as f64 * 60.0),
                robust_lower_kbps: Some(350.0 + (i % 50) as f64 * 50.0),
                last_throughput_kbps: Some(1000.0),
                recent_low_buffer: false,
                startup: false,
                video: &video,
                buffer_max_secs: 30.0,
                live: None,
            };
            std::hint::black_box(controller.decide(&ctx));
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        t.row(vec![
            algo.name().to_string(),
            format!("{ns:.0}"),
            format!("{:.0}", 1e9 / ns),
        ]);
    }
    write_csv(opts.out.as_deref(), "overhead", &t).expect("csv write");

    let mut mem = Table::new(
        "§7.4 overhead: FastMPC memory",
        &["artifact", "bytes"],
    );
    mem.row(vec![
        format!("decision table, full ({levels} levels)"),
        table.full_size_bytes().to_string(),
    ]);
    mem.row(vec![
        "decision table, run-length coded".to_string(),
        table.rle_size_bytes().to_string(),
    ]);
    mem.row(vec![
        "decision table, binary serialization".to_string(),
        table.binary_size_bytes().to_string(),
    ]);
    mem.row(vec![
        "decision table, JSON serialization".to_string(),
        table.to_json().len().to_string(),
    ]);
    write_csv(opts.out.as_deref(), "overhead_memory", &mem).expect("csv write");

    // OPT result cache: under `abr_harness all` every experiment shares the
    // process-wide cache, so "unique solves" equals "entries" — each
    // distinct (trace, video, offline-config) DP ran exactly once.
    let stats = global_opt_cache().stats();
    let mut cache = Table::new(
        "§7.4 overhead: OPT result cache",
        &["metric", "value"],
    );
    cache.row(vec![
        "opt cache attached".to_string(),
        opt_cache_enabled().to_string(),
    ]);
    cache.row(vec!["opt cache entries".to_string(), stats.entries.to_string()]);
    cache.row(vec![
        "opt cache unique solves".to_string(),
        stats.solves.to_string(),
    ]);
    cache.row(vec!["opt cache hits".to_string(), stats.hits.to_string()]);
    cache.row(vec![
        "opt cache preloaded from disk".to_string(),
        stats.preloaded.to_string(),
    ]);
    cache.row(vec![
        "opt cache solved exactly once per problem".to_string(),
        (stats.solves + stats.preloaded == stats.entries as u64).to_string(),
    ]);
    write_csv(opts.out.as_deref(), "overhead_opt_cache", &cache).expect("csv write");

    // FastMPC table cache: the table-pipeline sibling of the OPT cache.
    // Under `abr_harness all` every experiment shares the process-wide
    // cache, so "unique generations" equals "entries" — each distinct
    // (video, buffer, table-config) instance was enumerated exactly once.
    let tstats = global_table_cache().stats();
    let mut tcache = Table::new(
        "§7.4 overhead: FastMPC table cache",
        &["metric", "value"],
    );
    tcache.row(vec![
        "table cache attached".to_string(),
        table_cache_enabled().to_string(),
    ]);
    tcache.row(vec![
        "table cache entries".to_string(),
        tstats.entries.to_string(),
    ]);
    tcache.row(vec![
        "table cache unique generations".to_string(),
        tstats.generates.to_string(),
    ]);
    tcache.row(vec!["table cache hits".to_string(), tstats.hits.to_string()]);
    tcache.row(vec![
        "table cache generated exactly once per instance".to_string(),
        (tstats.generates == tstats.entries as u64).to_string(),
    ]);
    write_csv(opts.out.as_deref(), "overhead_table_cache", &tcache).expect("csv write");

    format!(
        "{}\n{}\n{}\n{}\n{}",
        gen.render(),
        t.render(),
        mem.render(),
        cache.render(),
        tcache.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_reports_all_algorithms() {
        let s = run(&ExpOptions {
            quick: true,
            ..ExpOptions::default()
        });
        assert!(s.contains("ns/decision"));
        assert!(s.contains("FastMPC"));
        assert!(s.contains("run-length coded"));
        assert!(s.contains("binary serialization"));
        assert!(s.contains("parallel + run-aware"));
        assert!(s.contains("speedup vs sequential"));
        assert!(s.contains("opt cache unique solves"));
        assert!(s.contains("opt cache solved exactly once per problem"));
        assert!(s.contains("table cache unique generations"));
        assert!(s.contains("table cache generated exactly once per instance"));
    }
}
