//! `serve-bench`: the decision service under closed-loop load.
//!
//! Spins up the `abr-serve` decision server on loopback, then drives
//! `--sessions` concurrent trace-driven players through it per backend —
//! every per-chunk decision is a real socket round-trip. Reports decision
//! throughput and exact client-observed latency quantiles, and enforces
//! the differential guarantee: each remote session's decision sequence
//! must be bit-identical to the in-process `run_session` twin. Any
//! mismatch panics the experiment, which is exactly what the CI smoke
//! wants.

use super::ExpOptions;
use crate::report::{fmt_num, write_csv, Table};
use abr_serve::{
    run_load, run_mux_load, Backend, DecisionServer, EventConfig, EventHandle, EventServer,
    LoadOptions, LoadReport, MuxOptions, ServerHandle,
};
use std::net::SocketAddr;

/// Backends benchmarked when `--backend` does not pin one: the table
/// lookup, both online MPC solves, and two baselines as a floor.
pub const BENCH_BACKENDS: [Backend; 5] = [
    Backend::FastMpc,
    Backend::RobustMpc,
    Backend::Mpc,
    Backend::Bb,
    Backend::Rb,
];

/// The backends a given options set sweeps.
pub fn backends(opts: &ExpOptions) -> Result<Vec<Backend>, String> {
    match &opts.backend {
        Some(name) => Backend::parse(name)
            .map(|b| vec![b])
            .ok_or_else(|| format!("unknown backend '{name}'")),
        None if opts.quick => Ok(vec![Backend::FastMpc, Backend::RobustMpc]),
        None => Ok(BENCH_BACKENDS.to_vec()),
    }
}

/// Which server engine a run drives, carrying its handle for shutdown.
pub enum Engine {
    /// The thread-per-connection server from [`abr_serve::server`].
    Threaded(ServerHandle),
    /// The epoll readiness-loop server from [`abr_serve::event`].
    Event(EventHandle),
}

impl Engine {
    /// Spawns the engine `opts` selects: event-driven when
    /// `--event-loops` is set, threaded otherwise.
    pub fn spawn(opts: &ExpOptions) -> Engine {
        match opts.event_loops {
            Some(loops) => Engine::Event(
                EventServer::spawn(EventConfig {
                    loops,
                    max_conns: opts.max_conns,
                    ..EventConfig::default()
                })
                .expect("bind loopback event server"),
            ),
            None => Engine::Threaded(
                DecisionServer::spawn(opts.workers).expect("bind loopback server"),
            ),
        }
    }

    /// The engine's loopback address.
    pub fn addr(&self) -> SocketAddr {
        match self {
            Engine::Threaded(h) => h.addr(),
            Engine::Event(h) => h.addr(),
        }
    }

    /// FastMPC tables cached server-side so far.
    pub fn tables_cached(&self) -> usize {
        match self {
            Engine::Threaded(h) => h.service().store().tables().len(),
            Engine::Event(h) => h.service().store().tables().len(),
        }
    }

    /// Shuts the engine down, joining its threads.
    pub fn shutdown(&mut self) {
        match self {
            Engine::Threaded(h) => h.shutdown(),
            Engine::Event(h) => h.shutdown(),
        }
    }

    fn describe(&self, opts: &ExpOptions) -> String {
        match self {
            Engine::Threaded(_) => format!("threaded engine, {} worker threads", opts.workers),
            Engine::Event(_) => format!(
                "event-driven engine, {} epoll loops, {} max conns",
                opts.event_loops.unwrap_or_default(),
                opts.max_conns
            ),
        }
    }
}

/// Runs the benchmark and renders the report table (plus
/// `serve_bench.csv`).
pub fn run(opts: &ExpOptions) -> String {
    let backends = backends(opts).expect("--backend validated at parse time");
    let batch = opts.batch.unwrap_or_else(crate::default_batch_size);
    // The multiplexed generator pipelines scalar /decision requests; it
    // carries the event engine and the decision-sequence recorder.
    let use_mux = opts.event_loops.is_some() || opts.decisions_out.is_some();
    assert!(
        !(use_mux && batch > 1),
        "--event-loops / --decisions-out use the multiplexed generator, \
         which does not coalesce bulk batches (got batch {batch})"
    );
    let mut engine = Engine::spawn(opts);
    let mut t = Table::new(
        "serve-bench: closed-loop decision service, remote vs in-process differential",
        &[
            "backend",
            "sessions",
            "batch",
            "decisions",
            "dec/s",
            "mean (us)",
            "p50 (us)",
            "p90 (us)",
            "p99 (us)",
            "p99.9 (us)",
            "mismatches",
        ],
    );
    let mut decision_lines: Vec<String> = Vec::new();
    for backend in backends {
        let report: LoadReport = if use_mux {
            let mut load = MuxOptions::new(opts.sessions);
            load.backend = backend;
            load.seed = opts.seed;
            let mux = run_mux_load(engine.addr(), &load);
            if opts.decisions_out.is_some() {
                decision_lines.push(format!("backend {}", backend.token()));
                decision_lines.extend(mux.sequences);
            }
            mux.report
        } else {
            let mut load = LoadOptions::new(opts.sessions);
            load.backend = backend;
            load.seed = opts.seed;
            load.batch = batch;
            run_load(engine.addr(), &load)
        };
        assert_eq!(
            report.mismatches, 0,
            "differential gate: {backend} remote decisions diverged from \
             the in-process twin:\n{}",
            report.mismatch_details.join("\n")
        );
        t.row(vec![
            backend.token().to_string(),
            report.sessions.to_string(),
            report.batch.to_string(),
            report.decisions.to_string(),
            fmt_num(report.decisions_per_sec),
            fmt_num(report.mean_us),
            fmt_num(report.p50_us),
            fmt_num(report.p90_us),
            fmt_num(report.p99_us),
            fmt_num(report.p999_us),
            report.mismatches.to_string(),
        ]);
    }
    let tables_cached = engine.tables_cached();
    let engine_desc = engine.describe(opts);
    engine.shutdown();
    if let Some(path) = &opts.decisions_out {
        let mut body = decision_lines.join("\n");
        body.push('\n');
        std::fs::write(path, body).expect("write --decisions-out file");
    }
    write_csv(opts.out.as_deref(), "serve_bench", &t).expect("csv write");
    let mut s = t.render();
    s.push_str(&format!(
        "{engine_desc}; every remote decision sequence verified \
         bit-identical to its in-process twin ({tables_cached} FastMPC \
         table(s) generated server-side, shared across sessions). Latency \
         is the client-observed loopback round-trip; at batch > 1 the \
         proxy coalesces that many sessions per bulk POST /decisions \
         request and the per-decision latency is the request round-trip \
         divided by its decision count.\n\n",
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_smoke() {
        let opts = ExpOptions {
            sessions: 4,
            workers: 2,
            quick: true,
            ..ExpOptions::default()
        };
        let s = run(&opts);
        assert!(s.contains("serve-bench"));
        assert!(s.contains("fastmpc"));
        assert!(s.contains("robustmpc"));
        assert!(s.contains("2 worker threads"));
    }

    #[test]
    fn serve_bench_bulk_smoke() {
        // Same closed loop, but 4 virtual sessions coalesced per bulk
        // POST /decisions request; the differential gate inside run()
        // still verifies every decision against the in-process twin.
        let opts = ExpOptions {
            sessions: 4,
            workers: 2,
            quick: true,
            batch: Some(4),
            backend: Some("fastmpc".into()),
            ..ExpOptions::default()
        };
        let s = run(&opts);
        assert!(s.contains("serve-bench"));
        assert!(s.contains("fastmpc"));
    }

    #[test]
    fn serve_bench_event_engine_smoke() {
        let opts = ExpOptions {
            sessions: 6,
            event_loops: Some(2),
            backend: Some("fastmpc".into()),
            quick: true,
            ..ExpOptions::default()
        };
        let s = run(&opts);
        assert!(s.contains("serve-bench"));
        assert!(s.contains("fastmpc"));
        assert!(s.contains("event-driven engine, 2 epoll loops"));
    }

    #[test]
    fn decision_sequences_byte_identical_across_engines() {
        // The report-diff gate in miniature: drive the threaded and the
        // event-driven engine with the same seed and assert the recorded
        // decision-sequence files are byte-identical.
        let dir = std::env::temp_dir();
        let old_path = dir.join(format!("abr_dec_old_{}.txt", std::process::id()));
        let new_path = dir.join(format!("abr_dec_new_{}.txt", std::process::id()));
        let base = ExpOptions {
            sessions: 6,
            workers: 2,
            backend: Some("rb".into()),
            quick: true,
            ..ExpOptions::default()
        };
        run(&ExpOptions {
            decisions_out: Some(old_path.clone()),
            ..base.clone()
        });
        run(&ExpOptions {
            event_loops: Some(2),
            decisions_out: Some(new_path.clone()),
            ..base
        });
        let old = std::fs::read(&old_path).unwrap();
        let new = std::fs::read(&new_path).unwrap();
        assert!(!old.is_empty());
        assert_eq!(old, new, "decision sequences diverged across engines");
        let _ = std::fs::remove_file(&old_path);
        let _ = std::fs::remove_file(&new_path);
    }

    #[test]
    fn backend_flag_pins_the_sweep() {
        let pinned = ExpOptions {
            backend: Some("bola".into()),
            ..ExpOptions::default()
        };
        assert_eq!(backends(&pinned).unwrap(), vec![Backend::Bola]);
        let bad = ExpOptions {
            backend: Some("hal9000".into()),
            ..ExpOptions::default()
        };
        assert!(backends(&bad).is_err());
        assert_eq!(backends(&ExpOptions::default()).unwrap().len(), 5);
        let quick = ExpOptions {
            quick: true,
            ..ExpOptions::default()
        };
        assert_eq!(backends(&quick).unwrap().len(), 2);
    }
}
