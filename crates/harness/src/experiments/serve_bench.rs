//! `serve-bench`: the decision service under closed-loop load.
//!
//! Spins up the `abr-serve` decision server on loopback, then drives
//! `--sessions` concurrent trace-driven players through it per backend —
//! every per-chunk decision is a real socket round-trip. Reports decision
//! throughput and exact client-observed latency quantiles, and enforces
//! the differential guarantee: each remote session's decision sequence
//! must be bit-identical to the in-process `run_session` twin. Any
//! mismatch panics the experiment, which is exactly what the CI smoke
//! wants.

use super::ExpOptions;
use crate::report::{fmt_num, write_csv, Table};
use abr_serve::{run_load, Backend, DecisionServer, LoadOptions};

/// Backends benchmarked when `--backend` does not pin one: the table
/// lookup, both online MPC solves, and two baselines as a floor.
pub const BENCH_BACKENDS: [Backend; 5] = [
    Backend::FastMpc,
    Backend::RobustMpc,
    Backend::Mpc,
    Backend::Bb,
    Backend::Rb,
];

/// The backends a given options set sweeps.
pub fn backends(opts: &ExpOptions) -> Result<Vec<Backend>, String> {
    match &opts.backend {
        Some(name) => Backend::parse(name)
            .map(|b| vec![b])
            .ok_or_else(|| format!("unknown backend '{name}'")),
        None if opts.quick => Ok(vec![Backend::FastMpc, Backend::RobustMpc]),
        None => Ok(BENCH_BACKENDS.to_vec()),
    }
}

/// Runs the benchmark and renders the report table (plus
/// `serve_bench.csv`).
pub fn run(opts: &ExpOptions) -> String {
    let backends = backends(opts).expect("--backend validated at parse time");
    let batch = opts.batch.unwrap_or_else(crate::default_batch_size);
    let mut handle = DecisionServer::spawn(opts.workers).expect("bind loopback server");
    let mut t = Table::new(
        "serve-bench: closed-loop decision service, remote vs in-process differential",
        &[
            "backend",
            "sessions",
            "batch",
            "decisions",
            "dec/s",
            "mean (us)",
            "p50 (us)",
            "p90 (us)",
            "p99 (us)",
            "p99.9 (us)",
            "mismatches",
        ],
    );
    for backend in backends {
        let mut load = LoadOptions::new(opts.sessions);
        load.backend = backend;
        load.seed = opts.seed;
        load.batch = batch;
        let report = run_load(handle.addr(), &load);
        assert_eq!(
            report.mismatches, 0,
            "differential gate: {backend} remote decisions diverged from \
             the in-process twin:\n{}",
            report.mismatch_details.join("\n")
        );
        t.row(vec![
            backend.token().to_string(),
            report.sessions.to_string(),
            report.batch.to_string(),
            report.decisions.to_string(),
            fmt_num(report.decisions_per_sec),
            fmt_num(report.mean_us),
            fmt_num(report.p50_us),
            fmt_num(report.p90_us),
            fmt_num(report.p99_us),
            fmt_num(report.p999_us),
            report.mismatches.to_string(),
        ]);
    }
    let tables_cached = handle.service().store().tables().len();
    handle.shutdown();
    write_csv(opts.out.as_deref(), "serve_bench", &t).expect("csv write");
    let mut s = t.render();
    s.push_str(&format!(
        "{} worker threads; every remote decision sequence verified \
         bit-identical to its in-process twin ({} FastMPC table(s) \
         generated server-side, shared across sessions). Latency is the \
         client-observed loopback round-trip; at batch > 1 the proxy \
         coalesces that many sessions per bulk POST /decisions request \
         and the per-decision latency is the request round-trip divided \
         by its decision count.\n\n",
        opts.workers, tables_cached
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_smoke() {
        let opts = ExpOptions {
            sessions: 4,
            workers: 2,
            quick: true,
            ..ExpOptions::default()
        };
        let s = run(&opts);
        assert!(s.contains("serve-bench"));
        assert!(s.contains("fastmpc"));
        assert!(s.contains("robustmpc"));
        assert!(s.contains("2 worker threads"));
    }

    #[test]
    fn serve_bench_bulk_smoke() {
        // Same closed loop, but 4 virtual sessions coalesced per bulk
        // POST /decisions request; the differential gate inside run()
        // still verifies every decision against the in-process twin.
        let opts = ExpOptions {
            sessions: 4,
            workers: 2,
            quick: true,
            batch: Some(4),
            backend: Some("fastmpc".into()),
            ..ExpOptions::default()
        };
        let s = run(&opts);
        assert!(s.contains("serve-bench"));
        assert!(s.contains("fastmpc"));
    }

    #[test]
    fn backend_flag_pins_the_sweep() {
        let pinned = ExpOptions {
            backend: Some("bola".into()),
            ..ExpOptions::default()
        };
        assert_eq!(backends(&pinned).unwrap(), vec![Backend::Bola]);
        let bad = ExpOptions {
            backend: Some("hal9000".into()),
            ..ExpOptions::default()
        };
        assert!(backends(&bad).is_err());
        assert_eq!(backends(&ExpOptions::default()).unwrap().len(), 5);
        let quick = ExpOptions {
            quick: true,
            ..ExpOptions::default()
        };
        assert_eq!(backends(&quick).unwrap().len(), 2);
    }
}
