//! Figure 11 — sensitivity analysis (simulation framework, Section 7.3):
//!
//! * (a) n-QoE vs. throughput-prediction error;
//! * (b) n-QoE under the three QoE-preference presets;
//! * (c) n-QoE vs. playout buffer size;
//! * (d) n-QoE (excluding the startup term) vs. fixed startup delay.

use super::ExpOptions;
use crate::registry::{Algo, PredictorSpec};
use crate::report::{fmt_num, write_csv, Table};
use crate::runner::{fastmpc_table, opt_results, par_map, run_algo_session, EvalConfig};
use abr_sim::StartupPolicy;
use abr_trace::{stats, Dataset, Trace};
use abr_video::{envivio_video, QoePreference, QoeWeights, Video};

/// Trace mix used by the sensitivity studies: the paper's simulations draw
/// from all datasets; we interleave the three families evenly.
fn sensitivity_traces(opts: &ExpOptions, n: usize) -> Vec<Trace> {
    let per = n.div_ceil(3);
    let mut traces = Vec::with_capacity(per * 3);
    for ds in Dataset::ALL {
        traces.extend(ds.generate(opts.seed ^ 0x5E115, per));
    }
    traces.truncate(n);
    traces
}

/// Median n-QoE of `algo` over `traces` with the supplied configuration and
/// predictor, skipping traces whose OPT is non-positive.
#[allow(clippy::too_many_arguments)]
fn median_n_qoe(
    algo: Algo,
    spec: PredictorSpec,
    traces: &[Trace],
    video: &Video,
    cfg: &EvalConfig,
    opts: &[f64],
    excl_startup: bool,
    opt_excl: &[f64],
) -> f64 {
    let table = if algo.needs_table() {
        Some(fastmpc_table(
            video,
            cfg.sim.buffer_max_secs,
            cfg.weights(),
            cfg.fastmpc_levels,
            cfg.table_cache.as_ref(),
        ))
    } else {
        None
    };
    let samples: Vec<Option<f64>> = par_map(traces.len(), |i| {
        if opts[i] <= 0.0 {
            return None;
        }
        let seed = cfg.seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let r = run_algo_session(algo, table.as_ref(), spec, seed, &traces[i], video, cfg);
        Some(if excl_startup {
            r.qoe.qoe_excluding_startup(cfg.weights()) / opt_excl[i]
        } else {
            r.qoe.qoe / opts[i]
        })
    });
    let kept: Vec<f64> = samples.into_iter().flatten().collect();
    if kept.is_empty() {
        f64::NAN
    } else {
        // Median, not mean: traces whose clairvoyant optimum is barely
        // positive produce explosive ratios that would dominate a mean.
        stats::median(&kept)
    }
}

/// Precomputes OPT (and OPT excluding startup) for every trace, through the
/// shared OPT cache when one is attached to `cfg`.
fn compute_opts(traces: &[Trace], video: &Video, cfg: &EvalConfig) -> (Vec<f64>, Vec<f64>) {
    opt_results(traces, video, cfg)
        .iter()
        .map(|r| (r.qoe, r.qoe + cfg.weights().mu_s * r.startup_secs))
        .unzip()
}

/// Figure 11a: prediction error sweep.
pub fn run_fig11a(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let cfg = EvalConfig {
        seed: opts.seed,
        ..EvalConfig::paper_default()
    };
    let traces = sensitivity_traces(opts, opts.traces_capped(60));
    let (opt, opt_ex) = compute_opts(&traces, &video, &cfg);
    let errors = if opts.quick {
        vec![0.1, 0.3, 0.5]
    } else {
        vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5]
    };
    let algos = [Algo::Mpc, Algo::RobustMpc, Algo::Bb, Algo::Rb];
    let mut t = Table::new(
        "Figure 11a: median n-QoE vs prediction error",
        &["error", "MPC", "RobustMPC", "BB", "RB"],
    );
    for &err in &errors {
        let mut row = vec![format!("{err:.2}")];
        for algo in algos {
            // BB ignores predictions entirely; the oracle spec still drives
            // RB and the MPC family.
            let spec = PredictorSpec::Oracle(err);
            row.push(fmt_num(median_n_qoe(
                algo, spec, &traces, &video, &cfg, &opt, false, &opt_ex,
            )));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "fig11a", &t).expect("csv write");
    t.render() + "\n"
}

/// Figure 11b: QoE-preference presets.
pub fn run_fig11b(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let traces = sensitivity_traces(opts, opts.traces_capped(60));
    let mut t = Table::new(
        "Figure 11b: median n-QoE under QoE preferences",
        &["preference", "MPC-OPT", "FastMPC", "BB", "RB"],
    );
    for pref in QoePreference::ALL {
        let weights = QoeWeights::preset(pref);
        let mut cfg = EvalConfig {
            seed: opts.seed,
            fastmpc_levels: if opts.quick { 20 } else { 100 },
            ..EvalConfig::paper_default()
        };
        cfg.sim.weights = weights.clone();
        cfg.offline.weights = weights;
        let (opt, opt_ex) = compute_opts(&traces, &video, &cfg);
        let mut row = vec![pref.label().to_string()];
        for algo in Algo::SENSITIVITY {
            row.push(fmt_num(median_n_qoe(
                algo,
                algo.default_predictor(),
                &traces,
                &video,
                &cfg,
                &opt,
                false,
                &opt_ex,
            )));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "fig11b", &t).expect("csv write");
    t.render() + "\n"
}

/// Figure 11c: buffer-size sweep.
pub fn run_fig11c(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let traces = sensitivity_traces(opts, opts.traces_capped(60));
    let sizes = if opts.quick {
        vec![10.0, 30.0, 50.0]
    } else {
        vec![10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0]
    };
    let mut t = Table::new(
        "Figure 11c: median n-QoE vs buffer size",
        &["buffer (s)", "MPC-OPT", "FastMPC", "BB", "RB"],
    );
    for &bmax in &sizes {
        let mut cfg = EvalConfig {
            seed: opts.seed,
            fastmpc_levels: if opts.quick { 20 } else { 100 },
            ..EvalConfig::paper_default()
        };
        cfg.sim.buffer_max_secs = bmax;
        cfg.offline.buffer_max_secs = bmax;
        let (opt, opt_ex) = compute_opts(&traces, &video, &cfg);
        let mut row = vec![format!("{bmax:.0}")];
        for algo in Algo::SENSITIVITY {
            row.push(fmt_num(median_n_qoe(
                algo,
                algo.default_predictor(),
                &traces,
                &video,
                &cfg,
                &opt,
                false,
                &opt_ex,
            )));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "fig11c", &t).expect("csv write");
    t.render() + "\n"
}

/// Figure 11d: fixed-startup-delay sweep (QoE excluding the startup term).
pub fn run_fig11d(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let traces = sensitivity_traces(opts, opts.traces_capped(60));
    let delays = if opts.quick {
        vec![2.0, 6.0, 10.0]
    } else {
        vec![2.0, 4.0, 6.0, 8.0, 10.0]
    };
    let mut t = Table::new(
        "Figure 11d: median n-QoE (excl. startup term) vs fixed startup time",
        &["startup (s)", "MPC-OPT", "FastMPC", "BB", "RB"],
    );
    for &ts in &delays {
        let mut cfg = EvalConfig {
            seed: opts.seed,
            fastmpc_levels: if opts.quick { 20 } else { 100 },
            ..EvalConfig::paper_default()
        };
        cfg.sim.startup = StartupPolicy::Fixed(ts);
        let (opt, opt_ex) = compute_opts(&traces, &video, &cfg);
        let mut row = vec![format!("{ts:.0}")];
        for algo in Algo::SENSITIVITY {
            row.push(fmt_num(median_n_qoe(
                algo,
                algo.default_predictor(),
                &traces,
                &video,
                &cfg,
                &opt,
                true,
                &opt_ex,
            )));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "fig11d", &t).expect("csv write");
    t.render() + "\n"
}

/// Summary statistic helper exposed for tests.
pub fn median(samples: &[f64]) -> f64 {
    stats::median(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            traces: 3,
            quick: true,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn fig11a_renders() {
        let s = run_fig11a(&tiny());
        assert!(s.contains("Figure 11a"));
        assert!(s.contains("RobustMPC"));
    }

    #[test]
    fn fig11b_covers_presets() {
        let s = run_fig11b(&tiny());
        assert!(s.contains("Balanced"));
        assert!(s.contains("Avoid Instability"));
        assert!(s.contains("Avoid Rebuffering"));
    }

    #[test]
    fn fig11c_and_d_render() {
        assert!(run_fig11c(&tiny()).contains("buffer"));
        assert!(run_fig11d(&tiny()).contains("startup"));
    }
}
