//! Figure 7 — characteristics of the datasets: CDFs of per-trace mean
//! throughput, throughput standard deviation, and per-session average
//! percentage prediction error of the harmonic-mean predictor.

use super::ExpOptions;
use crate::report::{cdf_table, write_csv};
use abr_baselines::BufferBased;
use abr_predictor::HarmonicMean;
use abr_sim::{run_session, SimConfig};
use abr_trace::Dataset;
use abr_video::envivio_video;

/// Runs the experiment and returns the rendered report.
pub fn run(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let sim = SimConfig::paper_default();
    let mut out = String::new();

    let mut means: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut stds: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut errs: Vec<(&str, Vec<f64>)> = Vec::new();

    for ds in Dataset::ALL {
        let traces = ds.generate(opts.seed, opts.traces);
        means.push((
            ds.label(),
            traces.iter().map(|t| t.mean_kbps()).collect(),
        ));
        stds.push((ds.label(), traces.iter().map(|t| t.std_kbps()).collect()));
        // Prediction error is a property of (trace, predictor) measured on
        // real chunk downloads; BB's decisions don't feed back into the
        // predictor, making it a neutral probe.
        let session_errors: Vec<f64> = crate::runner::par_map(traces.len(), |i| {
            let mut bb = BufferBased::paper_default();
            let r = run_session(
                &mut bb,
                HarmonicMean::paper_default(),
                &traces[i],
                &video,
                &sim,
            );
            r.mean_prediction_error().unwrap_or(0.0)
        });
        errs.push((ds.label(), session_errors));
    }

    let t_mean = cdf_table(
        "Figure 7 (left): CDF of mean throughput (kbps)",
        &means
            .iter()
            .map(|(n, v)| (*n, v.as_slice()))
            .collect::<Vec<_>>(),
        20,
    );
    let t_std = cdf_table(
        "Figure 7 (middle): CDF of throughput standard deviation (kbps)",
        &stds
            .iter()
            .map(|(n, v)| (*n, v.as_slice()))
            .collect::<Vec<_>>(),
        20,
    );
    let t_err = cdf_table(
        "Figure 7 (right): CDF of average percentage prediction error",
        &errs
            .iter()
            .map(|(n, v)| (*n, v.as_slice()))
            .collect::<Vec<_>>(),
        20,
    );

    for (name, t) in [
        ("fig7_mean_throughput", &t_mean),
        ("fig7_std_throughput", &t_std),
        ("fig7_prediction_error", &t_err),
    ] {
        write_csv(opts.out.as_deref(), name, t).expect("csv write");
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_runs_and_reports_all_panels() {
        let opts = ExpOptions {
            traces: 6,
            ..ExpOptions::default()
        };
        let s = run(&opts);
        assert!(s.contains("Figure 7 (left)"));
        assert!(s.contains("Figure 7 (middle)"));
        assert!(s.contains("Figure 7 (right)"));
        assert!(s.contains("FCC") && s.contains("HSDPA") && s.contains("Synthetic"));
    }
}
