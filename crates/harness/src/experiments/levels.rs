//! Bitrate-level granularity sweep — the Section 7.3 result the paper
//! describes but does not plot: BB and MPC improve with finer ladders,
//! while RB first improves then degrades (it switches more and more,
//! paying the instability penalty).

use super::ExpOptions;
use crate::registry::{Algo, PredictorSpec};
use crate::report::{fmt_num, write_csv, Table};
use crate::runner::{opt_results, par_map, run_algo_session, EvalConfig};
use abr_trace::{Dataset, Trace};
use abr_video::{Ladder, VideoBuilder};

fn traces_for(opts: &ExpOptions, n: usize) -> Vec<Trace> {
    let per = n.div_ceil(3);
    let mut traces = Vec::with_capacity(per * 3);
    for ds in Dataset::ALL {
        traces.extend(ds.generate(opts.seed ^ 0x1E7E15, per));
    }
    traces.truncate(n);
    traces
}

/// Runs the experiment and returns the rendered report.
pub fn run(opts: &ExpOptions) -> String {
    let traces = traces_for(opts, opts.traces_capped(40));
    let counts = if opts.quick {
        vec![2usize, 5, 10]
    } else {
        vec![2, 3, 4, 5, 6, 8, 10, 12]
    };
    let cfg = EvalConfig {
        seed: opts.seed,
        ..EvalConfig::paper_default()
    };
    // The continuous-relaxation OPT depends on the ladder only through its
    // endpoints, which we hold fixed — one OPT per trace serves every
    // ladder granularity.
    let ref_video = VideoBuilder::new(Ladder::geometric(350.0, 3000.0, 5).expect("valid"))
        .chunks(65)
        .chunk_secs(4.0)
        .cbr();
    let opt: Vec<f64> = opt_results(&traces, &ref_video, &cfg).iter().map(|r| r.qoe).collect();

    let algos = [Algo::Rb, Algo::Bb, Algo::Mpc];
    let mut t = Table::new(
        "Bitrate levels sweep (§7.3, not plotted in the paper): mean n-QoE",
        &["levels", "RB", "BB", "MPC"],
    );
    for &n in &counts {
        let ladder = Ladder::geometric(350.0, 3000.0, n).expect("valid ladder");
        let video = VideoBuilder::new(ladder).chunks(65).chunk_secs(4.0).cbr();
        let mut row = vec![n.to_string()];
        for algo in algos {
            let scores: Vec<f64> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return f64::NAN;
                }
                let r = run_algo_session(
                    algo,
                    None,
                    PredictorSpec::Harmonic,
                    cfg.seed ^ i as u64,
                    &traces[i],
                    &video,
                    &cfg,
                );
                r.qoe.qoe / opt[i]
            });
            let kept: Vec<f64> = scores.into_iter().filter(|s| s.is_finite()).collect();
            row.push(fmt_num(abr_trace::stats::median(&kept)));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "levels", &t).expect("csv write");
    t.render() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_sweep_renders() {
        let s = run(&ExpOptions {
            traces: 3,
            quick: true,
            ..ExpOptions::default()
        });
        assert!(s.contains("Bitrate levels"));
        assert!(s.contains("MPC"));
    }
}
