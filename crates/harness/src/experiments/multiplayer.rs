//! Multi-player fairness — the Section 8 extension: `N` players share a
//! bottleneck; how do the algorithms divide it, and what happens to each
//! player's QoE under contention?
//!
//! Reports, per algorithm and player count: Jain fairness over average
//! bitrates, mean per-player bitrate, rebuffering, and link utilization.
//! FESTIVE was *designed* for this setting (its stability score damps the
//! ON/OFF oscillation), so it should shine here relative to its
//! single-player showing — the cross-check on our FESTIVE port.

use super::ExpOptions;
use crate::registry::Algo;
use crate::report::{fmt_num, write_csv, Table};
use crate::runner::{default_table_cache, fastmpc_table, par_map};
use abr_net::multiplayer::{run_shared_session, SharedPlayer};
use abr_predictor::HarmonicMean;
use abr_sim::SimConfig;
use abr_trace::{Dataset, Trace};
use abr_video::{envivio_video, QoeWeights};

fn shared_traces(opts: &ExpOptions, n: usize) -> Vec<Trace> {
    // Bottlenecks sized for contention: scale up the FCC family so that
    // two to four players can plausibly coexist.
    Dataset::Fcc
        .generate(opts.seed ^ 0x3417, n)
        .into_iter()
        .map(|t| t.scaled(3.0))
        .collect()
}

/// Runs the experiment and returns the rendered report.
pub fn run(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let weights = QoeWeights::balanced();
    let traces = shared_traces(opts, opts.traces_capped(20));
    let counts = if opts.quick { vec![2usize] } else { vec![2usize, 3, 4] };
    let algos = [Algo::Rb, Algo::Bb, Algo::Festive, Algo::RobustMpc];
    let table = fastmpc_table(
        &video,
        cfg.buffer_max_secs,
        &weights,
        30,
        default_table_cache().as_ref(),
    );

    let mut t = Table::new(
        "Multi-player (§8 extension): homogeneous players on a shared bottleneck",
        &[
            "players",
            "algorithm",
            "Jain fairness",
            "avg bitrate (kbps)",
            "rebuffer (s)",
            "utilization",
        ],
    );
    for &n_players in &counts {
        for algo in algos {
            let per_trace: Vec<(f64, f64, f64, f64)> = par_map(traces.len(), |ti| {
                let trace = &traces[ti];
                let players: Vec<SharedPlayer> = (0..n_players)
                    .map(|p| SharedPlayer {
                        controller: algo.build(Some(&table), &weights, 5),
                        predictor: Box::new(HarmonicMean::paper_default()),
                        start_offset_secs: p as f64 * 2.0,
                    })
                    .collect();
                let out = run_shared_session(players, trace, &video, &cfg);
                let bitrate = out
                    .sessions
                    .iter()
                    .map(|s| s.avg_bitrate_kbps())
                    .sum::<f64>()
                    / n_players as f64;
                let rebuf = out
                    .sessions
                    .iter()
                    .map(|s| s.total_rebuffer_secs())
                    .sum::<f64>()
                    / n_players as f64;
                let capacity = trace.integrate_kbits(0.0, out.span_secs);
                let util = out.delivered_kbits / capacity;
                (out.bitrate_fairness, bitrate, rebuf, util)
            });
            let m = |f: fn(&(f64, f64, f64, f64)) -> f64| -> f64 {
                per_trace.iter().map(f).sum::<f64>() / per_trace.len() as f64
            };
            t.row(vec![
                n_players.to_string(),
                algo.name().to_string(),
                fmt_num(m(|x| x.0)),
                fmt_num(m(|x| x.1)),
                fmt_num(m(|x| x.2)),
                fmt_num(m(|x| x.3)),
            ]);
        }
    }
    write_csv(opts.out.as_deref(), "multiplayer", &t).expect("csv write");
    t.render() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplayer_experiment_renders() {
        let s = run(&ExpOptions {
            traces: 2,
            quick: true,
            ..ExpOptions::default()
        });
        assert!(s.contains("Jain fairness"));
        assert!(s.contains("FESTIVE"));
        assert!(s.contains("RobustMPC"));
    }
}
