//! Ablations of the design choices DESIGN.md calls out — the studies the
//! paper discusses but does not run:
//!
//! * **predictors** — how much of MPC's gain comes from the harmonic-mean
//!   predictor vs. alternatives (Section 8: "better throughput prediction
//!   can improve video performance");
//! * **robust-bound** — max-error (paper) vs. mean-error lower bound for
//!   RobustMPC (Section 4.3's conservativeness trade-off);
//! * **mdp** — the Section 4.1 strawman, fitted in- and out-of-
//!   distribution, against MPC (the comparison the paper defers);
//! * **bins** — linear vs. logarithmic throughput binning for the FastMPC
//!   table at equal resolution (Section 5.2's open granularity question).

use super::ExpOptions;
use crate::registry::{Algo, PredictorSpec};
use crate::report::{fmt_num, write_csv, Table};
use crate::runner::{opt_results, par_map, run_algo_session, EvalConfig};
use abr_core::{MdpConfig, MdpController, MdpPolicy, ThroughputChain};
use abr_fastmpc::{BinSpec, FastMpc, FastMpcTable, TableConfig};
use abr_predictor::HarmonicMean;
use abr_sim::{run_session, RobustBound};
use abr_trace::{Dataset, Trace};
use abr_video::envivio_video;
use std::sync::Arc;

/// Median aggregation: robust to the explosive ratios that traces with a
/// barely-positive clairvoyant optimum produce.
fn agg(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        abr_trace::stats::median(xs)
    }
}

fn opt_for(traces: &[Trace], cfg: &EvalConfig) -> Vec<f64> {
    let video = envivio_video();
    opt_results(traces, &video, cfg).iter().map(|r| r.qoe).collect()
}

/// Predictor ablation: exact MPC driven by each predictor, per dataset.
pub fn run_predictors(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let cfg = EvalConfig {
        seed: opts.seed,
        ..EvalConfig::paper_default()
    };
    let base_specs = [
        PredictorSpec::Harmonic,
        PredictorSpec::Sliding(5),
        PredictorSpec::Ewma(0.4),
        PredictorSpec::Last,
        PredictorSpec::Ar1(8),
    ];
    let mut header = vec!["dataset".to_string()];
    header.extend(base_specs.iter().map(|s| s.label()));
    header.push("crowd-w3".to_string());
    let mut t = Table::new(
        "Ablation: MPC median n-QoE by throughput predictor",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for ds in Dataset::ALL {
        let traces = ds.generate(opts.seed, opts.traces_capped(40));
        let opt = opt_for(&traces, &cfg);
        // Crowdsourced prior: the mean throughput other sessions on this
        // network family observed (disjoint training traces).
        let prior = {
            let training = ds.generate(opts.seed ^ 0xC40D, 20);
            training.iter().map(|t| t.mean_kbps()).sum::<f64>() / training.len() as f64
        };
        let mut specs = base_specs.to_vec();
        specs.push(PredictorSpec::CrossSession {
            prior_kbps: prior,
            weight: 3.0,
        });
        let mut row = vec![ds.label().to_string()];
        for spec in specs {
            let scores: Vec<f64> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return f64::NAN;
                }
                run_algo_session(
                    Algo::Mpc,
                    None,
                    spec,
                    cfg.seed ^ i as u64,
                    &traces[i],
                    &video,
                    &cfg,
                )
                .qoe
                .qoe
                    / opt[i]
            });
            let kept: Vec<f64> = scores.into_iter().filter(|s| s.is_finite()).collect();
            row.push(fmt_num(agg(&kept)));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "ablation_predictors", &t).expect("csv write");
    t.render() + "\n"
}

/// Robust-bound ablation: max vs. mean recent error, per dataset.
pub fn run_robust_bound(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let mut t = Table::new(
        "Ablation: RobustMPC bound — max vs mean recent error (median n-QoE | rebuffer s)",
        &["dataset", "max-error", "mean-error"],
    );
    for ds in Dataset::ALL {
        let traces = ds.generate(opts.seed, opts.traces_capped(40));
        let base = EvalConfig {
            seed: opts.seed,
            ..EvalConfig::paper_default()
        };
        let opt = opt_for(&traces, &base);
        let mut row = vec![ds.label().to_string()];
        for bound in [RobustBound::MaxError, RobustBound::MeanError] {
            let mut cfg = base.clone();
            cfg.sim.robust_bound = bound;
            let results: Vec<(f64, f64)> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return (f64::NAN, f64::NAN);
                }
                let r = run_algo_session(
                    Algo::RobustMpc,
                    None,
                    PredictorSpec::Harmonic,
                    cfg.seed ^ i as u64,
                    &traces[i],
                    &video,
                    &cfg,
                );
                (r.qoe.qoe / opt[i], r.total_rebuffer_secs())
            });
            let nqoe: Vec<f64> = results.iter().map(|r| r.0).filter(|x| x.is_finite()).collect();
            let rebuf: Vec<f64> = results.iter().map(|r| r.1).filter(|x| x.is_finite()).collect();
            row.push(format!("{} | {}", fmt_num(agg(&nqoe)), fmt_num(agg(&rebuf))));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "ablation_robust_bound", &t).expect("csv write");
    t.render() + "\n"
}

/// MDP ablation: value-iteration policy (fitted in- and out-of-
/// distribution) vs. the MPC family.
pub fn run_mdp(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let cfg = EvalConfig {
        seed: opts.seed,
        ..EvalConfig::paper_default()
    };
    let mdp_cfg = MdpConfig::default();
    let fit = |ds: Dataset| -> Arc<MdpPolicy> {
        let train = ds.generate(opts.seed ^ 0x7121A1, 20);
        let chain = ThroughputChain::fit(&train, 12, 50.0, 8000.0, video.chunk_secs());
        Arc::new(MdpPolicy::solve(&video, 30.0, chain, &mdp_cfg))
    };
    let policies: Vec<(Dataset, Arc<MdpPolicy>)> =
        Dataset::ALL.iter().map(|ds| (*ds, fit(*ds))).collect();

    let mut t = Table::new(
        "Ablation: MDP (§4.1 strawman) vs MPC — median n-QoE",
        &["eval dataset", "MDP in-dist", "MDP fit-on-FCC", "MPC", "RobustMPC"],
    );
    for ds in Dataset::ALL {
        let traces = ds.generate(opts.seed, opts.traces_capped(30));
        let opt = opt_for(&traces, &cfg);
        let in_dist = policies
            .iter()
            .find(|(d, _)| *d == ds)
            .map(|(_, p)| Arc::clone(p))
            .expect("policy fitted per dataset");
        let cross = policies
            .iter()
            .find(|(d, _)| *d == Dataset::Fcc)
            .map(|(_, p)| Arc::clone(p))
            .expect("FCC policy");
        let mdp_score = |policy: &Arc<MdpPolicy>| -> f64 {
            let scores: Vec<f64> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return f64::NAN;
                }
                let mut c = MdpController::new(Arc::clone(policy));
                run_session(
                    &mut c,
                    HarmonicMean::paper_default(),
                    &traces[i],
                    &video,
                    &cfg.sim,
                )
                .qoe
                .qoe
                    / opt[i]
            });
            agg(&scores.into_iter().filter(|s| s.is_finite()).collect::<Vec<_>>())
        };
        let mpc_score = |algo: Algo| -> f64 {
            let scores: Vec<f64> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return f64::NAN;
                }
                run_algo_session(
                    algo,
                    None,
                    PredictorSpec::Harmonic,
                    cfg.seed ^ i as u64,
                    &traces[i],
                    &video,
                    &cfg,
                )
                .qoe
                .qoe
                    / opt[i]
            });
            agg(&scores.into_iter().filter(|s| s.is_finite()).collect::<Vec<_>>())
        };
        t.row(vec![
            ds.label().to_string(),
            fmt_num(mdp_score(&in_dist)),
            fmt_num(mdp_score(&cross)),
            fmt_num(mpc_score(Algo::Mpc)),
            fmt_num(mpc_score(Algo::RobustMpc)),
        ]);
    }
    write_csv(opts.out.as_deref(), "ablation_mdp", &t).expect("csv write");
    t.render() + "\n"
}

/// Binning ablation: linear vs. logarithmic throughput bins for FastMPC.
pub fn run_bins(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let cfg = EvalConfig {
        seed: opts.seed,
        ..EvalConfig::paper_default()
    };
    let levels = if opts.quick { 20 } else { 50 };
    let make_table = |log: bool| -> Arc<FastMpcTable> {
        let mut tc = TableConfig::with_levels(levels, 30.0);
        tc.throughput_bins = if log {
            BinSpec::log(levels, 100.0, 10_000.0)
        } else {
            BinSpec::linear(levels, 100.0, 10_000.0)
        };
        // Custom bin layouts go through the cache directly: the content key
        // covers every config field, so the two variants never collide.
        match &cfg.table_cache {
            Some(cache) => cache.ensure(&video, 30.0, &tc),
            None => Arc::new(FastMpcTable::generate(&video, 30.0, tc)),
        }
    };
    let tables = [("log bins", make_table(true)), ("linear bins", make_table(false))];

    let mut t = Table::new(
        "Ablation: FastMPC throughput binning (median n-QoE per dataset; RLE bytes)",
        &["variant", "FCC", "HSDPA", "Synthetic", "RLE bytes"],
    );
    for (name, table) in &tables {
        let mut row = vec![name.to_string()];
        for ds in Dataset::ALL {
            let traces = ds.generate(opts.seed, opts.traces_capped(25));
            let opt = opt_for(&traces, &cfg);
            let scores: Vec<f64> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return f64::NAN;
                }
                let mut c = FastMpc::new(Arc::clone(table));
                run_session(
                    &mut c,
                    HarmonicMean::paper_default(),
                    &traces[i],
                    &video,
                    &cfg.sim,
                )
                .qoe
                .qoe
                    / opt[i]
            });
            let kept: Vec<f64> = scores.into_iter().filter(|s| s.is_finite()).collect();
            row.push(fmt_num(agg(&kept)));
        }
        row.push(table.rle_size_bytes().to_string());
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "ablation_bins", &t).expect("csv write");
    t.render() + "\n"
}

/// BB-variant ablation: the paper's literal memoryless rate map vs. Huang
/// et al.'s full BBA-0 switching band. The band kills boundary oscillation
/// (fewer switches) but reacts later to fades (more rebuffering on
/// cellular) — which is why the memoryless reading reproduces the paper's
/// Figure 8b BB numbers.
pub fn run_bb_variants(opts: &ExpOptions) -> String {
    use abr_baselines::BufferBased;
    let video = envivio_video();
    let cfg = EvalConfig {
        seed: opts.seed,
        ..EvalConfig::paper_default()
    };
    let mut t = Table::new(
        "Ablation: BB memoryless (paper) vs BBA-0 band — n-QoE | switches | rebuffer s",
        &["dataset", "memoryless", "BBA-0 band"],
    );
    for ds in Dataset::ALL {
        let traces = ds.generate(opts.seed, opts.traces_capped(40));
        let opt = opt_for(&traces, &cfg);
        let mut row = vec![ds.label().to_string()];
        for band in [false, true] {
            let results: Vec<(f64, f64, f64)> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return (f64::NAN, f64::NAN, f64::NAN);
                }
                let mut bb = if band {
                    BufferBased::bba0(5.0, 10.0)
                } else {
                    BufferBased::paper_default()
                };
                let r = run_session(
                    &mut bb,
                    HarmonicMean::paper_default(),
                    &traces[i],
                    &video,
                    &cfg.sim,
                );
                (
                    r.qoe.qoe / opt[i],
                    r.qoe.switches as f64,
                    r.total_rebuffer_secs(),
                )
            });
            let col = |f: fn(&(f64, f64, f64)) -> f64| {
                agg(&results.iter().map(f).filter(|x| x.is_finite()).collect::<Vec<_>>())
            };
            row.push(format!(
                "{} | {} | {}",
                fmt_num(col(|x| x.0)),
                fmt_num(col(|x| x.1)),
                fmt_num(col(|x| x.2))
            ));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "ablation_bb_variants", &t).expect("csv write");
    t.render() + "\n"
}

/// Quality-function ablation — the §3.2 flexibility claim: the same
/// algorithms under identity, logarithmic (small-screen) and saturating
/// (capped-display) `q(·)`. MPC optimizes whatever `q` says; RB/BB cannot
/// see it at all, so their relative standing should shift.
pub fn run_qfunc(opts: &ExpOptions) -> String {
    use abr_video::{QoeWeights, QualityFn};
    let video = envivio_video();
    let qfuncs: [(&str, QualityFn); 3] = [
        ("identity", QualityFn::Identity),
        (
            "log (small screen)",
            QualityFn::Log {
                r0: 200.0,
                // Scale so q(3000 kbps) matches identity's top value,
                // keeping the rebuffer weight comparable.
                scale: 3000.0 / (3000.0f64 / 200.0).ln(),
            },
        ),
        ("saturating @1 Mbps", QualityFn::Saturating { cap_kbps: 1000.0 }),
    ];
    let traces = Dataset::Fcc.generate(opts.seed, opts.traces_capped(30));
    let mut t = Table::new(
        "Ablation: perceived-quality function q(·) — median n-QoE (FCC)",
        &["q(·)", "RobustMPC", "BB", "RB"],
    );
    for (name, q) in qfuncs {
        let weights = QoeWeights {
            quality: q,
            ..QoeWeights::balanced()
        };
        let mut cfg = EvalConfig {
            seed: opts.seed,
            ..EvalConfig::paper_default()
        };
        cfg.sim.weights = weights.clone();
        cfg.offline.weights = weights;
        let opt = opt_for(&traces, &cfg);
        let mut row = vec![name.to_string()];
        for algo in [Algo::RobustMpc, Algo::Bb, Algo::Rb] {
            let scores: Vec<f64> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return f64::NAN;
                }
                run_algo_session(
                    algo,
                    None,
                    PredictorSpec::Harmonic,
                    cfg.seed ^ i as u64,
                    &traces[i],
                    &video,
                    &cfg,
                )
                .qoe
                .qoe
                    / opt[i]
            });
            let kept: Vec<f64> = scores.into_iter().filter(|s| s.is_finite()).collect();
            row.push(fmt_num(agg(&kept)));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "ablation_qfunc", &t).expect("csv write");
    t.render() + "\n"
}

/// Startup-phase ablation: the conventional play-on-first-chunk policy vs.
/// MPC's `fst_mpc` choosing `T_s` itself (Algorithm 1's startup branch),
/// under cheap and expensive startup weights.
pub fn run_startup(opts: &ExpOptions) -> String {
    use abr_core::{Mpc, MpcConfig};
    use abr_sim::StartupPolicy;
    use abr_video::QoeWeights;
    let video = envivio_video();
    let traces = Dataset::Hsdpa.generate(opts.seed, opts.traces_capped(30));
    let mut t = Table::new(
        "Ablation: startup policy — play-on-first-chunk vs fst_mpc (median QoE incl. startup)",
        &["µ_s", "first-chunk", "fst_mpc chooses T_s"],
    );
    for &(label, mu_s) in &[("3000 (paper)", 3000.0), ("300 (patient user)", 300.0)] {
        let weights = QoeWeights {
            mu_s,
            ..QoeWeights::balanced()
        };
        let mut row = vec![label.to_string()];
        for controller_startup in [false, true] {
            let mut cfg = EvalConfig {
                seed: opts.seed,
                ..EvalConfig::paper_default()
            };
            cfg.sim.weights = weights.clone();
            cfg.sim.startup = if controller_startup {
                StartupPolicy::Controller
            } else {
                StartupPolicy::FirstChunk
            };
            let scores: Vec<f64> = par_map(traces.len(), |i| {
                let mut mpc = Mpc::new(MpcConfig {
                    robust: true,
                    optimize_startup: controller_startup,
                    weights: weights.clone(),
                    ..MpcConfig::paper_default()
                });
                run_session(
                    &mut mpc,
                    HarmonicMean::paper_default(),
                    &traces[i],
                    &video,
                    &cfg.sim,
                )
                .qoe
                .qoe
            });
            row.push(fmt_num(agg(&scores)));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "ablation_startup", &t).expect("csv write");
    t.render() + "\n"
}

/// Modern-baseline comparison: BOLA (INFOCOM 2016, post-dating the paper)
/// against BB and the MPC family — the matchup every later ABR study runs.
pub fn run_modern(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let cfg = EvalConfig {
        seed: opts.seed,
        ..EvalConfig::paper_default()
    };
    let algos = [Algo::Bola, Algo::Bb, Algo::Mpc, Algo::RobustMpc];
    let mut t = Table::new(
        "Extension: BOLA vs BB vs MPC family — median n-QoE",
        &["dataset", "BOLA", "BB", "MPC", "RobustMPC"],
    );
    for ds in Dataset::ALL {
        let traces = ds.generate(opts.seed, opts.traces_capped(40));
        let opt = opt_for(&traces, &cfg);
        let mut row = vec![ds.label().to_string()];
        for algo in algos {
            let scores: Vec<f64> = par_map(traces.len(), |i| {
                if opt[i] <= 0.0 {
                    return f64::NAN;
                }
                run_algo_session(
                    algo,
                    None,
                    PredictorSpec::Harmonic,
                    cfg.seed ^ i as u64,
                    &traces[i],
                    &video,
                    &cfg,
                )
                .qoe
                .qoe
                    / opt[i]
            });
            let kept: Vec<f64> = scores.into_iter().filter(|s| s.is_finite()).collect();
            row.push(fmt_num(agg(&kept)));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "ablation_modern", &t).expect("csv write");
    t.render() + "\n"
}

/// Live-streaming extension: the same algorithms with chunk availability
/// gated by a live encoder at several latencies behind the live edge.
/// Smaller offsets leave less room to buffer, so rebuffering rises and the
/// conservative algorithms pull ahead.
pub fn run_live(opts: &ExpOptions) -> String {
    use abr_video::LiveSchedule;
    let video = envivio_video();
    let traces = Dataset::Hsdpa.generate(opts.seed, opts.traces_capped(30));
    let mut t = Table::new(
        "Extension: live streaming — median QoE | rebuffer s (HSDPA)",
        &["latency behind live", "RobustMPC", "BB", "RB"],
    );
    let offsets = [
        ("VOD (unconstrained)", None),
        ("16 s", Some(16.0)),
        ("8 s", Some(8.0)),
        ("4 s", Some(4.0)),
    ];
    for (label, offset) in offsets {
        let mut cfg = EvalConfig {
            seed: opts.seed,
            ..EvalConfig::paper_default()
        };
        // A session joining `offset` behind the edge sees chunk k release
        // at (k+1)·L − offset, i.e. encode_delay = L − offset. No extra
        // live buffer cap here — this table isolates availability gating.
        cfg.sim.live = offset.map(|offset_secs: f64| LiveSchedule {
            encode_delay_secs: video.chunk_secs() - offset_secs,
            max_buffer_secs: cfg.sim.buffer_max_secs,
        });
        let mut row = vec![label.to_string()];
        for algo in [Algo::RobustMpc, Algo::Bb, Algo::Rb] {
            let results: Vec<(f64, f64)> = par_map(traces.len(), |i| {
                let r = run_algo_session(
                    algo,
                    None,
                    PredictorSpec::Harmonic,
                    cfg.seed ^ i as u64,
                    &traces[i],
                    &video,
                    &cfg,
                );
                (r.qoe.qoe, r.total_rebuffer_secs())
            });
            let qoe: Vec<f64> = results.iter().map(|x| x.0).collect();
            let rebuf: Vec<f64> = results.iter().map(|x| x.1).collect();
            row.push(format!("{} | {}", fmt_num(agg(&qoe)), fmt_num(agg(&rebuf))));
        }
        t.row(row);
    }
    write_csv(opts.out.as_deref(), "ablation_live", &t).expect("csv write");
    t.render() + "\n"
}

/// All ablations.
pub fn run(opts: &ExpOptions) -> String {
    let mut s = String::new();
    s.push_str(&run_predictors(opts));
    s.push_str(&run_robust_bound(opts));
    s.push_str(&run_mdp(opts));
    s.push_str(&run_bins(opts));
    s.push_str(&run_bb_variants(opts));
    s.push_str(&run_qfunc(opts));
    s.push_str(&run_startup(opts));
    s.push_str(&run_modern(opts));
    s.push_str(&run_live(opts));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            traces: 3,
            quick: true,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn predictor_ablation_renders() {
        let s = run_predictors(&tiny());
        assert!(s.contains("harmonic-5"));
        assert!(s.contains("ar1-8"));
    }

    #[test]
    fn robust_bound_ablation_renders() {
        let s = run_robust_bound(&tiny());
        assert!(s.contains("max-error"));
        assert!(s.contains("mean-error"));
    }

    #[test]
    fn mdp_ablation_renders() {
        let s = run_mdp(&tiny());
        assert!(s.contains("MDP in-dist"));
        assert!(s.contains("RobustMPC"));
    }

    #[test]
    fn bins_ablation_renders() {
        let s = run_bins(&tiny());
        assert!(s.contains("log bins"));
        assert!(s.contains("linear bins"));
    }

    #[test]
    fn bb_variants_ablation_renders() {
        let s = run_bb_variants(&tiny());
        assert!(s.contains("memoryless"));
        assert!(s.contains("BBA-0"));
    }

    #[test]
    fn qfunc_ablation_renders() {
        let s = run_qfunc(&tiny());
        assert!(s.contains("identity"));
        assert!(s.contains("saturating"));
    }

    #[test]
    fn startup_ablation_renders() {
        let s = run_startup(&tiny());
        assert!(s.contains("fst_mpc"));
        assert!(s.contains("first-chunk"));
    }

    #[test]
    fn modern_ablation_renders() {
        let s = run_modern(&tiny());
        assert!(s.contains("BOLA"));
        assert!(s.contains("RobustMPC"));
    }

    #[test]
    fn live_ablation_renders() {
        let s = run_live(&tiny());
        assert!(s.contains("live"));
        assert!(s.contains("VOD"));
    }
}
