//! Table 1 — FastMPC table size at several discretization levels, stored
//! raw ("full table") and run-length coded.

use super::ExpOptions;
use crate::report::{write_csv, Table};
use crate::runner::{default_table_cache, fastmpc_table};
use abr_video::{envivio_video, QoeWeights};

/// Runs the experiment and returns the rendered report.
pub fn run(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let levels = if opts.quick {
        vec![50usize, 100, 200]
    } else {
        vec![50, 100, 200, 500]
    };
    let mut t = Table::new(
        "Table 1: FastMPC table size vs discretization levels",
        &[
            "levels",
            "rows",
            "full table (bytes)",
            "run-length coded (bytes)",
            "compression",
        ],
    );
    let weights = QoeWeights::balanced();
    for &n in &levels {
        let table = fastmpc_table(&video, 30.0, &weights, n, default_table_cache().as_ref());
        let ratio = table.rle_size_bytes() as f64 / table.full_size_bytes() as f64;
        t.row(vec![
            n.to_string(),
            table.num_entries().to_string(),
            table.full_size_bytes().to_string(),
            table.rle_size_bytes().to_string(),
            format!("{:.2}x", ratio),
        ]);
    }
    write_csv(opts.out.as_deref(), "table1", &t).expect("csv write");
    t.render() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_with_decreasing_ratio() {
        let s = run(&ExpOptions {
            quick: true,
            ..ExpOptions::default()
        });
        assert!(s.contains("Table 1"));
        assert!(s.contains("run-length"));
    }
}
