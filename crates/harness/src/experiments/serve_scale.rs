//! `serve-scale`: the event-driven server's sessions-vs-latency curve.
//!
//! Sweeps concurrent-session counts (256 → 50k by default) against the
//! epoll engine, driving each point with the multiplexed load generator
//! over a bounded connection pool — the client shape that makes 50k
//! closed-loop sessions feasible on one machine. Each point reports
//! aggregate decision throughput and exact client-observed latency
//! quantiles, and enforces the bit-identity gate (every session's remote
//! decision sequence equals its in-process twin). `serve_scale.csv`
//! carries the curve:
//!
//! ```text
//! sessions,loops,conns,decisions,dec_per_sec,mean_us,p50_us,p90_us,p99_us,p999_us,mismatches
//! ```

use super::ExpOptions;
use crate::report::{fmt_num, write_csv, Table};
use abr_serve::{run_mux_load, Backend, EventConfig, EventServer, MuxOptions};

/// Default sweep points: the threaded engine's comfort zone up to the
/// tentpole target.
pub const SCALE_SESSIONS: [usize; 5] = [256, 1024, 4096, 16_384, 50_000];

/// Target requests in flight per connection. Throughput on this path is
/// syscall-bound, not controller-bound: a ~16-deep pipeline lets every
/// `read`/`write` carry a batch of requests instead of one, which
/// measured ~10x faster than a connection-per-session pool (12k → 141k
/// decisions/s at 1024 sessions on one core).
const PIPE_DEPTH: usize = 16;

/// Connection-pool ceiling: beyond this, extra connections only shrink
/// the per-read batch (and burn fds — two ends per connection when the
/// load generator and server share a process).
const CONN_POOL_CAP: usize = 128;

/// Session-store shards for the scale sweep: at 50k live sessions the
/// default 16 shards leave >3k entries per map; 64 keeps lookups short.
const SCALE_SHARDS: usize = 64;

/// The session counts a given options set sweeps.
pub fn session_points(opts: &ExpOptions) -> Vec<usize> {
    match &opts.scale_sessions {
        Some(list) => list.clone(),
        None if opts.quick => vec![64, 256],
        None => SCALE_SESSIONS.to_vec(),
    }
}

/// Runs the sweep and renders the report table (plus `serve_scale.csv`).
pub fn run(opts: &ExpOptions) -> String {
    let loops = opts.event_loops.unwrap_or(2);
    let backend = opts
        .backend
        .as_deref()
        .map(|n| Backend::parse(n).expect("--backend validated at parse time"))
        .unwrap_or(Backend::FastMpc);
    let points = session_points(opts);
    let mut t = Table::new(
        "serve-scale: event-driven engine, sessions vs latency",
        &[
            "sessions",
            "loops",
            "conns",
            "decisions",
            "dec_per_sec",
            "mean_us",
            "p50_us",
            "p90_us",
            "p99_us",
            "p999_us",
            "mismatches",
        ],
    );
    for &sessions in &points {
        let conns = sessions.div_ceil(PIPE_DEPTH).clamp(1, CONN_POOL_CAP);
        // A fresh server per point: the curve measures steady-state
        // capacity at each concurrency, not accumulation across points.
        let mut handle = EventServer::spawn(EventConfig {
            loops,
            max_conns: opts.max_conns.max(conns + 16),
            shards: SCALE_SHARDS,
            ..EventConfig::default()
        })
        .expect("bind loopback event server");
        let mut load = MuxOptions::new(sessions);
        load.backend = backend;
        load.seed = opts.seed;
        load.conns = conns;
        let mux = run_mux_load(handle.addr(), &load);
        handle.shutdown();
        let report = mux.report;
        assert_eq!(
            report.mismatches, 0,
            "differential gate at {sessions} sessions:\n{}",
            report.mismatch_details.join("\n")
        );
        t.row(vec![
            sessions.to_string(),
            loops.to_string(),
            conns.to_string(),
            report.decisions.to_string(),
            fmt_num(report.decisions_per_sec),
            fmt_num(report.mean_us),
            fmt_num(report.p50_us),
            fmt_num(report.p90_us),
            fmt_num(report.p99_us),
            fmt_num(report.p999_us),
            report.mismatches.to_string(),
        ]);
    }
    write_csv(opts.out.as_deref(), "serve_scale", &t).expect("csv write");
    let mut s = t.render();
    s.push_str(&format!(
        "backend {}; {loops} epoll loop(s); every point spawns a fresh \
         event-driven server and verifies every session bit-identical to \
         its in-process twin after the timed window. Latency is measured \
         enqueue-to-parse over pipelined keep-alive connections, so it \
         includes client-side queueing on the shared pool.\n\n",
        backend.token()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_scale_smoke() {
        let opts = ExpOptions {
            quick: true,
            scale_sessions: Some(vec![8, 24]),
            backend: Some("bb".into()),
            ..ExpOptions::default()
        };
        let s = run(&opts);
        assert!(s.contains("serve-scale"));
        assert!(s.contains("backend bb"));
        // Both sweep points made it into the table.
        assert!(s.contains('8'));
        assert!(s.contains("24"));
    }

    #[test]
    fn session_points_honor_flags() {
        let default = ExpOptions::default();
        assert_eq!(session_points(&default), SCALE_SESSIONS.to_vec());
        let quick = ExpOptions {
            quick: true,
            ..ExpOptions::default()
        };
        assert_eq!(session_points(&quick), vec![64, 256]);
        let pinned = ExpOptions {
            scale_sessions: Some(vec![10, 20, 30]),
            quick: true,
            ..ExpOptions::default()
        };
        assert_eq!(session_points(&pinned), vec![10, 20, 30]);
    }
}
