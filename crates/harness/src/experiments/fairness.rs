//! Shared-bottleneck fairness — coordinated vs uncoordinated fleets.
//!
//! Sweeps players-per-bottleneck × controller × coordinated/uncoordinated
//! with the fault layer armed. Every cell runs `--bottlenecks` independent
//! shared links through the fleet-scale multiplayer engine; the
//! coordinated arm wraps each player in a
//! [`CoordinatedController`](abr_serve::CoordinatedController) sharing one
//! [`FairnessCoordinator`] per link, exactly the allocator `abr-serve`
//! runs behind `POST /decision(s)`.
//!
//! Two differential twins guard every run:
//!
//! * **reference twin** (links with ≤ 8 players): the run is repeated
//!   through the preserved small-N reference loop and compared bit-exactly
//!   — the scaled engine may not move a single decision, coordinated or
//!   not.
//! * **wire twin** (every run): each player's decision stream is recorded
//!   in global decision order as the exact `DecisionRequest` the wire
//!   would carry, then replayed through a real in-process
//!   [`AbrService`] (grouped sessions for the coordinated arm) and the
//!   service's replies compared decision-for-decision. This pins the
//!   in-process coordinator consulted by the harness to the one the
//!   server runs.
//!
//! Any twin mismatch panics, so a clean exit is the differential gate
//! (`scripts/ci.sh` fairness smoke). Outputs: per-run rows in
//! `fairness.csv` (full float precision — the byte-identity determinism
//! gate diffs this file across processes), headline CDFs in
//! `fairness_cdf.csv`, and the rendered summary/verdict tables.

use super::ExpOptions;
use crate::registry::Algo;
use crate::report::{cdf_table, fmt_num, write_csv, Table};
use crate::runner::{par_map, FaultSpec};
use abr_core::{BitrateController, ControllerContext, Decision};
use abr_net::http::Request;
use abr_net::multiplayer::{
    reference, run_shared_session_faulted, SharedFaults, SharedOutcome, SharedPlayer,
};
use abr_predictor::HarmonicMean;
use abr_serve::{
    AbrService, Backend, CoordinatedController, CoordinatorConfig, DecisionReply,
    DecisionRequest, FairnessCoordinator, LastChunk, SessionSpec,
};
use abr_sim::SimConfig;
use abr_trace::{Dataset, Trace};
use abr_video::{envivio_video, Video};
use bytes::Bytes;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// The coordinator configuration under test — shared by the in-process
/// fleet, the reference twin, and the wire-replay service so all three
/// consult bit-identical allocators.
///
/// `headroom > 1` compensates the capacity estimator's residual low bias
/// on bursty traces (throughput is only sampled while flows are on-wire,
/// which correlates with contention), and `max_step_up: 2` lets the
/// allocator track FCC-style rate bursts; both were tuned so the
/// coordinated fleet keeps ≥ 95% of uncoordinated delivered kilobits
/// while winning the Jain CDF.
fn coord_cfg(alpha: f64) -> CoordinatorConfig {
    CoordinatorConfig {
        alpha,
        headroom: 1.125,
        max_step_up: 2,
        ..CoordinatorConfig::default()
    }
}

/// One recorded decision: the wire request the player state maps to and
/// the decision the in-process controller produced for it.
struct WireEvent {
    player: usize,
    req: DecisionRequest,
    level: usize,
    wait_bits: Option<u64>,
}

type WireLog = Arc<Mutex<Vec<WireEvent>>>;

/// Wraps a controller and appends every decision to a shared log in
/// global decision order — the engine is single-threaded, so the log is
/// the exact serialization the wire replay must reproduce.
struct Recording {
    inner: Box<dyn BitrateController>,
    sid: u64,
    log: WireLog,
}

impl BitrateController for Recording {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        let req = DecisionRequest::from_context(self.sid, ctx);
        let d = self.inner.decide(ctx);
        self.log.lock().unwrap().push(WireEvent {
            player: self.sid as usize,
            req,
            level: d.level.get(),
            wait_bits: d.startup_wait_secs.map(f64::to_bits),
        });
        d
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

fn backend_of(algo: Algo) -> Backend {
    match algo {
        Algo::Bb => Backend::Bb,
        Algo::Rb => Backend::Rb,
        Algo::RobustMpc => Backend::RobustMpc,
        Algo::Mpc => Backend::Mpc,
        other => panic!("fairness experiment has no serve backend for {other:?}"),
    }
}

fn build_players(
    n: usize,
    algo: Algo,
    cfg: &SimConfig,
    video: &Video,
    coordinator: Option<&Arc<FairnessCoordinator>>,
    log: &WireLog,
) -> Vec<SharedPlayer> {
    (0..n)
        .map(|i| {
            let mut ctrl: Box<dyn BitrateController> = algo.build(None, &cfg.weights, 5);
            if let Some(coord) = coordinator {
                ctrl = Box::new(CoordinatedController::new(
                    ctrl,
                    Arc::clone(coord),
                    "link",
                    i as u64,
                    video,
                    &cfg.weights.quality,
                ));
            }
            SharedPlayer {
                controller: Box::new(Recording {
                    inner: ctrl,
                    sid: i as u64,
                    log: Arc::clone(log),
                }),
                predictor: Box::new(HarmonicMean::paper_default()),
                // Staggered joins: waves of 16, half a second apart.
                start_offset_secs: (i % 16) as f64 * 0.5,
            }
        })
        .collect()
}

/// Bit-exact comparison of two shared-run outcomes; returns the number of
/// diverging fields/records.
fn diff_outcomes(a: &SharedOutcome, b: &SharedOutcome) -> usize {
    let mut m = 0usize;
    m += usize::from(a.span_secs.to_bits() != b.span_secs.to_bits());
    m += usize::from(a.delivered_kbits.to_bits() != b.delivered_kbits.to_bits());
    m += usize::from(a.qoe_fairness.to_bits() != b.qoe_fairness.to_bits());
    m += usize::from(a.bitrate_fairness.to_bits() != b.bitrate_fairness.to_bits());
    m += usize::from(a.utilization.to_bits() != b.utilization.to_bits());
    m += usize::from(a.oscillations != b.oscillations);
    if a.sessions.len() != b.sessions.len() {
        return m + 1;
    }
    for (sa, sb) in a.sessions.iter().zip(&b.sessions) {
        m += usize::from(sa.qoe.qoe.to_bits() != sb.qoe.qoe.to_bits());
        if sa.records.len() != sb.records.len() {
            m += 1;
            continue;
        }
        for (ra, rb) in sa.records.iter().zip(&sb.records) {
            m += usize::from(
                ra.level != rb.level
                    || ra.download_secs.to_bits() != rb.download_secs.to_bits()
                    || ra.throughput_kbps.to_bits() != rb.throughput_kbps.to_bits(),
            );
        }
    }
    m
}

/// Replays the recorded decision stream through a real in-process
/// [`AbrService`] and counts reply divergences.
fn wire_replay(
    log: &[WireEvent],
    n: usize,
    algo: Algo,
    coordinated: bool,
    alpha: f64,
    video: &Video,
) -> usize {
    let svc = AbrService::with_coordinator_config(
        4,
        abr_fastmpc::TableStoreConfig::default(),
        coord_cfg(alpha),
    );
    let mut sids = Vec::with_capacity(n);
    for _ in 0..n {
        let mut spec = SessionSpec::paper_default(backend_of(algo), video.clone());
        if coordinated {
            spec.bottleneck = Some("link".to_string());
        }
        let resp = svc.handle(&Request::post(
            "/session",
            Bytes::from(spec.encode()),
            "text/plain",
        ));
        assert_eq!(resp.status, 200, "fairness wire twin: registration failed");
        let sid: u64 = String::from_utf8_lossy(&resp.body)
            .trim()
            .strip_prefix("sid ")
            .expect("sid line")
            .parse()
            .expect("sid number");
        sids.push(sid);
    }
    let mut mismatches = 0usize;
    for ev in log {
        let req = DecisionRequest {
            sid: sids[ev.player],
            chunk: ev.req.chunk,
            buffer_secs: ev.req.buffer_secs,
            last: ev.req.last.as_ref().map(|l| LastChunk {
                level: l.level,
                throughput_kbps: l.throughput_kbps,
                download_secs: l.download_secs,
            }),
            now_secs: None,
        };
        let resp = svc.handle(&Request::post(
            "/decision",
            Bytes::from(req.encode()),
            "text/plain",
        ));
        if resp.status != 200 {
            mismatches += 1;
            continue;
        }
        let reply = DecisionReply::decode(&String::from_utf8_lossy(&resp.body))
            .expect("fairness wire twin: reply body");
        if reply.level != ev.level
            || reply.startup_wait_secs.map(f64::to_bits) != ev.wait_bits
        {
            mismatches += 1;
        }
    }
    mismatches
}

/// One (players, algorithm, mode, bottleneck) run.
struct Row {
    players: usize,
    algo: Algo,
    coordinated: bool,
    run: usize,
    jain_qoe: f64,
    jain_bitrate: f64,
    utilization: f64,
    mean_qoe: f64,
    delivered_kbits: f64,
    mean_instability: f64,
    mean_oscillations: f64,
    coordinated_decisions: u64,
    fallback_decisions: u64,
    ref_mismatches: Option<usize>,
    wire_mismatches: usize,
    qoes: Vec<f64>,
    instabilities: Vec<f64>,
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    players: usize,
    algo: Algo,
    coordinated: bool,
    run: usize,
    trace: &Trace,
    faults: &SharedFaults,
    alpha: f64,
    video: &Video,
    cfg: &SimConfig,
) -> Row {
    let log: WireLog = Arc::default();
    let coordinator = coordinated.then(|| {
        Arc::new(FairnessCoordinator::new(coord_cfg(alpha)))
    });
    let fleet = build_players(players, algo, cfg, video, coordinator.as_ref(), &log);
    let out = run_shared_session_faulted(fleet, trace, video, cfg, Some(faults));
    let (coordinated_decisions, fallback_decisions) = coordinator
        .as_ref()
        .map(|c| {
            (
                c.stats().coordinated.load(Ordering::Relaxed),
                c.stats().fallbacks.load(Ordering::Relaxed),
            )
        })
        .unwrap_or((0, 0));

    // Reference twin: small links re-run through the preserved O(n) loop.
    let ref_mismatches = (players <= 8).then(|| {
        let log2: WireLog = Arc::default();
        let coord2 = coordinated.then(|| {
            Arc::new(FairnessCoordinator::new(coord_cfg(alpha)))
        });
        let fleet2 = build_players(players, algo, cfg, video, coord2.as_ref(), &log2);
        let slow = reference::run_shared_session_faulted(fleet2, trace, video, cfg, Some(faults));
        diff_outcomes(&out, &slow)
    });

    // Wire twin: replay the recorded stream through a real service.
    let events = Arc::try_unwrap(log)
        .unwrap_or_else(|_| panic!("wire log still shared"))
        .into_inner()
        .unwrap();
    let wire_mismatches = wire_replay(&events, players, algo, coordinated, alpha, video);

    let qoes: Vec<f64> = out.sessions.iter().map(|s| s.qoe.qoe).collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    Row {
        players,
        algo,
        coordinated,
        run,
        jain_qoe: out.qoe_fairness,
        jain_bitrate: out.bitrate_fairness,
        utilization: out.utilization,
        mean_qoe: mean(&qoes),
        delivered_kbits: out.delivered_kbits,
        mean_instability: mean(&out.instabilities),
        mean_oscillations: out.oscillations.iter().sum::<usize>() as f64
            / out.oscillations.len().max(1) as f64,
        coordinated_decisions,
        fallback_decisions,
        ref_mismatches,
        wire_mismatches,
        qoes,
        instabilities: out.instabilities.clone(),
    }
}

fn mode_name(coordinated: bool) -> &'static str {
    if coordinated {
        "coordinated"
    } else {
        "uncoordinated"
    }
}

/// Runs the experiment and returns the rendered report.
pub fn run(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let alpha = opts.fairness_alpha;
    let player_counts: Vec<usize> = match opts.players {
        Some(p) => vec![p],
        None if opts.quick => vec![4, 16],
        None => vec![8, 64],
    };
    let algos: Vec<Algo> = if opts.quick {
        vec![Algo::RobustMpc]
    } else {
        vec![Algo::Bb, Algo::RobustMpc]
    };
    let runs = opts.bottlenecks;
    // The fault layer is ON by default in this experiment (the regime the
    // coordinator must survive); --fault-rate overrides, including to 0.
    let rate = opts.fault_rate.unwrap_or(0.05);
    let fault_template = FaultSpec::for_rate(rate, opts.fault_seed);
    // One base trace per bottleneck, scaled per fleet size so the
    // long-run fair share sits between ladder levels and contention
    // actually bites.
    let base_traces = Dataset::Fcc.generate(opts.seed ^ 0x6A11, runs);

    struct Job {
        players: usize,
        algo: Algo,
        coordinated: bool,
        run: usize,
        trace: Trace,
        faults: SharedFaults,
    }
    let mut jobs = Vec::new();
    for &players in &player_counts {
        for &algo in &algos {
            for coordinated in [false, true] {
                for (run, base) in base_traces.iter().enumerate() {
                    jobs.push(Job {
                        players,
                        algo,
                        coordinated,
                        run,
                        trace: base.scaled(1.2 * players as f64),
                        faults: SharedFaults {
                            config: fault_template.config.clone(),
                            policy: fault_template.policy.clone(),
                            seed: opts.fault_seed
                                ^ (run as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
                        },
                    });
                }
            }
        }
    }
    let rows: Vec<Row> = par_map(jobs.len(), |i| {
        let j = &jobs[i];
        run_one(
            j.players,
            j.algo,
            j.coordinated,
            j.run,
            &j.trace,
            &j.faults,
            alpha,
            &video,
            &cfg,
        )
    });

    // The twin gates: any divergence is a bug, not a data point.
    let ref_total: usize = rows.iter().filter_map(|r| r.ref_mismatches).sum();
    let wire_total: usize = rows.iter().map(|r| r.wire_mismatches).sum();
    assert_eq!(
        ref_total, 0,
        "scaled engine diverged from the reference loop"
    );
    assert_eq!(
        wire_total, 0,
        "in-process coordinator diverged from the served wire replay"
    );

    // Per-run CSV, full float precision: the cross-process determinism
    // gate byte-diffs this file.
    let mut csv = Table::new(
        "Fairness runs: one row per (players, algorithm, mode, bottleneck)",
        &[
            "players",
            "algorithm",
            "mode",
            "bottleneck",
            "jain_qoe",
            "jain_bitrate",
            "utilization",
            "mean_qoe",
            "delivered_kbits",
            "mean_instability",
            "mean_oscillations",
            "coordinated_decisions",
            "fallback_decisions",
            "ref_twin_mismatches",
            "wire_twin_mismatches",
        ],
    );
    for r in &rows {
        csv.row(vec![
            r.players.to_string(),
            r.algo.name().to_string(),
            mode_name(r.coordinated).to_string(),
            r.run.to_string(),
            format!("{}", r.jain_qoe),
            format!("{}", r.jain_bitrate),
            format!("{}", r.utilization),
            format!("{}", r.mean_qoe),
            format!("{}", r.delivered_kbits),
            format!("{}", r.mean_instability),
            format!("{}", r.mean_oscillations),
            r.coordinated_decisions.to_string(),
            r.fallback_decisions.to_string(),
            r.ref_mismatches.map_or("-".to_string(), |m| m.to_string()),
            r.wire_mismatches.to_string(),
        ]);
    }
    write_csv(opts.out.as_deref(), "fairness", &csv).expect("csv write");

    // Summary: cell means across bottlenecks.
    let mut summary = Table::new(
        "Shared-bottleneck fairness: coordinated vs uncoordinated (cell means)",
        &[
            "players",
            "algorithm",
            "mode",
            "Jain(QoE)",
            "Jain(bitrate)",
            "utilization",
            "mean QoE",
            "instability",
            "coord/fallback",
            "twin mismatches",
        ],
    );
    let cell = |players: usize, algo: Algo, coordinated: bool| -> Vec<&Row> {
        rows.iter()
            .filter(|r| r.players == players && r.algo == algo && r.coordinated == coordinated)
            .collect()
    };
    let cell_mean = |rs: &[&Row], f: fn(&Row) -> f64| -> f64 {
        rs.iter().map(|r| f(r)).sum::<f64>() / rs.len().max(1) as f64
    };
    for &players in &player_counts {
        for &algo in &algos {
            for coordinated in [false, true] {
                let rs = cell(players, algo, coordinated);
                let twin: usize = rs
                    .iter()
                    .map(|r| r.ref_mismatches.unwrap_or(0) + r.wire_mismatches)
                    .sum();
                summary.row(vec![
                    players.to_string(),
                    algo.name().to_string(),
                    mode_name(coordinated).to_string(),
                    fmt_num(cell_mean(&rs, |r| r.jain_qoe)),
                    fmt_num(cell_mean(&rs, |r| r.jain_bitrate)),
                    fmt_num(cell_mean(&rs, |r| r.utilization)),
                    fmt_num(cell_mean(&rs, |r| r.mean_qoe)),
                    fmt_num(cell_mean(&rs, |r| r.mean_instability)),
                    format!(
                        "{}/{}",
                        rs.iter().map(|r| r.coordinated_decisions).sum::<u64>(),
                        rs.iter().map(|r| r.fallback_decisions).sum::<u64>()
                    ),
                    twin.to_string(),
                ]);
            }
        }
    }
    let mut out = summary.render();

    // Verdict per (players, algorithm): the acceptance comparison.
    let mut verdict = Table::new(
        "Coordination verdict: Jain(QoE) lift and efficiency ratio (coordinated / uncoordinated)",
        &[
            "players",
            "algorithm",
            "Jain uncoord",
            "Jain coord",
            "delivered ratio",
            "instability ratio",
        ],
    );
    for &players in &player_counts {
        for &algo in &algos {
            let u = cell(players, algo, false);
            let c = cell(players, algo, true);
            let ju = cell_mean(&u, |r| r.jain_qoe);
            let jc = cell_mean(&c, |r| r.jain_qoe);
            let eff =
                cell_mean(&c, |r| r.delivered_kbits) / cell_mean(&u, |r| r.delivered_kbits);
            let instab =
                cell_mean(&c, |r| r.mean_instability) / cell_mean(&u, |r| r.mean_instability);
            verdict.row(vec![
                players.to_string(),
                algo.name().to_string(),
                fmt_num(ju),
                fmt_num(jc),
                fmt_num(eff),
                fmt_num(instab),
            ]);
        }
    }
    out.push_str(&verdict.render());

    // Headline CDFs: the largest fleet, the MPC arm (or the only algo).
    let headline_players = *player_counts.iter().max().unwrap();
    let headline_algo = *algos.last().unwrap();
    let pool = |coordinated: bool, f: fn(&Row) -> &Vec<f64>| -> Vec<f64> {
        cell(headline_players, headline_algo, coordinated)
            .iter()
            .flat_map(|r| f(r).iter().copied())
            .collect()
    };
    let jain = |coordinated: bool| -> Vec<f64> {
        cell(headline_players, headline_algo, coordinated)
            .iter()
            .map(|r| r.jain_qoe)
            .collect()
    };
    let (ju, jc) = (jain(false), jain(true));
    let (qu, qc) = (pool(false, |r| &r.qoes), pool(true, |r| &r.qoes));
    let (iu, ic) = (
        pool(false, |r| &r.instabilities),
        pool(true, |r| &r.instabilities),
    );
    let cdfs = cdf_table(
        &format!(
            "Fairness CDFs: {headline_players} players/bottleneck, {} (quantiles across bottlenecks/players)",
            headline_algo.name()
        ),
        &[
            ("jain_uncoord", ju.as_slice()),
            ("jain_coord", jc.as_slice()),
            ("qoe_uncoord", qu.as_slice()),
            ("qoe_coord", qc.as_slice()),
            ("instab_uncoord", iu.as_slice()),
            ("instab_coord", ic.as_slice()),
        ],
        20,
    );
    write_csv(opts.out.as_deref(), "fairness_cdf", &cdfs).expect("csv write");
    out.push_str(&cdfs.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_experiment_renders_with_zero_twin_mismatches() {
        // Tiny fleet: both modes, reference twin active (players <= 8),
        // wire twin always active. The run() asserts 0 mismatches, so
        // rendering at all is the differential gate.
        let s = run(&ExpOptions {
            players: Some(3),
            bottlenecks: 1,
            quick: true,
            ..ExpOptions::default()
        });
        assert!(s.contains("coordinated"), "{s}");
        assert!(s.contains("Jain(QoE)"), "{s}");
        assert!(s.contains("jain_coord"), "{s}");
    }
}
