//! Robustness sweep: fault rate × controller on the emulated path.
//!
//! The paper's evaluation assumes a well-behaved CDN; this experiment asks
//! what each controller's QoE costs when the network misbehaves. Requests
//! draw from a seeded [`FaultSpec`] stream (connection resets, truncated
//! bodies, stalls, HTTP 404/503, request jitter) and the player survives
//! via the hostile-network retry policy; the sweep reports, per (fault
//! rate, algorithm) cell, the median normalized QoE plus the fault-layer
//! accounting the session engine now carries (retries, wasted bytes,
//! rebuffering, aborted sessions).
//!
//! Everything is deterministic: the same `--fault-seed` reproduces the
//! exact fault schedule, so two runs emit byte-identical CSVs.

use super::ExpOptions;
use crate::registry::Algo;
use crate::report::{fmt_num, write_csv, Table};
use crate::runner::{evaluate_dataset, EvalConfig, FaultSpec};
use abr_net::NetConfig;
use abr_trace::{stats, Dataset};
use abr_video::envivio_video;

/// Controllers compared in the sweep.
pub const ALGOS: [Algo; 4] = [Algo::Rb, Algo::Bb, Algo::RobustMpc, Algo::FastMpc];

/// The fault rates swept: `--fault-rate` pins a single one, quick mode
/// keeps the endpoints, the full run adds the interior of the curve.
pub fn rates(opts: &ExpOptions) -> Vec<f64> {
    match opts.fault_rate {
        Some(r) => vec![r],
        None if opts.quick => vec![0.0, 0.1],
        None => vec![0.0, 0.02, 0.05, 0.1, 0.2],
    }
}

/// Runs the sweep and renders the report table (plus `robustness.csv`).
pub fn run(opts: &ExpOptions) -> String {
    let video = envivio_video();
    let traces = Dataset::Fcc.generate(
        opts.seed ^ 0x0FAB,
        opts.traces_capped(if opts.quick { 6 } else { 20 }),
    );
    let mut t = Table::new(
        "Robustness: QoE and fault accounting vs injected fault rate (FCC, emulated)",
        &[
            "fault rate",
            "algorithm",
            "median n-QoE",
            "mean rebuffer (s)",
            "mean retries",
            "mean wasted (MB)",
            "aborted",
            "mean chunks",
        ],
    );
    for &rate in &rates(opts) {
        let cfg = EvalConfig {
            emulated: true,
            net: NetConfig::typical(),
            seed: opts.seed,
            fastmpc_levels: if opts.quick { 30 } else { 100 },
            faults: Some(FaultSpec::for_rate(rate, opts.fault_seed)),
            ..EvalConfig::paper_default()
        };
        let out = evaluate_dataset(&ALGOS, &traces, &video, &cfg);
        for algo in &ALGOS {
            let sessions = out.sessions_of(*algo);
            let n = sessions.len().max(1) as f64;
            let mean = |f: &dyn Fn(&abr_sim::SessionResult) -> f64| {
                sessions.iter().map(|s| f(s)).sum::<f64>() / n
            };
            let aborted = sessions.iter().filter(|s| s.aborted).count();
            t.row(vec![
                fmt_num(rate),
                algo.name().to_string(),
                fmt_num(stats::median(&out.n_qoe_samples(*algo))),
                fmt_num(mean(&|s| s.total_rebuffer_secs())),
                fmt_num(mean(&|s| s.total_retries() as f64)),
                fmt_num(mean(&|s| s.total_wasted_kbits() / 8000.0)),
                format!("{aborted}"),
                fmt_num(mean(&|s| s.records.len() as f64)),
            ]);
        }
    }
    write_csv(opts.out.as_deref(), "robustness", &t).expect("csv write");
    let mut s = t.render();
    s.push_str(&format!(
        "Fault kinds are equiprobable at rate/5 each; fault seed {} \
         (re-run with the same seed for a byte-identical CSV).\n\n",
        opts.fault_seed
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robustness_smoke() {
        let opts = ExpOptions {
            traces: 2,
            quick: true,
            fault_rate: Some(0.15),
            ..ExpOptions::default()
        };
        let s = run(&opts);
        assert!(s.contains("Robustness"));
        assert!(s.contains("RobustMPC"));
        assert!(s.contains("fault seed 7"));
        // A pinned rate sweeps exactly one rate: 4 algorithm rows.
        assert_eq!(s.matches("FastMPC").count(), 1);
    }

    #[test]
    fn rate_grid_shapes() {
        let quick = ExpOptions {
            quick: true,
            ..ExpOptions::default()
        };
        assert_eq!(rates(&quick), vec![0.0, 0.1]);
        assert_eq!(
            rates(&ExpOptions::default()),
            vec![0.0, 0.02, 0.05, 0.1, 0.2]
        );
        let pinned = ExpOptions {
            fault_rate: Some(0.3),
            ..ExpOptions::default()
        };
        assert_eq!(rates(&pinned), vec![0.3]);
    }
}
