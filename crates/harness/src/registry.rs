//! The algorithm registry: builds fresh controller/predictor pairs per
//! session, exactly as Section 7.1.2 configures them.

use abr_baselines::{Bola, BufferBased, DashJs, Festive, RateBased};
use abr_core::{BitrateController, Mpc, MpcConfig};
use abr_fastmpc::{FastMpc, FastMpcTable, TableConfig};
use abr_predictor::{
    Ar1, CrossSession, Ewma, HarmonicMean, LastSample, NoisyOracle, Predictor, SlidingMean,
};
use abr_video::{QoeWeights, Video};
use std::sync::Arc;

/// The throughput predictor driving a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorSpec {
    /// Harmonic mean of the past 5 chunks — the paper's default.
    Harmonic,
    /// Ground truth with bounded multiplicative noise (sensitivity studies);
    /// `0.0` is the perfect predictor used for MPC-OPT.
    Oracle(f64),
    /// Arithmetic mean over a window.
    Sliding(usize),
    /// Exponentially weighted moving average.
    Ewma(f64),
    /// The last observed chunk throughput.
    Last,
    /// Online-fitted AR(1) in the log domain (Section 8's "better
    /// predictors" direction).
    Ar1(usize),
    /// Crowdsourced prior worth `weight` pseudo-observations blended with a
    /// 5-chunk harmonic window (Section 8's control-plane direction).
    CrossSession {
        /// Prior throughput estimate from other sessions, kbps.
        prior_kbps: f64,
        /// Pseudo-observation weight of the prior.
        weight: f64,
    },
}

impl PredictorSpec {
    /// Builds a fresh predictor for one session; `seed` keeps oracle noise
    /// deterministic per (trace, algorithm).
    pub fn build(&self, seed: u64) -> Box<dyn Predictor> {
        match *self {
            PredictorSpec::Harmonic => Box::new(HarmonicMean::paper_default()),
            PredictorSpec::Oracle(err) => Box::new(NoisyOracle::new(err, seed)),
            PredictorSpec::Sliding(w) => Box::new(SlidingMean::new(w)),
            PredictorSpec::Ewma(alpha) => Box::new(Ewma::new(alpha)),
            PredictorSpec::Last => Box::new(LastSample::new()),
            PredictorSpec::Ar1(w) => Box::new(Ar1::new(w)),
            PredictorSpec::CrossSession { prior_kbps, weight } => {
                Box::new(CrossSession::new(prior_kbps, weight, 5))
            }
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            PredictorSpec::Harmonic => "harmonic-5".to_string(),
            PredictorSpec::Oracle(e) => format!("oracle±{:.0}%", e * 100.0),
            PredictorSpec::Sliding(w) => format!("mean-{w}"),
            PredictorSpec::Ewma(a) => format!("ewma-{a}"),
            PredictorSpec::Last => "last-sample".to_string(),
            PredictorSpec::Ar1(w) => format!("ar1-{w}"),
            PredictorSpec::CrossSession { weight, .. } => format!("crowd-w{weight}"),
        }
    }
}

/// The algorithms of the evaluation (Section 7.1.2's list plus MPC-OPT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Rate-based: max bitrate under the harmonic-mean prediction.
    Rb,
    /// Buffer-based (Huang et al.), reservoir 5 s / cushion 10 s.
    Bb,
    /// FESTIVE with `α = 12`, stepwise switching.
    Festive,
    /// dash.js rule-based logic.
    DashJs,
    /// BOLA (extension): the Lyapunov buffer-based algorithm from
    /// follow-on work.
    Bola,
    /// FastMPC: 100×100-bin table lookup, harmonic-mean prediction.
    FastMpc,
    /// RobustMPC: exact MPC on the error-adjusted throughput lower bound.
    RobustMpc,
    /// Exact MPC on the raw prediction.
    Mpc,
    /// Exact MPC with perfect throughput prediction (simulation upper
    /// reference in Figures 11b–d).
    MpcOpt,
}

impl Algo {
    /// The six algorithms of the headline comparison (Figure 8), in the
    /// paper's legend order.
    pub const FIGURE8: [Algo; 6] = [
        Algo::Rb,
        Algo::Bb,
        Algo::FastMpc,
        Algo::RobustMpc,
        Algo::DashJs,
        Algo::Festive,
    ];

    /// The four algorithms of the sensitivity panels (Figures 11b–d).
    pub const SENSITIVITY: [Algo; 4] = [Algo::MpcOpt, Algo::FastMpc, Algo::Bb, Algo::Rb];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Rb => "RB",
            Algo::Bb => "BB",
            Algo::Festive => "FESTIVE",
            Algo::DashJs => "dash.js",
            Algo::Bola => "BOLA",
            Algo::FastMpc => "FastMPC",
            Algo::RobustMpc => "RobustMPC",
            Algo::Mpc => "MPC",
            Algo::MpcOpt => "MPC-OPT",
        }
    }

    /// The predictor this algorithm is evaluated with by default.
    pub fn default_predictor(self) -> PredictorSpec {
        match self {
            Algo::MpcOpt => PredictorSpec::Oracle(0.0),
            _ => PredictorSpec::Harmonic,
        }
    }

    /// Whether this algorithm needs the FastMPC decision table.
    pub fn needs_table(self) -> bool {
        matches!(self, Algo::FastMpc)
    }

    /// Builds a fresh controller. `table` is required for
    /// [`Algo::FastMpc`]; `weights`/`horizon` configure the MPC family.
    pub fn build(
        self,
        table: Option<&Arc<FastMpcTable>>,
        weights: &QoeWeights,
        horizon: usize,
    ) -> Box<dyn BitrateController> {
        let mpc_cfg = |robust: bool| MpcConfig {
            horizon,
            weights: weights.clone(),
            robust,
            ..MpcConfig::paper_default()
        };
        match self {
            Algo::Rb => Box::new(RateBased::paper_default()),
            Algo::Bb => Box::new(BufferBased::paper_default()),
            Algo::Festive => Box::new(Festive::paper_default()),
            Algo::DashJs => Box::new(DashJs::paper_default()),
            Algo::Bola => Box::new(Bola::reference_default()),
            Algo::FastMpc => Box::new(FastMpc::new(Arc::clone(
                table.expect("FastMPC requires a decision table"),
            ))),
            Algo::RobustMpc => Box::new(Mpc::new(mpc_cfg(true))),
            Algo::Mpc => Box::new(Mpc::new(mpc_cfg(false))),
            Algo::MpcOpt => Box::new(Mpc::new(mpc_cfg(false)).named("MPC-OPT")),
        }
    }

    /// Generates the paper-default FastMPC table for `video` (100 buffer
    /// bins, 100 throughput bins, horizon 5) with the given weights.
    pub fn default_table(
        video: &Video,
        buffer_max_secs: f64,
        weights: &QoeWeights,
        levels: usize,
    ) -> Arc<FastMpcTable> {
        let mut cfg = TableConfig::with_levels(levels, buffer_max_secs);
        cfg.weights = weights.clone();
        Arc::new(FastMpcTable::generate(video, buffer_max_secs, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::envivio_video;

    #[test]
    fn all_algorithms_build() {
        let video = envivio_video();
        let weights = QoeWeights::balanced();
        let table = Algo::default_table(&video, 30.0, &weights, 10);
        for algo in [
            Algo::Rb,
            Algo::Bb,
            Algo::Festive,
            Algo::DashJs,
            Algo::Bola,
            Algo::FastMpc,
            Algo::RobustMpc,
            Algo::Mpc,
            Algo::MpcOpt,
        ] {
            let c = algo.build(Some(&table), &weights, 5);
            assert_eq!(c.name(), algo.name());
        }
    }

    #[test]
    fn figure8_set_matches_paper_legend() {
        let names: Vec<_> = Algo::FIGURE8.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["RB", "BB", "FastMPC", "RobustMPC", "dash.js", "FESTIVE"]
        );
    }

    #[test]
    fn predictor_specs_build() {
        let mut h = PredictorSpec::Harmonic.build(0);
        h.observe(1000.0);
        assert_eq!(h.predict(), Some(1000.0));
        let mut o = PredictorSpec::Oracle(0.0).build(1);
        o.hint_future(1234.0);
        assert_eq!(o.predict(), Some(1234.0));
    }

    #[test]
    fn mpc_opt_uses_perfect_oracle() {
        assert_eq!(Algo::MpcOpt.default_predictor(), PredictorSpec::Oracle(0.0));
        assert_eq!(Algo::RobustMpc.default_predictor(), PredictorSpec::Harmonic);
    }
}
