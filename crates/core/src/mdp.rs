//! An MDP-based bitrate controller — the alternative the paper discusses in
//! Section 4.1 and defers to future work:
//!
//! > "with MDP we could consider formulating the throughput and buffer
//! > state transition as Markov processes, and find the optimal control
//! > policy using standard algorithms such as value iteration […] However,
//! > this has a strong assumption that throughput dynamics follow Markov
//! > processes and it is unclear if this holds in practice."
//!
//! We implement exactly that, so the deferred comparison can actually be
//! run (see the `ablation` experiment in the harness):
//!
//! * the throughput process is modelled as a finite Markov chain over
//!   log-spaced throughput states, with the transition matrix **fitted from
//!   sample traces** ([`ThroughputChain::fit`]);
//! * [`MdpPolicy::solve`] runs value iteration over the state space
//!   (buffer bin × previous level × throughput state), optimizing the
//!   discounted per-chunk QoE of Eq. (5);
//! * [`MdpController`] applies the resulting stationary policy online: bin
//!   the live state, look up the action.
//!
//! When the real traffic matches the fitted chain, the MDP policy is
//! near-optimal without any explicit prediction; when it doesn't (the
//! paper's worry), it degrades — which is precisely the trade-off the
//! ablation measures.

use crate::controller::{BitrateController, ControllerContext, Decision};
use crate::model::advance_buffer;
use abr_video::{LevelIdx, QoeWeights, Video};
use serde::{Deserialize, Serialize};

/// A finite Markov chain over log-spaced throughput states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputChain {
    /// Representative throughput of each state, kbps (ascending).
    states_kbps: Vec<f64>,
    /// Row-stochastic transition matrix, `probs[i][j] = P(j | i)`, per
    /// chunk-duration step.
    probs: Vec<Vec<f64>>,
}

impl ThroughputChain {
    /// Fits a chain with `n_states` log-spaced states over
    /// `[lo_kbps, hi_kbps]` from throughput samples taken every
    /// `step_secs` across `traces`. Transition counts are Laplace-smoothed
    /// so every transition stays possible.
    pub fn fit(
        traces: &[abr_trace::Trace],
        n_states: usize,
        lo_kbps: f64,
        hi_kbps: f64,
        step_secs: f64,
    ) -> Self {
        assert!(n_states >= 2, "need at least two throughput states");
        assert!(lo_kbps > 0.0 && hi_kbps > lo_kbps && step_secs > 0.0);
        let log_lo = lo_kbps.ln();
        let log_hi = hi_kbps.ln();
        let state_of = |kbps: f64| -> usize {
            let x = kbps.max(f64::MIN_POSITIVE).ln();
            if x <= log_lo {
                return 0;
            }
            if x >= log_hi {
                return n_states - 1;
            }
            (((x - log_lo) / (log_hi - log_lo) * n_states as f64) as usize).min(n_states - 1)
        };
        let mut counts = vec![vec![1.0_f64; n_states]; n_states]; // Laplace prior
        for trace in traces {
            let steps = (trace.cycle_secs() / step_secs) as usize;
            if steps < 2 {
                continue;
            }
            let mut prev = state_of(trace.kbps_at(0.0));
            for s in 1..steps {
                let cur = state_of(trace.kbps_at(s as f64 * step_secs));
                counts[prev][cur] += 1.0;
                prev = cur;
            }
        }
        let probs = counts
            .into_iter()
            .map(|row| {
                let total: f64 = row.iter().sum();
                row.into_iter().map(|c| c / total).collect()
            })
            .collect();
        let states_kbps = (0..n_states)
            .map(|i| (log_lo + (i as f64 + 0.5) / n_states as f64 * (log_hi - log_lo)).exp())
            .collect();
        Self { states_kbps, probs }
    }

    /// Number of throughput states.
    pub fn len(&self) -> usize {
        self.states_kbps.len()
    }

    /// True if the chain is degenerate (never: construction requires >= 2).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Representative throughput of state `i`, kbps.
    pub fn kbps(&self, i: usize) -> f64 {
        self.states_kbps[i]
    }

    /// Transition row out of state `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.probs[i]
    }

    /// State index for a live throughput observation.
    pub fn state_of(&self, kbps: f64) -> usize {
        // States are log-spaced; nearest representative wins.
        let x = kbps.max(f64::MIN_POSITIVE).ln();
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &s) in self.states_kbps.iter().enumerate() {
            let d = (s.ln() - x).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

/// Configuration of the MDP solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdpConfig {
    /// Number of buffer bins over `[0, B_max]`.
    pub buffer_bins: usize,
    /// Discount factor in `(0, 1)` — effective planning horizon is
    /// `1/(1-gamma)` chunks.
    pub gamma: f64,
    /// Value-iteration convergence threshold (max value change).
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// QoE weights being optimized.
    pub weights: QoeWeights,
}

impl Default for MdpConfig {
    fn default() -> Self {
        Self {
            buffer_bins: 31,
            gamma: 0.85, // ~7-chunk effective horizon, like MPC's N = 5
            epsilon: 1.0,
            max_iters: 500,
            weights: QoeWeights::balanced(),
        }
    }
}

/// A solved stationary policy: optimal level per
/// (buffer bin, previous level, throughput state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MdpPolicy {
    chain: ThroughputChain,
    cfg_buffer_bins: usize,
    buffer_max_secs: f64,
    num_levels: usize,
    actions: Vec<u8>,
    iterations: usize,
}

impl MdpPolicy {
    /// Solves the MDP by value iteration.
    ///
    /// State: (buffer bin `b`, previous level `p`, throughput state `c`).
    /// Action: next level `a`. Reward: the Eq. (5) per-chunk terms, with
    /// the download modelled at the state's representative throughput.
    /// Expectation is over the fitted chain's next throughput state.
    pub fn solve(video: &Video, buffer_max_secs: f64, chain: ThroughputChain, cfg: &MdpConfig) -> Self {
        assert!(cfg.gamma > 0.0 && cfg.gamma < 1.0, "gamma must be in (0,1)");
        assert!(cfg.buffer_bins >= 2);
        let nb = cfg.buffer_bins;
        let nl = video.ladder().len();
        let nc = chain.len();
        let w = &cfg.weights;
        let bin_width = buffer_max_secs / (nb - 1) as f64;
        let buf_of = |b: usize| b as f64 * bin_width;
        let bin_of =
            |buf: f64| ((buf / bin_width).round() as usize).min(nb - 1);
        let idx = |b: usize, p: usize, c: usize| (b * nl + p) * nc + c;

        // Precompute per-(b, a, c) outcomes: reward pieces and next bin.
        // (Chunk sizes are steady-state: chunk 0's sizes represent CBR;
        // VBR content averages out.)
        let chunk_secs = video.chunk_secs();
        let mut value = vec![0.0_f64; nb * nl * nc];
        let mut actions = vec![0u8; nb * nl * nc];
        let mut iterations = 0;
        for _ in 0..cfg.max_iters {
            iterations += 1;
            let mut delta = 0.0_f64;
            let mut next_value = vec![0.0_f64; nb * nl * nc];
            for b in 0..nb {
                for p in 0..nl {
                    for c in 0..nc {
                        let q_prev = w.q(video.ladder().kbps(LevelIdx(p)));
                        let mut best = f64::NEG_INFINITY;
                        let mut best_a = 0u8;
                        for a in 0..nl {
                            let kbps = video.ladder().kbps(LevelIdx(a));
                            let dl = video.chunk_size_kbits(0, LevelIdx(a)) / chain.kbps(c);
                            let step =
                                advance_buffer(buf_of(b), dl, chunk_secs, buffer_max_secs);
                            let q = w.q(kbps);
                            let reward = q
                                - w.lambda * (q - q_prev).abs()
                                - w.mu * step.rebuffer_secs;
                            let nb2 = bin_of(step.next_buffer_secs);
                            let mut future = 0.0;
                            for (c2, &pr) in chain.row(c).iter().enumerate() {
                                future += pr * value[idx(nb2, a, c2)];
                            }
                            let total = reward + cfg.gamma * future;
                            if total > best {
                                best = total;
                                best_a = a as u8;
                            }
                        }
                        let s = idx(b, p, c);
                        next_value[s] = best;
                        actions[s] = best_a;
                        delta = delta.max((best - value[s]).abs());
                    }
                }
            }
            value = next_value;
            if delta < cfg.epsilon {
                break;
            }
        }
        Self {
            chain,
            cfg_buffer_bins: nb,
            buffer_max_secs,
            num_levels: nl,
            actions,
            iterations,
        }
    }

    /// Value-iteration sweeps used until convergence.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The fitted throughput chain.
    pub fn chain(&self) -> &ThroughputChain {
        &self.chain
    }

    /// Optimal action for a live state.
    pub fn action(&self, buffer_secs: f64, prev: LevelIdx, throughput_kbps: f64) -> LevelIdx {
        let bin_width = self.buffer_max_secs / (self.cfg_buffer_bins - 1) as f64;
        let b = ((buffer_secs / bin_width).round() as usize).min(self.cfg_buffer_bins - 1);
        let p = prev.get().min(self.num_levels - 1);
        let c = self.chain.state_of(throughput_kbps);
        let i = (b * self.num_levels + p) * self.chain.len() + c;
        LevelIdx(self.actions[i] as usize)
    }
}

/// The online MDP controller: applies a pre-solved stationary policy. Uses
/// the last *observed* chunk throughput (not a prediction) to locate the
/// chain state, per the MDP formulation.
#[derive(Debug, Clone)]
pub struct MdpController {
    policy: std::sync::Arc<MdpPolicy>,
}

impl MdpController {
    /// Wraps a solved policy.
    pub fn new(policy: std::sync::Arc<MdpPolicy>) -> Self {
        Self { policy }
    }
}

impl BitrateController for MdpController {
    fn name(&self) -> &'static str {
        "MDP"
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        let prev = ctx
            .prev_level
            .unwrap_or_else(|| ctx.video.ladder().lowest());
        let throughput = ctx
            .last_throughput_kbps
            .unwrap_or_else(|| ctx.video.ladder().min_kbps());
        Decision::level(self.policy.action(ctx.buffer_secs, prev, throughput))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_trace::{Dataset, Trace};
    use abr_video::envivio_video;
    use std::sync::Arc;

    fn quick_cfg() -> MdpConfig {
        MdpConfig {
            buffer_bins: 16,
            ..MdpConfig::default()
        }
    }

    #[test]
    fn chain_fit_is_row_stochastic() {
        let traces = Dataset::Hsdpa.generate(3, 4);
        let chain = ThroughputChain::fit(&traces, 8, 100.0, 8000.0, 4.0);
        assert_eq!(chain.len(), 8);
        for i in 0..8 {
            let sum: f64 = chain.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            assert!(chain.row(i).iter().all(|&p| p > 0.0), "smoothing keeps support");
        }
        // States ascend.
        for i in 1..8 {
            assert!(chain.kbps(i) > chain.kbps(i - 1));
        }
    }

    #[test]
    fn chain_state_lookup_is_nearest() {
        let traces = vec![Trace::constant(1000.0, 100.0).unwrap()];
        let chain = ThroughputChain::fit(&traces, 4, 100.0, 10_000.0, 5.0);
        // Exact representatives map to themselves.
        for i in 0..4 {
            assert_eq!(chain.state_of(chain.kbps(i)), i);
        }
        assert_eq!(chain.state_of(1.0), 0);
        assert_eq!(chain.state_of(1e9), 3);
    }

    #[test]
    fn constant_chain_policy_is_sane_at_low_buffer() {
        // Fit on a constant 1500 kbps trace. With a comfortable buffer the
        // discounted policy may legitimately ride the buffer down at a high
        // bitrate (the myopia the paper worries about), but near the
        // rebuffering cliff it must not stream above the link rate, and it
        // must not collapse to the floor when the buffer is ample.
        let video = envivio_video();
        let traces = vec![Trace::constant(1500.0, 400.0).unwrap()];
        let chain = ThroughputChain::fit(&traces, 10, 100.0, 8000.0, 4.0);
        let policy = MdpPolicy::solve(&video, 30.0, chain, &quick_cfg());
        let low = video.ladder().kbps(policy.action(4.0, LevelIdx(2), 1500.0));
        assert!(
            low <= 1500.0,
            "near-empty buffer: picked {low} kbps on a 1500 kbps link"
        );
        let high = video.ladder().kbps(policy.action(28.0, LevelIdx(2), 1500.0));
        assert!(
            high >= 1000.0,
            "full buffer: policy collapsed to {high} kbps"
        );
    }

    #[test]
    fn starving_state_picks_bottom() {
        let video = envivio_video();
        let traces = Dataset::Fcc.generate(2, 3);
        let chain = ThroughputChain::fit(&traces, 8, 100.0, 8000.0, 4.0);
        let policy = MdpPolicy::solve(&video, 30.0, chain, &quick_cfg());
        assert_eq!(policy.action(0.0, LevelIdx(0), 150.0), LevelIdx(0));
    }

    #[test]
    fn value_iteration_converges() {
        let video = envivio_video();
        let traces = Dataset::Synthetic.generate(2, 3);
        let chain = ThroughputChain::fit(&traces, 8, 100.0, 8000.0, 4.0);
        let policy = MdpPolicy::solve(&video, 30.0, chain, &quick_cfg());
        assert!(
            policy.iterations() < quick_cfg().max_iters,
            "did not converge in {} iterations",
            policy.iterations()
        );
    }

    #[test]
    fn controller_applies_the_policy() {
        // (The full closed-loop session test lives in the workspace-level
        // integration suite to avoid a dev-dependency cycle with abr-sim.)
        let video = envivio_video();
        let fit_traces = Dataset::Fcc.generate(5, 5);
        let chain = ThroughputChain::fit(&fit_traces, 8, 100.0, 8000.0, 4.0);
        let policy = Arc::new(MdpPolicy::solve(&video, 30.0, chain, &quick_cfg()));
        let mut mdp = MdpController::new(Arc::clone(&policy));
        let ctx = ControllerContext {
            chunk_index: 10,
            buffer_secs: 12.0,
            prev_level: Some(LevelIdx(2)),
            prediction_kbps: Some(9999.0), // must be ignored
            robust_lower_kbps: None,
            last_throughput_kbps: Some(1600.0),
            recent_low_buffer: false,
            startup: false,
            video: &video,
            buffer_max_secs: 30.0,
            live: None,
        };
        let d = mdp.decide(&ctx);
        assert_eq!(d.level, policy.action(12.0, LevelIdx(2), 1600.0));
    }
}
