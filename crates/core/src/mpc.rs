//! Model predictive control for bitrate adaptation — Section 4 and
//! Algorithm 1 of the paper.
//!
//! At each chunk `k` the controller solves `QOE_MAX_STEADY(k .. k+N-1)`:
//! maximize the Eq. (5) QoE over all bitrate plans for the next `N` chunks,
//! rolling the buffer model of Eqs. (1)–(4) forward under the predicted
//! throughput, then applies only the first decision (receding horizon).
//!
//! The paper solves this with CPLEX offline; at the evaluation's problem
//! sizes (`|R| = 5`, `N = 5` → 3125 plans) exact enumeration is cheap. We
//! implement depth-first branch-and-bound over a reusable scratch buffer
//! ([`HorizonScratch`] — no heap allocation per node or per solve), warm-
//! started with a greedy feasible plan and pruned by an admissible bound
//! that folds the unavoidable switch penalty and the unavoidable rebuffer
//! time into the optimistic estimate. This keeps even the `N = 9`
//! sensitivity sweep of Figure 12b exact and fast.
//!
//! The search visits levels top-down and replaces the incumbent only on
//! strict improvement, so it always returns the *first* optimal plan in
//! that fixed order. Warm starts are backed off by [`BOUND_SLACK`] so they
//! sit strictly below the optimum and can never displace that plan — the
//! solver's output is bit-identical with or without a warm start, which is
//! what lets FastMPC's run-aware table generation (`abr-fastmpc`) reuse
//! neighbouring solutions as hints ([`confirm_first_with`]) while promising
//! byte-identical tables.
//!
//! **RobustMPC** (Section 4.3) maximizes worst-case QoE over a throughput
//! interval `[Ĉ_lo, Ĉ_hi]`. By Theorem 1 the inner minimum is attained at
//! `Ĉ_lo` — QoE of a fixed plan is non-decreasing in throughput (only the
//! rebuffer term depends on it, and less throughput means more rebuffering)
//! — so RobustMPC is exactly regular MPC fed the lower bound. This module
//! encodes that equivalence and `tests` verify the monotonicity property.
//!
//! **Startup phase** (`fst_mpc`): the player may also choose the startup
//! delay `T_s`. Deferring playback by `T_s` is equivalent to starting with
//! buffer credit `B_1 = T_s` (Eq. 10), so the startup optimizer grid-searches
//! `T_s`, scoring each candidate as the horizon QoE from buffer `B + T_s`
//! minus `μ_s · T_s`.
//!
//! **Live sessions** ([`optimize_first_live`]): when the driver runs a
//! [`abr_video::LiveSchedule`], the horizon is truncated to the chunks that
//! will have been released before the content the player already holds runs
//! out ([`live_effective_horizon`]) — planning further enumerates levels for
//! chunks that cannot exist when they would be needed. The rolled-forward
//! model tracks wall-clock time: a chunk not yet released at its predicted
//! fetch instant incurs an explicit *wait* (fetch-at-release; waiting any
//! longer only drains buffer and raises latency, so the wait-vs-fetch
//! decision is always "wait exactly until release, then fetch"), and each
//! chunk's contribution is charged the latency QoE term
//! `−w_lat · (live_edge − playhead)` at the latency held when the chunk
//! lands. With `w_lat = 0` and every chunk already released, the live solve
//! is bit-identical to the VOD solve.

use crate::controller::{BitrateController, ControllerContext, Decision};
use crate::model::advance_buffer;
use abr_video::{LevelIdx, LiveState, QoeWeights, Video};
use serde::{Deserialize, Serialize};

/// Configuration of the MPC controller family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Look-ahead horizon `N` in chunks (the paper uses 5).
    pub horizon: usize,
    /// QoE objective weights.
    pub weights: QoeWeights,
    /// Use the robust throughput lower bound instead of the raw prediction.
    pub robust: bool,
    /// During startup, optimize `T_s` over a grid (otherwise leave startup
    /// to the driver's policy).
    pub optimize_startup: bool,
    /// Grid step for the startup search, seconds.
    pub startup_step_secs: f64,
    /// Largest startup delay considered, seconds.
    pub startup_max_secs: f64,
}

impl MpcConfig {
    /// The paper's defaults: horizon 5, balanced QoE weights.
    pub fn paper_default() -> Self {
        Self {
            horizon: 5,
            weights: QoeWeights::balanced(),
            robust: false,
            optimize_startup: false,
            startup_step_secs: 0.5,
            startup_max_secs: 10.0,
        }
    }
}

impl Default for MpcConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// An optimal plan over the look-ahead horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonPlan {
    /// QoE of the plan under the assumed throughput (Eq. 5 terms within the
    /// horizon, including the switch penalty against the pre-horizon level).
    pub qoe: f64,
    /// Chosen levels for chunks `start .. start + len`.
    pub levels: Vec<LevelIdx>,
}

impl HorizonPlan {
    /// The receding-horizon output: the first level of the plan.
    pub fn first(&self) -> LevelIdx {
        *self.levels.first().expect("plans are non-empty")
    }
}

/// Scores a complete candidate plan: the QoE contribution of chunks
/// `start .. start + plan.len()` starting from `buffer_secs` with constant
/// `throughput_kbps`, including the switch penalty of the first chunk
/// against `prev_level`. Shared by the optimizer, its tests, and the
/// offline/FastMPC crates.
#[allow(clippy::too_many_arguments)]
pub fn plan_qoe(
    video: &Video,
    start: usize,
    plan: &[LevelIdx],
    buffer_secs: f64,
    buffer_max_secs: f64,
    prev_level: Option<LevelIdx>,
    throughput_kbps: f64,
    weights: &QoeWeights,
) -> f64 {
    let mut qoe = 0.0;
    let mut buffer = buffer_secs;
    let mut prev_q = prev_level.map(|l| weights.q(video.ladder().kbps(l)));
    for (i, &level) in plan.iter().enumerate() {
        let k = start + i;
        let dl = video.chunk_size_kbits(k, level) / throughput_kbps;
        let step = advance_buffer(buffer, dl, video.chunk_secs(), buffer_max_secs);
        let q = weights.q(video.ladder().kbps(level));
        let switch = prev_q.map_or(0.0, |p| (q - p).abs());
        qoe += weights.chunk_contribution(q, switch, step.rebuffer_secs);
        buffer = step.next_buffer_secs;
        prev_q = Some(q);
    }
    qoe
}

/// Back-off applied to warm-start incumbent values so they sit strictly
/// below the optimum even under floating-point rounding of the bound
/// arithmetic. QoE values in this model are O(10³)–O(10⁵), so 10⁻⁶ is
/// ~10⁴ × the accumulated rounding noise while being far too small to cost
/// measurable pruning.
pub const BOUND_SLACK: f64 = 1e-6;

/// Reusable workspace for [`optimize_first_with`] / [`confirm_first_with`].
///
/// Holding one of these across solves makes the horizon search completely
/// allocation-free after the first use at a given horizon/ladder size: the
/// DFS writes plan prefixes into pre-sized buffers instead of cloning a
/// `Vec` per improving node, and the per-level quality and minimum-size
/// tables are rebuilt in place.
#[derive(Debug, Clone, Default)]
pub struct HorizonScratch {
    best: Vec<LevelIdx>,
    current: Vec<LevelIdx>,
    level_q: Vec<f64>,
    min_suffix_kbits: Vec<f64>,
}

impl HorizonScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full optimal plan left behind by the most recent solve (length =
    /// the clipped horizon of that solve). Empty before the first solve.
    pub fn plan(&self) -> &[LevelIdx] {
        &self.best
    }
}

/// The branch-and-bound state. Borrows all buffers from a
/// [`HorizonScratch`]; the recursion allocates nothing.
struct Search<'a> {
    video: &'a Video,
    weights: &'a QoeWeights,
    start: usize,
    len: usize,
    buffer_max: f64,
    throughput: f64,
    lambda: f64,
    mu: f64,
    chunk_secs: f64,
    q_max: f64,
    level_q: &'a [f64],
    min_suffix_kbits: &'a [f64],
    best_qoe: f64,
    best: &'a mut Vec<LevelIdx>,
    current: &'a mut Vec<LevelIdx>,
}

impl Search<'_> {
    /// Admissible upper bound on the total QoE contribution of the chunks
    /// below `depth`, given the buffer level and the quality of the chunk
    /// just placed.
    ///
    /// Two ingredients, each individually an over-estimate, so their sum is
    /// too. **Quality minus unavoidable switching**: a future plan whose
    /// best per-chunk quality is `q_l` earns at most `remaining · q_l` and,
    /// by the triangle inequality on the switch terms, pays at least
    /// `λ · |q_l − prev_q|` to visit that level; maximize over the ladder.
    /// **Unavoidable rebuffering**: downloading even the smallest remaining
    /// chunks takes `min_suffix / C` seconds while the buffer supplies at
    /// most `buffer + (remaining − 1) · L` seconds of playback before the
    /// last chunk lands (telescoping Eqs. (1)–(4); the `B_max` cap only
    /// removes buffer, so ignoring it keeps the bound admissible).
    #[inline]
    fn bound(&self, depth: usize, buffer: f64, prev_q: Option<f64>) -> f64 {
        let remaining = (self.len - depth) as f64;
        let quality = match prev_q {
            None => remaining * self.q_max,
            Some(p) => {
                let mut b = f64::NEG_INFINITY;
                for &q in self.level_q {
                    let cand = remaining * q - self.lambda * (q - p).abs();
                    if cand > b {
                        b = cand;
                    }
                }
                b
            }
        };
        let min_dl_secs = self.min_suffix_kbits[depth] / self.throughput;
        let rebuf_min = (min_dl_secs - buffer - (remaining - 1.0) * self.chunk_secs).max(0.0);
        quality - self.mu * rebuf_min
    }

    /// Greedy one-step-lookahead descent: the QoE of a feasible plan,
    /// accumulated with the exact same floating-point operations the DFS
    /// would use along that path. Only the value is kept — it seeds the
    /// incumbent so the search starts pruning from node one.
    fn greedy_value(&self, buffer: f64, prev_q: Option<f64>) -> f64 {
        let mut qoe = 0.0;
        let mut buf = buffer;
        let mut pq = prev_q;
        for depth in 0..self.len {
            let k = self.start + depth;
            let mut best_gain = f64::NEG_INFINITY;
            let mut best_next = buf;
            let mut best_q = 0.0;
            for li in (0..self.level_q.len()).rev() {
                let level = LevelIdx(li);
                let dl = self.video.chunk_size_kbits(k, level) / self.throughput;
                let step = advance_buffer(buf, dl, self.video.chunk_secs(), self.buffer_max);
                let q = self.level_q[li];
                let switch = pq.map_or(0.0, |p| (q - p).abs());
                let gain = self.weights.chunk_contribution(q, switch, step.rebuffer_secs);
                if gain > best_gain {
                    best_gain = gain;
                    best_next = step.next_buffer_secs;
                    best_q = q;
                }
            }
            qoe += best_gain;
            buf = best_next;
            pq = Some(best_q);
        }
        qoe
    }

    /// Depth-first branch-and-bound. Iterates levels from the top down and
    /// replaces the incumbent only on strict improvement, so the final
    /// `best` is the first optimal plan in that fixed enumeration order —
    /// independent of the incumbent value the search started from (as long
    /// as it is strictly below the optimum).
    fn dfs(&mut self, depth: usize, buffer: f64, prev_q: Option<f64>, qoe: f64) {
        if depth == self.len {
            if qoe > self.best_qoe {
                self.best_qoe = qoe;
                self.best[..self.len].copy_from_slice(&self.current[..self.len]);
            }
            return;
        }
        if qoe + self.bound(depth, buffer, prev_q) <= self.best_qoe {
            return;
        }
        let k = self.start + depth;
        for li in (0..self.level_q.len()).rev() {
            let level = LevelIdx(li);
            let dl = self.video.chunk_size_kbits(k, level) / self.throughput;
            let step = advance_buffer(buffer, dl, self.video.chunk_secs(), self.buffer_max);
            let q = self.level_q[li];
            let switch = prev_q.map_or(0.0, |p| (q - p).abs());
            let gain = self.weights.chunk_contribution(q, switch, step.rebuffer_secs);
            self.current[depth] = level;
            self.dfs(depth + 1, step.next_buffer_secs, Some(q), qoe + gain);
        }
    }
}

/// Validates arguments, sizes the scratch buffers, and assembles a
/// [`Search`] over them. Returns the search and the clipped horizon.
fn prepare<'a>(
    scratch: &'a mut HorizonScratch,
    video: &'a Video,
    start: usize,
    horizon: usize,
    buffer_max_secs: f64,
    throughput_kbps: f64,
    weights: &'a QoeWeights,
) -> Search<'a> {
    assert!(horizon > 0, "horizon must be positive");
    assert!(start < video.num_chunks(), "start chunk beyond video end");
    assert!(
        throughput_kbps > 0.0 && throughput_kbps.is_finite(),
        "throughput must be positive, got {throughput_kbps}"
    );
    let len = horizon.min(video.num_chunks() - start);
    let num_levels = video.ladder().len();
    let HorizonScratch {
        best,
        current,
        level_q,
        min_suffix_kbits,
    } = scratch;
    level_q.clear();
    for li in 0..num_levels {
        level_q.push(weights.q(video.ladder().kbps(LevelIdx(li))));
    }
    best.clear();
    best.resize(len, LevelIdx(0));
    current.clear();
    current.resize(len, LevelIdx(0));
    // min_suffix_kbits[d] = total size of the cheapest encoding of chunks
    // start+d .. start+len-1 — the floor on future download work feeding
    // the rebuffer part of the bound.
    min_suffix_kbits.clear();
    min_suffix_kbits.resize(len, 0.0);
    let mut acc = 0.0;
    for d in (0..len).rev() {
        let k = start + d;
        let mut min_size = f64::INFINITY;
        for li in 0..num_levels {
            min_size = min_size.min(video.chunk_size_kbits(k, LevelIdx(li)));
        }
        acc += min_size;
        min_suffix_kbits[d] = acc;
    }
    Search {
        video,
        weights,
        start,
        len,
        buffer_max: buffer_max_secs,
        throughput: throughput_kbps,
        lambda: weights.lambda,
        mu: weights.mu,
        chunk_secs: video.chunk_secs(),
        q_max: weights.q(video.ladder().max_kbps()),
        level_q,
        min_suffix_kbits,
        best_qoe: f64::NEG_INFINITY,
        best,
        current,
    }
}

/// The allocation-free horizon solve: identical semantics to
/// [`optimize_horizon`] but writing the plan into `scratch` (read it back
/// via [`HorizonScratch::plan`]) and returning only the receding-horizon
/// output — the first level — plus the optimal QoE.
///
/// This is the online hot path: MPC and RobustMPC call it once per chunk,
/// table generation calls it tens of thousands of times per table.
#[allow(clippy::too_many_arguments)]
pub fn optimize_first_with(
    scratch: &mut HorizonScratch,
    video: &Video,
    start: usize,
    horizon: usize,
    buffer_secs: f64,
    buffer_max_secs: f64,
    prev_level: Option<LevelIdx>,
    throughput_kbps: f64,
    weights: &QoeWeights,
) -> (LevelIdx, f64) {
    let prev_q = prev_level.map(|l| weights.q(video.ladder().kbps(l)));
    let mut s = prepare(
        scratch,
        video,
        start,
        horizon,
        buffer_max_secs,
        throughput_kbps,
        weights,
    );
    // Warm-start from a greedy feasible plan, backed off below the optimum.
    s.best_qoe = s.greedy_value(buffer_secs, prev_q) - BOUND_SLACK;
    s.dfs(0, buffer_secs, prev_q, 0.0);
    let qoe = s.best_qoe;
    (scratch.best[0], qoe)
}

/// Hint-seeded variant of [`optimize_first_with`]: warm-starts the search
/// from `hint` — any feasible plan of the clipped horizon's length, e.g.
/// the optimum of a neighbouring FastMPC scenario — and from the greedy
/// plan, whichever scores higher.
///
/// Output is **bit-identical** to the unhinted solve regardless of hint
/// quality: the incumbent seed is a real plan's value backed off by
/// [`BOUND_SLACK`], hence strictly below the optimum, so the search still
/// reaches (and keeps) the same first-in-order optimal plan. A good hint
/// only makes the proof of optimality cheaper. Panics if `hint.len()`
/// differs from the clipped horizon.
#[allow(clippy::too_many_arguments)]
pub fn confirm_first_with(
    scratch: &mut HorizonScratch,
    video: &Video,
    start: usize,
    horizon: usize,
    buffer_secs: f64,
    buffer_max_secs: f64,
    prev_level: Option<LevelIdx>,
    throughput_kbps: f64,
    weights: &QoeWeights,
    hint: &[LevelIdx],
) -> (LevelIdx, f64) {
    let v_hint = plan_qoe(
        video,
        start,
        hint,
        buffer_secs,
        buffer_max_secs,
        prev_level,
        throughput_kbps,
        weights,
    );
    let prev_q = prev_level.map(|l| weights.q(video.ladder().kbps(l)));
    let mut s = prepare(
        scratch,
        video,
        start,
        horizon,
        buffer_max_secs,
        throughput_kbps,
        weights,
    );
    assert_eq!(
        hint.len(),
        s.len,
        "hint length must equal the clipped horizon"
    );
    let v_greedy = s.greedy_value(buffer_secs, prev_q);
    s.best_qoe = v_hint.max(v_greedy) - BOUND_SLACK;
    s.dfs(0, buffer_secs, prev_q, 0.0);
    let qoe = s.best_qoe;
    (scratch.best[0], qoe)
}

/// Batch entry point for the non-tabular backends: solves one receding-
/// horizon problem per probe, reusing a single [`HorizonScratch`] across the
/// whole batch, and appends the first level of each plan to `out`.
///
/// The probe columns are parallel arrays (one element per session stepped in
/// lockstep): chunk index, buffer level, pre-horizon level, and predicted
/// throughput. Output is **bit-identical** to calling
/// [`optimize_first_with`] once per probe — the solver's result never
/// depends on leftover scratch state (see the warm-start discussion in the
/// module docs), which is the property that makes scratch reuse free.
#[allow(clippy::too_many_arguments)]
pub fn optimize_first_batch(
    scratch: &mut HorizonScratch,
    video: &Video,
    horizon: usize,
    buffer_max_secs: f64,
    weights: &QoeWeights,
    chunk_index: &[usize],
    buffer_secs: &[f64],
    prev_level: &[Option<LevelIdx>],
    throughput_kbps: &[f64],
    out: &mut Vec<LevelIdx>,
) {
    let n = chunk_index.len();
    assert!(
        buffer_secs.len() == n && prev_level.len() == n && throughput_kbps.len() == n,
        "batch columns must have equal lengths"
    );
    out.clear();
    out.reserve(n);
    for i in 0..n {
        let (level, _) = optimize_first_with(
            scratch,
            video,
            chunk_index[i],
            horizon,
            buffer_secs[i],
            buffer_max_secs,
            prev_level[i],
            throughput_kbps[i],
            weights,
        );
        out.push(level);
    }
}

/// The number of horizon slots a live solve may actually plan over: `1 +`
/// the count of future chunks that will have been released before the
/// content the player already holds runs out (chunk `next + i` qualifies
/// when `release_in + i·L ≤ buffer + L`; the `+ L` accounts for the chunk
/// being planned in slot 0 playing while slot `i` waits).
///
/// Far behind the edge (`release_in` deeply negative — a DVR window or a
/// lagging playhead) every chunk qualifies and the live solve degenerates
/// to the full-horizon VOD solve; at the edge with a thin buffer this is
/// 1–2 chunks, which is what makes the truncated solve strictly cheaper.
pub fn live_effective_horizon(
    horizon: usize,
    chunk_secs: f64,
    release_in_secs: f64,
    buffer_secs: f64,
) -> usize {
    let mut h = 1;
    while h < horizon && release_in_secs + h as f64 * chunk_secs <= buffer_secs + chunk_secs {
        h += 1;
    }
    h
}

/// Live-solve constants threaded through [`dfs_live`] alongside the shared
/// [`Search`] state.
struct LiveExtra {
    /// Seconds until the first planned chunk's release (negative: already
    /// out), from the decision instant `tau = 0`.
    release_in: f64,
    /// The latency QoE weight `w_lat`.
    w_lat: f64,
}

/// Admissible live bound: the VOD bound minus the *minimum* latency charge
/// of the remaining chunks. In-plan latency never decreases (it grows with
/// every rebuffer and is otherwise constant), so each of the
/// `len − depth` remaining chunks pays at least `w_lat · lat`.
#[inline]
fn live_bound(
    s: &Search<'_>,
    x: &LiveExtra,
    depth: usize,
    buffer: f64,
    prev_q: Option<f64>,
    lat: f64,
) -> f64 {
    s.bound(depth, buffer, prev_q) - (s.len - depth) as f64 * x.w_lat * lat
}

/// The live depth-first branch-and-bound. Identical enumeration order and
/// incumbent discipline to [`Search::dfs`], with two extensions: wall-clock
/// tracking (`tau` seconds since the decision; a chunk not yet released at
/// its fetch instant waits exactly until release), and a per-chunk latency
/// charge `−w_lat · lat` at the latency held when the chunk lands
/// (rebuffers freeze the playhead, so `lat` grows by each step's rebuffer).
#[allow(clippy::too_many_arguments)]
fn dfs_live(
    s: &mut Search<'_>,
    x: &LiveExtra,
    depth: usize,
    buffer: f64,
    tau: f64,
    lat: f64,
    prev_q: Option<f64>,
    qoe: f64,
) {
    if depth == s.len {
        if qoe > s.best_qoe {
            s.best_qoe = qoe;
            s.best[..s.len].copy_from_slice(&s.current[..s.len]);
        }
        return;
    }
    if qoe + live_bound(s, x, depth, buffer, prev_q, lat) <= s.best_qoe {
        return;
    }
    let k = s.start + depth;
    let wait = (x.release_in + depth as f64 * s.chunk_secs - tau).max(0.0);
    for li in (0..s.level_q.len()).rev() {
        let level = LevelIdx(li);
        let dl = s.video.chunk_size_kbits(k, level) / s.throughput;
        // The forced wait drains buffer exactly like download time does.
        let step = advance_buffer(buffer, wait + dl, s.video.chunk_secs(), s.buffer_max);
        let q = s.level_q[li];
        let switch = prev_q.map_or(0.0, |p| (q - p).abs());
        let lat2 = lat + step.rebuffer_secs;
        let gain = s.weights.chunk_contribution(q, switch, step.rebuffer_secs) - x.w_lat * lat2;
        s.current[depth] = level;
        dfs_live(
            s,
            x,
            depth + 1,
            step.next_buffer_secs,
            tau + wait + dl + step.wait_secs,
            lat2,
            Some(q),
            qoe + gain,
        );
    }
}

/// The live receding-horizon solve: truncates the horizon to
/// [`live_effective_horizon`] — the explicit wait-vs-fetch decision is
/// resolved *inside* the rolled-forward model, which waits exactly until
/// each unreleased chunk's release before fetching it — and charges the
/// latency term `−w_lat · (live_edge − playhead)` per chunk at the latency
/// held when that chunk lands. Writes the plan into `scratch` like
/// [`optimize_first_with`] and returns the first level plus the optimal
/// live QoE.
///
/// With `w_lat = 0` and every horizon chunk already released the result is
/// **bit-identical** to [`optimize_first_with`] at the same horizon: the
/// waits are all `0.0`, `wait + dl` reproduces `dl` bitwise, and the
/// latency charge multiplies by zero.
#[allow(clippy::too_many_arguments)]
pub fn optimize_first_live(
    scratch: &mut HorizonScratch,
    video: &Video,
    start: usize,
    horizon: usize,
    buffer_secs: f64,
    buffer_max_secs: f64,
    prev_level: Option<LevelIdx>,
    throughput_kbps: f64,
    weights: &QoeWeights,
    live: &LiveState,
) -> (LevelIdx, f64) {
    let h_eff = live_effective_horizon(
        horizon,
        video.chunk_secs(),
        live.release_in_secs,
        buffer_secs,
    );
    let prev_q = prev_level.map(|l| weights.q(video.ladder().kbps(l)));
    let mut s = prepare(
        scratch,
        video,
        start,
        h_eff,
        buffer_max_secs,
        throughput_kbps,
        weights,
    );
    let x = LiveExtra {
        release_in: live.release_in_secs,
        w_lat: weights.w_lat,
    };
    dfs_live(&mut s, &x, 0, buffer_secs, 0.0, live.latency_secs, prev_q, 0.0);
    let qoe = s.best_qoe;
    (scratch.best[0], qoe)
}

/// Exactly solves `QOE_MAX_STEADY(start .. start + horizon - 1)` for a
/// constant predicted throughput: the optimal bitrate plan and its QoE.
///
/// The horizon is clipped at the end of the video. Convenience wrapper
/// around [`optimize_first_with`] that materializes the full plan; callers
/// on a hot path should hold a [`HorizonScratch`] and use
/// [`optimize_first_with`] directly to avoid the plan allocation.
#[allow(clippy::too_many_arguments)]
pub fn optimize_horizon(
    video: &Video,
    start: usize,
    horizon: usize,
    buffer_secs: f64,
    buffer_max_secs: f64,
    prev_level: Option<LevelIdx>,
    throughput_kbps: f64,
    weights: &QoeWeights,
) -> HorizonPlan {
    let mut scratch = HorizonScratch::new();
    let (_, qoe) = optimize_first_with(
        &mut scratch,
        video,
        start,
        horizon,
        buffer_secs,
        buffer_max_secs,
        prev_level,
        throughput_kbps,
        weights,
    );
    HorizonPlan {
        qoe,
        levels: scratch.best,
    }
}

/// The startup-phase optimizer `fst_mpc`: jointly chooses the first chunk's
/// level and the startup delay `T_s` by grid search, scoring each candidate
/// as the horizon QoE from buffer `B + T_s` minus `μ_s · T_s`.
#[allow(clippy::too_many_arguments)]
pub fn optimize_startup(
    video: &Video,
    start: usize,
    horizon: usize,
    buffer_secs: f64,
    buffer_max_secs: f64,
    prev_level: Option<LevelIdx>,
    throughput_kbps: f64,
    weights: &QoeWeights,
    step_secs: f64,
    max_secs: f64,
) -> (HorizonPlan, f64) {
    assert!(step_secs > 0.0 && max_secs >= 0.0);
    let mut best_ts = 0.0;
    let mut best: Option<HorizonPlan> = None;
    let mut best_score = f64::NEG_INFINITY;
    let steps = (max_secs / step_secs).round() as usize;
    for i in 0..=steps {
        let ts = i as f64 * step_secs;
        let plan = optimize_horizon(
            video,
            start,
            horizon,
            (buffer_secs + ts).min(buffer_max_secs),
            buffer_max_secs,
            prev_level,
            throughput_kbps,
            weights,
        );
        let score = plan.qoe - weights.mu_s * ts;
        if score > best_score {
            best_score = score;
            best_ts = ts;
            best = Some(plan);
        }
    }
    (best.expect("at least Ts = 0 was evaluated"), best_ts)
}

/// The MPC / RobustMPC bitrate controller (Algorithm 1).
///
/// ```
/// use abr_core::{BitrateController, ControllerContext, Mpc};
/// use abr_video::{envivio_video, LevelIdx};
///
/// let video = envivio_video();
/// let mut mpc = Mpc::robust(); // the paper's RobustMPC
/// let ctx = ControllerContext {
///     chunk_index: 10,
///     buffer_secs: 12.0,
///     prev_level: Some(LevelIdx(2)),
///     prediction_kbps: Some(2200.0),
///     robust_lower_kbps: Some(1900.0),
///     last_throughput_kbps: Some(2100.0),
///     recent_low_buffer: false,
///     startup: false,
///     video: &video,
///     buffer_max_secs: 30.0,
///     live: None,
/// };
/// let decision = mpc.decide(&ctx);
/// assert!(decision.level.get() < video.ladder().len());
/// ```
#[derive(Debug, Clone)]
pub struct Mpc {
    cfg: MpcConfig,
    name: &'static str,
    scratch: HorizonScratch,
}

impl Mpc {
    /// Regular MPC with the given configuration (name "MPC").
    pub fn new(cfg: MpcConfig) -> Self {
        let name = if cfg.robust { "RobustMPC" } else { "MPC" };
        Self {
            cfg,
            name,
            scratch: HorizonScratch::new(),
        }
    }

    /// The paper's regular MPC configuration.
    pub fn paper_default() -> Self {
        Self::new(MpcConfig::paper_default())
    }

    /// The paper's RobustMPC configuration: identical, but driven by the
    /// throughput lower bound `Ĉ/(1 + max recent error)`.
    pub fn robust() -> Self {
        Self::new(MpcConfig {
            robust: true,
            ..MpcConfig::paper_default()
        })
    }

    /// Overrides the display name (e.g. "MPC-OPT" when driven by a perfect
    /// predictor).
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }
}

impl BitrateController for Mpc {
    fn name(&self) -> &'static str {
        self.name
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        let throughput = if self.cfg.robust {
            ctx.robust_or_prediction()
        } else {
            ctx.prediction_or_floor()
        };
        if let Some(live) = &ctx.live {
            // Live session: availability-truncated horizon with the
            // latency-aware objective. `ctx.buffer_max_secs` already holds
            // the effective live cap (driver contract).
            let (level, _) = optimize_first_live(
                &mut self.scratch,
                ctx.video,
                ctx.chunk_index,
                self.cfg.horizon,
                ctx.buffer_secs,
                ctx.buffer_max_secs,
                ctx.prev_level,
                throughput,
                &self.cfg.weights,
                live,
            );
            return Decision::level(level);
        }
        if ctx.startup && self.cfg.optimize_startup {
            let (plan, ts) = optimize_startup(
                ctx.video,
                ctx.chunk_index,
                self.cfg.horizon,
                ctx.buffer_secs,
                ctx.buffer_max_secs,
                ctx.prev_level,
                throughput,
                &self.cfg.weights,
                self.cfg.startup_step_secs,
                self.cfg.startup_max_secs,
            );
            return Decision {
                level: plan.first(),
                startup_wait_secs: Some(ts),
            };
        }
        // Steady state: solve in the controller-owned scratch — no heap
        // allocation per decision.
        let (level, _) = optimize_first_with(
            &mut self.scratch,
            ctx.video,
            ctx.chunk_index,
            self.cfg.horizon,
            ctx.buffer_secs,
            ctx.buffer_max_secs,
            ctx.prev_level,
            throughput,
            &self.cfg.weights,
        );
        Decision::level(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::{envivio_video, QoePreference};
    use proptest::prelude::*;

    fn weights() -> QoeWeights {
        QoeWeights::balanced()
    }

    /// Naive exhaustive enumeration for cross-checking the pruned search.
    #[allow(clippy::too_many_arguments)]
    fn brute_force(
        video: &Video,
        start: usize,
        horizon: usize,
        buffer: f64,
        bmax: f64,
        prev: Option<LevelIdx>,
        c: f64,
        w: &QoeWeights,
    ) -> HorizonPlan {
        let len = horizon.min(video.num_chunks() - start);
        let n = video.ladder().len();
        let total = n.pow(len as u32);
        let mut best_qoe = f64::NEG_INFINITY;
        let mut best = Vec::new();
        for code in 0..total {
            let mut plan = Vec::with_capacity(len);
            let mut rem = code;
            for _ in 0..len {
                plan.push(LevelIdx(rem % n));
                rem /= n;
            }
            let qoe = plan_qoe(video, start, &plan, buffer, bmax, prev, c, w);
            if qoe > best_qoe {
                best_qoe = qoe;
                best = plan;
            }
        }
        HorizonPlan {
            qoe: best_qoe,
            levels: best,
        }
    }

    #[test]
    fn optimizer_matches_brute_force_exhaustively() {
        let v = envivio_video();
        let w = weights();
        for &buffer in &[0.0, 4.0, 12.0, 30.0] {
            for &c in &[200.0, 700.0, 1500.0, 5000.0] {
                for prev in [None, Some(LevelIdx(0)), Some(LevelIdx(4))] {
                    let fast = optimize_horizon(&v, 10, 4, buffer, 30.0, prev, c, &w);
                    let slow = brute_force(&v, 10, 4, buffer, 30.0, prev, c, &w);
                    assert!(
                        (fast.qoe - slow.qoe).abs() < 1e-9,
                        "buffer={buffer} c={c} prev={prev:?}: {} vs {}",
                        fast.qoe,
                        slow.qoe
                    );
                }
            }
        }
    }

    #[test]
    fn ample_throughput_and_buffer_pick_top_level() {
        let v = envivio_video();
        let plan = optimize_horizon(&v, 0, 5, 30.0, 30.0, Some(LevelIdx(4)), 50_000.0, &weights());
        assert!(plan.levels.iter().all(|&l| l == LevelIdx(4)), "{plan:?}");
    }

    #[test]
    fn starving_picks_bottom_level() {
        let v = envivio_video();
        // 100 kbps with an empty buffer: even the lowest level rebuffers,
        // anything higher rebuffers catastrophically.
        let plan = optimize_horizon(&v, 0, 5, 0.0, 30.0, None, 100.0, &weights());
        assert!(plan.levels.iter().all(|&l| l == LevelIdx(0)), "{plan:?}");
    }

    #[test]
    fn huge_switch_penalty_freezes_level() {
        let v = envivio_video();
        let w = QoeWeights {
            lambda: 1e6,
            ..weights()
        };
        // Plenty of throughput to go higher, but switching is prohibitive.
        let plan = optimize_horizon(&v, 0, 5, 20.0, 30.0, Some(LevelIdx(1)), 10_000.0, &w);
        assert!(
            plan.levels.iter().all(|&l| l == LevelIdx(1)),
            "expected frozen at level 1: {plan:?}"
        );
    }

    #[test]
    fn horizon_clips_at_video_end() {
        let v = envivio_video();
        let plan = optimize_horizon(&v, 63, 5, 10.0, 30.0, None, 1000.0, &weights());
        assert_eq!(plan.levels.len(), 2); // chunks 63, 64 only
    }

    #[test]
    fn plan_qoe_matches_manual_two_chunk_computation() {
        let v = envivio_video();
        let w = weights();
        // Buffer 4s, throughput 1000 kbps, plan [1000 kbps, 350 kbps].
        // Chunk sizes: 4000 and 1400 kbits -> downloads 4.0 s and 1.4 s.
        // Step 1: B=4, dl=4 -> no rebuffer, B' = 4-4+4 = 4.
        // Step 2: B=4, dl=1.4 -> no rebuffer.
        // QoE = 1000 + 350 - lambda*|350-1000| = 1350 - 650 = 700.
        let qoe = plan_qoe(
            &v,
            0,
            &[LevelIdx(2), LevelIdx(0)],
            4.0,
            30.0,
            None,
            1000.0,
            &w,
        );
        assert!((qoe - 700.0).abs() < 1e-9, "{qoe}");
    }

    #[test]
    fn rebuffer_penalty_enters_plan_qoe() {
        let v = envivio_video();
        let w = weights();
        // Empty buffer, 1000 kbps, top level (12000 kbits -> 12 s download):
        // rebuffer 12 s on the first chunk alone.
        let qoe = plan_qoe(&v, 0, &[LevelIdx(4)], 0.0, 30.0, None, 1000.0, &w);
        assert!((qoe - (3000.0 - 3000.0 * 12.0)).abs() < 1e-9, "{qoe}");
    }

    #[test]
    fn startup_optimizer_waits_when_throughput_is_low() {
        let v = envivio_video();
        // Cheap startup (small mu_s) + low throughput: waiting builds
        // buffer credit that avoids expensive rebuffering.
        let w = QoeWeights {
            mu_s: 10.0,
            ..weights()
        };
        let (_, ts) = optimize_startup(&v, 0, 5, 0.0, 30.0, None, 600.0, &w, 0.5, 10.0, );
        assert!(ts > 0.0, "expected a positive startup wait, got {ts}");
        // Expensive startup: don't wait.
        let w2 = QoeWeights {
            mu_s: 1e9,
            ..weights()
        };
        let (_, ts2) = optimize_startup(&v, 0, 5, 0.0, 30.0, None, 600.0, &w2, 0.5, 10.0);
        assert_eq!(ts2, 0.0);
    }

    #[test]
    fn controller_startup_decision_carries_ts() {
        let v = envivio_video();
        let mut mpc = Mpc::new(MpcConfig {
            optimize_startup: true,
            weights: QoeWeights {
                mu_s: 10.0,
                ..weights()
            },
            ..MpcConfig::paper_default()
        });
        let ctx = ControllerContext {
            chunk_index: 0,
            buffer_secs: 0.0,
            prev_level: None,
            prediction_kbps: Some(600.0),
            robust_lower_kbps: None,
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: true,
            video: &v,
            buffer_max_secs: 30.0,
            live: None,
        };
        let d = mpc.decide(&ctx);
        assert!(d.startup_wait_secs.unwrap() > 0.0);
    }

    #[test]
    fn robust_uses_lower_bound() {
        let v = envivio_video();
        let mk_ctx = |robust_lower| ControllerContext {
            chunk_index: 5,
            buffer_secs: 8.0,
            prev_level: Some(LevelIdx(2)),
            prediction_kbps: Some(3000.0),
            robust_lower_kbps: robust_lower,
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: false,
            video: &v,
            buffer_max_secs: 30.0,
            live: None,
        };
        let mut regular = Mpc::paper_default();
        let mut robust = Mpc::robust();
        // With a much lower bound, RobustMPC must not choose above what
        // regular MPC would choose at that lower throughput.
        let r1 = regular.decide(&mk_ctx(Some(400.0))).level;
        let r2 = robust.decide(&mk_ctx(Some(400.0))).level;
        assert!(r2 <= r1, "robust {r2:?} vs regular {r1:?}");
        // Theorem 1 equivalence: RobustMPC(lower bound) == MPC fed the
        // lower bound directly as its prediction.
        let mut regular_low = Mpc::paper_default();
        let ctx_low = ControllerContext {
            prediction_kbps: Some(400.0),
            robust_lower_kbps: None,
            ..mk_ctx(None)
        };
        assert_eq!(r2, regular_low.decide(&ctx_low).level);
    }

    #[test]
    fn scratch_solver_matches_wrapper_and_reuses_across_sizes() {
        let v = envivio_video();
        let w = weights();
        let mut scratch = HorizonScratch::new();
        // Alternate horizons and start positions so the scratch is resized
        // up and down; every solve must agree with the allocating wrapper.
        for (start, horizon, buffer, c) in [
            (0usize, 5usize, 10.0, 1500.0),
            (63, 5, 4.0, 700.0), // clips to 2 chunks
            (10, 9, 22.0, 2600.0),
            (30, 1, 0.0, 150.0),
            (5, 7, 30.0, 9000.0),
        ] {
            let plan = optimize_horizon(&v, start, horizon, buffer, 30.0, None, c, &w);
            let (first, qoe) = optimize_first_with(
                &mut scratch,
                &v,
                start,
                horizon,
                buffer,
                30.0,
                None,
                c,
                &w,
            );
            assert_eq!(first, plan.first());
            assert_eq!(qoe.to_bits(), plan.qoe.to_bits(), "qoe must be bit-identical");
            assert_eq!(scratch.plan(), &plan.levels[..]);
        }
    }

    #[test]
    #[should_panic(expected = "hint length")]
    fn confirm_rejects_wrong_hint_length() {
        let v = envivio_video();
        let mut scratch = HorizonScratch::new();
        confirm_first_with(
            &mut scratch,
            &v,
            0,
            5,
            10.0,
            30.0,
            None,
            1000.0,
            &weights(),
            &[LevelIdx(0); 3],
        );
    }

    #[test]
    fn batch_solver_matches_scalar_solves_with_shared_scratch() {
        let v = envivio_video();
        let w = weights();
        // A deliberately mixed batch: different chunks, buffers, previous
        // levels, throughputs — the worst case for any state leakage through
        // the shared scratch.
        let chunk_index = [0usize, 17, 63, 5, 30, 0];
        let buffer_secs = [0.0, 12.5, 4.0, 30.0, 22.0, 7.5];
        let prev_level = [
            None,
            Some(LevelIdx(2)),
            Some(LevelIdx(4)),
            Some(LevelIdx(0)),
            Some(LevelIdx(1)),
            None,
        ];
        let throughput_kbps = [150.0, 1500.0, 700.0, 9000.0, 2600.0, 450.0];
        let mut shared = HorizonScratch::new();
        let mut batched = Vec::new();
        optimize_first_batch(
            &mut shared,
            &v,
            5,
            30.0,
            &w,
            &chunk_index,
            &buffer_secs,
            &prev_level,
            &throughput_kbps,
            &mut batched,
        );
        assert_eq!(batched.len(), chunk_index.len());
        for i in 0..chunk_index.len() {
            let mut fresh = HorizonScratch::new();
            let (level, _) = optimize_first_with(
                &mut fresh,
                &v,
                chunk_index[i],
                5,
                buffer_secs[i],
                30.0,
                prev_level[i],
                throughput_kbps[i],
                &w,
            );
            assert_eq!(batched[i], level, "probe {i} diverged");
        }
    }

    #[test]
    fn effective_horizon_windows_on_buffered_content() {
        // Far behind the edge: everything released, full horizon.
        assert_eq!(live_effective_horizon(5, 4.0, -100.0, 10.0), 5);
        // At the edge with an empty buffer: only the next chunk is worth
        // planning (chunk 1 releases at 2 + 4 = 6 s > buffer + L = 4 s).
        assert_eq!(live_effective_horizon(5, 4.0, 2.0, 0.0), 1);
        // A fuller buffer pulls more future releases inside the window.
        assert_eq!(live_effective_horizon(5, 4.0, 2.0, 8.0), 3);
        assert_eq!(live_effective_horizon(5, 4.0, 0.0, 30.0), 5);
        // Never exceeds the configured horizon, never drops below 1.
        assert_eq!(live_effective_horizon(1, 4.0, -100.0, 30.0), 1);
    }

    #[test]
    fn live_far_behind_edge_with_zero_weight_matches_vod_solve() {
        let v = envivio_video();
        let w = weights(); // w_lat = 0 in every preset
        let live = LiveState {
            now_secs: 500.0,
            release_in_secs: -460.0,
            latency_secs: 120.0,
            max_buffer_secs: 30.0,
        };
        for (start, buffer, c, prev) in [
            (0usize, 0.0, 300.0, None),
            (10, 12.0, 1500.0, Some(LevelIdx(2))),
            (40, 25.0, 4000.0, Some(LevelIdx(4))),
        ] {
            let mut s1 = HorizonScratch::new();
            let (l_vod, q_vod) =
                optimize_first_with(&mut s1, &v, start, 5, buffer, 30.0, prev, c, &w);
            let mut s2 = HorizonScratch::new();
            let (l_live, q_live) =
                optimize_first_live(&mut s2, &v, start, 5, buffer, 30.0, prev, c, &w, &live);
            assert_eq!(l_live, l_vod, "start={start} buffer={buffer} c={c}");
            assert_eq!(q_live.to_bits(), q_vod.to_bits(), "QoE must be bit-identical");
            assert_eq!(s2.plan(), s1.plan());
        }
    }

    #[test]
    fn at_edge_truncation_matches_manual_single_chunk_enumeration() {
        let v = envivio_video();
        let w = weights();
        // Chunk releases in 2 s with an empty buffer: h_eff = 1 and every
        // level rebuffers the wait plus its whole download.
        let live = LiveState {
            now_secs: 10.0,
            release_in_secs: 2.0,
            latency_secs: 6.0,
            max_buffer_secs: 8.0,
        };
        let c = 1000.0;
        let mut scratch = HorizonScratch::new();
        let (level, qoe) = optimize_first_live(
            &mut scratch,
            &v,
            10,
            5,
            0.0,
            8.0,
            Some(LevelIdx(0)),
            c,
            &w,
            &live,
        );
        assert_eq!(scratch.plan().len(), 1, "horizon must truncate to 1");
        let prev_q = w.q(v.ladder().kbps(LevelIdx(0)));
        let mut best = f64::NEG_INFINITY;
        let mut best_level = LevelIdx(0);
        for li in 0..v.ladder().len() {
            let q = w.q(v.ladder().kbps(LevelIdx(li)));
            let dl = v.chunk_size_kbits(10, LevelIdx(li)) / c;
            let rebuffer = 2.0 + dl; // wait + download on an empty buffer
            let cand = w.chunk_contribution(q, (q - prev_q).abs(), rebuffer)
                - w.w_lat * (6.0 + rebuffer);
            if cand > best {
                best = cand;
                best_level = LevelIdx(li);
            }
        }
        assert_eq!(level, best_level);
        assert!((qoe - best).abs() < 1e-9, "{qoe} vs {best}");
    }

    #[test]
    fn latency_weight_shifts_qoe_by_held_latency() {
        let v = envivio_video();
        let w = QoeWeights {
            w_lat: 25.0,
            ..weights()
        };
        let live_at = |lat: f64| LiveState {
            now_secs: 100.0,
            release_in_secs: -60.0,
            latency_secs: lat,
            max_buffer_secs: 30.0,
        };
        let solve = |lat: f64| {
            let mut s = HorizonScratch::new();
            optimize_first_live(
                &mut s,
                &v,
                5,
                5,
                20.0,
                30.0,
                Some(LevelIdx(2)),
                2000.0,
                &w,
                &live_at(lat),
            )
        };
        let (l0, q0) = solve(0.0);
        let (l9, q9) = solve(9.0);
        // Buffer 20 s at 2000 kbps: no plan rebuffers, so latency stays
        // constant in-plan and a latency offset shifts every plan's QoE by
        // exactly w_lat · len · offset — the argmax is unchanged.
        assert_eq!(l9, l0);
        assert!((q0 - q9 - 25.0 * 5.0 * 9.0).abs() < 1e-9, "{q0} vs {q9}");
    }

    #[test]
    fn controller_routes_live_context_through_the_live_solver() {
        let v = envivio_video();
        let live = LiveState {
            now_secs: 42.0,
            release_in_secs: 1.5,
            latency_secs: 7.0,
            max_buffer_secs: 10.0,
        };
        let ctx = ControllerContext {
            chunk_index: 10,
            buffer_secs: 4.0,
            prev_level: Some(LevelIdx(1)),
            prediction_kbps: Some(1800.0),
            robust_lower_kbps: Some(1200.0),
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: false,
            video: &v,
            buffer_max_secs: 10.0,
            live: Some(live),
        };
        let mut robust = Mpc::robust();
        let got = robust.decide(&ctx).level;
        let mut scratch = HorizonScratch::new();
        let (want, _) = optimize_first_live(
            &mut scratch,
            &v,
            10,
            5,
            4.0,
            10.0,
            Some(LevelIdx(1)),
            1200.0,
            &MpcConfig::paper_default().weights,
            &live,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn names_follow_configuration() {
        assert_eq!(Mpc::paper_default().name(), "MPC");
        assert_eq!(Mpc::robust().name(), "RobustMPC");
        assert_eq!(Mpc::paper_default().named("MPC-OPT").name(), "MPC-OPT");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Pruned search equals brute force on random instances.
        #[test]
        fn prune_is_exact(
            buffer in 0.0f64..30.0,
            c in 100.0f64..8000.0,
            prev in proptest::option::of(0usize..5),
            start in 0usize..60,
            horizon in 1usize..5,
        ) {
            let v = envivio_video();
            let w = weights();
            let prev = prev.map(LevelIdx);
            let fast = optimize_horizon(&v, start, horizon, buffer, 30.0, prev, c, &w);
            let slow = brute_force(&v, start, horizon, buffer, 30.0, prev, c, &w);
            // Equal value (plans may differ only on exact ties).
            prop_assert!((fast.qoe - slow.qoe).abs() < 1e-9);
            // The reported plan really achieves the reported value.
            let recomputed = plan_qoe(&v, start, &fast.levels, buffer, 30.0, prev, c, &w);
            prop_assert!((recomputed - fast.qoe).abs() < 1e-9);
        }

        /// A hint-seeded solve is bit-identical to the cold solve no matter
        /// how bad the hint plan is (the property the run-aware FastMPC
        /// table generation relies on).
        #[test]
        fn confirm_matches_cold_solve_for_any_hint(
            buffer in 0.0f64..30.0,
            c in 100.0f64..8000.0,
            prev in proptest::option::of(0usize..5),
            start in 0usize..60,
            horizon in 1usize..6,
            hint_code in 0usize..3125,
        ) {
            let v = envivio_video();
            let w = weights();
            let prev = prev.map(LevelIdx);
            let len = horizon.min(v.num_chunks() - start);
            let mut rem = hint_code;
            let hint: Vec<LevelIdx> = (0..len)
                .map(|_| {
                    let l = rem % 5;
                    rem /= 5;
                    LevelIdx(l)
                })
                .collect();
            let mut cold = HorizonScratch::new();
            let (first_cold, qoe_cold) =
                optimize_first_with(&mut cold, &v, start, horizon, buffer, 30.0, prev, c, &w);
            let mut hinted = HorizonScratch::new();
            let (first_hint, qoe_hint) = confirm_first_with(
                &mut hinted, &v, start, horizon, buffer, 30.0, prev, c, &w, &hint);
            prop_assert_eq!(first_hint, first_cold);
            prop_assert_eq!(qoe_hint.to_bits(), qoe_cold.to_bits());
            prop_assert_eq!(hinted.plan(), cold.plan());
        }

        /// Theorem 1's engine: for any fixed plan, QoE is non-decreasing in
        /// throughput, so the worst case over an interval is at the lower
        /// bound.
        #[test]
        fn plan_qoe_monotone_in_throughput(
            buffer in 0.0f64..30.0,
            c_lo in 100.0f64..5000.0,
            bump in 1.0f64..5000.0,
            plan_code in 0usize..3125,
        ) {
            let v = envivio_video();
            let w = weights();
            let mut plan = Vec::with_capacity(5);
            let mut rem = plan_code;
            for _ in 0..5 {
                plan.push(LevelIdx(rem % 5));
                rem /= 5;
            }
            let lo = plan_qoe(&v, 0, &plan, buffer, 30.0, None, c_lo, &w);
            let hi = plan_qoe(&v, 0, &plan, buffer, 30.0, None, c_lo + bump, &w);
            prop_assert!(hi >= lo - 1e-9, "QoE decreased with throughput: {lo} -> {hi}");
        }

        /// The optimizer's value never goes down when the horizon's inputs
        /// improve (more buffer).
        #[test]
        fn value_monotone_in_buffer(
            b in 0.0f64..28.0,
            extra in 0.0f64..2.0,
            c in 200.0f64..6000.0,
        ) {
            let v = envivio_video();
            let w = weights();
            let lo = optimize_horizon(&v, 0, 5, b, 30.0, None, c, &w);
            let hi = optimize_horizon(&v, 0, 5, b + extra, 30.0, None, c, &w);
            prop_assert!(hi.qoe >= lo.qoe - 1e-9);
        }

        /// Exchange-argument theorem: raising the rebuffer weight µ can only
        /// lower the optimal plan's total (model-predicted) rebuffering.
        #[test]
        fn heavier_mu_never_rebuffers_more(
            b in 0.0f64..15.0,
            c in 200.0f64..3000.0,
        ) {
            let v = envivio_video();
            let planned_rebuffer = |plan: &[LevelIdx]| -> f64 {
                let mut buffer = b;
                let mut total = 0.0;
                for (i, &lvl) in plan.iter().enumerate() {
                    let dl = v.chunk_size_kbits(i, lvl) / c;
                    let step = advance_buffer(buffer, dl, v.chunk_secs(), 30.0);
                    total += step.rebuffer_secs;
                    buffer = step.next_buffer_secs;
                }
                total
            };
            let balanced = optimize_horizon(
                &v, 0, 5, b, 30.0, None, c, &QoeWeights::preset(QoePreference::Balanced));
            let averse = optimize_horizon(
                &v, 0, 5, b, 30.0, None, c, &QoeWeights::preset(QoePreference::AvoidRebuffering));
            prop_assert!(
                planned_rebuffer(&averse.levels) <= planned_rebuffer(&balanced.levels) + 1e-9
            );
        }
    }
}
