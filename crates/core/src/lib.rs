//! Core of the reproduction: the control-theoretic streaming model and the
//! MPC family of bitrate controllers.
//!
//! * [`model`] — the buffer dynamics of Eqs. (1)–(4): download time,
//!   rebuffering, buffer-full waiting, and the resulting buffer update;
//! * [`controller`] — the controller interface of Eq. (12):
//!   `R_k = f(B_k, Ĉ, {R_i, i < k})`, shared by every algorithm in this
//!   workspace (MPC here, the RB/BB/FESTIVE/dash.js baselines in
//!   `abr-baselines`, FastMPC in `abr-fastmpc`);
//! * [`mdp`] — the Markov-decision-process alternative the paper discusses
//!   in Section 4.1 and defers to future work: a throughput Markov chain
//!   fitted from traces, value iteration, and a stationary-policy
//!   controller (used by the harness's ablation experiment);
//! * [`mpc`] — the receding-horizon optimizer (Algorithm 1): exact QoE
//!   maximization over the next `N` chunks with branch-and-bound plan
//!   enumeration, the RobustMPC variant of Section 4.3 (Theorem 1:
//!   worst-case QoE over a throughput interval is attained at the lower
//!   bound, so RobustMPC is MPC driven by the lower bound), and the
//!   startup-phase variant that additionally optimizes the startup delay
//!   `T_s`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod mdp;
pub mod model;
pub mod mpc;

pub use controller::{BitrateController, ControllerContext, Decision};
pub use mdp::{MdpConfig, MdpController, MdpPolicy, ThroughputChain};
pub use model::{advance_buffer, BufferStep, StreamModel};
pub use mpc::{
    confirm_first_with, live_effective_horizon, optimize_first_batch, optimize_first_with,
    optimize_horizon, plan_qoe, HorizonPlan, HorizonScratch, Mpc, MpcConfig,
};
