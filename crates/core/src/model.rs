//! Buffer dynamics — Eqs. (1)–(4) of the paper.
//!
//! The playback buffer `B(t) ∈ [0, B_max]` holds downloaded-but-unwatched
//! video, measured in seconds of play time. While chunk `k` (of `L` seconds,
//! `d_k(R_k)` kilobits) downloads at average throughput `C_k` kbps:
//!
//! * download takes `d_k(R_k) / C_k` seconds (Eq. 1);
//! * if the buffer runs out mid-download the player **rebuffers** for
//!   `(d_k/C_k − B_k)_+` seconds;
//! * after the chunk lands the buffer gains `L` seconds; if that would
//!   overflow `B_max` the player first **waits** `Δt_k` (Eq. 4);
//! * the next buffer level is Eq. (3):
//!   `B_{k+1} = ((B_k − d_k/C_k)_+ + L − Δt_k)_+`.
//!
//! [`advance_buffer`] implements one step of this recurrence given the
//! download duration, so the *same arithmetic* backs both the predictive
//! model inside MPC (constant predicted throughput) and the trace-driven
//! simulator and network emulator (measured download durations).

use abr_video::{LevelIdx, Video};

/// Outcome of downloading one chunk, per Eqs. (1)–(4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferStep {
    /// Seconds spent downloading the chunk (`d_k/C_k` plus nothing else).
    pub download_secs: f64,
    /// Seconds of rebuffering incurred: `(download − B_k)_+`.
    pub rebuffer_secs: f64,
    /// Seconds the player idles before fetching the next chunk because the
    /// buffer would overflow (`Δt_k`, Eq. 4).
    pub wait_secs: f64,
    /// Buffer level when the next chunk's download starts (`B_{k+1}`).
    pub next_buffer_secs: f64,
}

/// Advances the buffer by one chunk download of known duration.
///
/// * `buffer_secs` — `B_k`, the buffer when the download starts;
/// * `download_secs` — `d_k(R_k)/C_k`;
/// * `chunk_secs` — `L`;
/// * `buffer_max_secs` — `B_max`.
///
/// Returns the full [`BufferStep`]. Panics (debug) on negative inputs.
#[inline]
pub fn advance_buffer(
    buffer_secs: f64,
    download_secs: f64,
    chunk_secs: f64,
    buffer_max_secs: f64,
) -> BufferStep {
    debug_assert!(buffer_secs >= 0.0, "negative buffer {buffer_secs}");
    debug_assert!(download_secs >= 0.0, "negative download {download_secs}");
    debug_assert!(chunk_secs > 0.0 && buffer_max_secs > 0.0);

    let rebuffer_secs = (download_secs - buffer_secs).max(0.0);
    let drained = (buffer_secs - download_secs).max(0.0);
    // Eq. (4): wait so that appending L seconds fits within B_max.
    let wait_secs = (drained + chunk_secs - buffer_max_secs).max(0.0);
    // Eq. (3).
    let next_buffer_secs = (drained + chunk_secs - wait_secs).max(0.0);
    BufferStep {
        download_secs,
        rebuffer_secs,
        wait_secs,
        next_buffer_secs,
    }
}

/// The predictive single-throughput streaming model used inside MPC: chunk
/// downloads are assumed to proceed at a constant predicted throughput.
#[derive(Debug, Clone, Copy)]
pub struct StreamModel<'v> {
    video: &'v Video,
    buffer_max_secs: f64,
}

impl<'v> StreamModel<'v> {
    /// Creates a model over `video` with buffer capacity `buffer_max_secs`.
    pub fn new(video: &'v Video, buffer_max_secs: f64) -> Self {
        assert!(
            buffer_max_secs >= video.chunk_secs(),
            "buffer ({buffer_max_secs}s) must hold at least one chunk ({}s)",
            video.chunk_secs()
        );
        Self {
            video,
            buffer_max_secs,
        }
    }

    /// The modeled video.
    pub fn video(&self) -> &'v Video {
        self.video
    }

    /// Buffer capacity in seconds.
    pub fn buffer_max_secs(&self) -> f64 {
        self.buffer_max_secs
    }

    /// Predicts the outcome of downloading chunk `k` at `level` given buffer
    /// `B_k` and a constant throughput `throughput_kbps`.
    pub fn step(
        &self,
        buffer_secs: f64,
        k: usize,
        level: LevelIdx,
        throughput_kbps: f64,
    ) -> BufferStep {
        assert!(
            throughput_kbps > 0.0 && throughput_kbps.is_finite(),
            "throughput must be positive, got {throughput_kbps}"
        );
        let download_secs = self.video.chunk_size_kbits(k, level) / throughput_kbps;
        advance_buffer(
            buffer_secs,
            download_secs,
            self.video.chunk_secs(),
            self.buffer_max_secs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::{envivio_video, DEFAULT_BUFFER_MAX_SECS};
    use proptest::prelude::*;

    #[test]
    fn no_rebuffer_when_buffer_covers_download() {
        let s = advance_buffer(10.0, 4.0, 4.0, 30.0);
        assert_eq!(s.rebuffer_secs, 0.0);
        assert_eq!(s.wait_secs, 0.0);
        assert!((s.next_buffer_secs - 10.0).abs() < 1e-12); // drain 4, gain 4
    }

    #[test]
    fn rebuffer_when_download_exceeds_buffer() {
        let s = advance_buffer(2.0, 5.0, 4.0, 30.0);
        assert!((s.rebuffer_secs - 3.0).abs() < 1e-12);
        // Buffer fully drained, then the chunk lands: exactly L seconds.
        assert!((s.next_buffer_secs - 4.0).abs() < 1e-12);
        assert_eq!(s.wait_secs, 0.0);
    }

    #[test]
    fn wait_when_buffer_would_overflow() {
        // B = 29, download 1s, L = 4, Bmax = 30: drained = 28, appending 4
        // gives 32 > 30 -> wait 2s, land at exactly Bmax.
        let s = advance_buffer(29.0, 1.0, 4.0, 30.0);
        assert_eq!(s.rebuffer_secs, 0.0);
        assert!((s.wait_secs - 2.0).abs() < 1e-12);
        assert!((s.next_buffer_secs - 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_start_is_pure_rebuffer() {
        let s = advance_buffer(0.0, 3.0, 4.0, 30.0);
        assert!((s.rebuffer_secs - 3.0).abs() < 1e-12);
        assert!((s.next_buffer_secs - 4.0).abs() < 1e-12);
    }

    #[test]
    fn instant_download_edge() {
        let s = advance_buffer(5.0, 0.0, 4.0, 30.0);
        assert_eq!(s.rebuffer_secs, 0.0);
        assert!((s.next_buffer_secs - 9.0).abs() < 1e-12);
    }

    #[test]
    fn stream_model_download_time() {
        let v = envivio_video();
        let m = StreamModel::new(&v, DEFAULT_BUFFER_MAX_SECS);
        // 3000 kbps chunk = 12000 kbits; at 6000 kbps -> 2 s download.
        let s = m.step(10.0, 0, LevelIdx(4), 6000.0);
        assert!((s.download_secs - 2.0).abs() < 1e-12);
        assert!((s.next_buffer_secs - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "buffer")]
    fn model_rejects_tiny_buffer() {
        let v = envivio_video();
        let _ = StreamModel::new(&v, 1.0);
    }

    #[test]
    #[should_panic(expected = "throughput")]
    fn model_rejects_zero_throughput() {
        let v = envivio_video();
        let m = StreamModel::new(&v, 30.0);
        let _ = m.step(0.0, 0, LevelIdx(0), 0.0);
    }

    proptest! {
        /// The buffer invariant 0 <= B <= Bmax holds after any step whose
        /// input buffer satisfied it.
        #[test]
        fn buffer_stays_in_range(
            b in 0.0f64..30.0,
            dl in 0.0f64..100.0,
        ) {
            let s = advance_buffer(b, dl, 4.0, 30.0);
            prop_assert!(s.next_buffer_secs >= 0.0);
            prop_assert!(s.next_buffer_secs <= 30.0 + 1e-9);
            prop_assert!(s.rebuffer_secs >= 0.0);
            prop_assert!(s.wait_secs >= 0.0);
        }

        /// Rebuffering and waiting are mutually exclusive: you cannot both
        /// starve and overflow on the same chunk (requires Bmax >= 2L as in
        /// all our configurations).
        #[test]
        fn rebuffer_and_wait_exclusive(
            b in 0.0f64..30.0,
            dl in 0.0f64..100.0,
        ) {
            let s = advance_buffer(b, dl, 4.0, 30.0);
            prop_assert!(s.rebuffer_secs == 0.0 || s.wait_secs == 0.0);
        }

        /// Wall-clock accounting: buffer change equals playback gained minus
        /// play time elapsed (download + wait), up to clamping at 0 and Bmax.
        #[test]
        fn conservation_without_clamping(
            b in 8.0f64..20.0,
            dl in 0.0f64..6.0,
        ) {
            // In this region neither clamp activates (b > dl, result < Bmax).
            let s = advance_buffer(b, dl, 4.0, 30.0);
            let expect = b - dl + 4.0 - s.wait_secs;
            prop_assert!((s.next_buffer_secs - expect).abs() < 1e-9);
        }

        /// Higher starting buffer never yields lower next buffer or more
        /// rebuffering (monotonicity used implicitly by FastMPC binning).
        #[test]
        fn monotone_in_buffer(
            b in 0.0f64..28.0,
            extra in 0.0f64..2.0,
            dl in 0.0f64..50.0,
        ) {
            let lo = advance_buffer(b, dl, 4.0, 30.0);
            let hi = advance_buffer(b + extra, dl, 4.0, 30.0);
            prop_assert!(hi.next_buffer_secs >= lo.next_buffer_secs - 1e-9);
            prop_assert!(hi.rebuffer_secs <= lo.rebuffer_secs + 1e-9);
        }
    }
}
