//! The bitrate-controller interface — Eq. (12) of the paper:
//! `R_k = f(B_k, {Ĉ_t, t > t_k}, {R_i, i < k})`.
//!
//! Every adaptation algorithm in the workspace (MPC, RobustMPC, FastMPC,
//! RB, BB, FESTIVE, the dash.js rules) implements [`BitrateController`].
//! The driver (simulator or network-emulation player) owns the throughput
//! predictor and hands each decision a [`ControllerContext`] snapshot; the
//! controller returns a [`Decision`]. Controllers that need history beyond
//! the context (e.g. FESTIVE's switch counting) keep it internally and clear
//! it in [`BitrateController::reset`].

use abr_video::{LevelIdx, LiveState, Video};

/// Everything a controller may look at when choosing the bitrate of chunk
/// `k` (the design space of Figure 4: buffer occupancy, throughput
/// prediction, past decisions).
#[derive(Debug, Clone, Copy)]
pub struct ControllerContext<'a> {
    /// Index `k` of the chunk about to be requested (0-based).
    pub chunk_index: usize,
    /// Current buffer occupancy `B_k` in seconds.
    pub buffer_secs: f64,
    /// The previous chunk's level `R_{k-1}`, `None` for the first chunk.
    pub prev_level: Option<LevelIdx>,
    /// Throughput prediction `Ĉ` in kbps (`None` before any observation).
    pub prediction_kbps: Option<f64>,
    /// RobustMPC's throughput lower bound `Ĉ/(1+err)` in kbps, when the
    /// driver tracks prediction errors.
    pub robust_lower_kbps: Option<f64>,
    /// Average measured throughput of the previous chunk download in kbps
    /// (used by the dash.js download-ratio rule).
    pub last_throughput_kbps: Option<f64>,
    /// Whether the buffer dipped below the panic threshold recently (used by
    /// the dash.js insufficient-buffer rule; maintained by the driver).
    pub recent_low_buffer: bool,
    /// Whether playback has not started yet (startup phase of Algorithm 1).
    pub startup: bool,
    /// The video being streamed.
    pub video: &'a Video,
    /// Buffer capacity `B_max` in seconds. In live mode the driver
    /// presents the *effective* cap, `min(B_max, max_buffer_live)`.
    pub buffer_max_secs: f64,
    /// Live-session state (chunk availability and live-edge latency) when
    /// the driver runs a [`abr_video::LiveSchedule`]; `None` for VOD.
    pub live: Option<LiveState>,
}

impl<'a> ControllerContext<'a> {
    /// Prediction with a conservative fallback: before the first observation
    /// (no prediction available) algorithms universally start from the
    /// lowest level, which we encode as a prediction equal to the lowest
    /// bitrate.
    pub fn prediction_or_floor(&self) -> f64 {
        self.prediction_kbps
            .unwrap_or_else(|| self.video.ladder().min_kbps())
    }

    /// Robust lower bound, falling back to the plain prediction and then to
    /// the ladder floor.
    pub fn robust_or_prediction(&self) -> f64 {
        self.robust_lower_kbps
            .unwrap_or_else(|| self.prediction_or_floor())
    }
}

/// A controller's output for one chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Ladder level to request for this chunk.
    pub level: LevelIdx,
    /// During the startup phase a controller may also choose the startup
    /// delay `T_s` (seconds before playback begins, counted from the session
    /// start). `None` leaves the driver's startup policy in effect.
    pub startup_wait_secs: Option<f64>,
}

impl Decision {
    /// A plain bitrate decision with no startup directive.
    pub fn level(level: LevelIdx) -> Self {
        Self {
            level,
            startup_wait_secs: None,
        }
    }
}

/// A bitrate-adaptation algorithm.
pub trait BitrateController: Send {
    /// Short display name used in experiment tables ("RobustMPC", "BB", …).
    fn name(&self) -> &'static str;

    /// Chooses the level for the chunk described by `ctx`.
    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision;

    /// Decides a whole batch of *independent* contexts (distinct sessions
    /// stepped in lockstep), writing one [`Decision`] per context into `out`
    /// positionally.
    ///
    /// The contract is bit-identity: `decide_batch(ctxs)` must equal
    /// `ctxs.map(|c| decide(c))` exactly. The default does literally that —
    /// correct for every controller, including stateful ones, because the
    /// per-context work is unchanged. Table-driven controllers (FastMPC)
    /// override it with a columnar kernel that amortizes lookups across the
    /// batch without changing any output bit.
    fn decide_batch(&mut self, ctxs: &[ControllerContext<'_>], out: &mut Vec<Decision>) {
        out.clear();
        out.reserve(ctxs.len());
        for ctx in ctxs {
            out.push(self.decide(ctx));
        }
    }

    /// Clears internal history so the controller can start a fresh session.
    fn reset(&mut self) {}
}

impl<T: BitrateController + ?Sized> BitrateController for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn decide(&mut self, ctx: &ControllerContext<'_>) -> Decision {
        (**self).decide(ctx)
    }

    fn decide_batch(&mut self, ctxs: &[ControllerContext<'_>], out: &mut Vec<Decision>) {
        (**self).decide_batch(ctxs, out)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::envivio_video;

    struct Fixed(LevelIdx);

    impl BitrateController for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn decide(&mut self, _ctx: &ControllerContext<'_>) -> Decision {
            Decision::level(self.0)
        }
    }

    fn ctx(video: &Video) -> ControllerContext<'_> {
        ControllerContext {
            chunk_index: 0,
            buffer_secs: 0.0,
            prev_level: None,
            prediction_kbps: None,
            robust_lower_kbps: None,
            last_throughput_kbps: None,
            recent_low_buffer: false,
            startup: true,
            video,
            buffer_max_secs: 30.0,
            live: None,
        }
    }

    #[test]
    fn fallbacks_use_ladder_floor() {
        let v = envivio_video();
        let c = ctx(&v);
        assert_eq!(c.prediction_or_floor(), 350.0);
        assert_eq!(c.robust_or_prediction(), 350.0);
    }

    #[test]
    fn fallback_chain_prefers_robust_bound() {
        let v = envivio_video();
        let mut c = ctx(&v);
        c.prediction_kbps = Some(2000.0);
        assert_eq!(c.robust_or_prediction(), 2000.0);
        c.robust_lower_kbps = Some(1500.0);
        assert_eq!(c.robust_or_prediction(), 1500.0);
        assert_eq!(c.prediction_or_floor(), 2000.0);
    }

    #[test]
    fn boxed_controller_delegates() {
        let v = envivio_video();
        let mut b: Box<dyn BitrateController> = Box::new(Fixed(LevelIdx(3)));
        assert_eq!(b.name(), "fixed");
        assert_eq!(b.decide(&ctx(&v)).level, LevelIdx(3));
        b.reset();
    }

    #[test]
    fn default_decide_batch_equals_mapped_decide() {
        let v = envivio_video();
        let contexts: Vec<ControllerContext<'_>> = (0..7)
            .map(|i| ControllerContext {
                chunk_index: i,
                buffer_secs: i as f64,
                ..ctx(&v)
            })
            .collect();
        let mut a = Fixed(LevelIdx(2));
        let mut batched = Vec::new();
        a.decide_batch(&contexts, &mut batched);
        let mut b = Fixed(LevelIdx(2));
        let scalar: Vec<Decision> = contexts.iter().map(|c| b.decide(c)).collect();
        assert_eq!(batched, scalar);
        // `out` is cleared and refilled, not appended to.
        a.decide_batch(&contexts[..2], &mut batched);
        assert_eq!(batched.len(), 2);
    }
}
