//! Proves the rewritten horizon search is allocation-free on the hot path:
//! after a warm-up solve has sized the scratch buffers, further solves —
//! including hint-seeded ones and the `Mpc` controller's steady-state
//! decisions — perform zero heap allocations.
//!
//! Lives in its own integration-test binary so the counting global
//! allocator cannot interfere with any other test.

use abr_core::{
    confirm_first_with, optimize_first_with, BitrateController, ControllerContext, HorizonScratch,
    Mpc,
};
use abr_video::{envivio_video, LevelIdx, QoeWeights};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counter is process-global, so measured sections from concurrently
/// running tests would pollute each other; this lock serializes them.
static MEASURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

#[test]
fn horizon_solves_do_not_allocate_after_warmup() {
    let video = envivio_video();
    let weights = QoeWeights::balanced();
    let mut scratch = HorizonScratch::new();
    // Warm-up at the largest horizon used below sizes every buffer.
    optimize_first_with(&mut scratch, &video, 0, 9, 10.0, 30.0, None, 1500.0, &weights);

    let (allocs, _) = allocations(|| {
        let mut acc = 0usize;
        for i in 0..200 {
            for horizon in [5usize, 9] {
                let (level, _) = optimize_first_with(
                    &mut scratch,
                    &video,
                    i % 40,
                    horizon,
                    (i % 30) as f64,
                    30.0,
                    Some(LevelIdx(i % 5)),
                    300.0 + (i % 60) as f64 * 100.0,
                    &weights,
                );
                acc += level.get();
            }
        }
        acc
    });
    assert_eq!(allocs, 0, "steady-state horizon solves must not allocate");
}

#[test]
fn hinted_solves_do_not_allocate_after_warmup() {
    let video = envivio_video();
    let weights = QoeWeights::balanced();
    let mut scratch = HorizonScratch::new();
    optimize_first_with(&mut scratch, &video, 0, 5, 10.0, 30.0, None, 1500.0, &weights);
    let hint = scratch.plan().to_vec();

    let (allocs, _) = allocations(|| {
        let mut acc = 0usize;
        for i in 0..200 {
            let (level, _) = confirm_first_with(
                &mut scratch,
                &video,
                0,
                5,
                (i % 30) as f64,
                30.0,
                Some(LevelIdx(i % 5)),
                300.0 + (i % 60) as f64 * 100.0,
                &weights,
                &hint,
            );
            acc += level.get();
        }
        acc
    });
    assert_eq!(allocs, 0, "hint-seeded solves must not allocate");
}

#[test]
fn mpc_controller_decisions_do_not_allocate_after_warmup() {
    let video = envivio_video();
    let mut mpc = Mpc::paper_default();
    let ctx = |i: usize| ControllerContext {
        chunk_index: 10 + (i % 40),
        buffer_secs: (i % 30) as f64,
        prev_level: Some(LevelIdx(i % 5)),
        prediction_kbps: Some(400.0 + (i % 50) as f64 * 60.0),
        robust_lower_kbps: Some(350.0 + (i % 50) as f64 * 50.0),
        last_throughput_kbps: Some(1000.0),
        recent_low_buffer: false,
        startup: false,
        video: &video,
        buffer_max_secs: 30.0,
    };
    mpc.decide(&ctx(0)); // warm-up sizes the controller's scratch

    let (allocs, _) = allocations(|| {
        let mut acc = 0usize;
        for i in 0..500 {
            acc += mpc.decide(&ctx(i)).level.get();
        }
        acc
    });
    assert_eq!(allocs, 0, "steady-state MPC decisions must not allocate");
}
