//! Trace-scan kernels: the two integrals every simulated chunk download
//! calls (`integrate_kbits`, `time_to_download`), comparing the naive
//! linear scans kept as oracles, the indexed cold-start path (binary
//! search per call), and the cursor'd path a session actually uses
//! (amortized O(1) along the forward-moving wall clock).

use abr_trace::{Dataset, TraceCursor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Session-shaped access pattern: a forward-moving clock sampling both
/// kernels once per step, like one chunk download does.
const STEPS: usize = 256;
const STEP_SECS: f64 = 3.17;

fn bench_kernels(c: &mut Criterion) {
    let trace = Dataset::Fcc.generate(7, 1).remove(0);

    let mut group = c.benchmark_group("trace_kernels");
    group.sample_size(60);
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("integrate_naive", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..STEPS {
                let t0 = i as f64 * STEP_SECS;
                acc += trace.naive_integrate_kbits(black_box(t0), black_box(t0 + 5.0));
            }
            black_box(acc)
        })
    });
    group.bench_function("integrate_indexed_cold", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..STEPS {
                let t0 = i as f64 * STEP_SECS;
                acc += trace.integrate_kbits(black_box(t0), black_box(t0 + 5.0));
            }
            black_box(acc)
        })
    });
    group.bench_function("integrate_cursor", |b| {
        b.iter(|| {
            let mut cursor = TraceCursor::new();
            let mut acc = 0.0;
            for i in 0..STEPS {
                let t0 = i as f64 * STEP_SECS;
                acc += trace.integrate_kbits_at(&mut cursor, black_box(t0), black_box(t0 + 5.0));
            }
            black_box(acc)
        })
    });

    group.bench_function("ttd_naive", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..STEPS {
                let t0 = i as f64 * STEP_SECS;
                acc += trace.naive_time_to_download(black_box(3000.0), black_box(t0));
            }
            black_box(acc)
        })
    });
    group.bench_function("ttd_indexed_cold", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..STEPS {
                let t0 = i as f64 * STEP_SECS;
                acc += trace.time_to_download(black_box(3000.0), black_box(t0));
            }
            black_box(acc)
        })
    });
    group.bench_function("ttd_cursor", |b| {
        b.iter(|| {
            let mut cursor = TraceCursor::new();
            let mut acc = 0.0;
            for i in 0..STEPS {
                let t0 = i as f64 * STEP_SECS;
                acc += trace.time_to_download_at(&mut cursor, black_box(3000.0), black_box(t0));
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
