//! The columnar decision kernel: per-decision cost of `decide_batch` as
//! the batch grows, against the scalar `decide` loop it must bit-match.
//!
//! Throughput is reported in elements (decisions), so the interesting
//! number is how far below the scalar per-decision cost the batched curve
//! drops once the bin-grouped table pass amortizes across the batch.

use abr_bench::{ctx, video};
use abr_core::BitrateController;
use abr_fastmpc::{FastMpc, FastMpcTable, TableConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_decide_batch(c: &mut Criterion) {
    let video = video();
    let table = Arc::new(FastMpcTable::generate(
        &video,
        30.0,
        TableConfig::paper_default(),
    ));
    let mut group = c.benchmark_group("decide_batch");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for n in [1usize, 8, 64, 256] {
        let ctxs: Vec<_> = (0..n).map(|i| ctx(&video, i)).collect();
        group.throughput(Throughput::Elements(n as u64));

        // The columnar kernel: one bin-grouped table pass per batch,
        // reusing the controller's retained scratch (steady state
        // allocates nothing).
        let mut batched = FastMpc::new(Arc::clone(&table));
        let mut out = Vec::with_capacity(n);
        group.bench_with_input(BenchmarkId::new("FastMPC-batch", n), &n, |b, _| {
            b.iter(|| {
                batched.decide_batch(black_box(&ctxs), &mut out);
                black_box(out.len())
            })
        });

        // The scalar baseline the kernel must bit-match: n independent
        // binary-searched lookups through the same controller.
        let mut scalar = FastMpc::new(Arc::clone(&table));
        group.bench_with_input(BenchmarkId::new("FastMPC-scalar", n), &n, |b, _| {
            b.iter(|| {
                for context in &ctxs {
                    black_box(scalar.decide(black_box(context)));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decide_batch);
criterion_main!(benches);
