//! Live MPC solve cost: full-horizon VOD vs availability-truncated live.
//!
//! Near the live edge only the chunks the encoder has released (or will
//! release within the plan) are worth planning over, so the live solve
//! truncates the horizon to `live_effective_horizon` and pays a search
//! tree of ~|R|^h_eff instead of ~|R|^H. This group pins the claim that
//! truncation makes the at-the-edge solve strictly cheaper than the VOD
//! solve it replaces — the paper's Table 2 story (exhaustive enumeration
//! cost scales with the horizon) applied to the live subsystem.

use abr_bench::video;
use abr_core::{live_effective_horizon, BitrateController, ControllerContext, Mpc, MpcConfig};
use abr_video::{LevelIdx, LiveState};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A mid-session live context with a fixed buffer/release geometry chosen
/// to hit a target effective horizon; `i` varies prediction and previous
/// level so no branch gets predicted away unrealistically.
fn live_ctx<'v>(
    video: &'v abr_video::Video,
    buffer_secs: f64,
    release_in_secs: f64,
    i: usize,
) -> ControllerContext<'v> {
    ControllerContext {
        chunk_index: 10 + (i % 40),
        buffer_secs,
        prev_level: Some(LevelIdx(i % 5)),
        prediction_kbps: Some(400.0 + (i % 50) as f64 * 60.0),
        robust_lower_kbps: Some(350.0 + (i % 50) as f64 * 50.0),
        last_throughput_kbps: Some(900.0 + (i % 7) as f64 * 150.0),
        recent_low_buffer: false,
        startup: false,
        video,
        buffer_max_secs: 16.0,
        live: Some(LiveState {
            now_secs: 120.0 + i as f64,
            release_in_secs,
            latency_secs: 6.0,
            max_buffer_secs: 16.0,
        }),
    }
}

fn bench_live_horizon(c: &mut Criterion) {
    let video = video();
    let chunk_secs = video.chunk_secs();
    let mut cfg = MpcConfig::paper_default();
    cfg.weights.w_lat = 10.0;
    let mut mpc = Mpc::new(cfg);

    let mut group = c.benchmark_group("live_horizon");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    // The VOD reference: full horizon-5 solve, no availability gate.
    {
        let mut i = 0usize;
        group.bench_function("vod_full_h5", |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                let mut ctx = live_ctx(&video, 8.0, 0.0, i);
                ctx.live = None;
                ctx.buffer_max_secs = 30.0;
                black_box(mpc.decide(&ctx))
            })
        });
    }

    // Live geometries pinned to effective horizons 1 (at the edge), 3
    // (mid), and 5 (fully released — the solve with the latency term but
    // no truncation). Each (buffer, release_in) pair is asserted against
    // live_effective_horizon so the benchmark labels cannot drift from
    // the kernel's truncation rule.
    for (label, buffer, release_in, want) in [
        ("live_h_eff_1_at_edge", 1.0 * chunk_secs, 1.5 * chunk_secs, 1),
        ("live_h_eff_3_mid", 2.0 * chunk_secs, 0.5 * chunk_secs, 3),
        ("live_h_eff_5_released", 4.0 * chunk_secs, -0.25 * chunk_secs, 5),
    ] {
        assert_eq!(
            live_effective_horizon(5, chunk_secs, release_in, buffer),
            want,
            "{label}: geometry drifted from the truncation rule"
        );
        let mut i = 0usize;
        group.bench_function(label, |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(mpc.decide(&live_ctx(&video, buffer, release_in, i)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_live_horizon);
criterion_main!(benches);
