//! HTTP framing and manifest throughput: the substrate costs of the
//! emulation path (request/response serialize + parse, chunk routing,
//! manifest generate/parse).

use abr_bench::video;
use abr_net::http::{ChunkServer, Request, Response};
use abr_net::mpd;
use bytes_alias::copy_body;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::Cursor;
use std::time::Duration;

mod bytes_alias {
    /// Keeps the benchmark honest: the response body is cloned per
    /// iteration so the parser always reads fresh memory.
    pub fn copy_body(src: &[u8]) -> Vec<u8> {
        src.to_vec()
    }
}

fn bench_http(c: &mut Criterion) {
    let video = video();
    let server = ChunkServer::new(video.clone());

    let mut group = c.benchmark_group("http");
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("request_round_trip", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(128);
            Request::get("/video/3/42.m4s").write_to(&mut buf).unwrap();
            black_box(Request::read_from(&mut Cursor::new(buf)).unwrap())
        })
    });

    // A mid-ladder chunk response (~500 kB body).
    let resp = server.handle(&Request::get("/video/2/7.m4s"));
    let mut wire = Vec::new();
    resp.write_to(&mut wire).unwrap();
    group.bench_function("parse_chunk_response_500kB", |b| {
        b.iter(|| {
            let copy = copy_body(&wire);
            black_box(Response::read_from(&mut Cursor::new(copy)).unwrap())
        })
    });

    group.bench_function("route_chunk_request", |b| {
        let req = Request::get("/video/4/33.m4s");
        b.iter(|| black_box(server.handle(&req)))
    });
    group.finish();

    let mut group = c.benchmark_group("mpd");
    group.measurement_time(Duration::from_secs(2));
    let manifest = mpd::generate(&video);
    group.bench_function("generate", |b| b.iter(|| black_box(mpd::generate(&video))));
    group.bench_function("parse", |b| b.iter(|| black_box(mpd::parse(&manifest).unwrap())));
    group.finish();
}

criterion_group!(benches, bench_http);
criterion_main!(benches);
