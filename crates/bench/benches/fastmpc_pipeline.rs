//! The FastMPC pipeline (Section 5, Table 1): offline table generation at
//! several discretization levels, run-length encode/decode, and the online
//! binary-search lookup.

use abr_bench::video;
use abr_fastmpc::{FastMpcTable, GenMode, Rle, TableConfig};
use abr_video::LevelIdx;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_generation(c: &mut Criterion) {
    let video = video();
    let mut group = c.benchmark_group("table_generate");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for levels in [20usize, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, &n| {
            b.iter(|| {
                black_box(FastMpcTable::generate(
                    &video,
                    30.0,
                    TableConfig::with_levels(n, 30.0),
                ))
            })
        });
    }
    group.finish();
}

/// The three enumeration strategies at a fixed resolution — quantifies what
/// parallel row fan-out and run-aware probing each buy. All three produce
/// byte-identical tables.
fn bench_generation_modes(c: &mut Criterion) {
    let video = video();
    let mut group = c.benchmark_group("table_generate_mode");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    for (mode, name) in [
        (GenMode::Sequential, "sequential"),
        (GenMode::Parallel, "parallel"),
        (GenMode::RunAware, "run_aware"),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                black_box(FastMpcTable::generate_with(
                    &video,
                    30.0,
                    TableConfig::with_levels(50, 30.0),
                    mode,
                ))
            })
        });
    }
    group.finish();
}

/// Binary vs JSON serialization of the paper-resolution table.
fn bench_serialization(c: &mut Criterion) {
    let video = video();
    let table = FastMpcTable::generate(&video, 30.0, TableConfig::paper_default());
    let bytes = table.to_bytes();
    let json = table.to_json();
    let mut group = c.benchmark_group("table_serialize");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("to_bytes", |b| b.iter(|| black_box(table.to_bytes())));
    group.bench_function("from_bytes", |b| {
        b.iter(|| black_box(FastMpcTable::from_bytes(&bytes).unwrap()))
    });
    group.bench_function("to_json", |b| b.iter(|| black_box(table.to_json())));
    group.bench_function("from_json", |b| {
        b.iter(|| black_box(FastMpcTable::from_json(&json).unwrap()))
    });
    group.finish();
}

fn bench_rle(c: &mut Criterion) {
    // A realistic decision vector: the 100-level table's raw bytes.
    let video = video();
    let table = FastMpcTable::generate(&video, 30.0, TableConfig::paper_default());
    let raw: Vec<u8> = {
        // Reconstruct the raw vector through lookups on bin centroids.
        let cfg = table.config().clone();
        let mut v = Vec::with_capacity(table.num_entries());
        for b in 0..cfg.buffer_bins.count {
            for p in 0..5 {
                for t in 0..cfg.throughput_bins.count {
                    v.push(
                        table
                            .lookup(
                                cfg.buffer_bins.centroid(b),
                                LevelIdx(p),
                                cfg.throughput_bins.centroid(t),
                            )
                            .get() as u8,
                    );
                }
            }
        }
        v
    };
    let encoded = Rle::encode(&raw);

    let mut group = c.benchmark_group("rle");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("encode_50k", |b| b.iter(|| black_box(Rle::encode(&raw))));
    group.bench_function("decode_50k", |b| b.iter(|| black_box(encoded.decode())));
    let mut i = 0usize;
    group.bench_function("random_access", |b| {
        b.iter(|| {
            i = (i.wrapping_mul(6364136223846793005).wrapping_add(1)) % raw.len();
            black_box(encoded.get(i))
        })
    });
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let video = video();
    let table = FastMpcTable::generate(&video, 30.0, TableConfig::paper_default());
    let mut group = c.benchmark_group("lookup");
    group.measurement_time(Duration::from_secs(2));
    let mut i = 0usize;
    group.bench_function("paper_100_levels", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(table.lookup(
                (i % 300) as f64 / 10.0,
                LevelIdx(i % 5),
                200.0 + (i % 400) as f64 * 20.0,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_generation_modes,
    bench_serialization,
    bench_rle,
    bench_lookup
);
criterion_main!(benches);
