//! End-to-end engine throughput: full simulated sessions per second for
//! each algorithm, the offline-optimal DP, and the emulated HTTP path —
//! the numbers that size every experiment in the harness.

use abr_baselines::{BufferBased, RateBased};
use abr_bench::video;
use abr_core::Mpc;
use abr_net::{run_emulated_session, run_emulated_session_with, NetConfig};
use abr_offline::{optimal_qoe, OfflineConfig};
use abr_predictor::HarmonicMean;
use abr_sim::{run_session, run_session_with, SessionResult, SessionScratch, SimConfig};
use abr_trace::Dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_sessions(c: &mut Criterion) {
    let video = video();
    let cfg = SimConfig::paper_default();
    let trace = Dataset::Hsdpa.generate(5, 1).remove(0);

    let mut group = c.benchmark_group("session");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("sim_bb", |b| {
        b.iter(|| {
            let mut ctrl = BufferBased::paper_default();
            black_box(run_session(
                &mut ctrl,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
            ))
        })
    });
    group.bench_function("sim_rb", |b| {
        b.iter(|| {
            let mut ctrl = RateBased::paper_default();
            black_box(run_session(
                &mut ctrl,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
            ))
        })
    });
    group.bench_function("sim_robustmpc", |b| {
        b.iter(|| {
            let mut ctrl = Mpc::robust();
            black_box(run_session(
                &mut ctrl,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
            ))
        })
    });
    group.bench_function("emulated_robustmpc", |b| {
        b.iter(|| {
            let mut ctrl = Mpc::robust();
            black_box(run_emulated_session(
                &mut ctrl,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
                &NetConfig::typical(),
            ))
        })
    });
    // The allocation-lean entry points grid drivers use: one scratch and
    // one result reused across sessions, so the steady state stays off the
    // allocator. Results are bit-identical to the owning variants above.
    group.bench_function("sim_robustmpc_scratch", |b| {
        let mut scratch = SessionScratch::new();
        let mut out = SessionResult::default();
        b.iter(|| {
            let mut ctrl = Mpc::robust();
            run_session_with(
                &mut scratch,
                &mut out,
                &mut ctrl,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
            );
            black_box(out.qoe.qoe)
        })
    });
    group.bench_function("emulated_robustmpc_scratch", |b| {
        let net = NetConfig::typical();
        let mut scratch = SessionScratch::new();
        let mut out = SessionResult::default();
        b.iter(|| {
            let mut ctrl = Mpc::robust();
            run_emulated_session_with(
                &mut scratch,
                &mut out,
                &mut ctrl,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
                &net,
            );
            black_box(out.qoe.qoe)
        })
    });
    group.finish();

    let mut opt = c.benchmark_group("offline_opt");
    opt.sample_size(10);
    opt.measurement_time(Duration::from_secs(3));
    opt.bench_function("continuous_dp", |b| {
        b.iter(|| black_box(optimal_qoe(&trace, &video, &OfflineConfig::paper_default())))
    });
    opt.finish();
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
