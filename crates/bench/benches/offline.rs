//! Offline-optimal solver benchmarks: the scratch-based DP against the
//! preserved reference implementation (the ISSUE's ≥2× contract at the
//! paper's resolution), and the cost of an OptCache hit versus a solve.

use abr_bench::video;
use abr_offline::{reference, OfflineConfig, OfflineScratch, OptCache};
use abr_trace::{Dataset, Trace};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A deterministic multi-segment trace exercising the cyclic scan.
fn bench_trace() -> Trace {
    Dataset::Fcc.generate(42, 1).remove(0)
}

fn bench_offline_solve(c: &mut Criterion) {
    let video = video();
    let trace = bench_trace();
    let paper = OfflineConfig::paper_default();
    let small = OfflineConfig {
        rate_grid: 8,
        buffer_bins: 21,
        ..OfflineConfig::paper_default()
    };

    let mut group = c.benchmark_group("offline_solve");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("reference_paper_resolution", |b| {
        b.iter(|| black_box(reference::optimal_qoe(&trace, &video, &paper)))
    });
    group.bench_function("scratch_paper_resolution", |b| {
        let mut scratch = OfflineScratch::new();
        b.iter(|| black_box(scratch.optimal_qoe(&trace, &video, &paper).qoe))
    });
    group.bench_function("reference_small", |b| {
        b.iter(|| black_box(reference::optimal_qoe(&trace, &video, &small)))
    });
    group.bench_function("scratch_small", |b| {
        let mut scratch = OfflineScratch::new();
        b.iter(|| black_box(scratch.optimal_qoe(&trace, &video, &small).qoe))
    });
    group.finish();
}

fn bench_opt_cache(c: &mut Criterion) {
    let video = video();
    let trace = bench_trace();
    let cfg = OfflineConfig::paper_default();

    let mut group = c.benchmark_group("opt_cache_hit");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("hit", |b| {
        let cache = OptCache::new();
        cache.get_or_solve(&trace, &video, &cfg); // warm the single entry
        b.iter(|| black_box(cache.get_or_solve(&trace, &video, &cfg).qoe))
    });
    group.bench_function("content_key", |b| {
        b.iter(|| {
            black_box(abr_offline::cache::content_key(
                &trace,
                &video,
                &cfg,
                abr_offline::cache::OptMode::Continuous,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_offline_solve, bench_opt_cache);
criterion_main!(benches);
