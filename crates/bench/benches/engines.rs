//! Engine-level benchmarks beyond the §7.4 story: trace generation, the
//! MDP solve, and multi-player shared-bottleneck sessions — the pieces that
//! size the extension experiments.

use abr_bench::video;
use abr_core::{MdpConfig, MdpPolicy, ThroughputChain};
use abr_net::multiplayer::{run_shared_session, SharedPlayer};
use abr_predictor::HarmonicMean;
use abr_sim::SimConfig;
use abr_trace::{Dataset, FccConfig, HsdpaConfig, SyntheticConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gen");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("fcc_like", |b| {
        let cfg = FccConfig::default();
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(cfg.generate(42, i))
        })
    });
    group.bench_function("hsdpa_like", |b| {
        let cfg = HsdpaConfig::default();
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(cfg.generate(42, i))
        })
    });
    group.bench_function("markov_synthetic", |b| {
        let cfg = SyntheticConfig::default();
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(cfg.generate(42, i))
        })
    });
    group.finish();
}

fn bench_mdp(c: &mut Criterion) {
    let video = video();
    let traces = Dataset::Fcc.generate(1, 10);
    let mut group = c.benchmark_group("mdp");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("fit_chain_12_states", |b| {
        b.iter(|| black_box(ThroughputChain::fit(&traces, 12, 50.0, 8000.0, 4.0)))
    });
    let chain = ThroughputChain::fit(&traces, 12, 50.0, 8000.0, 4.0);
    group.bench_function("value_iteration_31_bins", |b| {
        b.iter(|| {
            black_box(MdpPolicy::solve(
                &video,
                30.0,
                chain.clone(),
                &MdpConfig::default(),
            ))
        })
    });
    group.finish();
}

fn bench_multiplayer(c: &mut Criterion) {
    let video = video();
    let cfg = SimConfig::paper_default();
    let trace = Dataset::Fcc.generate(9, 1).remove(0).scaled(3.0);
    let mut group = c.benchmark_group("multiplayer");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for n in [2usize, 4] {
        group.bench_function(format!("{n}_players_bb"), |b| {
            b.iter(|| {
                let players = (0..n)
                    .map(|i| SharedPlayer {
                        controller: Box::new(
                            abr_baselines::BufferBased::paper_default(),
                        ),
                        predictor: Box::new(HarmonicMean::paper_default()),
                        start_offset_secs: i as f64,
                    })
                    .collect();
                black_box(run_shared_session(players, &trace, &video, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_generation, bench_mdp, bench_multiplayer);
criterion_main!(benches);
