//! §7.4 CPU overhead: per-decision cost of every adaptation algorithm.
//!
//! The paper reports FastMPC consuming "similar CPU" to RB/BB; the
//! interesting comparison is FastMPC's table lookup vs. the exact MPC solve
//! it replaces.

use abr_baselines::{BufferBased, DashJs, Festive, RateBased};
use abr_bench::{ctx, video};
use abr_core::{optimize_first_with, BitrateController, HorizonScratch, Mpc};
use abr_fastmpc::{FastMpc, FastMpcTable, TableConfig};
use abr_video::{LevelIdx, QoeWeights};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_decisions(c: &mut Criterion) {
    let video = video();
    let table = Arc::new(FastMpcTable::generate(
        &video,
        30.0,
        TableConfig::paper_default(),
    ));
    let mut group = c.benchmark_group("decision");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    let mut cases: Vec<(&str, Box<dyn BitrateController>)> = vec![
        ("RB", Box::new(RateBased::paper_default())),
        ("BB", Box::new(BufferBased::paper_default())),
        ("FESTIVE", Box::new(Festive::paper_default())),
        ("dash.js", Box::new(DashJs::paper_default())),
        ("FastMPC", Box::new(FastMpc::new(Arc::clone(&table)))),
        ("MPC-exact", Box::new(Mpc::paper_default())),
        ("RobustMPC-exact", Box::new(Mpc::robust())),
    ];
    for (name, controller) in &mut cases {
        let mut i = 0usize;
        group.bench_function(*name, |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(controller.decide(&ctx(&video, i)))
            })
        });
    }
    group.finish();
}

/// The raw horizon solver through the reusable scratch buffer — the hot
/// inner loop of both the online MPC controller and the offline table
/// enumeration. Allocation-free after warm-up (proven by the `no_alloc`
/// test in `abr-core`); horizon 9 exercises the branch-and-bound pruning
/// where the search tree is ~5^9.
fn bench_horizon_solver(c: &mut Criterion) {
    let video = video();
    let weights = QoeWeights::balanced();
    let mut scratch = HorizonScratch::new();
    let mut group = c.benchmark_group("horizon_solve");
    group.measurement_time(Duration::from_secs(3));
    for horizon in [5usize, 9] {
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, &h| {
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(optimize_first_with(
                    &mut scratch,
                    &video,
                    10 + (i % 40),
                    h,
                    (i % 30) as f64,
                    30.0,
                    Some(LevelIdx(i % 5)),
                    400.0 + (i % 50) as f64 * 60.0,
                    &weights,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decisions, bench_horizon_solver);
criterion_main!(benches);
