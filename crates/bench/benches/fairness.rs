//! Shared-bottleneck fairness benchmarks: the fleet-scale multiplayer
//! engine at increasing player counts, and the coordinator's joint
//! allocation pass itself — the per-decision cost a grouped `abr-serve`
//! deployment pays on top of the scalar backend.

use abr_baselines::BufferBased;
use abr_bench::video;
use abr_net::multiplayer::{run_shared_session, SharedPlayer};
use abr_predictor::HarmonicMean;
use abr_serve::{CoordinatorConfig, DecisionRequest, FairnessCoordinator, LastChunk};
use abr_sim::SimConfig;
use abr_trace::Dataset;
use abr_video::QualityFn;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Whole shared-link sessions at fleet sizes: wall-clock per full run of
/// N buffer-based players over one scaled FCC trace.
fn bench_fleet_engine(c: &mut Criterion) {
    let video = video();
    let cfg = SimConfig::paper_default();
    let mut group = c.benchmark_group("fairness_fleet");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for n in [16usize, 64, 256] {
        let trace = Dataset::Fcc.generate(9, 1).remove(0).scaled(1.2 * n as f64);
        group.bench_function(format!("{n}_players_bb"), |b| {
            b.iter(|| {
                let players = (0..n)
                    .map(|i| SharedPlayer {
                        controller: Box::new(BufferBased::paper_default()),
                        predictor: Box::new(HarmonicMean::paper_default()),
                        start_offset_secs: (i % 16) as f64 * 0.5,
                    })
                    .collect();
                black_box(run_shared_session(players, &trace, &video, &cfg))
            })
        });
    }
    group.finish();
}

/// The allocator alone: one `observe_and_allocate` round against a warm
/// group — the marginal server-side cost of a coordinated decision.
fn bench_allocation_pass(c: &mut Criterion) {
    let video = video();
    let mut group = c.benchmark_group("fairness_allocate");
    group.measurement_time(Duration::from_secs(2));
    for n in [8u64, 64, 256] {
        let coord = FairnessCoordinator::new(CoordinatorConfig::default());
        for sid in 0..n {
            coord.join("link", sid, &video, &QualityFn::Identity);
            // Warm every member with an observation so the whole group is
            // eligible and the greedy climb runs at full width.
            let _ = coord.observe_and_allocate(&DecisionRequest {
                sid,
                chunk: 3,
                buffer_secs: 12.0,
                last: Some(LastChunk {
                    level: 2,
                    throughput_kbps: 1500.0 + sid as f64,
                    download_secs: 2.5,
                }),
                now_secs: None,
            });
        }
        let req = DecisionRequest {
            sid: 0,
            chunk: 4,
            buffer_secs: 11.0,
            last: Some(LastChunk {
                level: 2,
                throughput_kbps: 1600.0,
                download_secs: 2.4,
            }),
            now_secs: None,
        };
        group.bench_function(format!("{n}_members"), |b| {
            b.iter(|| black_box(coord.observe_and_allocate(black_box(&req))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_engine, bench_allocation_pass);
criterion_main!(benches);
