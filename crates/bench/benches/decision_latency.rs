//! `decision_latency`: what outsourcing a decision over a socket costs.
//!
//! Two measurements of the same FastMPC decision: the raw in-process table
//! lookup, and the full loopback round-trip through the `abr-serve`
//! decision service (HTTP framing, session-store lock, predictor update,
//! lookup, reply). The gap is the price of centralising ABR control, and
//! the serve-bench harness experiment reports the same quantity under
//! concurrent load.

use abr_bench::{ctx, video};
use abr_core::BitrateController;
use abr_fastmpc::{FastMpc, FastMpcTable, TableConfig};
use abr_serve::{Backend, DecisionRequest, DecisionServer, LastChunk, ServeClient, SessionSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_decision_latency(c: &mut Criterion) {
    let video = video();
    let mut group = c.benchmark_group("decision_latency");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    // Baseline: the bare table lookup, no sockets anywhere.
    let table = Arc::new(FastMpcTable::generate(
        &video,
        30.0,
        TableConfig::paper_default(),
    ));
    let mut fastmpc = FastMpc::new(Arc::clone(&table));
    let mut i = 0usize;
    group.bench_function("in_process_fastmpc", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(fastmpc.decide(&ctx(&video, i)))
        })
    });

    // The same decision as a loopback HTTP round-trip. Sessions are finite
    // (one decision per chunk), so the driver re-registers a fresh session
    // whenever the current one is exhausted; registration happens at most
    // once per `video.num_chunks()` iterations and reuses the server's cached
    // table, so it stays in the measurement noise.
    let mut handle = DecisionServer::spawn(2).expect("bind loopback server");
    let spec = SessionSpec::paper_default(Backend::FastMpc, video.clone());
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    let mut sid = client.register(&spec).expect("register");
    let mut chunk = 0usize;
    group.bench_function("loopback_round_trip", |b| {
        b.iter(|| {
            if chunk == video.num_chunks() {
                sid = client.register(&spec).expect("register");
                chunk = 0;
            }
            let req = DecisionRequest {
                sid,
                chunk,
                buffer_secs: 12.0,
                last: (chunk > 0).then_some(LastChunk {
                    level: 0,
                    throughput_kbps: 1200.0,
                    download_secs: 1.0,
                }),
                now_secs: None,
            };
            chunk += 1;
            black_box(client.decision(&req).expect("decision"))
        })
    });
    drop(client);
    handle.shutdown();
    group.finish();
}

criterion_group!(benches, bench_decision_latency);
criterion_main!(benches);
