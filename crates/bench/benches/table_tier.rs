//! Tiered table catalog: what each tier of a FastMPC lookup costs.
//!
//! The `TableStore` serves a decision from one of three places — the hot
//! tier (an owned table behind an `Arc`), the warm tier (a zero-copy
//! `TableView` over mmap'd bytes), or a cold generation (the offline
//! enumeration). The first two must be within the same order of
//! magnitude for the bounded catalog to stay near the unbounded cache's
//! throughput; the third is the cost eviction-without-a-warm-tier pays
//! on every refault.

use abr_bench::{ctx, video};
use abr_fastmpc::{FastMpcTable, TableConfig, TableStore, TableStoreConfig, TableView};
use abr_net::mmap::Mmap;
use abr_video::LevelIdx;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_table_tier(c: &mut Criterion) {
    let video = video();
    let cfg = TableConfig::paper_default();
    let table = Arc::new(FastMpcTable::generate(&video, 30.0, cfg.clone()));

    // Warm-tier fixture: the table's own binary serialization, mmap'd
    // back exactly as the store's spill path leaves it on disk.
    let dir = std::env::temp_dir().join(format!("abr-table-tier-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let path = dir.join("bench.fmpc");
    std::fs::write(&path, table.to_bytes()).expect("spill table");
    let view = TableView::new(Mmap::open(&path).expect("mmap table")).expect("validate table");

    let mut group = c.benchmark_group("table_tier_lookup");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    let mut i = 0usize;
    group.bench_function("hot_owned", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let c = ctx(&video, i);
            black_box(table.lookup(
                c.buffer_secs,
                c.prev_level.unwrap_or(LevelIdx(0)),
                c.prediction_kbps.unwrap_or(0.0),
            ))
        })
    });

    let mut i = 0usize;
    group.bench_function("warm_mmap_view", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let c = ctx(&video, i);
            black_box(view.lookup(
                c.buffer_secs,
                c.prev_level.unwrap_or(LevelIdx(0)),
                c.prediction_kbps.unwrap_or(0.0),
            ))
        })
    });

    // The full store path on a guaranteed hot hit: key hash + tier probe
    // on top of the raw lookup above.
    let store = TableStore::with_config(TableStoreConfig::default());
    store.ensure(&video, 30.0, &cfg);
    let mut i = 0usize;
    group.bench_function("store_hot_hit", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let c = ctx(&video, i);
            let handle = store.ensure(&video, 30.0, &cfg);
            black_box(handle.lookup(
                c.buffer_secs,
                c.prev_level.unwrap_or(LevelIdx(0)),
                c.prediction_kbps.unwrap_or(0.0),
            ))
        })
    });
    group.finish();

    // Cold generation is milliseconds, not nanoseconds — its own group so
    // the sample budget fits.
    let mut cold = c.benchmark_group("table_tier_generate");
    cold.measurement_time(Duration::from_secs(5));
    cold.sample_size(10);
    cold.bench_function("cold_generate", |b| {
        b.iter(|| {
            black_box(FastMpcTable::generate(
                black_box(&video),
                30.0,
                cfg.clone(),
            ))
        })
    });
    cold.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_table_tier);
criterion_main!(benches);
