//! Shared fixtures for the Criterion benchmarks.
//!
//! The benchmarks quantify the paper's Section 7.4 overhead story: FastMPC
//! trades an offline enumeration for an online lookup that costs about as
//! much as the trivial RB/BB heuristics, while the exact MPC solve it
//! replaces is orders of magnitude more expensive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abr_core::ControllerContext;
use abr_video::{envivio_video, LevelIdx, Video};

/// The reference video shared by all benches.
pub fn video() -> Video {
    envivio_video()
}

/// A representative mid-session controller context; `i` varies the state so
/// benches don't measure a single cached branch.
pub fn ctx(video: &Video, i: usize) -> ControllerContext<'_> {
    ControllerContext {
        chunk_index: 10 + (i % 40),
        buffer_secs: (i % 30) as f64,
        prev_level: Some(LevelIdx(i % 5)),
        prediction_kbps: Some(400.0 + (i % 50) as f64 * 60.0),
        robust_lower_kbps: Some(350.0 + (i % 50) as f64 * 50.0),
        last_throughput_kbps: Some(900.0 + (i % 7) as f64 * 150.0),
        recent_low_buffer: i % 11 == 0,
        startup: false,
        video,
        buffer_max_secs: 30.0,
        live: None,
    }
}
