//! A concurrent memo map with exactly-once initialization per key.
//!
//! Both FastMPC table memoization (`abr-fastmpc`) and the offline-OPT
//! cache (`abr-offline`) need the same shape: many threads race to the
//! same content-hash key, the first one computes an expensive value, the
//! rest wait for *that key only*, and every later lookup is a cheap hit.
//! Each crate used to carry a private copy of this pattern; [`OnceMap`]
//! is the shared generalization.
//!
//! Concurrency contract:
//!
//! * **Hits never wait behind a generation.** [`get`](OnceMap::get) and
//!   the fast path of [`get_or_init`](OnceMap::get_or_init) take only a
//!   shared read lock on the key directory plus a lock-free
//!   `OnceLock::get` — no per-key mutex, so a reader hitting a populated
//!   key proceeds even while some other key (or a racing miss on the
//!   same key) is mid-generation.
//! * **Misses initialize exactly once per key.** Racing callers of
//!   `get_or_init` serialize on that key's private gate; one runs the
//!   closure, the rest receive its value. Different keys generate in
//!   parallel — a miss storm on one key never blocks progress on
//!   another.
//! * **A panicking initializer poisons nothing.** The gate is recovered
//!   and the next caller simply retries the initialization.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// One key's state: the write-once value plus the generation gate that
/// serializes racing initializers. Hit paths only touch `ready`.
#[derive(Debug)]
struct Slot<V> {
    ready: OnceLock<Arc<V>>,
    gate: Mutex<()>,
}

impl<V> Slot<V> {
    fn new() -> Self {
        Self {
            ready: OnceLock::new(),
            gate: Mutex::new(()),
        }
    }
}

/// A concurrent map whose values are initialized exactly once per key.
///
/// Values are shared out as `Arc<V>`; the map never hands two different
/// values for one key (unless the key is [`remove`](OnceMap::remove)d in
/// between, which resets the exactly-once epoch for that key).
#[derive(Debug)]
pub struct OnceMap<K, V> {
    map: RwLock<HashMap<K, Arc<Slot<V>>>>,
}

impl<K: Eq + Hash + Clone, V> Default for OnceMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> OnceMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
        }
    }

    /// The populated value for `key`, if initialization has completed.
    /// Never blocks behind an in-flight generation (of this key or any
    /// other).
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let map = self.map.read().unwrap_or_else(|p| p.into_inner());
        map.get(key).and_then(|slot| slot.ready.get().cloned())
    }

    /// Returns the value for `key`, running `init` to create it if no
    /// caller has before. The boolean is `true` iff *this* call ran
    /// `init`; racing callers on the same key block until the winner's
    /// value is ready and receive `false`.
    pub fn get_or_init(&self, key: K, init: impl FnOnce() -> V) -> (Arc<V>, bool) {
        let slot = self.slot(key);
        if let Some(v) = slot.ready.get() {
            return (Arc::clone(v), false);
        }
        // Miss path: racing initializers of this key serialize here;
        // every other key's slot is untouched.
        let _gate = slot.gate.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(v) = slot.ready.get() {
            return (Arc::clone(v), false); // lost the race, value is ready
        }
        let value = Arc::new(init());
        let _ = slot.ready.set(Arc::clone(&value));
        (value, true)
    }

    /// Populates `key` with an already-computed value unless a value is
    /// present; returns `true` iff this call populated it. Used by
    /// preload/merge paths where the value arrives from disk rather than
    /// an initializer closure.
    pub fn insert(&self, key: K, value: Arc<V>) -> bool {
        let slot = self.slot(key);
        let _gate = slot.gate.lock().unwrap_or_else(|p| p.into_inner());
        slot.ready.set(value).is_ok()
    }

    /// Removes `key`, returning its value if one was populated. In-flight
    /// initializations of the removed epoch run to completion but their
    /// value is no longer visible; a subsequent `get_or_init` starts a
    /// fresh epoch (callers relying on exactly-once must re-check their
    /// own tiers after winning the new epoch's gate).
    pub fn remove(&self, key: &K) -> Option<Arc<V>> {
        let mut map = self.map.write().unwrap_or_else(|p| p.into_inner());
        map.remove(key).and_then(|slot| slot.ready.get().cloned())
    }

    /// Populated entries (keys whose initialization completed).
    pub fn len(&self) -> usize {
        let map = self.map.read().unwrap_or_else(|p| p.into_inner());
        map.values().filter(|s| s.ready.get().is_some()).count()
    }

    /// Whether no entry is populated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every populated `(key, value)` pair.
    pub fn snapshot(&self) -> Vec<(K, Arc<V>)> {
        let map = self.map.read().unwrap_or_else(|p| p.into_inner());
        map.iter()
            .filter_map(|(k, slot)| slot.ready.get().map(|v| (k.clone(), Arc::clone(v))))
            .collect()
    }

    /// The (possibly fresh) slot for `key`. Fast path is a shared read
    /// lock; the exclusive lock is taken only to insert a new slot.
    fn slot(&self, key: K) -> Arc<Slot<V>> {
        {
            let map = self.map.read().unwrap_or_else(|p| p.into_inner());
            if let Some(slot) = map.get(&key) {
                return Arc::clone(slot);
            }
        }
        let mut map = self.map.write().unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Slot::new())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn initializes_exactly_once_per_key() {
        let m: OnceMap<u32, u32> = OnceMap::new();
        let runs = AtomicUsize::new(0);
        let (a, ran_a) = m.get_or_init(7, || {
            runs.fetch_add(1, Ordering::Relaxed);
            70
        });
        let (b, ran_b) = m.get_or_init(7, || {
            runs.fetch_add(1, Ordering::Relaxed);
            71
        });
        assert!(ran_a && !ran_b);
        assert_eq!((*a, *b), (70, 70));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&7).as_deref(), Some(&70));
        assert_eq!(m.get(&8), None);
    }

    #[test]
    fn concurrent_misses_on_one_key_run_one_init() {
        let m: Arc<OnceMap<u8, u64>> = Arc::new(OnceMap::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let winners = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                let runs = Arc::clone(&runs);
                let winners = &winners;
                s.spawn(move || {
                    let (v, ran) = m.get_or_init(3, || {
                        runs.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        42
                    });
                    assert_eq!(*v, 42);
                    if ran {
                        winners.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn hit_completes_while_another_key_generates() {
        // The head-of-line property: key 1 is populated; key 2's
        // generation is parked on a channel. A hit on key 1 (and a
        // racing generation of key 3) must complete while key 2 is still
        // in flight.
        let m: Arc<OnceMap<u8, String>> = Arc::new(OnceMap::new());
        m.get_or_init(1, || "hot".to_string());
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let m2 = Arc::clone(&m);
        let generator = std::thread::spawn(move || {
            m2.get_or_init(2, move || {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap(); // hold the generation open
                "slow".to_string()
            })
        });
        started_rx.recv().unwrap(); // key 2 is now mid-generation
        assert_eq!(m.get(&1).unwrap().as_str(), "hot");
        let (v, ran) = m.get_or_init(1, || unreachable!("key 1 is populated"));
        assert!(!ran);
        assert_eq!(v.as_str(), "hot");
        let (v3, ran3) = m.get_or_init(3, || "parallel".to_string());
        assert!(ran3, "other keys generate while key 2 is blocked");
        assert_eq!(v3.as_str(), "parallel");
        release_tx.send(()).unwrap();
        let (v2, ran2) = generator.join().unwrap();
        assert!(ran2);
        assert_eq!(v2.as_str(), "slow");
    }

    #[test]
    fn insert_is_first_writer_wins() {
        let m: OnceMap<u8, u8> = OnceMap::new();
        assert!(m.insert(1, Arc::new(10)));
        assert!(!m.insert(1, Arc::new(99)));
        assert_eq!(m.get(&1).as_deref(), Some(&10));
        m.get_or_init(2, || 20);
        assert!(!m.insert(2, Arc::new(99)));
        let mut snap = m.snapshot();
        snap.sort_by_key(|(k, _)| *k);
        assert_eq!(snap.len(), 2);
        assert_eq!(*snap[0].1, 10);
        assert_eq!(*snap[1].1, 20);
    }

    #[test]
    fn remove_resets_the_epoch() {
        let m: OnceMap<u8, u8> = OnceMap::new();
        assert_eq!(m.remove(&5), None);
        m.get_or_init(5, || 50);
        assert_eq!(m.remove(&5).as_deref(), Some(&50));
        assert!(m.is_empty());
        let (v, ran) = m.get_or_init(5, || 51);
        assert!(ran, "removal starts a fresh exactly-once epoch");
        assert_eq!(*v, 51);
    }

    #[test]
    fn panicking_initializer_does_not_wedge_the_key() {
        let m: Arc<OnceMap<u8, u8>> = Arc::new(OnceMap::new());
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            m2.get_or_init(9, || panic!("initializer died"));
        })
        .join();
        assert_eq!(m.get(&9), None);
        let (v, ran) = m.get_or_init(9, || 90);
        assert!(ran, "the next caller retries after a panic");
        assert_eq!(*v, 90);
        assert_eq!(m.len(), 1);
    }
}
