//! The workspace's one threading utility: a fork-join parallel map built on
//! `std::thread::scope`, with a process-wide thread-count policy.
//!
//! Both the FastMPC offline enumeration (`abr-fastmpc`) and the evaluation
//! harness's trace grid (`abr-harness`) fan independent index-addressed work
//! across cores. Neither needs a work-stealing runtime; a claimed-index loop
//! over scoped threads gives the same saturation with zero dependencies and
//! no unsafe code.
//!
//! Thread-count resolution, highest priority first:
//!
//! 1. [`set_max_threads`] — the programmatic override (the harness wires its
//!    `--threads` CLI flag here);
//! 2. the `ABR_THREADS` environment variable (any positive integer; useful
//!    for benchmarking scripts that cannot reach the CLI flag);
//! 3. [`std::thread::available_parallelism`], i.e. every core.
//!
//! A resolved count of 1 degrades to a plain serial map with no threads
//! spawned, so single-core machines and `--threads 1` runs pay nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod once_map;

pub use once_map::OnceMap;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread-count override; 0 means "not set".
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Environment variable consulted when no programmatic override is set.
pub const THREADS_ENV_VAR: &str = "ABR_THREADS";

/// Sets the process-wide maximum worker count used by [`par_map`].
/// `None` clears the override, restoring `ABR_THREADS` / all-cores behavior.
pub fn set_max_threads(threads: Option<usize>) {
    MAX_THREADS.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count [`par_map`] would use right now (>= 1): the
/// [`set_max_threads`] override, else `ABR_THREADS`, else all cores.
pub fn max_threads() -> usize {
    let forced = MAX_THREADS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(s) = std::env::var(THREADS_ENV_VAR) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Maps `f` over `0..n` in parallel, preserving index order in the output.
///
/// Workers claim indices from a shared atomic counter, so uneven item costs
/// balance automatically (important for MPC solves, whose branch-and-bound
/// cost varies by orders of magnitude across scenarios). Results land in
/// per-index slots; the write-once discipline is enforced with a mutex per
/// slot rather than unsafe pointer writes — contention is zero because each
/// slot is touched exactly once.
pub fn par_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let workers = max_threads().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("slot lock poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that touch the process-global override run under one lock so
    /// the default multi-threaded test runner cannot interleave them.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn matches_serial() {
        let out = par_map(257, |i| i * i);
        let expect: Vec<usize> = (0..257).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_serially() {
        assert_eq!(par_map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn override_wins_and_clears() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_max_threads(Some(3));
        assert_eq!(max_threads(), 3);
        // The override must not change results, only scheduling.
        assert_eq!(par_map(50, |i| i * 2), (0..50).map(|i| i * 2).collect::<Vec<_>>());
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn forced_serial() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_max_threads(Some(1));
        assert_eq!(par_map(20, |i| i + 1), (1..=20).collect::<Vec<_>>());
        set_max_threads(None);
    }

    #[test]
    fn uneven_work_is_balanced() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        // Items with wildly different costs still come back in order.
        set_max_threads(Some(4));
        let out = par_map(40, |i| {
            let spins = if i % 7 == 0 { 20_000 } else { 10 };
            (0..spins).fold(i as u64, |a, x| a.wrapping_add(x))
        });
        let expect: Vec<u64> = (0..40)
            .map(|i| {
                let spins = if i % 7 == 0 { 20_000u64 } else { 10 };
                (0..spins).fold(i as u64, |a, x| a.wrapping_add(x))
            })
            .collect();
        assert_eq!(out, expect);
        set_max_threads(None);
    }
}
