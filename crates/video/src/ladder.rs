//! Bitrate ladders: the discrete set `R` of available encoding levels.

use serde::{Deserialize, Serialize};

/// Index of a bitrate level within a [`Ladder`], ordered from lowest (0) to
/// highest. A newtype so chunk indices and level indices cannot be confused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LevelIdx(pub usize);

impl LevelIdx {
    /// Returns the raw index.
    #[inline]
    pub fn get(self) -> usize {
        self.0
    }
}

/// Errors constructing a [`Ladder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LadderError {
    /// The ladder had no levels.
    Empty,
    /// Levels were not strictly increasing and positive.
    NotStrictlyIncreasing,
}

impl std::fmt::Display for LadderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LadderError::Empty => write!(f, "bitrate ladder must have at least one level"),
            LadderError::NotStrictlyIncreasing => {
                write!(f, "bitrate levels must be positive and strictly increasing")
            }
        }
    }
}

impl std::error::Error for LadderError {}

/// An ordered set of available bitrate levels in kbps.
///
/// Invariant: levels are positive and strictly increasing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ladder {
    levels_kbps: Vec<f64>,
}

impl Ladder {
    /// Creates a ladder from bitrate levels in kbps.
    ///
    /// Levels must be positive and strictly increasing.
    pub fn new(levels_kbps: Vec<f64>) -> Result<Self, LadderError> {
        if levels_kbps.is_empty() {
            return Err(LadderError::Empty);
        }
        let increasing = levels_kbps[0] > 0.0
            && levels_kbps[0].is_finite()
            && levels_kbps.windows(2).all(|w| w[1] > w[0] && w[1].is_finite());
        if !increasing {
            return Err(LadderError::NotStrictlyIncreasing);
        }
        Ok(Self { levels_kbps })
    }

    /// Builds a ladder of `n` levels spaced geometrically between `lo` and
    /// `hi` kbps (inclusive). Used by the bitrate-level sensitivity study.
    pub fn geometric(lo: f64, hi: f64, n: usize) -> Result<Self, LadderError> {
        if n == 0 {
            return Err(LadderError::Empty);
        }
        if n == 1 {
            return Self::new(vec![lo]);
        }
        let ratio = (hi / lo).powf(1.0 / (n as f64 - 1.0));
        let mut levels = Vec::with_capacity(n);
        for i in 0..n {
            levels.push(lo * ratio.powi(i as i32));
        }
        // Guard against floating point slightly overshooting `hi`.
        levels[n - 1] = hi;
        Self::new(levels)
    }

    /// Number of levels.
    #[inline]
    pub fn len(&self) -> usize {
        self.levels_kbps.len()
    }

    /// True if the ladder has exactly one level (never empty by invariant).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bitrate of level `i` in kbps. Panics if out of range.
    #[inline]
    pub fn kbps(&self, i: LevelIdx) -> f64 {
        self.levels_kbps[i.0]
    }

    /// All levels in kbps, lowest first.
    #[inline]
    pub fn levels(&self) -> &[f64] {
        &self.levels_kbps
    }

    /// Lowest bitrate in kbps.
    #[inline]
    pub fn min_kbps(&self) -> f64 {
        self.levels_kbps[0]
    }

    /// Highest bitrate in kbps.
    #[inline]
    pub fn max_kbps(&self) -> f64 {
        *self.levels_kbps.last().expect("non-empty by invariant")
    }

    /// Index of the lowest level.
    #[inline]
    pub fn lowest(&self) -> LevelIdx {
        LevelIdx(0)
    }

    /// Index of the highest level.
    #[inline]
    pub fn highest(&self) -> LevelIdx {
        LevelIdx(self.levels_kbps.len() - 1)
    }

    /// Iterator over all level indices, lowest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = LevelIdx> + ExactSizeIterator {
        (0..self.levels_kbps.len()).map(LevelIdx)
    }

    /// Highest level whose bitrate is `<= budget_kbps`; the lowest level if
    /// none qualifies. This is the canonical "max bitrate below X" selection
    /// used by the rate-based and buffer-based baselines.
    pub fn max_level_at_most(&self, budget_kbps: f64) -> LevelIdx {
        let mut best = LevelIdx(0);
        for (i, &r) in self.levels_kbps.iter().enumerate() {
            if r <= budget_kbps {
                best = LevelIdx(i);
            } else {
                break;
            }
        }
        best
    }

    /// Exact level index for a bitrate value, if it is on the ladder.
    pub fn index_of(&self, kbps: f64) -> Option<LevelIdx> {
        self.levels_kbps
            .iter()
            .position(|&r| (r - kbps).abs() < 1e-9)
            .map(LevelIdx)
    }

    /// The level one step above `i`, saturating at the top.
    pub fn up(&self, i: LevelIdx) -> LevelIdx {
        LevelIdx((i.0 + 1).min(self.levels_kbps.len() - 1))
    }

    /// The level one step below `i`, saturating at the bottom.
    pub fn down(&self, i: LevelIdx) -> LevelIdx {
        LevelIdx(i.0.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envivio() -> Ladder {
        Ladder::new(vec![350.0, 600.0, 1000.0, 2000.0, 3000.0]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Ladder::new(vec![]).unwrap_err(), LadderError::Empty);
    }

    #[test]
    fn rejects_unsorted() {
        assert_eq!(
            Ladder::new(vec![600.0, 350.0]).unwrap_err(),
            LadderError::NotStrictlyIncreasing
        );
    }

    #[test]
    fn rejects_nonpositive() {
        assert_eq!(
            Ladder::new(vec![0.0, 350.0]).unwrap_err(),
            LadderError::NotStrictlyIncreasing
        );
        assert_eq!(
            Ladder::new(vec![-1.0]).unwrap_err(),
            LadderError::NotStrictlyIncreasing
        );
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            Ladder::new(vec![350.0, 350.0]).unwrap_err(),
            LadderError::NotStrictlyIncreasing
        );
    }

    #[test]
    fn rejects_nan_and_inf() {
        assert!(Ladder::new(vec![f64::NAN]).is_err());
        assert!(Ladder::new(vec![350.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn max_level_at_most_picks_floor() {
        let l = envivio();
        assert_eq!(l.max_level_at_most(2999.0), LevelIdx(3));
        assert_eq!(l.max_level_at_most(3000.0), LevelIdx(4));
        assert_eq!(l.max_level_at_most(350.0), LevelIdx(0));
        // Below the lowest level we still must pick something: the lowest.
        assert_eq!(l.max_level_at_most(100.0), LevelIdx(0));
        assert_eq!(l.max_level_at_most(1e9), LevelIdx(4));
    }

    #[test]
    fn up_down_saturate() {
        let l = envivio();
        assert_eq!(l.up(LevelIdx(4)), LevelIdx(4));
        assert_eq!(l.down(LevelIdx(0)), LevelIdx(0));
        assert_eq!(l.up(LevelIdx(1)), LevelIdx(2));
        assert_eq!(l.down(LevelIdx(1)), LevelIdx(0));
    }

    #[test]
    fn geometric_endpoints_and_monotonicity() {
        let l = Ladder::geometric(350.0, 3000.0, 8).unwrap();
        assert_eq!(l.len(), 8);
        assert!((l.min_kbps() - 350.0).abs() < 1e-9);
        assert!((l.max_kbps() - 3000.0).abs() < 1e-9);
        for w in l.levels().windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn geometric_single_level() {
        let l = Ladder::geometric(500.0, 3000.0, 1).unwrap();
        assert_eq!(l.len(), 1);
        assert!((l.kbps(LevelIdx(0)) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn index_of_finds_exact() {
        let l = envivio();
        assert_eq!(l.index_of(1000.0), Some(LevelIdx(2)));
        assert_eq!(l.index_of(1001.0), None);
    }

    #[test]
    fn serde_round_trip() {
        let l = envivio();
        let s = serde_json::to_string(&l).unwrap();
        let back: Ladder = serde_json::from_str(&s).unwrap();
        assert_eq!(l, back);
    }
}
