//! The live-streaming availability model.
//!
//! Video-on-demand assumes every chunk exists up front; live streaming does
//! not. A [`LiveSchedule`] pins chunk `k`'s release to the wall clock —
//! `t0 + k·L + encode_delay` — and caps the playback buffer at
//! `max_buffer_secs` (a live player cannot buffer content the encoder has
//! not produced, and operators cap it far below the VOD 30 s to bound
//! glass-to-glass latency).
//!
//! [`LiveState`] is the per-decision snapshot derived from the schedule:
//! how far away the next chunk's release is, and how far the playhead lags
//! the live edge. The session engine and the decision service both derive
//! it through [`LiveSchedule::state`], so the wire twin sees bit-identical
//! inputs by construction.

use serde::{Deserialize, Serialize};

/// Wall-clock chunk availability for a live session.
///
/// Chunk `k` (media `[k·L, (k+1)·L)`) becomes fetchable at
/// `k·L + encode_delay_secs`, clamped at 0 — a negative delay models a DVR
/// window where early chunks pre-exist at session start.
///
/// ```
/// use abr_video::LiveSchedule;
///
/// let live = LiveSchedule { encode_delay_secs: 2.0, max_buffer_secs: 8.0 };
/// assert_eq!(live.available_at(0, 4.0), 2.0);
/// assert_eq!(live.available_at(3, 4.0), 14.0);
/// // A DVR window: the first chunks already exist.
/// let dvr = LiveSchedule { encode_delay_secs: -4.0, max_buffer_secs: 8.0 };
/// assert_eq!(dvr.available_at(0, 4.0), 0.0);
/// assert_eq!(dvr.available_at(1, 4.0), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiveSchedule {
    /// Encoder + packager delay between a chunk's media start and its
    /// release, seconds. Negative values model a DVR window.
    pub encode_delay_secs: f64,
    /// Buffer capacity cap for the live session, seconds (the effective
    /// cap is `min(B_max, max_buffer_secs)`).
    pub max_buffer_secs: f64,
}

impl LiveSchedule {
    /// The instant chunk `k` becomes fetchable: `k·L + encode_delay`,
    /// never negative (pre-session chunks exist at `t = 0`).
    pub fn available_at(&self, k: usize, chunk_secs: f64) -> f64 {
        (k as f64 * chunk_secs + self.encode_delay_secs).max(0.0)
    }

    /// The live edge at wall time `now`: the media position the encoder
    /// has released, `now − encode_delay + L` (when chunk `k` releases at
    /// `k·L + d`, media through `(k+1)·L` exists).
    pub fn live_edge_secs(&self, now_secs: f64, chunk_secs: f64) -> f64 {
        (now_secs - self.encode_delay_secs + chunk_secs).max(0.0)
    }

    /// Latency behind the live edge with the playhead at
    /// `next_chunk·L − buffer` (contiguous buffered content ahead of the
    /// playhead): `live_edge − playhead`, clamped non-negative.
    ///
    /// Steady state at the edge is `≈ L + buffer`: one chunk still being
    /// encoded plus whatever the player holds. Latency is constant while
    /// playing, grows second-for-second while the playhead is frozen
    /// (startup, rebuffer), and drops by `L` per skipped chunk.
    pub fn latency_secs(
        &self,
        now_secs: f64,
        next_chunk: usize,
        buffer_secs: f64,
        chunk_secs: f64,
    ) -> f64 {
        let playhead = next_chunk as f64 * chunk_secs - buffer_secs;
        (self.live_edge_secs(now_secs, chunk_secs) - playhead).max(0.0)
    }

    /// The per-decision snapshot handed to controllers (and across the
    /// wire): derived state for the session about to request `next_chunk`
    /// at wall time `now_secs` holding `buffer_secs` of content.
    pub fn state(
        &self,
        now_secs: f64,
        next_chunk: usize,
        buffer_secs: f64,
        chunk_secs: f64,
    ) -> LiveState {
        LiveState {
            now_secs,
            release_in_secs: next_chunk as f64 * chunk_secs + self.encode_delay_secs - now_secs,
            latency_secs: self.latency_secs(now_secs, next_chunk, buffer_secs, chunk_secs),
            max_buffer_secs: self.max_buffer_secs,
        }
    }
}

/// Live-session state at one decision point, derived from a
/// [`LiveSchedule`] by [`LiveSchedule::state`].
///
/// `release_in_secs` is *unclamped*: a negative value means the chunk is
/// already fetchable, and chunk `k + i` releases `release_in_secs + i·L`
/// from now. The clamp in [`LiveSchedule::available_at`] only bites when
/// the release predates the session start, in which case the wait is zero
/// either way.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiveState {
    /// Wall-clock session time of the decision, seconds.
    pub now_secs: f64,
    /// Seconds until the requested chunk's release (negative: already
    /// available).
    pub release_in_secs: f64,
    /// Current latency behind the live edge, seconds (non-negative).
    pub latency_secs: f64,
    /// Effective buffer cap of the live session, seconds.
    pub max_buffer_secs: f64,
}

impl LiveState {
    /// The forced wait before chunk `next + i` can be fetched at `tau_secs`
    /// after the decision instant: `max(0, release_in + i·L − tau)`.
    pub fn wait_before_secs(&self, i: usize, tau_secs: f64, chunk_secs: f64) -> f64 {
        (self.release_in_secs + i as f64 * chunk_secs - tau_secs).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const L: f64 = 4.0;

    fn sched(delay: f64, cap: f64) -> LiveSchedule {
        LiveSchedule {
            encode_delay_secs: delay,
            max_buffer_secs: cap,
        }
    }

    #[test]
    fn releases_pace_at_one_chunk_per_chunk_duration() {
        let s = sched(1.5, 8.0);
        for k in 1..50 {
            let gap = s.available_at(k, L) - s.available_at(k - 1, L);
            assert!((gap - L).abs() < 1e-12, "chunk {k}");
        }
    }

    #[test]
    fn dvr_window_preexists() {
        let s = sched(-10.0, 8.0);
        assert_eq!(s.available_at(0, L), 0.0);
        assert_eq!(s.available_at(2, L), 0.0);
        assert!((s.available_at(3, L) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn steady_state_latency_is_buffer_plus_a_chunk() {
        let s = sched(2.0, 8.0);
        // Fetching chunk 10 exactly at its release with 6 s buffered.
        let now = s.available_at(10, L);
        let lat = s.latency_secs(now, 10, 6.0, L);
        assert!((lat - (L + 6.0)).abs() < 1e-12, "latency {lat}");
    }

    #[test]
    fn latency_is_constant_while_playing_and_grows_while_stalled() {
        let s = sched(2.0, 8.0);
        // Playing: one chunk consumed per L seconds, buffer steady.
        let a = s.latency_secs(20.0, 4, 5.0, L);
        let b = s.latency_secs(24.0, 5, 5.0, L);
        assert!((a - b).abs() < 1e-12);
        // Stalled: time passes, playhead (chunk, buffer) frozen.
        let c = s.latency_secs(27.0, 5, 5.0, L);
        assert!((c - b - 3.0).abs() < 1e-12);
        // A skip drops latency by exactly L.
        let d = s.latency_secs(27.0, 6, 5.0, L);
        assert!((c - d - L).abs() < 1e-12);
    }

    #[test]
    fn state_snapshot_is_consistent() {
        let s = sched(2.0, 6.0);
        let st = s.state(10.0, 3, 4.0, L);
        assert!((st.release_in_secs - (12.0 + 2.0 - 10.0)).abs() < 1e-12);
        assert!((st.latency_secs - s.latency_secs(10.0, 3, 4.0, L)).abs() < 1e-12);
        assert_eq!(st.max_buffer_secs, 6.0);
        // Chunk 3 releases in 4 s; at tau = 1 s the wait is 3 s, chunk 4
        // at tau = 4 s still waits its full spacing.
        assert!((st.wait_before_secs(0, 1.0, L) - 3.0).abs() < 1e-12);
        assert!((st.wait_before_secs(1, 4.0, L) - 4.0).abs() < 1e-12);
        // Far-future tau: already available, no wait.
        assert_eq!(st.wait_before_secs(0, 100.0, L), 0.0);
    }

    proptest! {
        /// No chunk is ever fetchable before its release: for any schedule
        /// and any wall time before `available_at(k)`, the forced wait
        /// computed through a state snapshot is exactly the gap.
        #[test]
        fn no_chunk_fetchable_before_release(
            delay in -20.0f64..20.0,
            k in 0usize..200,
            early in 1e-6f64..50.0,
            buffer in 0.0f64..30.0,
        ) {
            let s = sched(delay, 8.0);
            let release = s.available_at(k, L);
            let now = (release - early).max(0.0);
            let st = s.state(now, k, buffer, L);
            let wait = st.wait_before_secs(0, 0.0, L);
            // The wait closes the whole gap: now + wait >= release.
            prop_assert!(now + wait >= release - 1e-9,
                "now {now} + wait {wait} < release {release}");
            // And never overshoots an already-available chunk.
            if release <= now {
                prop_assert_eq!(wait, 0.0);
            }
        }

        /// Release times are non-decreasing in `k` and spaced at most `L`
        /// apart (exactly `L` once past the DVR clamp).
        #[test]
        fn releases_monotone_and_chunk_spaced(
            delay in -20.0f64..20.0,
            k in 1usize..200,
        ) {
            let s = sched(delay, 8.0);
            let prev = s.available_at(k - 1, L);
            let cur = s.available_at(k, L);
            prop_assert!(cur >= prev);
            prop_assert!(cur - prev <= L + 1e-12);
        }

        /// Latency is non-negative and consistent: advancing the chunk
        /// index (a skip) never increases it, and freezing the playhead
        /// while time passes never decreases it.
        #[test]
        fn latency_monotonicity(
            delay in -10.0f64..10.0,
            now in 0.0f64..800.0,
            k in 0usize..150,
            buffer in 0.0f64..30.0,
            dt in 0.0f64..20.0,
        ) {
            let s = sched(delay, 8.0);
            let base = s.latency_secs(now, k, buffer, L);
            prop_assert!(base >= 0.0);
            prop_assert!(s.latency_secs(now, k + 1, buffer, L) <= base + 1e-12);
            prop_assert!(s.latency_secs(now + dt, k, buffer, L) >= base - 1e-12);
        }
    }
}
