//! Preset videos beyond the paper's Envivio reference — exercising the
//! library across content shapes (fine ladders, short chunks, long films).

use crate::chunk::{Video, VideoBuilder};
use crate::ladder::Ladder;

/// The paper's reference video (alias of [`crate::envivio_video`]).
pub fn envivio() -> Video {
    crate::envivio_video()
}

/// An HD catalogue title: 10-minute video, 4 s chunks, a fine 8-level
/// ladder from 235 kbps to 5800 kbps (a Netflix-style ladder) — the
/// "more bitrate levels" regime of the Section 7.3 sensitivity study.
pub fn hd_catalogue() -> Video {
    let ladder = Ladder::new(vec![
        235.0, 375.0, 560.0, 750.0, 1050.0, 1750.0, 3000.0, 5800.0,
    ])
    .expect("static ladder is valid");
    VideoBuilder::new(ladder).chunks(150).chunk_secs(4.0).cbr()
}

/// A low-latency live profile: 2 s chunks, small three-level ladder —
/// small buffers and frequent decisions stress the adaptation loop.
pub fn low_latency_live() -> Video {
    let ladder =
        Ladder::new(vec![400.0, 1200.0, 2500.0]).expect("static ladder is valid");
    VideoBuilder::new(ladder).chunks(90).chunk_secs(2.0).cbr()
}

/// A film with pronounced VBR structure: quiet dialogue scenes around 0.7x
/// the nominal rate, action peaks at 1.5x, alternating on a ~40 s cadence.
pub fn vbr_film() -> Video {
    let ladder = Ladder::new(vec![350.0, 600.0, 1000.0, 2000.0, 3000.0])
        .expect("static ladder is valid");
    VideoBuilder::new(ladder)
        .chunks(120)
        .chunk_secs(4.0)
        .vbr(|k| 1.1 + 0.4 * ((k as f64) * std::f64::consts::PI / 10.0).sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LevelIdx;

    #[test]
    fn presets_are_well_formed() {
        for (name, v) in [
            ("envivio", envivio()),
            ("hd_catalogue", hd_catalogue()),
            ("low_latency_live", low_latency_live()),
            ("vbr_film", vbr_film()),
        ] {
            assert!(v.num_chunks() > 0, "{name}");
            assert!(v.chunk_secs() > 0.0, "{name}");
            assert!(v.duration_secs() > 60.0, "{name}");
            for k in 0..v.num_chunks() {
                let lo = v.chunk_size_kbits(k, v.ladder().lowest());
                let hi = v.chunk_size_kbits(k, v.ladder().highest());
                assert!(lo > 0.0 && hi >= lo, "{name} chunk {k}");
            }
        }
    }

    #[test]
    fn hd_catalogue_shape() {
        let v = hd_catalogue();
        assert_eq!(v.ladder().len(), 8);
        assert_eq!(v.num_chunks(), 150);
        assert!((v.duration_secs() - 600.0).abs() < 1e-9);
        assert_eq!(v.ladder().max_kbps(), 5800.0);
    }

    #[test]
    fn low_latency_chunks_are_short() {
        let v = low_latency_live();
        assert_eq!(v.chunk_secs(), 2.0);
        assert!((v.duration_secs() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn vbr_film_really_varies() {
        let v = vbr_film();
        let sizes: Vec<f64> = (0..v.num_chunks())
            .map(|k| v.chunk_size_kbits(k, LevelIdx(2)))
            .collect();
        let min = sizes.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().copied().fold(0.0, f64::max);
        assert!(max / min > 1.5, "VBR spread too small: {min}..{max}");
    }
}
