//! Chunked video representation: `K` chunks of `L` seconds, each encoded at
//! every ladder level with size `d_k(R)` kilobits.

use crate::ladder::{Ladder, LevelIdx};
use serde::{Deserialize, Serialize};

/// Per-chunk encoded sizes, one entry per ladder level, in kilobits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkSizes {
    sizes_kbits: Vec<f64>,
}

impl ChunkSizes {
    /// Creates per-level sizes. Must be one positive entry per ladder level,
    /// non-decreasing with level (a higher bitrate never yields a smaller
    /// chunk).
    pub fn new(sizes_kbits: Vec<f64>) -> Option<Self> {
        if sizes_kbits.is_empty() {
            return None;
        }
        let ok = sizes_kbits[0] > 0.0
            && sizes_kbits.windows(2).all(|w| w[1] >= w[0])
            && sizes_kbits.iter().all(|s| s.is_finite());
        ok.then_some(Self { sizes_kbits })
    }

    /// Size at a level, kilobits.
    #[inline]
    pub fn kbits(&self, level: LevelIdx) -> f64 {
        self.sizes_kbits[level.0]
    }
}

/// A video as seen by the adaptation layer: a bitrate ladder plus per-chunk
/// per-level sizes.
///
/// Constant-bitrate (CBR) videos have `d_k(R) = L * R` for every chunk;
/// variable-bitrate (VBR) videos carry explicit per-chunk sizes (the paper
/// notes that the DASH manifest standard unfortunately does not mandate
/// them — our [`VideoBuilder::vbr`] models them directly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Video {
    ladder: Ladder,
    chunk_secs: f64,
    chunks: Vec<ChunkSizes>,
}

impl Video {
    /// The bitrate ladder.
    #[inline]
    pub fn ladder(&self) -> &Ladder {
        &self.ladder
    }

    /// Chunk duration `L` in seconds (uniform across the video).
    #[inline]
    pub fn chunk_secs(&self) -> f64 {
        self.chunk_secs
    }

    /// Number of chunks `K`.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total play time in seconds.
    #[inline]
    pub fn duration_secs(&self) -> f64 {
        self.chunk_secs * self.chunks.len() as f64
    }

    /// Size of chunk `k` at ladder level `level`, in kilobits: `d_k(R)`.
    ///
    /// Panics if `k` or `level` is out of range.
    #[inline]
    pub fn chunk_size_kbits(&self, k: usize, level: LevelIdx) -> f64 {
        self.chunks[k].kbits(level)
    }

    /// Effective bitrate of chunk `k` at `level` (size / duration), kbps.
    /// Equal to the ladder bitrate for CBR content.
    #[inline]
    pub fn chunk_effective_kbps(&self, k: usize, level: LevelIdx) -> f64 {
        self.chunk_size_kbits(k, level) / self.chunk_secs
    }

    /// Returns a copy of this video truncated to its first `k` chunks
    /// (useful for tests and horizon-limited experiments).
    pub fn truncated(&self, k: usize) -> Video {
        Video {
            ladder: self.ladder.clone(),
            chunk_secs: self.chunk_secs,
            chunks: self.chunks[..k.min(self.chunks.len())].to_vec(),
        }
    }
}

/// Builder for [`Video`].
#[derive(Debug, Clone)]
pub struct VideoBuilder {
    ladder: Ladder,
    chunks: usize,
    chunk_secs: f64,
}

impl VideoBuilder {
    /// Starts a builder with the given bitrate ladder. Defaults: 65 chunks of
    /// 4 seconds (the paper's reference video shape).
    pub fn new(ladder: Ladder) -> Self {
        Self {
            ladder,
            chunks: crate::ENVIVIO_CHUNKS,
            chunk_secs: crate::ENVIVIO_CHUNK_SECS,
        }
    }

    /// Sets the number of chunks `K` (must be > 0).
    pub fn chunks(mut self, k: usize) -> Self {
        assert!(k > 0, "video must have at least one chunk");
        self.chunks = k;
        self
    }

    /// Sets the chunk duration `L` in seconds (must be > 0).
    pub fn chunk_secs(mut self, l: f64) -> Self {
        assert!(l > 0.0 && l.is_finite(), "chunk duration must be positive");
        self.chunk_secs = l;
        self
    }

    /// Builds a constant-bitrate video: `d_k(R) = L * R`.
    pub fn cbr(self) -> Video {
        let sizes = ChunkSizes::new(
            self.ladder
                .levels()
                .iter()
                .map(|r| r * self.chunk_secs)
                .collect(),
        )
        .expect("ladder levels are positive and increasing");
        Video {
            ladder: self.ladder,
            chunk_secs: self.chunk_secs,
            chunks: vec![sizes; self.chunks],
        }
    }

    /// Builds a variable-bitrate video where chunk `k`'s size at every level
    /// is the CBR size scaled by `scale(k)`. Scales must be positive;
    /// values around 1.0 model normal VBR variation (e.g. 0.7..1.3 for
    /// alternating static/dynamic scenes).
    pub fn vbr(self, scale: impl Fn(usize) -> f64) -> Video {
        let chunks = (0..self.chunks)
            .map(|k| {
                let s = scale(k);
                assert!(
                    s > 0.0 && s.is_finite(),
                    "VBR scale must be positive and finite (chunk {k} had {s})"
                );
                ChunkSizes::new(
                    self.ladder
                        .levels()
                        .iter()
                        .map(|r| r * self.chunk_secs * s)
                        .collect(),
                )
                .expect("scaled sizes remain positive and non-decreasing")
            })
            .collect();
        Video {
            ladder: self.ladder,
            chunk_secs: self.chunk_secs,
            chunks,
        }
    }

    /// Builds a VBR video from explicit per-chunk per-level sizes (kilobits).
    /// Returns `None` if dimensions don't match the ladder/chunk count or any
    /// row violates the non-decreasing-size invariant.
    pub fn explicit_sizes(self, sizes: Vec<Vec<f64>>) -> Option<Video> {
        if sizes.len() != self.chunks {
            return None;
        }
        let mut rows = Vec::with_capacity(sizes.len());
        for row in sizes {
            if row.len() != self.ladder.len() {
                return None;
            }
            rows.push(ChunkSizes::new(row)?);
        }
        Some(Video {
            ladder: self.ladder,
            chunk_secs: self.chunk_secs,
            chunks: rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Ladder {
        Ladder::new(vec![350.0, 600.0, 1000.0, 2000.0, 3000.0]).unwrap()
    }

    #[test]
    fn cbr_sizes_are_rate_times_duration() {
        let v = VideoBuilder::new(ladder()).chunks(10).chunk_secs(2.0).cbr();
        assert_eq!(v.num_chunks(), 10);
        assert!((v.chunk_size_kbits(3, LevelIdx(2)) - 2000.0).abs() < 1e-9);
        assert!((v.chunk_effective_kbps(3, LevelIdx(2)) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn vbr_scales_apply_per_chunk() {
        let v = VideoBuilder::new(ladder())
            .chunks(4)
            .chunk_secs(4.0)
            .vbr(|k| if k % 2 == 0 { 0.8 } else { 1.2 });
        assert!((v.chunk_size_kbits(0, LevelIdx(0)) - 350.0 * 4.0 * 0.8).abs() < 1e-9);
        assert!((v.chunk_size_kbits(1, LevelIdx(0)) - 350.0 * 4.0 * 1.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "VBR scale must be positive")]
    fn vbr_rejects_nonpositive_scale() {
        let _ = VideoBuilder::new(ladder()).chunks(2).vbr(|_| 0.0);
    }

    #[test]
    fn explicit_sizes_validated() {
        let b = || VideoBuilder::new(ladder()).chunks(2).chunk_secs(4.0);
        // Wrong chunk count.
        assert!(b().explicit_sizes(vec![vec![1.0; 5]]).is_none());
        // Wrong level count.
        assert!(b().explicit_sizes(vec![vec![1.0; 4], vec![1.0; 5]]).is_none());
        // Decreasing row.
        assert!(b()
            .explicit_sizes(vec![
                vec![5.0, 4.0, 6.0, 7.0, 8.0],
                vec![1.0, 2.0, 3.0, 4.0, 5.0]
            ])
            .is_none());
        // Valid.
        let v = b()
            .explicit_sizes(vec![
                vec![1.0, 2.0, 3.0, 4.0, 5.0],
                vec![2.0, 3.0, 4.0, 5.0, 6.0],
            ])
            .unwrap();
        assert!((v.chunk_size_kbits(1, LevelIdx(4)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let v = VideoBuilder::new(ladder()).chunks(10).cbr();
        let t = v.truncated(3);
        assert_eq!(t.num_chunks(), 3);
        let t2 = v.truncated(99);
        assert_eq!(t2.num_chunks(), 10);
    }

    #[test]
    fn chunk_sizes_reject_bad_rows() {
        assert!(ChunkSizes::new(vec![]).is_none());
        assert!(ChunkSizes::new(vec![0.0]).is_none());
        assert!(ChunkSizes::new(vec![2.0, 1.0]).is_none());
        assert!(ChunkSizes::new(vec![1.0, f64::NAN]).is_none());
        assert!(ChunkSizes::new(vec![1.0, 1.0]).is_some()); // equal is allowed
    }
}
