//! Perceived-quality functions `q(·) : R -> R+`.
//!
//! The paper requires only that `q` be non-decreasing and notes it may depend
//! on device and content (Section 3.1). The evaluation uses the identity
//! function; we also provide the common logarithmic and device-aware shapes
//! used in follow-on work so users can model diminishing returns.

use serde::{Deserialize, Serialize};

/// A non-decreasing map from bitrate (kbps) to perceived quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QualityFn {
    /// `q(R) = R` — the paper's evaluation default.
    Identity,
    /// `q(R) = scale * ln(R / r0)` for `R >= r0`; 0 below. Models strongly
    /// diminishing returns at high bitrates (as on small screens).
    Log {
        /// Bitrate at which quality is zero (kbps).
        r0: f64,
        /// Multiplier applied to the log term.
        scale: f64,
    },
    /// `q(R) = R.min(cap)` — quality saturates at a device-dependent cap
    /// (e.g. a mobile screen that cannot exploit more than ~1 Mbps).
    Saturating {
        /// Bitrate beyond which extra kbps adds no perceived quality.
        cap_kbps: f64,
    },
    /// Piecewise-linear interpolation through `(bitrate, quality)` knots,
    /// clamped outside the knot range. Knots must be sorted by bitrate with
    /// non-decreasing quality.
    Table {
        /// `(kbps, quality)` knots, sorted by kbps.
        knots: Vec<(f64, f64)>,
    },
}

impl QualityFn {
    /// Evaluates `q(bitrate)`.
    pub fn eval(&self, kbps: f64) -> f64 {
        match self {
            QualityFn::Identity => kbps,
            QualityFn::Log { r0, scale } => {
                if kbps <= *r0 {
                    0.0
                } else {
                    scale * (kbps / r0).ln()
                }
            }
            QualityFn::Saturating { cap_kbps } => kbps.min(*cap_kbps),
            QualityFn::Table { knots } => {
                debug_assert!(Self::knots_valid(knots), "invalid quality table");
                match knots.len() {
                    0 => 0.0,
                    1 => knots[0].1,
                    _ => {
                        if kbps <= knots[0].0 {
                            return knots[0].1;
                        }
                        if kbps >= knots[knots.len() - 1].0 {
                            return knots[knots.len() - 1].1;
                        }
                        let i = knots.partition_point(|&(b, _)| b <= kbps) - 1;
                        let (b0, q0) = knots[i];
                        let (b1, q1) = knots[i + 1];
                        q0 + (q1 - q0) * (kbps - b0) / (b1 - b0)
                    }
                }
            }
        }
    }

    /// Checks a knot list is usable: sorted strictly by bitrate,
    /// non-decreasing in quality.
    pub fn knots_valid(knots: &[(f64, f64)]) -> bool {
        knots.windows(2).all(|w| w[1].0 > w[0].0 && w[1].1 >= w[0].1)
            && knots.iter().all(|(b, q)| b.is_finite() && q.is_finite())
    }
}

impl Default for QualityFn {
    fn default() -> Self {
        QualityFn::Identity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        assert_eq!(QualityFn::Identity.eval(1234.5), 1234.5);
    }

    #[test]
    fn log_zero_below_r0_and_increasing_above() {
        let q = QualityFn::Log { r0: 300.0, scale: 100.0 };
        assert_eq!(q.eval(100.0), 0.0);
        assert_eq!(q.eval(300.0), 0.0);
        assert!(q.eval(600.0) > 0.0);
        assert!(q.eval(3000.0) > q.eval(600.0));
    }

    #[test]
    fn saturating_caps() {
        let q = QualityFn::Saturating { cap_kbps: 1000.0 };
        assert_eq!(q.eval(600.0), 600.0);
        assert_eq!(q.eval(2000.0), 1000.0);
        assert_eq!(q.eval(3000.0), 1000.0);
    }

    #[test]
    fn table_interpolates_and_clamps() {
        let q = QualityFn::Table {
            knots: vec![(350.0, 1.0), (1000.0, 3.0), (3000.0, 4.0)],
        };
        assert_eq!(q.eval(100.0), 1.0); // clamp left
        assert_eq!(q.eval(3500.0), 4.0); // clamp right
        assert!((q.eval(675.0) - 2.0).abs() < 1e-9); // midpoint of first segment
        assert!((q.eval(2000.0) - 3.5).abs() < 1e-9); // midpoint of second
        assert_eq!(q.eval(1000.0), 3.0); // exact knot
    }

    #[test]
    fn table_degenerate_sizes() {
        assert_eq!(QualityFn::Table { knots: vec![] }.eval(500.0), 0.0);
        assert_eq!(QualityFn::Table { knots: vec![(100.0, 7.0)] }.eval(5.0), 7.0);
    }

    #[test]
    fn knot_validation() {
        assert!(QualityFn::knots_valid(&[(1.0, 1.0), (2.0, 1.0)]));
        assert!(!QualityFn::knots_valid(&[(2.0, 1.0), (1.0, 2.0)])); // unsorted
        assert!(!QualityFn::knots_valid(&[(1.0, 2.0), (2.0, 1.0)])); // decreasing q
        assert!(!QualityFn::knots_valid(&[(1.0, f64::NAN)]));
    }

    #[test]
    fn all_variants_non_decreasing() {
        let fns = [
            QualityFn::Identity,
            QualityFn::Log { r0: 200.0, scale: 50.0 },
            QualityFn::Saturating { cap_kbps: 1500.0 },
            QualityFn::Table {
                knots: vec![(350.0, 0.0), (600.0, 1.0), (3000.0, 2.0)],
            },
        ];
        for q in &fns {
            let mut prev = f64::NEG_INFINITY;
            for r in (100..=4000).step_by(50) {
                let v = q.eval(r as f64);
                assert!(v >= prev - 1e-12, "{q:?} decreased at {r}");
                prev = v;
            }
        }
    }
}
