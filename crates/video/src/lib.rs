//! Video model and QoE objective for HTTP adaptive streaming.
//!
//! This crate implements the video-side abstractions of the control-theoretic
//! model in *Yin et al., "A Control-Theoretic Approach for Dynamic Adaptive
//! Video Streaming over HTTP" (SIGCOMM 2015)*, Section 3:
//!
//! * [`Ladder`] — the discrete set of encoded bitrate levels `R`;
//! * [`Video`] — a sequence of `K` chunks of `L` seconds each, with per-chunk
//!   per-level sizes `d_k(R_k)` (constant-bitrate or variable-bitrate);
//! * [`QualityFn`] — the non-decreasing perceived-quality map `q(·)`;
//! * [`QoeWeights`] / [`QoeBreakdown`] — the weighted QoE objective of
//!   Eq. (5), with the paper's three preference presets.
//!
//! Units used throughout the workspace: bitrates and throughputs in **kbps**,
//! chunk sizes in **kilobits**, time in **seconds**. With those units a chunk
//! of size `d` kilobits downloads in `d / C` seconds at throughput `C` kbps,
//! exactly matching the paper's `d_k(R_k)/C_k`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod ladder;
pub mod live;
pub mod presets;
pub mod qoe;
pub mod quality;

pub use chunk::{ChunkSizes, Video, VideoBuilder};
pub use ladder::{Ladder, LevelIdx};
pub use live::{LiveSchedule, LiveState};
pub use qoe::{QoeBreakdown, QoePreference, QoeWeights};
pub use quality::QualityFn;

/// Duration in seconds of one chunk of the paper's reference "Envivio" test
/// video (65 chunks x 4 s = 260 s).
pub const ENVIVIO_CHUNK_SECS: f64 = 4.0;

/// Number of chunks in the reference "Envivio" test video.
pub const ENVIVIO_CHUNKS: usize = 65;

/// The paper's reference bitrate ladder in kbps (240p..1080p per the YouTube
/// recommended settings cited in Section 7.1.1).
pub const ENVIVIO_LADDER_KBPS: [f64; 5] = [350.0, 600.0, 1000.0, 2000.0, 3000.0];

/// Default maximum playback buffer size used in the evaluation (seconds).
pub const DEFAULT_BUFFER_MAX_SECS: f64 = 30.0;

/// Builds the paper's reference test video: 65 chunks of 4 s, CBR-encoded at
/// {350, 600, 1000, 2000, 3000} kbps.
pub fn envivio_video() -> Video {
    VideoBuilder::new(Ladder::new(ENVIVIO_LADDER_KBPS.to_vec()).expect("static ladder is valid"))
        .chunks(ENVIVIO_CHUNKS)
        .chunk_secs(ENVIVIO_CHUNK_SECS)
        .cbr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envivio_matches_paper_parameters() {
        let v = envivio_video();
        assert_eq!(v.num_chunks(), 65);
        assert!((v.chunk_secs() - 4.0).abs() < 1e-12);
        assert!((v.duration_secs() - 260.0).abs() < 1e-9);
        assert_eq!(v.ladder().len(), 5);
        assert!((v.ladder().kbps(LevelIdx(0)) - 350.0).abs() < 1e-12);
        assert!((v.ladder().kbps(LevelIdx(4)) - 3000.0).abs() < 1e-12);
    }

    #[test]
    fn envivio_cbr_sizes() {
        let v = envivio_video();
        // CBR: d_k(R) = L * R for every chunk.
        for k in 0..v.num_chunks() {
            for (i, &r) in ENVIVIO_LADDER_KBPS.iter().enumerate() {
                let d = v.chunk_size_kbits(k, LevelIdx(i));
                assert!((d - 4.0 * r).abs() < 1e-9, "chunk {k} level {i}");
            }
        }
    }
}
