//! The QoE objective of Eq. (5):
//!
//! ```text
//! QoE_1^K = sum_k q(R_k)
//!         - lambda * sum_k |q(R_{k+1}) - q(R_k)|
//!         - mu     * sum_k (d_k(R_k)/C_k - B_k)_+     (rebuffer seconds)
//!         - mu_s   * T_s                              (startup delay)
//! ```
//!
//! [`QoeWeights`] holds `(lambda, mu, mu_s)` plus the quality function;
//! [`QoeBreakdown`] accumulates the four terms for a played session and can
//! report the total and each component separately (the per-factor CDFs of
//! Figures 9 and 10 come straight from these components).

use crate::quality::QualityFn;
use serde::{Deserialize, Serialize};

/// `skip_serializing_if` helper: live-only fields are omitted at their 0.0
/// default so VOD serializations stay byte-identical to pre-live output.
fn is_zero(v: &f64) -> bool {
    *v == 0.0
}

/// The paper's three user-preference presets (Section 7.3, Figure 11b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QoePreference {
    /// `lambda = 1, mu = mu_s = 3000`.
    Balanced,
    /// `lambda = 3, mu = mu_s = 3000` — penalize quality switches harder.
    AvoidInstability,
    /// `lambda = 1, mu = mu_s = 6000` — penalize rebuffering harder.
    AvoidRebuffering,
}

impl QoePreference {
    /// All presets, in the order the paper plots them.
    pub const ALL: [QoePreference; 3] = [
        QoePreference::Balanced,
        QoePreference::AvoidInstability,
        QoePreference::AvoidRebuffering,
    ];

    /// Human-readable label matching the paper's x-axis.
    pub fn label(self) -> &'static str {
        match self {
            QoePreference::Balanced => "Balanced",
            QoePreference::AvoidInstability => "Avoid Instability",
            QoePreference::AvoidRebuffering => "Avoid Rebuffering",
        }
    }
}

/// Weights of the QoE objective plus the quality function `q(·)`.
///
/// ```
/// use abr_video::QoeWeights;
///
/// let w = QoeWeights::balanced(); // λ = 1, µ = µ_s = 3000
/// // Three chunks at 1000/2000/1000 kbps, 0.5 s rebuffer on the second,
/// // 2 s startup delay:
/// let score = w.session_score(&[1000.0, 2000.0, 1000.0], &[0.0, 0.5, 0.0], 2.0);
/// // 4000 quality − 2000 switching − 1500 rebuffer − 6000 startup:
/// assert!((score.qoe - (-5500.0)).abs() < 1e-9);
/// assert_eq!(score.switches, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QoeWeights {
    /// Penalty per unit of quality change between consecutive chunks.
    pub lambda: f64,
    /// Penalty per second of rebuffering (quality units / second).
    pub mu: f64,
    /// Penalty per second of startup delay (quality units / second).
    pub mu_s: f64,
    /// Penalty per rebuffering *event* — the paper's footnote 3 variant
    /// ("alternatively, one can also consider the number of rebuffering
    /// events"). Zero in every paper preset; combine with `mu` freely.
    #[serde(default)]
    pub mu_event: f64,
    /// Penalty per second of latency behind the live edge, charged per
    /// chunk on the latency held while that chunk was obtained
    /// (`−w_lat · (live_edge − playhead)` in the live QoE vector). Zero in
    /// every VOD preset and a strict no-op outside live mode. Skipped when
    /// zero so VOD serializations are byte-identical to pre-live output.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub w_lat: f64,
    /// The perceived-quality map.
    pub quality: QualityFn,
}

impl QoeWeights {
    /// The paper's default: `lambda = 1`, `mu = mu_s = 3000`, identity `q`.
    /// One second of rebuffering costs as much as lowering one chunk by
    /// 3000 kbps.
    pub fn balanced() -> Self {
        Self::preset(QoePreference::Balanced)
    }

    /// Builds weights for one of the paper's presets (identity `q`).
    pub fn preset(p: QoePreference) -> Self {
        let (lambda, mu, mu_s) = match p {
            QoePreference::Balanced => (1.0, 3000.0, 3000.0),
            QoePreference::AvoidInstability => (3.0, 3000.0, 3000.0),
            QoePreference::AvoidRebuffering => (1.0, 6000.0, 6000.0),
        };
        Self {
            lambda,
            mu,
            mu_s,
            mu_event: 0.0,
            w_lat: 0.0,
            quality: QualityFn::Identity,
        }
    }

    /// Evaluates `q(·)` for a bitrate in kbps.
    #[inline]
    pub fn q(&self, kbps: f64) -> f64 {
        self.quality.eval(kbps)
    }

    /// Raw per-chunk QoE contribution from already-computed pieces: quality
    /// `q`, absolute quality change `switch`, and rebuffering. The inner
    /// loop of every optimizer (MPC's plan search, the offline DP) calls
    /// this so all of them score exactly the same objective.
    #[inline]
    pub fn chunk_contribution(&self, q: f64, switch: f64, rebuffer_secs: f64) -> f64 {
        let event = if rebuffer_secs > 0.0 { self.mu_event } else { 0.0 };
        q - self.lambda * switch - self.mu * rebuffer_secs - event
    }

    /// QoE contribution of downloading one chunk: quality gain, minus switch
    /// penalty against the previous chunk's bitrate (`None` for the first
    /// chunk of the video), minus rebuffer penalty.
    pub fn chunk_score(&self, kbps: f64, prev_kbps: Option<f64>, rebuffer_secs: f64) -> f64 {
        let q = self.q(kbps);
        let switch = prev_kbps.map_or(0.0, |p| (q - self.q(p)).abs());
        self.chunk_contribution(q, switch, rebuffer_secs)
    }

    /// Scores a complete session described by per-chunk bitrates (kbps),
    /// per-chunk rebuffer seconds, and the startup delay.
    ///
    /// Panics if `rebuffer_secs` is non-empty and shorter than `bitrates`.
    pub fn session_score(
        &self,
        bitrates_kbps: &[f64],
        rebuffer_secs: &[f64],
        startup_secs: f64,
    ) -> QoeBreakdown {
        let mut b = QoeBreakdown::default();
        for (k, &r) in bitrates_kbps.iter().enumerate() {
            let rebuf = if rebuffer_secs.is_empty() {
                0.0
            } else {
                rebuffer_secs[k]
            };
            b.push_chunk(self, r, rebuf);
        }
        b.set_startup(self, startup_secs);
        b
    }
}

impl Default for QoeWeights {
    fn default() -> Self {
        Self::balanced()
    }
}

/// Accumulated QoE for a (possibly in-progress) session, split into the four
/// terms of Eq. (5). All stored in quality units; totals are exact sums, not
/// averages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QoeBreakdown {
    /// `sum_k q(R_k)`.
    pub total_quality: f64,
    /// `sum_k |q(R_{k+1}) - q(R_k)|` (unweighted).
    pub total_quality_change: f64,
    /// Total rebuffering seconds (unweighted).
    pub total_rebuffer_secs: f64,
    /// Startup delay in seconds (unweighted).
    pub startup_secs: f64,
    /// Number of chunks accumulated.
    pub chunks: usize,
    /// Number of chunk-to-chunk transitions that changed bitrate.
    pub switches: usize,
    /// Number of chunks that incurred any rebuffering.
    pub rebuffer_events: usize,
    /// Sum of chunk bitrates in kbps (for average-bitrate reporting).
    pub sum_bitrate_kbps: f64,
    /// Sum of |R_{k+1} - R_k| in kbps (for Figures 9/10's "average bitrate
    /// change per chunk").
    pub sum_bitrate_change_kbps: f64,
    /// Sum of per-chunk live-edge latencies in seconds (unweighted). Zero
    /// for VOD sessions, where [`QoeBreakdown::push_latency`] is never
    /// called; skipped when zero so VOD serializations are byte-identical
    /// to pre-live output.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub total_latency_secs: f64,
    /// Weighted total: quality - lambda*change - mu*rebuffer - mu_s*startup
    /// (minus `w_lat` times the per-chunk latency sum in live mode).
    pub qoe: f64,
    last_q: Option<f64>,
    last_kbps: Option<f64>,
}

impl QoeBreakdown {
    /// Adds one downloaded chunk to the running score.
    pub fn push_chunk(&mut self, w: &QoeWeights, kbps: f64, rebuffer_secs: f64) {
        debug_assert!(rebuffer_secs >= 0.0, "negative rebuffer time");
        let q = w.q(kbps);
        let dq = self.last_q.map_or(0.0, |p| (q - p).abs());
        let dr = self.last_kbps.map_or(0.0, |p| (kbps - p).abs());
        if dr > 1e-9 {
            self.switches += 1;
        }
        self.total_quality += q;
        self.total_quality_change += dq;
        self.total_rebuffer_secs += rebuffer_secs;
        self.sum_bitrate_kbps += kbps;
        self.sum_bitrate_change_kbps += dr;
        let event = if rebuffer_secs > 0.0 {
            self.rebuffer_events += 1;
            w.mu_event
        } else {
            0.0
        };
        self.qoe += q - w.lambda * dq - w.mu * rebuffer_secs - event;
        self.chunks += 1;
        self.last_q = Some(q);
        self.last_kbps = Some(kbps);
    }

    /// Adds rebuffering that is not attached to a delivered chunk — the
    /// stall a player sits through before giving up on a session, for
    /// example. Scores the `mu` term (plus the per-event penalty) with no
    /// quality contribution; a zero duration is a no-op.
    pub fn push_rebuffer(&mut self, w: &QoeWeights, rebuffer_secs: f64) {
        debug_assert!(rebuffer_secs >= 0.0, "negative rebuffer time");
        if rebuffer_secs <= 0.0 {
            return;
        }
        self.total_rebuffer_secs += rebuffer_secs;
        self.rebuffer_events += 1;
        self.qoe -= w.mu * rebuffer_secs + w.mu_event;
    }

    /// Adds one chunk's live-edge latency to the running score: the
    /// latency term `−w_lat · latency` of the live QoE vector, charged on
    /// the latency held when the chunk was obtained. Only live sessions
    /// call this — VOD accumulation never touches the latency fields, so
    /// VOD scores stay bit-identical regardless of `w_lat`.
    pub fn push_latency(&mut self, w: &QoeWeights, latency_secs: f64) {
        debug_assert!(latency_secs >= 0.0, "negative live latency");
        self.total_latency_secs += latency_secs;
        self.qoe -= w.w_lat * latency_secs;
    }

    /// Sets the startup delay term (replaces any previous value).
    pub fn set_startup(&mut self, w: &QoeWeights, startup_secs: f64) {
        debug_assert!(startup_secs >= 0.0, "negative startup time");
        self.qoe += w.mu_s * self.startup_secs; // undo previous
        self.startup_secs = startup_secs;
        self.qoe -= w.mu_s * startup_secs;
    }

    /// Average per-chunk bitrate in kbps (0 if no chunks).
    pub fn avg_bitrate_kbps(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.sum_bitrate_kbps / self.chunks as f64
        }
    }

    /// Average per-transition bitrate change in kbps (0 if fewer than two
    /// chunks). This is the x-axis of the middle panels of Figures 9 and 10.
    pub fn avg_bitrate_change_kbps(&self) -> f64 {
        if self.chunks < 2 {
            0.0
        } else {
            self.sum_bitrate_change_kbps / (self.chunks - 1) as f64
        }
    }

    /// The QoE total excluding the startup term (used by Figure 11d, which
    /// studies fixed startup delays).
    pub fn qoe_excluding_startup(&self, w: &QoeWeights) -> f64 {
        self.qoe + w.mu_s * self.startup_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let b = QoeWeights::preset(QoePreference::Balanced);
        assert_eq!((b.lambda, b.mu, b.mu_s), (1.0, 3000.0, 3000.0));
        let i = QoeWeights::preset(QoePreference::AvoidInstability);
        assert_eq!((i.lambda, i.mu, i.mu_s), (3.0, 3000.0, 3000.0));
        let r = QoeWeights::preset(QoePreference::AvoidRebuffering);
        assert_eq!((r.lambda, r.mu, r.mu_s), (1.0, 6000.0, 6000.0));
    }

    #[test]
    fn session_score_matches_hand_computation() {
        let w = QoeWeights::balanced();
        // Bitrates 1000, 2000, 1000; rebuffer 0.5s on chunk 2; startup 2s.
        let b = w.session_score(&[1000.0, 2000.0, 1000.0], &[0.0, 0.5, 0.0], 2.0);
        let expect_quality = 4000.0;
        let expect_change = 2000.0;
        let expect = expect_quality - 1.0 * expect_change - 3000.0 * 0.5 - 3000.0 * 2.0;
        assert!((b.qoe - expect).abs() < 1e-9, "{} vs {expect}", b.qoe);
        assert_eq!(b.switches, 2);
        assert!((b.avg_bitrate_kbps() - 4000.0 / 3.0).abs() < 1e-9);
        assert!((b.avg_bitrate_change_kbps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn no_switch_penalty_for_first_chunk() {
        let w = QoeWeights::balanced();
        let one = w.session_score(&[3000.0], &[0.0], 0.0);
        assert!((one.qoe - 3000.0).abs() < 1e-9);
        assert_eq!(one.switches, 0);
    }

    #[test]
    fn chunk_score_consistent_with_accumulator() {
        let w = QoeWeights::preset(QoePreference::AvoidInstability);
        let mut acc = QoeBreakdown::default();
        acc.push_chunk(&w, 600.0, 0.0);
        acc.push_chunk(&w, 2000.0, 1.0);
        let manual = w.chunk_score(600.0, None, 0.0) + w.chunk_score(2000.0, Some(600.0), 1.0);
        assert!((acc.qoe - manual).abs() < 1e-9);
    }

    #[test]
    fn set_startup_is_idempotent_on_replacement() {
        let w = QoeWeights::balanced();
        let mut acc = QoeBreakdown::default();
        acc.push_chunk(&w, 1000.0, 0.0);
        acc.set_startup(&w, 5.0);
        acc.set_startup(&w, 1.0);
        assert!((acc.qoe - (1000.0 - 3000.0)).abs() < 1e-9);
        assert!((acc.startup_secs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qoe_excluding_startup_removes_only_startup_term() {
        let w = QoeWeights::balanced();
        let b = w.session_score(&[1000.0, 1000.0], &[0.0, 0.0], 3.0);
        assert!((b.qoe_excluding_startup(&w) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn rebuffering_dominates_with_large_mu() {
        let w = QoeWeights::preset(QoePreference::AvoidRebuffering);
        let smooth = w.session_score(&[350.0, 350.0], &[0.0, 0.0], 0.0);
        let risky = w.session_score(&[3000.0, 3000.0], &[0.0, 2.0], 0.0);
        assert!(smooth.qoe > risky.qoe);
    }

    #[test]
    fn rebuffer_event_penalty_counts_events_not_seconds() {
        let mut w = QoeWeights::balanced();
        w.mu = 0.0; // isolate the per-event term
        w.mu_event = 500.0;
        // Two short events cost twice one long event of the same total time.
        let two_events = w.session_score(&[1000.0, 1000.0, 1000.0], &[0.5, 0.0, 0.5], 0.0);
        let one_event = w.session_score(&[1000.0, 1000.0, 1000.0], &[1.0, 0.0, 0.0], 0.0);
        assert!((two_events.qoe - (3000.0 - 1000.0)).abs() < 1e-9);
        assert!((one_event.qoe - (3000.0 - 500.0)).abs() < 1e-9);
        assert_eq!(two_events.rebuffer_events, 2);
        assert_eq!(one_event.rebuffer_events, 1);
    }

    #[test]
    fn paper_presets_have_zero_event_penalty() {
        for p in QoePreference::ALL {
            assert_eq!(QoeWeights::preset(p).mu_event, 0.0);
        }
    }

    #[test]
    fn push_rebuffer_scores_only_the_rebuffer_terms() {
        let mut w = QoeWeights::balanced();
        w.mu_event = 100.0;
        let mut acc = QoeBreakdown::default();
        acc.push_chunk(&w, 1000.0, 0.0);
        acc.push_rebuffer(&w, 2.0);
        assert!((acc.qoe - (1000.0 - 3000.0 * 2.0 - 100.0)).abs() < 1e-9);
        assert_eq!(acc.rebuffer_events, 1);
        assert!((acc.total_rebuffer_secs - 2.0).abs() < 1e-12);
        // Quality accounting untouched: still one chunk, no switches.
        assert_eq!(acc.chunks, 1);
        // Zero duration is a no-op, not an event.
        acc.push_rebuffer(&w, 0.0);
        assert_eq!(acc.rebuffer_events, 1);
    }

    #[test]
    fn chunk_contribution_matches_chunk_score() {
        let mut w = QoeWeights::balanced();
        w.mu_event = 123.0;
        let a = w.chunk_score(2000.0, Some(1000.0), 0.7);
        let b = w.chunk_contribution(2000.0, 1000.0, 0.7);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn push_latency_charges_only_the_latency_term() {
        let mut w = QoeWeights::balanced();
        w.w_lat = 50.0;
        let mut acc = QoeBreakdown::default();
        acc.push_chunk(&w, 1000.0, 0.0);
        acc.push_latency(&w, 6.0);
        acc.push_chunk(&w, 1000.0, 0.0);
        acc.push_latency(&w, 8.0);
        assert!((acc.qoe - (2000.0 - 50.0 * 14.0)).abs() < 1e-9);
        assert!((acc.total_latency_secs - 14.0).abs() < 1e-12);
        // Quality/rebuffer accounting untouched.
        assert_eq!(acc.chunks, 2);
        assert_eq!(acc.rebuffer_events, 0);
    }

    #[test]
    fn zero_latency_weight_keeps_vod_scores_identical() {
        let w = QoeWeights::balanced();
        assert_eq!(w.w_lat, 0.0);
        let mut plain = QoeBreakdown::default();
        plain.push_chunk(&w, 2000.0, 0.3);
        let mut live = plain;
        live.push_latency(&w, 12.0);
        // At w_lat = 0 the weighted total is untouched bit-for-bit.
        assert_eq!(plain.qoe.to_bits(), live.qoe.to_bits());
        assert!((live.total_latency_secs - 12.0).abs() < 1e-12);
    }

    #[test]
    fn quality_fn_is_respected() {
        let w = QoeWeights {
            lambda: 1.0,
            mu: 3000.0,
            mu_s: 3000.0,
            mu_event: 0.0,
            w_lat: 0.0,
            quality: QualityFn::Saturating { cap_kbps: 1000.0 },
        };
        // 2000 vs 3000 kbps look identical under the cap: no switch penalty.
        let b = w.session_score(&[2000.0, 3000.0], &[0.0, 0.0], 0.0);
        assert!((b.qoe - 2000.0).abs() < 1e-9);
        assert!((b.total_quality_change - 0.0).abs() < 1e-12);
        // ...but bitrate-change accounting still sees the raw switch.
        assert_eq!(b.switches, 1);
    }
}
