//! MPD manifest round-trip and rejection coverage.
//!
//! `abr-serve` registers sessions by shipping the video as a manifest, so
//! `parse(generate(v))` must reproduce every chunk size bit-for-bit — the
//! remote MPC solve has to see the exact floats the in-process twin sees.

use abr_net::mpd::{generate, parse, MpdError};
use abr_video::{envivio_video, presets, Ladder, LevelIdx, Video, VideoBuilder};

use proptest::prelude::*;

fn assert_bit_identical(v: &Video) {
    let back = parse(&generate(v)).expect("generated manifest must parse");
    assert_eq!(back.num_chunks(), v.num_chunks());
    assert_eq!(back.ladder().len(), v.ladder().len());
    assert_eq!(back.chunk_secs().to_bits(), v.chunk_secs().to_bits());
    for l in 0..v.ladder().len() {
        for k in 0..v.num_chunks() {
            assert_eq!(
                back.chunk_size_kbits(k, LevelIdx(l)).to_bits(),
                v.chunk_size_kbits(k, LevelIdx(l)).to_bits(),
                "chunk {k} level {l}"
            );
        }
    }
}

#[test]
fn envivio_round_trips_exactly() {
    assert_bit_identical(&envivio_video());
}

#[test]
fn presets_round_trip_exactly() {
    assert_bit_identical(&presets::hd_catalogue());
    assert_bit_identical(&presets::low_latency_live());
    assert_bit_identical(&presets::vbr_film());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_vbr_videos_round_trip_exactly(
        base in 200.0f64..4000.0,
        steps in proptest::collection::vec(1.05f64..2.0, 1..5),
        chunks in 1usize..40,
        chunk_secs in 0.5f64..10.0,
        wobble in 0.5f64..1.5,
    ) {
        let mut kbps = vec![base];
        for s in &steps {
            kbps.push(kbps.last().unwrap() * s);
        }
        let ladder = Ladder::new(kbps).unwrap();
        let v = VideoBuilder::new(ladder)
            .chunks(chunks)
            .chunk_secs(chunk_secs)
            .vbr(move |k| 0.6 + wobble * 0.4 * ((k * 2654435761) % 97) as f64 / 97.0);
        assert_bit_identical(&v);
    }
}

#[test]
fn malformed_manifests_are_rejected() {
    // Not an MPD at all.
    assert_eq!(parse("hello world").unwrap_err(), MpdError::MissingTag("MPD"));
    assert_eq!(parse("<foo/>").unwrap_err(), MpdError::MissingTag("MPD"));
    // MPD but no adaptation set.
    assert_eq!(
        parse("<MPD></MPD>").unwrap_err(),
        MpdError::MissingTag("AdaptationSet")
    );
    // Missing required attributes.
    assert_eq!(
        parse("<MPD><AdaptationSet segmentCount=\"2\"></AdaptationSet></MPD>").unwrap_err(),
        MpdError::MissingAttr("segmentDuration")
    );
    assert_eq!(
        parse("<MPD><AdaptationSet segmentDuration=\"4\"></AdaptationSet></MPD>").unwrap_err(),
        MpdError::MissingAttr("segmentCount")
    );
    // Zero / non-positive dimensions.
    assert!(matches!(
        parse("<MPD><AdaptationSet segmentDuration=\"4\" segmentCount=\"0\"></AdaptationSet></MPD>"),
        Err(MpdError::BadValue(_))
    ));
    assert!(matches!(
        parse("<MPD><AdaptationSet segmentDuration=\"-1\" segmentCount=\"2\"></AdaptationSet></MPD>"),
        Err(MpdError::BadValue(_))
    ));
    // Unparseable numbers.
    assert!(matches!(
        parse(
            "<MPD><AdaptationSet segmentDuration=\"4\" segmentCount=\"1\">\
             <Representation id=\"0\" bandwidth=\"fast\">\
             <SegmentSizes>100</SegmentSizes></Representation></AdaptationSet></MPD>"
        ),
        Err(MpdError::BadValue(_))
    ));
    assert!(matches!(
        parse(
            "<MPD><AdaptationSet segmentDuration=\"4\" segmentCount=\"1\">\
             <Representation id=\"0\" bandwidth=\"500000\">\
             <SegmentSizes>big</SegmentSizes></Representation></AdaptationSet></MPD>"
        ),
        Err(MpdError::BadValue(_))
    ));
    // Unterminated SegmentSizes.
    assert!(matches!(
        parse(
            "<MPD><AdaptationSet segmentDuration=\"4\" segmentCount=\"1\">\
             <Representation id=\"0\" bandwidth=\"500000\">\
             <SegmentSizes>100</Representation></AdaptationSet></MPD>"
        ),
        Err(MpdError::MissingTag("/SegmentSizes"))
    ));
    // Size-count mismatch across representations.
    assert!(matches!(
        parse(
            "<MPD><AdaptationSet segmentDuration=\"4\" segmentCount=\"2\">\
             <Representation id=\"0\" bandwidth=\"500000\">\
             <SegmentSizes>100 200 300</SegmentSizes></Representation></AdaptationSet></MPD>"
        ),
        Err(MpdError::Inconsistent(_))
    ));
    // Ladder must be strictly increasing.
    assert!(matches!(
        parse(
            "<MPD><AdaptationSet segmentDuration=\"4\" segmentCount=\"1\">\
             <Representation id=\"0\" bandwidth=\"900000\">\
             <SegmentSizes>3600</SegmentSizes></Representation>\
             <Representation id=\"1\" bandwidth=\"500000\">\
             <SegmentSizes>2000</SegmentSizes></Representation></AdaptationSet></MPD>"
        ),
        Err(MpdError::Inconsistent(_))
    ));
}
