//! Differential determinism properties of the fault-injection layer.
//!
//! Two guarantees carry the whole robustness methodology:
//!
//! 1. **Reproducibility** — the same fault seed replays the exact same
//!    session, down to the bit pattern of every float in every record.
//! 2. **Invisibility when disabled** — an armed-but-never-firing fault
//!    layer is byte-identical to the fault-free code path, so enabling
//!    the feature cannot perturb any existing result.

use abr_baselines::{BufferBased, RateBased};
use abr_net::{
    run_emulated_session, run_emulated_session_faulted, FaultConfig, FaultPlan, NetConfig,
    RetryPolicy,
};
use abr_predictor::HarmonicMean;
use abr_sim::{SessionResult, SimConfig};
use abr_trace::Dataset;
use abr_video::envivio_video;
use proptest::prelude::*;

fn faulted_run(trace_seed: u64, fault_seed: u64, rate: f64, jitter: f64) -> SessionResult {
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let trace = Dataset::Fcc.generate(trace_seed, 1).remove(0);
    let mut config = FaultConfig::uniform(rate);
    config.jitter_max_secs = jitter;
    let mut c = BufferBased::paper_default();
    run_emulated_session_faulted(
        &mut c,
        HarmonicMean::paper_default(),
        &trace,
        &video,
        &cfg,
        &NetConfig::typical(),
        FaultPlan::new(fault_seed, config),
        &RetryPolicy::hostile(),
    )
}

/// Every bit of observable session state, for exact comparison.
fn fingerprint(r: &SessionResult) -> Vec<u64> {
    let mut v = vec![
        r.qoe.qoe.to_bits(),
        r.startup_secs.to_bits(),
        r.total_secs.to_bits(),
        r.records.len() as u64,
        u64::from(r.aborted),
        r.abort_secs.to_bits(),
        u64::from(r.abort_retries),
        r.abort_wasted_kbits.to_bits(),
    ];
    for rec in &r.records {
        v.push(rec.level.get() as u64);
        v.push(rec.download_secs.to_bits());
        v.push(rec.throughput_kbps.to_bits());
        v.push(rec.rebuffer_secs.to_bits());
        v.push(u64::from(rec.retries));
        v.push(rec.wasted_kbits.to_bits());
        v.push(rec.fault_delay_secs.to_bits());
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same (trace, fault seed, rate) replays bit-identically.
    #[test]
    fn same_seed_replays_bit_identically(
        trace_seed in 0u64..1000,
        fault_seed in any::<u64>(),
        rate in 0.0f64..0.5,
    ) {
        let a = faulted_run(trace_seed, fault_seed, rate, 0.03);
        let b = faulted_run(trace_seed, fault_seed, rate, 0.03);
        prop_assert!(a.qoe.qoe.is_finite());
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// A disabled plan under a no-timeout policy is byte-identical to the
    /// plain fault-free player, whatever the fault seed.
    #[test]
    fn disabled_plan_matches_fault_free_path(
        trace_seed in 0u64..1000,
        fault_seed in any::<u64>(),
    ) {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Dataset::Fcc.generate(trace_seed, 1).remove(0);
        let mut a = RateBased::paper_default();
        let plain = run_emulated_session(
            &mut a,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::typical(),
        );
        let mut b = RateBased::paper_default();
        let armed = run_emulated_session_faulted(
            &mut b,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::typical(),
            FaultPlan::new(fault_seed, FaultConfig::disabled()),
            &RetryPolicy::no_timeout(),
        );
        prop_assert_eq!(fingerprint(&plain), fingerprint(&armed));
    }
}
