//! Differential proptest: the fleet-scale multiplayer engine must be
//! bit-identical to the preserved reference loop for small N — same seeds,
//! same schedules, same floats — so scaling the scheduler can't silently
//! move any published multiplayer number.
//!
//! Every generated scenario (1..=8 players, mixed controllers, staggered
//! joins, multi-segment traces, fault layer on or off) runs through both
//! `abr_net::run_shared_session_faulted` (the indexed engine) and
//! `abr_net::multiplayer::reference::run_shared_session_faulted` (the
//! original O(n)-per-event loop) and compares outcomes field-for-field
//! with `to_bits` on every float.

use abr_core::{BitrateController, Mpc};
use abr_baselines::{BufferBased, Festive, RateBased};
use abr_net::multiplayer::reference;
use abr_net::{
    run_shared_session_faulted, FaultConfig, RetryPolicy, SharedFaults, SharedOutcome,
    SharedPlayer,
};
use abr_predictor::HarmonicMean;
use abr_sim::SimConfig;
use abr_trace::Trace;
use abr_video::envivio_video;
use proptest::prelude::*;

fn controller(kind: u8) -> Box<dyn BitrateController> {
    match kind % 4 {
        0 => Box::new(BufferBased::paper_default()),
        1 => Box::new(RateBased::paper_default()),
        2 => Box::new(Festive::paper_default()),
        _ => Box::new(Mpc::robust()),
    }
}

fn players(specs: &[(u8, f64)]) -> Vec<SharedPlayer> {
    specs
        .iter()
        .map(|&(kind, offset)| SharedPlayer {
            controller: controller(kind),
            predictor: Box::new(HarmonicMean::paper_default()),
            start_offset_secs: offset,
        })
        .collect()
}

/// Field-for-field bit comparison of two outcomes.
fn assert_bit_identical(fast: &SharedOutcome, slow: &SharedOutcome) {
    assert_eq!(fast.sessions.len(), slow.sessions.len());
    assert_eq!(fast.span_secs.to_bits(), slow.span_secs.to_bits(), "span");
    assert_eq!(
        fast.delivered_kbits.to_bits(),
        slow.delivered_kbits.to_bits(),
        "delivered"
    );
    assert_eq!(
        fast.bitrate_fairness.to_bits(),
        slow.bitrate_fairness.to_bits()
    );
    assert_eq!(fast.qoe_fairness.to_bits(), slow.qoe_fairness.to_bits());
    assert_eq!(fast.utilization.to_bits(), slow.utilization.to_bits());
    assert_eq!(fast.oscillations, slow.oscillations);
    for (ia, ib) in fast.instabilities.iter().zip(&slow.instabilities) {
        assert_eq!(ia.to_bits(), ib.to_bits());
    }
    for (a, b) in fast.sessions.iter().zip(&slow.sessions) {
        assert_eq!(a.algorithm, b.algorithm);
        assert_eq!(a.qoe.qoe.to_bits(), b.qoe.qoe.to_bits());
        assert_eq!(a.startup_secs.to_bits(), b.startup_secs.to_bits());
        assert_eq!(a.aborted, b.aborted);
        assert_eq!(a.abort_secs.to_bits(), b.abort_secs.to_bits());
        assert_eq!(a.abort_retries, b.abort_retries);
        assert_eq!(
            a.abort_wasted_kbits.to_bits(),
            b.abort_wasted_kbits.to_bits()
        );
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.index, rb.index);
            assert_eq!(ra.level, rb.level);
            assert_eq!(ra.start_secs.to_bits(), rb.start_secs.to_bits());
            assert_eq!(ra.download_secs.to_bits(), rb.download_secs.to_bits());
            assert_eq!(ra.rebuffer_secs.to_bits(), rb.rebuffer_secs.to_bits());
            assert_eq!(ra.wait_secs.to_bits(), rb.wait_secs.to_bits());
            assert_eq!(
                ra.buffer_after_secs.to_bits(),
                rb.buffer_after_secs.to_bits()
            );
            assert_eq!(
                ra.throughput_kbps.to_bits(),
                rb.throughput_kbps.to_bits()
            );
            assert_eq!(
                ra.prediction_kbps.map(f64::to_bits),
                rb.prediction_kbps.map(f64::to_bits)
            );
            assert_eq!(ra.retries, rb.retries);
            assert_eq!(ra.wasted_kbits.to_bits(), rb.wasted_kbits.to_bits());
            assert_eq!(
                ra.fault_delay_secs.to_bits(),
                rb.fault_delay_secs.to_bits()
            );
        }
    }
}

fn check(specs: &[(u8, f64)], segments: &[(f64, f64)], faults: Option<&SharedFaults>) {
    let video = envivio_video();
    let cfg = SimConfig::paper_default();
    let trace = Trace::new(segments.to_vec()).unwrap();
    let fast = run_shared_session_faulted(players(specs), &trace, &video, &cfg, faults);
    let slow = reference::run_shared_session_faulted(players(specs), &trace, &video, &cfg, faults);
    assert_bit_identical(&fast, &slow);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free fleets of 1..=8 mixed players, staggered joins, bumpy
    /// multi-segment traces.
    #[test]
    fn engines_bit_identical_fault_free(
        specs in proptest::collection::vec((0u8..4, 0.0f64..45.0), 1..9),
        segments in proptest::collection::vec((8.0f64..40.0, 250.0f64..8000.0), 1..5),
    ) {
        check(&specs, &segments, None);
    }

    /// The same space with the fault layer armed: per-player derived seeds,
    /// jitter-deferred starts, stalls, timeouts, retries, and aborts all go
    /// through both schedulers.
    #[test]
    fn engines_bit_identical_faulted(
        specs in proptest::collection::vec((0u8..4, 0.0f64..45.0), 1..9),
        segments in proptest::collection::vec((8.0f64..40.0, 250.0f64..8000.0), 1..5),
        rate in 0.05f64..0.4,
        seed in 0u64..10_000,
    ) {
        let faults = SharedFaults {
            config: FaultConfig::uniform(rate),
            policy: RetryPolicy::hostile(),
            seed,
        };
        check(&specs, &segments, Some(&faults));
    }

    /// Degenerate timing: several players issuing at exactly the same
    /// instant (identical offsets) keeps the due-event ordering honest.
    #[test]
    fn engines_bit_identical_synchronized_joins(
        kinds in proptest::collection::vec(0u8..4, 2..9),
        kbps in 400.0f64..6000.0,
        seed in 0u64..10_000,
    ) {
        let specs: Vec<(u8, f64)> = kinds.into_iter().map(|k| (k, 0.0)).collect();
        let faults = SharedFaults {
            config: FaultConfig::uniform(0.2),
            policy: RetryPolicy::hostile(),
            seed,
        };
        check(&specs, &[(60.0, kbps)], Some(&faults));
    }
}

/// An all-stall plan forces the Stalled state and its deadline events
/// through both schedulers.
#[test]
fn engines_bit_identical_under_stall_storm() {
    let faults = SharedFaults {
        config: FaultConfig {
            stall_prob: 0.6,
            ..FaultConfig::disabled()
        },
        policy: RetryPolicy {
            timeout_secs: 3.0,
            ..RetryPolicy::hostile()
        },
        seed: 41,
    };
    let specs: Vec<(u8, f64)> = (0..6).map(|i| (i as u8, i as f64 * 1.5)).collect();
    check(
        &specs,
        &[(30.0, 3200.0), (15.0, 900.0), (30.0, 2100.0)],
        Some(&faults),
    );
}
