//! Differential coverage for the incremental HTTP parsers.
//!
//! The event-driven server sees request streams in arbitrary fragments —
//! whatever the kernel hands each `read` — so the incremental parser must
//! produce *exactly* the message sequence the one-shot `abr_net::http`
//! parser produces on the whole stream, for every possible byte-wise
//! split. That equivalence is the contract this suite pins: valid
//! pipelined keep-alive streams, the malformed-request corpus, and the
//! size-cap paths (400/413 with the connection surviving).

use abr_net::http::{
    HttpError, ParseStep, Request, RequestParser, Response, ResponseParser, MAX_LINE_BYTES,
};
use bytes::Bytes;
use proptest::prelude::*;
use std::io::Cursor;

/// Reads the full message sequence with the one-shot parser: complete
/// requests until EOF or the first error.
fn one_shot_requests(wire: &[u8]) -> (Vec<Request>, Option<String>) {
    let mut cur = Cursor::new(wire);
    let mut msgs = Vec::new();
    loop {
        match Request::read_from(&mut cur) {
            Ok(Some(req)) => msgs.push(req),
            Ok(None) => return (msgs, None),
            Err(e) => return (msgs, Some(e.to_string())),
        }
    }
}

/// Feeds `wire` to the incremental parser in the given fragments and
/// drains everything it produces: complete requests until the first
/// failure (or until input runs out).
fn incremental_requests(wire: &[u8], cuts: &[usize]) -> (Vec<Request>, Option<String>) {
    let mut p = RequestParser::new();
    let mut msgs = Vec::new();
    let mut err = None;
    let mut prev = 0;
    for &cut in cuts {
        p.feed(&wire[prev..cut]);
        prev = cut;
        loop {
            match p.next_request() {
                ParseStep::Complete(req) => msgs.push(req),
                ParseStep::Incomplete => break,
                ParseStep::Failed { error, .. } => {
                    if err.is_none() {
                        err = Some(error.to_string());
                    }
                    return (msgs, err);
                }
            }
        }
    }
    p.feed(&wire[prev..]);
    loop {
        match p.next_request() {
            ParseStep::Complete(req) => msgs.push(req),
            ParseStep::Incomplete => break,
            ParseStep::Failed { error, .. } => {
                if err.is_none() {
                    err = Some(error.to_string());
                }
                break;
            }
        }
    }
    (msgs, err)
}

/// Sorted, deduped cut points inside `len`.
fn cut_points(len: usize, raw: &[proptest::sample::Index]) -> Vec<usize> {
    let mut cuts: Vec<usize> = raw.iter().map(|i| i.index(len.max(1))).collect();
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// The malformed inputs the one-shot tests already pin — every one has a
/// complete head, so the incremental parser must report the *identical*
/// error regardless of how the bytes are split.
const MALFORMED_CORPUS: &[&[u8]] = &[
    b"NOT-HTTP-AT-ALL\r\n\r\n",
    b"GET / SPDY/9\r\n\r\n",
    b"POST /x HTTP/1.1\r\n\r\n",
    b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
    b"POST /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
    b"GARBAGE\r\n\r\n",
    b"\r\nGET / HTTP/1.1\r\n\r\n",
];

proptest! {
    /// Any byte-wise split of a valid pipelined request stream parses to
    /// exactly the one-shot message sequence.
    #[test]
    fn any_split_of_valid_stream_matches_one_shot(
        reqs in proptest::collection::vec(
            (any::<bool>(), "[a-z0-9/]{1,12}", proptest::collection::vec(any::<u8>(), 0..200)),
            1..6,
        ),
        raw_cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..12),
    ) {
        let mut wire = Vec::new();
        for (is_post, path, body) in &reqs {
            let path = format!("/{path}");
            let req = if *is_post {
                Request::post(&path, Bytes::from(body.clone()), "application/octet-stream")
            } else {
                Request::get(&path)
            };
            req.write_to(&mut wire).unwrap();
        }
        let cuts = cut_points(wire.len(), &raw_cuts);
        let (expect, expect_err) = one_shot_requests(&wire);
        let (got, got_err) = incremental_requests(&wire, &cuts);
        prop_assert_eq!(expect_err, None::<String>);
        prop_assert_eq!(got_err, None::<String>);
        prop_assert_eq!(got, expect);
    }

    /// Same for the malformed corpus: the error (and any requests parsed
    /// before it) must match the one-shot parser exactly, split-invariant.
    #[test]
    fn any_split_of_malformed_corpus_matches_one_shot(
        corpus_idx in 0usize..MALFORMED_CORPUS.len(),
        prefix_valid in any::<bool>(),
        raw_cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..8),
    ) {
        let mut wire = Vec::new();
        if prefix_valid {
            // A good request in front: it must parse before the error.
            Request::post("/ok", Bytes::from_static(b"fine"), "text/plain")
                .write_to(&mut wire)
                .unwrap();
        }
        wire.extend_from_slice(MALFORMED_CORPUS[corpus_idx]);
        let cuts = cut_points(wire.len(), &raw_cuts);
        let (expect, expect_err) = one_shot_requests(&wire);
        let (got, got_err) = incremental_requests(&wire, &cuts);
        prop_assert!(expect_err.is_some());
        prop_assert_eq!(got_err, expect_err);
        prop_assert_eq!(got, expect);
    }

    /// Response streams: any split parses to the one-shot sequence.
    #[test]
    fn any_split_of_response_stream_matches_one_shot(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 1..6),
        raw_cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..12),
    ) {
        let mut wire = Vec::new();
        let mut expect = Vec::new();
        for body in &bodies {
            let resp = Response::ok(Bytes::from(body.clone()), "application/octet-stream");
            resp.write_to(&mut wire).unwrap();
            expect.push(resp);
        }
        let cuts = cut_points(wire.len(), &raw_cuts);
        let mut p = ResponseParser::new();
        let mut got = Vec::new();
        let mut prev = 0;
        for &cut in cuts.iter().chain(std::iter::once(&wire.len())) {
            p.feed(&wire[prev..cut]);
            prev = cut;
            loop {
                match p.next_response() {
                    ParseStep::Complete(r) => got.push(r),
                    ParseStep::Incomplete => break,
                    ParseStep::Failed { error, .. } => {
                        prop_assert!(false, "failed: {}", error);
                    }
                }
            }
        }
        prop_assert_eq!(got, expect);
        prop_assert!(p.is_clean());
    }

    /// A body over the cap yields 413 semantics (`BodyTooLarge`) at any
    /// split, and the connection survives: the next request on the same
    /// parser still parses.
    #[test]
    fn oversized_body_survives_at_any_split(
        over in 1usize..600,
        raw_cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..8),
    ) {
        const CAP: usize = 256;
        let len = CAP + over;
        let mut wire =
            format!("POST /big HTTP/1.1\r\ncontent-length: {len}\r\n\r\n{}", "b".repeat(len))
                .into_bytes();
        Request::get("/after").write_to(&mut wire).unwrap();
        let cuts = cut_points(wire.len(), &raw_cuts);
        let mut p = RequestParser::with_cap(CAP);
        let mut prev = 0;
        let mut saw_413 = false;
        let mut after = None;
        for &cut in cuts.iter().chain(std::iter::once(&wire.len())) {
            p.feed(&wire[prev..cut]);
            prev = cut;
            loop {
                match p.next_request() {
                    ParseStep::Complete(req) => after = Some(req),
                    ParseStep::Incomplete => break,
                    ParseStep::Failed { error, recoverable } => {
                        prop_assert!(
                            matches!(error, HttpError::BodyTooLarge { .. }),
                            "{}", error
                        );
                        prop_assert!(recoverable);
                        saw_413 = true;
                    }
                }
            }
        }
        prop_assert!(saw_413);
        let after = after.expect("request after the 413 must parse");
        prop_assert_eq!(after.path.as_str(), "/after");
        prop_assert!(p.is_clean());
    }

    /// An over-long request line yields a recoverable 400 at any split;
    /// the parser resyncs and keeps consuming without phantom requests.
    #[test]
    fn overlong_line_survives_at_any_split(
        extra in 1usize..200,
        raw_cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..8),
    ) {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"GET /");
        wire.extend_from_slice("x".repeat(MAX_LINE_BYTES + extra).as_bytes());
        wire.extend_from_slice(b" HTTP/1.1\r\n");
        let mut after = Vec::new();
        Request::get("/after").write_to(&mut after).unwrap();
        wire.extend_from_slice(&after);
        let cuts = cut_points(wire.len(), &raw_cuts);
        let mut p = RequestParser::new();
        let mut prev = 0;
        let mut saw_400 = false;
        let mut parsed = Vec::new();
        for &cut in cuts.iter().chain(std::iter::once(&wire.len())) {
            p.feed(&wire[prev..cut]);
            prev = cut;
            loop {
                match p.next_request() {
                    ParseStep::Complete(req) => parsed.push(req),
                    ParseStep::Incomplete => break,
                    ParseStep::Failed { error, recoverable } => {
                        prop_assert!(
                            matches!(error, HttpError::Malformed(ref w) if w.contains("line exceeds")),
                            "{}", error
                        );
                        prop_assert!(recoverable);
                        saw_400 = true;
                    }
                }
            }
        }
        prop_assert!(saw_400);
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].path.as_str(), "/after");
        prop_assert!(p.is_clean());
    }

    /// A truncated stream (any prefix of a valid stream) never errors and
    /// never invents a message beyond what its bytes contain.
    #[test]
    fn prefixes_never_invent_messages(
        body_len in 0usize..200,
        take in any::<proptest::sample::Index>(),
    ) {
        let mut wire = Vec::new();
        Request::post("/x", Bytes::from(vec![7u8; body_len]), "text/plain")
            .write_to(&mut wire)
            .unwrap();
        let take = take.index(wire.len() + 1);
        let mut p = RequestParser::new();
        p.feed(&wire[..take]);
        match p.next_request() {
            ParseStep::Complete(req) => {
                prop_assert_eq!(take, wire.len());
                prop_assert_eq!(req.body.len(), body_len);
                prop_assert!(p.is_clean());
            }
            ParseStep::Incomplete => {
                prop_assert!(take < wire.len());
                prop_assert_eq!(p.is_clean(), take == 0);
            }
            ParseStep::Failed { error, .. } => {
                prop_assert!(false, "prefix failed: {}", error);
            }
        }
    }
}
