//! Deterministic fault injection for the emulated DASH stack.
//!
//! The paper's testbed (§7) runs over the real Internet's failure modes —
//! stalled transfers, connection resets, server errors — which bandwidth
//! traces alone don't capture. This module schedules such faults *per
//! request*, fully deterministically: a [`FaultPlan`] built from a `u64`
//! seed draws exactly three uniforms per request (fault kind, body
//! fraction, RTT jitter) from a splitmix64 generator, so the same seed
//! always produces the same fault sequence regardless of what the player
//! does with it. [`RetryPolicy`] is the player-side counterpart: per-request
//! timeout, bounded retries with exponential backoff, optional bitrate
//! downshift on re-request, and a graceful session abort after too many
//! consecutive failures.
//!
//! Everything here is pure scheduling — the faults are *enacted* by
//! [`ShapedLink::transfer_faulted`](crate::ShapedLink::transfer_faulted)
//! (link-level kinds) and
//! [`ChunkServer::handle_faulted`](crate::ChunkServer::handle_faulted)
//! (HTTP-level kinds), and survived by the retry loop in
//! [`EmulatedDownloader`](crate::EmulatedDownloader).

/// The splitmix64 generator (Steele et al.): tiny, statistically fine for
/// fault scheduling, and dependency-free. Every call advances the state by
/// the golden-ratio increment and scrambles it, so streams from different
/// seeds are uncorrelated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// What goes wrong with one request. The `body_fraction` kinds carry the
/// point (as a fraction of the response's wire bytes) at which the link
/// gives out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The peer resets the connection mid-body: the transfer ends early
    /// with only `body_fraction` of the bytes delivered.
    ConnectionReset {
        /// Fraction of the wire bytes delivered before the reset, `[0, 1)`.
        body_fraction: f64,
    },
    /// The body is truncated mid-transfer (short write / broken proxy):
    /// same delivery shape as a reset, but the client sees a short body
    /// rather than an error — its parser must catch it.
    Truncate {
        /// Fraction of the wire bytes delivered before the cut, `[0, 1)`.
        body_fraction: f64,
    },
    /// The transfer stalls indefinitely after `body_fraction` of the bytes:
    /// only the player's timeout ends it.
    Stall {
        /// Fraction of the wire bytes delivered before the stall, `[0, 1)`.
        body_fraction: f64,
    },
    /// The origin answers `404 Not Found`.
    NotFound,
    /// The origin answers `503 Service Unavailable`.
    ServiceUnavailable,
}

/// The fault assignment for one request: at most one [`FaultKind`], plus
/// added RTT jitter (applied to the request's upstream propagation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// The scheduled fault, if any.
    pub kind: Option<FaultKind>,
    /// Extra one-way delay for this request, seconds (0 when jitter is
    /// disabled).
    pub jitter_secs: f64,
}

impl Fault {
    /// A clean request: no fault, no jitter.
    pub fn none() -> Self {
        Self {
            kind: None,
            jitter_secs: 0.0,
        }
    }
}

/// Per-request fault probabilities and jitter amplitude. Probabilities are
/// independent per request; their sum must not exceed 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability of a mid-body connection reset.
    pub reset_prob: f64,
    /// Probability of a mid-body truncation.
    pub truncate_prob: f64,
    /// Probability of an indefinite stall.
    pub stall_prob: f64,
    /// Probability of an HTTP 404.
    pub not_found_prob: f64,
    /// Probability of an HTTP 503.
    pub unavailable_prob: f64,
    /// Upper bound of the per-request uniform RTT jitter, seconds.
    pub jitter_max_secs: f64,
}

impl FaultConfig {
    /// All probabilities zero: the plan never schedules a fault.
    pub fn disabled() -> Self {
        Self {
            reset_prob: 0.0,
            truncate_prob: 0.0,
            stall_prob: 0.0,
            not_found_prob: 0.0,
            unavailable_prob: 0.0,
            jitter_max_secs: 0.0,
        }
    }

    /// Total per-request fault rate `rate` spread evenly across the five
    /// kinds, no jitter.
    pub fn uniform(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate {rate} not in [0, 1]");
        let p = rate / 5.0;
        Self {
            reset_prob: p,
            truncate_prob: p,
            stall_prob: p,
            not_found_prob: p,
            unavailable_prob: p,
            jitter_max_secs: 0.0,
        }
    }

    /// Sum of the five fault probabilities.
    pub fn total_prob(&self) -> f64 {
        self.reset_prob
            + self.truncate_prob
            + self.stall_prob
            + self.not_found_prob
            + self.unavailable_prob
    }

    /// True when no fault and no jitter can ever be scheduled.
    pub fn is_disabled(&self) -> bool {
        self.total_prob() == 0.0 && self.jitter_max_secs == 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("reset_prob", self.reset_prob),
            ("truncate_prob", self.truncate_prob),
            ("stall_prob", self.stall_prob),
            ("not_found_prob", self.not_found_prob),
            ("unavailable_prob", self.unavailable_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} {p} not in [0, 1]");
        }
        assert!(
            self.total_prob() <= 1.0 + 1e-12,
            "fault probabilities sum to {} > 1",
            self.total_prob()
        );
        assert!(
            self.jitter_max_secs.is_finite() && self.jitter_max_secs >= 0.0,
            "invalid jitter bound {}",
            self.jitter_max_secs
        );
    }
}

#[derive(Debug, Clone)]
enum PlanMode {
    Random(SplitMix64),
    Scripted { faults: Vec<Fault>, next: usize },
}

/// A deterministic per-request fault schedule.
///
/// In random mode ([`FaultPlan::new`]) each request consumes exactly three
/// uniforms — kind, body fraction, jitter — whether or not a fault fires,
/// so the fault stream depends only on the seed and the *number* of
/// requests made, never on their outcomes. Scripted mode
/// ([`FaultPlan::scripted`]) replays a fixed fault list (clean afterwards)
/// for exact-math unit tests.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    mode: PlanMode,
}

impl FaultPlan {
    /// A random plan drawing from `seed` with per-request odds `config`.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        config.validate();
        Self {
            config,
            mode: PlanMode::Random(SplitMix64::new(seed)),
        }
    }

    /// A scripted plan: request `i` gets `faults[i]`; every request past
    /// the script is clean.
    pub fn scripted(faults: Vec<Fault>) -> Self {
        Self {
            config: FaultConfig::disabled(),
            mode: PlanMode::Scripted { faults, next: 0 },
        }
    }

    /// The plan's fault odds (all-zero for scripted plans).
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when the plan can schedule a stall, which only a finite
    /// [`RetryPolicy::timeout_secs`] can end.
    pub fn requires_timeout(&self) -> bool {
        match &self.mode {
            PlanMode::Random(_) => self.config.stall_prob > 0.0,
            PlanMode::Scripted { faults, .. } => faults
                .iter()
                .any(|f| matches!(f.kind, Some(FaultKind::Stall { .. }))),
        }
    }

    /// The fault assignment for the next request.
    pub fn next_fault(&mut self) -> Fault {
        match &mut self.mode {
            PlanMode::Scripted { faults, next } => {
                let f = faults.get(*next).copied().unwrap_or_else(Fault::none);
                *next += 1;
                f
            }
            PlanMode::Random(rng) => {
                // Always three draws, so the stream stays aligned across
                // configs with the same seed.
                let u_kind = rng.next_f64();
                let u_frac = rng.next_f64();
                let u_jitter = rng.next_f64();
                let c = &self.config;
                let mut edge = 0.0;
                let mut hits = |p: f64| {
                    edge += p;
                    u_kind < edge
                };
                let kind = if hits(c.reset_prob) {
                    Some(FaultKind::ConnectionReset { body_fraction: u_frac })
                } else if hits(c.truncate_prob) {
                    Some(FaultKind::Truncate { body_fraction: u_frac })
                } else if hits(c.stall_prob) {
                    Some(FaultKind::Stall { body_fraction: u_frac })
                } else if hits(c.not_found_prob) {
                    Some(FaultKind::NotFound)
                } else if hits(c.unavailable_prob) {
                    Some(FaultKind::ServiceUnavailable)
                } else {
                    None
                };
                Fault {
                    kind,
                    jitter_secs: u_jitter * c.jitter_max_secs,
                }
            }
        }
    }
}

/// How the player survives faults: per-attempt timeout, bounded retries
/// with exponential backoff, optional bitrate downshift on re-request, and
/// a session abort once failures pile up.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Per-attempt deadline, seconds (`f64::INFINITY` = never time out;
    /// required finite if the plan can stall).
    pub timeout_secs: f64,
    /// Re-requests allowed per chunk before the session aborts.
    pub max_retries: u32,
    /// First backoff wait, seconds.
    pub backoff_base_secs: f64,
    /// Multiplier applied per consecutive failure.
    pub backoff_factor: f64,
    /// Cap on any single backoff wait, seconds.
    pub backoff_max_secs: f64,
    /// Re-request one ladder level lower per failed attempt (never below
    /// level 0).
    pub downshift_on_retry: bool,
    /// Abort the session after this many consecutive failed attempts,
    /// counted across chunks.
    pub max_consecutive_failures: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::no_timeout()
    }
}

impl RetryPolicy {
    /// Retries without a deadline — safe only against plans that cannot
    /// stall ([`FaultPlan::requires_timeout`] is false).
    pub fn no_timeout() -> Self {
        Self {
            timeout_secs: f64::INFINITY,
            max_retries: 4,
            backoff_base_secs: 0.25,
            backoff_factor: 2.0,
            backoff_max_secs: 4.0,
            downshift_on_retry: true,
            max_consecutive_failures: 12,
        }
    }

    /// The policy for hostile links: a 30 s per-attempt deadline on top of
    /// the default retry budget.
    pub fn hostile() -> Self {
        Self {
            timeout_secs: 30.0,
            ..Self::no_timeout()
        }
    }

    /// Backoff wait before the attempt following `prior_failures` failures
    /// of the current chunk: `base * factor^prior`, capped at
    /// [`backoff_max_secs`](Self::backoff_max_secs).
    pub fn backoff_secs(&self, prior_failures: u32) -> f64 {
        (self.backoff_base_secs * self.backoff_factor.powi(prior_failures as i32))
            .min(self.backoff_max_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_reproducible_and_seed_sensitive() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        // Uniforms live in [0, 1).
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn uniform_config_splits_rate_evenly() {
        let c = FaultConfig::uniform(0.2);
        assert!((c.total_prob() - 0.2).abs() < 1e-12);
        assert!((c.reset_prob - 0.04).abs() < 1e-12);
        assert!(!c.is_disabled());
        assert!(FaultConfig::disabled().is_disabled());
        assert!(FaultConfig::uniform(0.0).is_disabled());
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn uniform_rejects_out_of_range_rate() {
        FaultConfig::uniform(1.5);
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let cfg = FaultConfig {
            jitter_max_secs: 0.05,
            ..FaultConfig::uniform(0.6)
        };
        let mut a = FaultPlan::new(9, cfg.clone());
        let mut b = FaultPlan::new(9, cfg.clone());
        let mut c = FaultPlan::new(10, cfg);
        let fa: Vec<Fault> = (0..200).map(|_| a.next_fault()).collect();
        let fb: Vec<Fault> = (0..200).map(|_| b.next_fault()).collect();
        let fc: Vec<Fault> = (0..200).map(|_| c.next_fault()).collect();
        assert_eq!(fa, fb);
        assert_ne!(fa, fc);
        // A 60 % rate over 200 requests fires plenty of faults of several
        // kinds, with fractions in [0, 1) and jitter within the bound.
        let fired = fa.iter().filter(|f| f.kind.is_some()).count();
        assert!((60..180).contains(&fired), "{fired} faults fired");
        for f in &fa {
            assert!((0.0..=0.05).contains(&f.jitter_secs));
            if let Some(
                FaultKind::ConnectionReset { body_fraction }
                | FaultKind::Truncate { body_fraction }
                | FaultKind::Stall { body_fraction },
            ) = f.kind
            {
                assert!((0.0..1.0).contains(&body_fraction));
            }
        }
    }

    #[test]
    fn disabled_plan_never_faults() {
        let mut p = FaultPlan::new(123, FaultConfig::disabled());
        for _ in 0..500 {
            assert_eq!(p.next_fault(), Fault::none());
        }
        assert!(!p.requires_timeout());
    }

    #[test]
    fn scripted_plan_replays_then_goes_clean() {
        let script = vec![
            Fault { kind: Some(FaultKind::NotFound), jitter_secs: 0.0 },
            Fault::none(),
            Fault { kind: Some(FaultKind::Stall { body_fraction: 0.5 }), jitter_secs: 0.01 },
        ];
        let mut p = FaultPlan::scripted(script.clone());
        assert!(p.requires_timeout());
        assert_eq!(p.next_fault(), script[0]);
        assert_eq!(p.next_fault(), script[1]);
        assert_eq!(p.next_fault(), script[2]);
        assert_eq!(p.next_fault(), Fault::none());
        assert_eq!(p.next_fault(), Fault::none());
    }

    #[test]
    fn backoff_grows_geometrically_then_caps() {
        let p = RetryPolicy::no_timeout();
        assert_eq!(p.backoff_secs(0), 0.25);
        assert_eq!(p.backoff_secs(1), 0.5);
        assert_eq!(p.backoff_secs(2), 1.0);
        assert_eq!(p.backoff_secs(3), 2.0);
        assert_eq!(p.backoff_secs(4), 4.0);
        assert_eq!(p.backoff_secs(5), 4.0, "capped");
        assert_eq!(p.backoff_secs(200), 4.0, "overflow-safe at the cap");
        assert!(RetryPolicy::hostile().timeout_secs.is_finite());
        assert!(RetryPolicy::default().timeout_secs.is_infinite());
    }
}
