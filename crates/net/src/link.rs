//! Link models: exact virtual-time scheduling over a throughput trace (the
//! emulation path's stand-in for `tc` shaping) and a token bucket for
//! real-time shaping.

use crate::fault::{Fault, FaultKind};
use abr_trace::{Trace, TraceCursor};
use std::borrow::Cow;

/// Outcome of a transfer that may have been cut short by a fault or a
/// deadline: when it ended, how many bytes arrived, and whether the full
/// body made it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultedTransfer {
    /// Virtual time at which the transfer ended (completion, fault, or
    /// deadline — whichever came first).
    pub end_secs: f64,
    /// Bytes delivered to the client by `end_secs`.
    pub delivered_bytes: usize,
    /// True iff every byte arrived (necessarily false under any
    /// link-level fault kind).
    pub completed: bool,
}

/// A unidirectional link whose deliverable bandwidth follows a throughput
/// trace, with a fixed one-way latency. All scheduling is in virtual time:
/// [`ShapedLink::transfer`] answers "when does a transfer of `n` bytes
/// started at `t` complete?" by exact piecewise integration of the trace.
///
/// The trace is a [`Cow`]: [`ShapedLink::new`] owns it, while the emulated
/// player's per-session link borrows the caller's trace so running a grid
/// of sessions clones nothing.
#[derive(Debug, Clone)]
pub struct ShapedLink<'a> {
    trace: Cow<'a, Trace>,
    latency_secs: f64,
}

impl ShapedLink<'static> {
    /// Creates a link owning `trace` with one-way latency
    /// `latency_secs >= 0`.
    pub fn new(trace: Trace, latency_secs: f64) -> Self {
        assert!(
            latency_secs >= 0.0 && latency_secs.is_finite(),
            "invalid latency {latency_secs}"
        );
        Self {
            trace: Cow::Owned(trace),
            latency_secs,
        }
    }
}

impl<'a> ShapedLink<'a> {
    /// Creates a link borrowing `trace` with one-way latency
    /// `latency_secs >= 0`.
    pub fn borrowed(trace: &'a Trace, latency_secs: f64) -> Self {
        assert!(
            latency_secs >= 0.0 && latency_secs.is_finite(),
            "invalid latency {latency_secs}"
        );
        Self {
            trace: Cow::Borrowed(trace),
            latency_secs,
        }
    }

    /// The link's throughput trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// One-way latency, seconds.
    pub fn latency_secs(&self) -> f64 {
        self.latency_secs
    }

    /// Completion time of a transfer of `bytes` bytes entering the link at
    /// `start_secs`: propagation delay plus trace-paced serialization.
    pub fn transfer(&self, bytes: usize, start_secs: f64) -> f64 {
        let kbits = bytes as f64 * 8.0 / 1000.0;
        start_secs + self.latency_secs + self.trace.time_to_download(kbits, start_secs)
    }

    /// [`transfer`](Self::transfer) resuming from `cursor` — bit-identical,
    /// amortized O(1) along a session's forward-moving clock.
    pub fn transfer_at(&self, cursor: &mut TraceCursor, bytes: usize, start_secs: f64) -> f64 {
        let kbits = bytes as f64 * 8.0 / 1000.0;
        start_secs
            + self.latency_secs
            + self.trace.time_to_download_at(cursor, kbits, start_secs)
    }

    /// [`transfer`](Self::transfer) under a scheduled [`Fault`] and a
    /// client deadline. `start_secs` is the instant the request reaches
    /// the origin — the caller applies `fault.jitter_secs` *before* this
    /// call, since jitter delays the request, not the body.
    ///
    /// Link-level kinds (reset / truncate / stall) cut delivery at
    /// `body_fraction` of the wire bytes; HTTP-level kinds (404 / 503) and
    /// clean requests deliver their full (small or large) body, so for a
    /// clean fault with an infinite deadline this is bit-identical to
    /// [`transfer`](Self::transfer). The deadline caps every branch: a
    /// stall *only* ends at the deadline (the transfer never finishes on
    /// its own), so stalls require a finite one.
    pub fn transfer_faulted(
        &self,
        bytes: usize,
        start_secs: f64,
        fault: &Fault,
        deadline_secs: f64,
    ) -> FaultedTransfer {
        let cut = |fraction: f64| (bytes as f64 * fraction.clamp(0.0, 1.0)).floor() as usize;
        match fault.kind {
            None | Some(FaultKind::NotFound) | Some(FaultKind::ServiceUnavailable) => {
                let full_end = self.transfer(bytes, start_secs);
                if full_end <= deadline_secs {
                    FaultedTransfer {
                        end_secs: full_end,
                        delivered_bytes: bytes,
                        completed: true,
                    }
                } else {
                    FaultedTransfer {
                        end_secs: deadline_secs,
                        delivered_bytes: self.bytes_by(start_secs, deadline_secs, bytes),
                        completed: false,
                    }
                }
            }
            Some(FaultKind::Stall { body_fraction }) => {
                assert!(
                    deadline_secs.is_finite(),
                    "a stalled transfer only ends at a finite deadline"
                );
                let cutoff = cut(body_fraction);
                FaultedTransfer {
                    end_secs: deadline_secs,
                    delivered_bytes: self.bytes_by(start_secs, deadline_secs, cutoff),
                    completed: false,
                }
            }
            Some(
                FaultKind::ConnectionReset { body_fraction }
                | FaultKind::Truncate { body_fraction },
            ) => {
                let cutoff = cut(body_fraction);
                let cut_kbits = cutoff as f64 * 8.0 / 1000.0;
                let cut_end = start_secs
                    + self.latency_secs
                    + self.trace.time_to_download(cut_kbits, start_secs);
                if cut_end <= deadline_secs {
                    FaultedTransfer {
                        end_secs: cut_end,
                        delivered_bytes: cutoff,
                        completed: false,
                    }
                } else {
                    FaultedTransfer {
                        end_secs: deadline_secs,
                        delivered_bytes: self.bytes_by(start_secs, deadline_secs, cutoff),
                        completed: false,
                    }
                }
            }
        }
    }

    /// Bytes delivered by time `t` to a transfer entering the link at
    /// `start_secs`, capped at `cap` (the propagation delay passes no
    /// bytes).
    fn bytes_by(&self, start_secs: f64, t: f64, cap: usize) -> usize {
        let window_end = t - self.latency_secs;
        if window_end <= start_secs {
            return 0;
        }
        let kbits = self.trace.integrate_kbits(start_secs, window_end);
        ((kbits * 1000.0 / 8.0).floor() as usize).min(cap)
    }

    /// Average throughput the link would deliver to a transfer of `bytes`
    /// starting at `start_secs`, in kbps (the quantity a client measures).
    pub fn effective_kbps(&self, bytes: usize, start_secs: f64) -> f64 {
        let kbits = bytes as f64 * 8.0 / 1000.0;
        if kbits == 0.0 {
            return 0.0;
        }
        let secs = self.trace.time_to_download(kbits, start_secs);
        kbits / secs
    }
}

/// A token bucket for shaping a real-time byte stream to a target rate —
/// used by the real-socket server to pace chunk bodies (the role `tc` plays
/// in the paper's testbed).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_kbps: f64,
    burst_kbits: f64,
    tokens_kbits: f64,
    last_refill_secs: f64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_kbps` with capacity `burst_kbits`,
    /// starting full at time 0.
    pub fn new(rate_kbps: f64, burst_kbits: f64) -> Self {
        assert!(rate_kbps > 0.0 && burst_kbits > 0.0, "rate and burst must be positive");
        Self {
            rate_kbps,
            burst_kbits,
            tokens_kbits: burst_kbits,
            last_refill_secs: 0.0,
        }
    }

    /// Changes the refill rate (for trace-driven re-shaping).
    pub fn set_rate(&mut self, rate_kbps: f64) {
        assert!(rate_kbps > 0.0, "rate must be positive");
        self.rate_kbps = rate_kbps;
    }

    /// Current fill level, kilobits.
    pub fn tokens_kbits(&self) -> f64 {
        self.tokens_kbits
    }

    fn refill(&mut self, now_secs: f64) {
        assert!(
            now_secs >= self.last_refill_secs,
            "time went backwards: {now_secs} < {}",
            self.last_refill_secs
        );
        self.tokens_kbits = (self.tokens_kbits
            + (now_secs - self.last_refill_secs) * self.rate_kbps)
            .min(self.burst_kbits);
        self.last_refill_secs = now_secs;
    }

    /// Requests to send `bytes` at `now_secs`. Returns the seconds the
    /// caller must wait before the send conforms (0 if it may send now);
    /// tokens are consumed either way, going negative like a deficit
    /// counter so the wait exactly paces sustained traffic at the rate.
    pub fn acquire(&mut self, bytes: usize, now_secs: f64) -> f64 {
        self.refill(now_secs);
        let need = bytes as f64 * 8.0 / 1000.0;
        self.tokens_kbits -= need;
        if self.tokens_kbits >= 0.0 {
            0.0
        } else {
            -self.tokens_kbits / self.rate_kbps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transfer_follows_trace() {
        // 1000 kbps for 10 s then 2000 kbps; no latency.
        let t = Trace::new(vec![(10.0, 1000.0), (10.0, 2000.0)]).unwrap();
        let link = ShapedLink::new(t, 0.0);
        // 1,000,000 bytes = 8000 kbits: 10 s at 1000 then 1 s at 2000... no:
        // 10 s @ 1000 = 10,000 kbits > 8000, so 8 s.
        assert!((link.transfer(1_000_000, 0.0) - 8.0).abs() < 1e-9);
        // Starting at t=10 (2000 kbps): 4 s.
        assert!((link.transfer(1_000_000, 10.0) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn latency_adds_once() {
        let t = Trace::constant(8000.0, 10.0).unwrap();
        let link = ShapedLink::new(t, 0.05);
        // 1000 bytes = 8 kbits -> 1 ms serialization + 50 ms latency.
        let done = link.transfer(1000, 0.0);
        assert!((done - 0.051).abs() < 1e-9, "{done}");
    }

    #[test]
    fn effective_kbps_is_average() {
        let t = Trace::new(vec![(1.0, 1000.0), (1.0, 3000.0)]).unwrap();
        let link = ShapedLink::new(t, 0.0);
        // 2000 kbits takes 1s + 1/3s -> effective 1500 kbps.
        let kbps = link.effective_kbps(250_000, 0.0);
        assert!((kbps - 1500.0).abs() < 1e-6, "{kbps}");
    }

    #[test]
    fn borrowed_link_and_cursor_transfer_match_owned() {
        let t = Trace::new(vec![(10.0, 1000.0), (5.0, 0.0), (10.0, 2000.0)]).unwrap();
        let owned = ShapedLink::new(t.clone(), 0.03);
        let link = ShapedLink::borrowed(&t, 0.03);
        let mut cursor = TraceCursor::new();
        let mut start = 0.0;
        for i in 0..40 {
            let bytes = 10_000 + i * 7_919;
            let a = owned.transfer(bytes, start);
            let b = link.transfer_at(&mut cursor, bytes, start);
            assert_eq!(a.to_bits(), b.to_bits(), "transfer {i} diverged");
            start += 1.7;
        }
    }

    #[test]
    fn zero_byte_transfer_is_latency_only() {
        let t = Trace::constant(1000.0, 10.0).unwrap();
        let link = ShapedLink::new(t, 0.02);
        assert!((link.transfer(0, 5.0) - 5.02).abs() < 1e-12);
        assert_eq!(link.effective_kbps(0, 0.0), 0.0);
    }

    #[test]
    fn faulted_transfer_clean_matches_plain_transfer() {
        let t = Trace::new(vec![(10.0, 1000.0), (10.0, 2000.0)]).unwrap();
        let link = ShapedLink::new(t, 0.03);
        for (bytes, start) in [(1_000_000usize, 0.0), (40_000, 7.5), (0, 3.0)] {
            let plain = link.transfer(bytes, start);
            let faulted =
                link.transfer_faulted(bytes, start, &Fault::none(), f64::INFINITY);
            assert_eq!(plain.to_bits(), faulted.end_secs.to_bits());
            assert_eq!(faulted.delivered_bytes, bytes);
            assert!(faulted.completed);
        }
    }

    #[test]
    fn faulted_transfer_deadline_cuts_a_clean_transfer() {
        // 1000 kbps, no latency: 1,000,000 bytes = 8000 kbits takes 8 s.
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let link = ShapedLink::new(t, 0.0);
        let ft = link.transfer_faulted(1_000_000, 0.0, &Fault::none(), 2.0);
        assert!(!ft.completed);
        assert_eq!(ft.end_secs, 2.0);
        // 2 s at 1000 kbps = 2000 kbits = 250,000 bytes.
        assert_eq!(ft.delivered_bytes, 250_000);
    }

    #[test]
    fn reset_cuts_at_the_body_fraction() {
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let link = ShapedLink::new(t, 0.0);
        let fault = Fault {
            kind: Some(FaultKind::ConnectionReset { body_fraction: 0.25 }),
            jitter_secs: 0.0,
        };
        let ft = link.transfer_faulted(1_000_000, 0.0, &fault, f64::INFINITY);
        assert!(!ft.completed);
        assert_eq!(ft.delivered_bytes, 250_000);
        // 250,000 bytes = 2000 kbits at 1000 kbps = 2 s.
        assert!((ft.end_secs - 2.0).abs() < 1e-9, "{}", ft.end_secs);
        // A deadline before the cut point wins.
        let early = link.transfer_faulted(1_000_000, 0.0, &fault, 1.0);
        assert_eq!(early.end_secs, 1.0);
        assert_eq!(early.delivered_bytes, 125_000);
        assert!(!early.completed);
    }

    #[test]
    fn stall_only_ends_at_the_deadline() {
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let link = ShapedLink::new(t, 0.0);
        let fault = Fault {
            kind: Some(FaultKind::Stall { body_fraction: 0.1 }),
            jitter_secs: 0.0,
        };
        let ft = link.transfer_faulted(1_000_000, 0.0, &fault, 5.0);
        assert_eq!(ft.end_secs, 5.0);
        // The stall froze delivery at 10 % = 100,000 bytes well before 5 s.
        assert_eq!(ft.delivered_bytes, 100_000);
        assert!(!ft.completed);
    }

    #[test]
    #[should_panic(expected = "finite deadline")]
    fn stall_without_deadline_panics() {
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let link = ShapedLink::new(t, 0.0);
        let fault = Fault {
            kind: Some(FaultKind::Stall { body_fraction: 0.5 }),
            jitter_secs: 0.0,
        };
        link.transfer_faulted(1000, 0.0, &fault, f64::INFINITY);
    }

    #[test]
    fn latency_delays_first_faulted_byte() {
        // 1 s latency: at t=1.5 only 0.5 s of serialization has happened.
        let t = Trace::constant(1600.0, 60.0).unwrap();
        let link = ShapedLink::new(t, 1.0);
        let ft = link.transfer_faulted(1_000_000, 0.0, &Fault::none(), 1.5);
        // 0.5 s at 1600 kbps = 800 kbits = 100,000 bytes.
        assert_eq!(ft.delivered_bytes, 100_000);
        // Before the latency elapses, nothing at all has arrived.
        let ft0 = link.transfer_faulted(1_000_000, 0.0, &Fault::none(), 0.9);
        assert_eq!(ft0.delivered_bytes, 0);
    }

    #[test]
    fn token_bucket_allows_burst_then_paces() {
        let mut tb = TokenBucket::new(1000.0, 100.0); // 100 kbits burst
        // First 12,500 bytes = 100 kbits: free (burst).
        assert_eq!(tb.acquire(12_500, 0.0), 0.0);
        // Next 12,500 bytes: must wait 100 kbits / 1000 kbps = 0.1 s.
        let wait = tb.acquire(12_500, 0.0);
        assert!((wait - 0.1).abs() < 1e-9, "{wait}");
    }

    #[test]
    fn token_bucket_refills_over_time() {
        let mut tb = TokenBucket::new(1000.0, 100.0);
        assert_eq!(tb.acquire(12_500, 0.0), 0.0); // drain
        // After 0.05 s, 50 kbits refilled; sending 50 kbits is free.
        assert_eq!(tb.acquire(6_250, 0.05), 0.0);
        // Bucket never exceeds burst.
        let mut tb2 = TokenBucket::new(1000.0, 100.0);
        tb2.refill(100.0);
        assert!((tb2.tokens_kbits() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn token_bucket_rejects_time_reversal() {
        let mut tb = TokenBucket::new(1000.0, 100.0);
        tb.acquire(1, 1.0);
        tb.acquire(1, 0.5);
    }

    proptest! {
        /// Sustained sends through the bucket average out to the rate.
        #[test]
        fn bucket_long_run_rate(chunk_bytes in 500usize..5000) {
            let rate = 2000.0;
            let mut tb = TokenBucket::new(rate, 50.0);
            let mut now = 0.0;
            let sends = 200;
            for _ in 0..sends {
                now += tb.acquire(chunk_bytes, now);
            }
            let kbits_sent = (sends * chunk_bytes) as f64 * 8.0 / 1000.0;
            let implied_rate = kbits_sent / now;
            // Within burst slack of the configured rate.
            prop_assert!(implied_rate >= rate * 0.95 && implied_rate <= rate * 1.15,
                "implied {implied_rate}");
        }

        /// Link transfers are monotone in size and consistent with the
        /// trace integral.
        #[test]
        fn transfer_monotone(a in 1usize..1_000_000, extra in 0usize..1_000_000) {
            let t = Trace::new(vec![(5.0, 800.0), (5.0, 2500.0)]).unwrap();
            let link = ShapedLink::new(t, 0.01);
            prop_assert!(link.transfer(a + extra, 3.0) >= link.transfer(a, 3.0) - 1e-9);
        }
    }
}
