//! DASH players over the network substrate.
//!
//! [`run_emulated_session`] is the paper's testbed experiment in virtual
//! time: the player issues real HTTP requests (serialized and re-parsed
//! through the framing layer), the origin answers with byte-exact chunk
//! bodies, and transfer completion times follow a [`ShapedLink`] driven by
//! the throughput trace — the role `tc` plays on Emulab. Controller and
//! predictor see exactly the interface they see in `abr-sim`, and results
//! come back as the same [`SessionResult`] so the two paths are directly
//! comparable.
//!
//! [`run_real_session`] is the same player over genuine TCP sockets against
//! a [`ChunkServer`], with receive-side token-bucket throttling standing in
//! for link shaping. It bootstraps from the served manifest (fetch, parse,
//! stream), and runs in wall-clock time — integration tests use
//! short videos.

use crate::fault::{FaultPlan, RetryPolicy};
use crate::http::{chunk_bytes, ChunkServer, HttpClient, HttpError, Request, Response};
use crate::link::{ShapedLink, TokenBucket};
use crate::mpd;
use abr_core::{advance_buffer, BitrateController, ControllerContext};
use abr_predictor::{ErrorTracked, Predictor};
use abr_sim::{
    run_session_core, ChunkDownloader, ChunkRecord, DownloadOutcome, SessionResult,
    SessionScratch, SimConfig,
};
use abr_trace::{Trace, TraceCursor};
use abr_video::{LevelIdx, QoeBreakdown, Video};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{Cursor, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Network parameters of the emulated path.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// One-way latency of the shaped link, seconds.
    pub latency_secs: f64,
}

impl NetConfig {
    /// Zero-latency configuration: the emulated path then matches the
    /// analytic simulator exactly (used by the cross-validation tests).
    pub fn parity() -> Self {
        Self { latency_secs: 0.0 }
    }

    /// A typical last-mile RTT of 50 ms.
    pub fn typical() -> Self {
        Self {
            latency_secs: 0.025,
        }
    }
}

/// The emulated path's downloader: a per-chunk HTTP exchange (serialized,
/// re-parsed and routed by the origin, re-parsed by the client) whose
/// delivery time is paced by a [`ShapedLink`]. The server borrows the
/// video, the link borrows the trace, and the request/framing buffers are
/// reused across chunks — one session allocates no per-chunk paths or
/// byte vectors.
pub struct EmulatedDownloader<'a> {
    server: ChunkServer<'a>,
    link: ShapedLink<'a>,
    video: &'a Video,
    cursor: TraceCursor,
    req: Request,
    req_bytes: Vec<u8>,
    resp_bytes: Vec<u8>,
    faults: Option<FaultState>,
}

/// The fault-injection state a downloader carries: the schedule, the
/// survival policy, and the consecutive-failure count that persists across
/// chunks.
struct FaultState {
    plan: FaultPlan,
    policy: RetryPolicy,
    consecutive_failures: u32,
}

impl<'a> EmulatedDownloader<'a> {
    /// Builds a downloader serving `video` over `trace` shaped by `net`.
    pub fn new(video: &'a Video, trace: &'a Trace, net: &NetConfig) -> Self {
        Self {
            server: ChunkServer::borrowed(video),
            link: ShapedLink::borrowed(trace, net.latency_secs),
            video,
            cursor: TraceCursor::new(),
            req: Request::get(""),
            req_bytes: Vec::new(),
            resp_bytes: Vec::new(),
            faults: None,
        }
    }

    /// [`new`](Self::new) with a fault schedule and a retry policy. Plans
    /// that can stall require a finite per-attempt timeout — otherwise the
    /// session would hang in virtual time.
    pub fn with_faults(
        video: &'a Video,
        trace: &'a Trace,
        net: &NetConfig,
        plan: FaultPlan,
        policy: RetryPolicy,
    ) -> Self {
        assert!(
            !plan.requires_timeout() || policy.timeout_secs.is_finite(),
            "a plan that can stall needs a finite RetryPolicy::timeout_secs"
        );
        let mut d = Self::new(video, trace, net);
        d.faults = Some(FaultState {
            plan,
            policy,
            consecutive_failures: 0,
        });
        d
    }

    /// The faulted download loop: attempt, and on failure back off and
    /// re-request (downshifted if the policy says so) until the chunk
    /// lands or the budget runs out.
    fn run_attempts(
        &mut self,
        index: usize,
        level: LevelIdx,
        start_secs: f64,
        fs: &mut FaultState,
    ) -> DownloadOutcome {
        let mut failures: u32 = 0;
        let mut retries: u32 = 0;
        let mut wasted_kbits = 0.0_f64;
        let mut fault_delay = 0.0_f64;
        let mut now = start_secs;
        loop {
            let req_level = if fs.policy.downshift_on_retry {
                LevelIdx(level.get().saturating_sub(failures as usize))
            } else {
                level
            };
            let fault = fs.plan.next_fault();
            let attempt_start = now;
            let deadline = attempt_start + fs.policy.timeout_secs;

            // The HTTP exchange, same framing dance as the clean path, but
            // the origin answers through the fault filter.
            self.req.path.clear();
            write!(self.req.path, "/video/{}/{index}.m4s", req_level.get())
                .expect("writing to a String cannot fail");
            self.req_bytes.clear();
            self.req
                .write_to(&mut self.req_bytes)
                .expect("serializing to memory cannot fail");
            let parsed_req = Request::read_from(&mut Cursor::new(&self.req_bytes[..]))
                .expect("we produced well-formed bytes")
                .expect("request present");
            let response = self.server.handle_faulted(&parsed_req, &fault);
            self.resp_bytes.clear();
            response
                .write_to(&mut self.resp_bytes)
                .expect("serializing to memory cannot fail");
            // Jitter delays the request on its way up; the body is then
            // paced (and possibly cut) by the link.
            let request_arrives =
                attempt_start + self.link.latency_secs() + fault.jitter_secs;
            let ft = self.link.transfer_faulted(
                self.resp_bytes.len(),
                request_arrives,
                &fault,
                deadline,
            );

            if ft.completed && response.status == 200 {
                // The client re-parses the delivered bytes.
                let parsed = Response::read_from(&mut Cursor::new(&self.resp_bytes[..]))
                    .expect("well-formed response bytes");
                let expected_bytes = chunk_bytes(self.video, index, req_level);
                assert_eq!(parsed.body.len(), expected_bytes, "body size mismatch");
                fs.consecutive_failures = 0;
                let delivered_kbits = self.video.chunk_size_kbits(index, req_level);
                return DownloadOutcome {
                    secs: ft.end_secs - start_secs,
                    delivered_level: req_level,
                    delivered_kbits,
                    throughput_kbps: delivered_kbits / (ft.end_secs - attempt_start),
                    retries,
                    wasted_kbits,
                    fault_delay_secs: fault_delay,
                    aborted: false,
                };
            }

            // Failed attempt. A short delivery exercises the client parser
            // (it must error, never panic) exactly like a real broken read.
            if ft.delivered_bytes < self.resp_bytes.len() {
                let _ = Response::read_from(&mut Cursor::new(
                    &self.resp_bytes[..ft.delivered_bytes],
                ));
            }
            wasted_kbits += ft.delivered_bytes as f64 * 8.0 / 1000.0;
            failures += 1;
            fs.consecutive_failures += 1;
            fault_delay += ft.end_secs - attempt_start;
            now = ft.end_secs;
            if failures > fs.policy.max_retries
                || fs.consecutive_failures >= fs.policy.max_consecutive_failures
            {
                return DownloadOutcome {
                    secs: now - start_secs,
                    delivered_level: req_level,
                    delivered_kbits: 0.0,
                    throughput_kbps: 0.0,
                    retries,
                    wasted_kbits,
                    fault_delay_secs: fault_delay,
                    aborted: true,
                };
            }
            let backoff = fs.policy.backoff_secs(failures - 1);
            now += backoff;
            fault_delay += backoff;
            retries += 1;
        }
    }
}

impl ChunkDownloader for EmulatedDownloader<'_> {
    fn download_secs(
        &mut self,
        index: usize,
        level: LevelIdx,
        _size_kbits: f64,
        start_secs: f64,
    ) -> f64 {
        // --- The HTTP exchange, for real ---------------------------------
        // Serialize the request and let the origin parse and route it.
        self.req.path.clear();
        write!(self.req.path, "/video/{}/{index}.m4s", level.get())
            .expect("writing to a String cannot fail");
        self.req_bytes.clear();
        self.req
            .write_to(&mut self.req_bytes)
            .expect("serializing to memory cannot fail");
        let parsed_req = Request::read_from(&mut Cursor::new(&self.req_bytes[..]))
            .expect("we produced well-formed bytes")
            .expect("request present");
        let response = self.server.handle(&parsed_req);
        assert_eq!(response.status, 200, "origin rejected {}", self.req.path);
        // Serialize the response; its delivery is paced by the shaped link.
        self.resp_bytes.clear();
        response
            .write_to(&mut self.resp_bytes)
            .expect("serializing to memory cannot fail");
        // Request crosses upstream (latency), response body is trace-paced.
        let request_arrives = start_secs + self.link.latency_secs();
        let done = self
            .link
            .transfer_at(&mut self.cursor, self.resp_bytes.len(), request_arrives);
        // The client re-parses the delivered bytes.
        let parsed = Response::read_from(&mut Cursor::new(&self.resp_bytes[..]))
            .expect("well-formed response bytes");
        let expected_bytes = chunk_bytes(self.video, index, level);
        assert_eq!(parsed.body.len(), expected_bytes, "body size mismatch");
        // ------------------------------------------------------------------
        done - start_secs
    }

    fn download_outcome(
        &mut self,
        index: usize,
        level: LevelIdx,
        size_kbits: f64,
        start_secs: f64,
    ) -> DownloadOutcome {
        match self.faults.take() {
            // No fault state: the provided-method equivalent, so the
            // unarmed downloader stays bit-identical to the pre-fault path.
            None => DownloadOutcome::clean(
                level,
                size_kbits,
                self.download_secs(index, level, size_kbits, start_secs),
            ),
            Some(mut fs) => {
                let out = self.run_attempts(index, level, start_secs, &mut fs);
                self.faults = Some(fs);
                out
            }
        }
    }
}

/// Runs one emulated streaming session over the shaped link.
///
/// Every chunk request is serialized, re-parsed by the origin, routed, and
/// the response re-parsed by the client — the full HTTP code path — while
/// the body's delivery time follows the trace exactly. The control loop is
/// [`abr_sim::run_session_core`] — the very same code the simulator runs —
/// so startup policy, robust bounds and live pacing behave identically on
/// both paths.
pub fn run_emulated_session<P: Predictor>(
    controller: &mut dyn BitrateController,
    predictor: P,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
    net: &NetConfig,
) -> SessionResult {
    let mut scratch = SessionScratch::new();
    let mut out = SessionResult::default();
    run_emulated_session_with(
        &mut scratch,
        &mut out,
        controller,
        predictor,
        trace,
        video,
        cfg,
        net,
    );
    out
}

/// [`run_emulated_session`] writing into caller-owned buffers, retaining
/// their allocations across sessions.
#[allow(clippy::too_many_arguments)]
pub fn run_emulated_session_with<P: Predictor>(
    scratch: &mut SessionScratch,
    out: &mut SessionResult,
    controller: &mut dyn BitrateController,
    predictor: P,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
    net: &NetConfig,
) {
    let mut downloader = EmulatedDownloader::new(video, trace, net);
    run_session_core(
        scratch,
        out,
        controller,
        predictor,
        &mut downloader,
        trace,
        video,
        cfg,
    );
}

/// [`run_emulated_session`] over a hostile link: `plan` schedules faults
/// per request, `policy` governs timeout/retry/backoff/abort. Fault
/// accounting (retries, wasted kilobits, delay lost to failures) lands in
/// the per-chunk records; an exhausted retry budget ends the session early
/// with the abort fields set.
pub fn run_emulated_session_faulted<P: Predictor>(
    controller: &mut dyn BitrateController,
    predictor: P,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
    net: &NetConfig,
    plan: FaultPlan,
    policy: &RetryPolicy,
) -> SessionResult {
    let mut scratch = SessionScratch::new();
    let mut out = SessionResult::default();
    run_emulated_session_faulted_with(
        &mut scratch,
        &mut out,
        controller,
        predictor,
        trace,
        video,
        cfg,
        net,
        plan,
        policy,
    );
    out
}

/// [`run_emulated_session_faulted`] writing into caller-owned buffers,
/// retaining their allocations across sessions.
#[allow(clippy::too_many_arguments)]
pub fn run_emulated_session_faulted_with<P: Predictor>(
    scratch: &mut SessionScratch,
    out: &mut SessionResult,
    controller: &mut dyn BitrateController,
    predictor: P,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
    net: &NetConfig,
    plan: FaultPlan,
    policy: &RetryPolicy,
) {
    let mut downloader =
        EmulatedDownloader::with_faults(video, trace, net, plan, policy.clone());
    run_session_core(
        scratch,
        out,
        controller,
        predictor,
        &mut downloader,
        trace,
        video,
        cfg,
    );
}

/// A reader that paces its consumption through a token bucket — the
/// receive-side stand-in for link shaping in the real-socket path.
struct ThrottledReader<R> {
    inner: R,
    bucket: TokenBucket,
    epoch: Instant,
}

impl<R: Read> ThrottledReader<R> {
    fn new(inner: R, rate_kbps: f64) -> Self {
        Self {
            inner,
            bucket: TokenBucket::new(rate_kbps, rate_kbps * 0.02), // 20 ms burst
            epoch: Instant::now(),
        }
    }
}

impl<R: Read> Read for ThrottledReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let cap = buf.len().min(16 * 1024);
        let n = self.inner.read(&mut buf[..cap])?;
        if n > 0 {
            let now = self.epoch.elapsed().as_secs_f64();
            let wait = self.bucket.acquire(n, now);
            if wait > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(wait));
            }
        }
        Ok(n)
    }
}

/// Runs a real-socket streaming session against a [`ChunkServer`] at
/// `addr`, throttled to `rate_kbps` at the receiver. The player fetches and
/// parses the manifest first, then streams every chunk, adapting with
/// `controller`. Wall-clock timings feed the same accounting as the
/// emulated path.
pub fn run_real_session<P: Predictor>(
    addr: SocketAddr,
    controller: &mut dyn BitrateController,
    predictor: P,
    rate_kbps: f64,
    cfg: &SimConfig,
) -> Result<SessionResult, HttpError> {
    controller.reset();
    let mut predictor = ErrorTracked::new(predictor, cfg.error_window);

    let stream = TcpStream::connect(addr)?;
    let throttled = ThrottledReader::new(stream.try_clone()?, rate_kbps);
    // Writes go to the raw stream; reads come back throttled.
    struct Duplex<R> {
        reader: R,
        writer: TcpStream,
    }
    impl<R: Read> Read for Duplex<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.reader.read(buf)
        }
    }
    impl<R> std::io::Write for Duplex<R> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.writer.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.writer.flush()
        }
    }
    let mut client = HttpClient::new(Duplex {
        reader: throttled,
        writer: stream,
    });

    // Bootstrap: fetch and parse the manifest.
    let manifest = client.get("/manifest.mpd")?;
    if manifest.status != 200 {
        return Err(HttpError::Malformed(format!(
            "manifest fetch returned {}",
            manifest.status
        )));
    }
    let video = mpd::parse(&String::from_utf8_lossy(&manifest.body))
        .map_err(|e| HttpError::Malformed(format!("manifest: {e}")))?;

    let mut qoe = QoeBreakdown::default();
    let mut records = Vec::with_capacity(video.num_chunks());
    let session_start = Instant::now();
    let mut buffer = 0.0_f64;
    let mut prev_level = None;
    let mut startup_secs = 0.0_f64;
    let mut last_throughput = None;
    let mut low_buffer_history: VecDeque<bool> =
        VecDeque::with_capacity(cfg.low_buffer_window_chunks);

    for k in 0..video.num_chunks() {
        let prediction = predictor.predict();
        let ctx = ControllerContext {
            chunk_index: k,
            buffer_secs: buffer,
            prev_level,
            prediction_kbps: prediction,
            robust_lower_kbps: predictor.robust_lower_bound(),
            last_throughput_kbps: last_throughput,
            recent_low_buffer: low_buffer_history.iter().any(|&b| b),
            startup: k == 0,
            video: &video,
            buffer_max_secs: cfg.buffer_max_secs,
            // The real-socket player runs in wall-clock time against a VOD
            // origin; live sessions go through the emulated/simulated core.
            live: None,
        };
        let level = controller.decide(&ctx).level;

        let t0 = session_start.elapsed().as_secs_f64();
        let resp = client.get(&format!("/video/{}/{k}.m4s", level.get()))?;
        if resp.status != 200 {
            return Err(HttpError::Malformed(format!(
                "chunk {k} returned {}",
                resp.status
            )));
        }
        let download_secs = (session_start.elapsed().as_secs_f64() - t0).max(1e-6);
        let size_kbits = resp.body.len() as f64 * 8.0 / 1000.0;
        let throughput = size_kbits / download_secs;

        let mut step =
            advance_buffer(buffer, download_secs, video.chunk_secs(), cfg.buffer_max_secs);
        if k == 0 {
            startup_secs = download_secs;
            step.rebuffer_secs = 0.0;
        }
        // Real time: honour the buffer-full wait by actually sleeping.
        if step.wait_secs > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(step.wait_secs));
        }

        qoe.push_chunk(&cfg.weights, video.ladder().kbps(level), step.rebuffer_secs);
        records.push(ChunkRecord {
            index: k,
            level,
            bitrate_kbps: video.ladder().kbps(level),
            size_kbits,
            start_secs: t0,
            download_secs,
            rebuffer_secs: step.rebuffer_secs,
            wait_secs: step.wait_secs,
            availability_wait_secs: 0.0,
            buffer_before_secs: buffer,
            buffer_after_secs: step.next_buffer_secs,
            throughput_kbps: throughput,
            prediction_kbps: prediction,
            retries: 0,
            wasted_kbits: 0.0,
            fault_delay_secs: 0.0,
            skipped: false,
            latency_secs: 0.0,
        });

        if low_buffer_history.len() == cfg.low_buffer_window_chunks {
            low_buffer_history.pop_front();
        }
        low_buffer_history.push_back(buffer < cfg.low_buffer_threshold_secs);
        predictor.observe(throughput);
        last_throughput = Some(throughput);
        buffer = step.next_buffer_secs;
        prev_level = Some(level);
    }

    qoe.set_startup(&cfg.weights, startup_secs);
    Ok(SessionResult {
        algorithm: controller.name().to_string(),
        records,
        startup_secs,
        total_secs: session_start.elapsed().as_secs_f64(),
        qoe,
        ..SessionResult::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultConfig, FaultKind};
    use abr_baselines::{BufferBased, RateBased};
    use abr_core::{Decision, Mpc};
    use abr_predictor::HarmonicMean;
    use abr_trace::Dataset;
    use abr_video::{envivio_video, LiveSchedule};

    /// A controller that always requests the same level.
    struct Fixed(LevelIdx);
    impl BitrateController for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn decide(&mut self, _ctx: &ControllerContext<'_>) -> Decision {
            Decision::level(self.0)
        }
    }

    fn stall(body_fraction: f64) -> Fault {
        Fault {
            kind: Some(FaultKind::Stall { body_fraction }),
            jitter_secs: 0.0,
        }
    }

    #[test]
    fn armed_but_disabled_faults_are_bit_identical_to_plain() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let net = NetConfig::typical();
        for trace in Dataset::Fcc.generate(17, 2) {
            let mut a = Mpc::robust();
            let plain = run_emulated_session(
                &mut a,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
                &net,
            );
            let mut b = Mpc::robust();
            let armed = run_emulated_session_faulted(
                &mut b,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
                &net,
                FaultPlan::new(5, FaultConfig::disabled()),
                &RetryPolicy::no_timeout(),
            );
            assert_eq!(plain, armed);
            assert_eq!(plain.qoe.qoe.to_bits(), armed.qoe.qoe.to_bits());
            for (x, y) in plain.records.iter().zip(&armed.records) {
                assert_eq!(x.download_secs.to_bits(), y.download_secs.to_bits());
                assert_eq!(x.throughput_kbps.to_bits(), y.throughput_kbps.to_bits());
            }
        }
    }

    #[test]
    fn service_unavailable_then_success_counts_wasted_bytes_once() {
        // Chunk 0 gets a 503 on its first attempt, everything else is
        // clean: the 503's full wire bytes are wasted exactly once, one
        // retry is recorded, and the re-request downshifts one level.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(1000.0, 600.0).unwrap();
        let plan = FaultPlan::scripted(vec![Fault {
            kind: Some(FaultKind::ServiceUnavailable),
            jitter_secs: 0.0,
        }]);
        let mut c = Fixed(LevelIdx(2));
        let r = run_emulated_session_faulted(
            &mut c,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::parity(),
            plan,
            &RetryPolicy::no_timeout(),
        );
        assert_eq!(r.records.len(), video.num_chunks());
        assert!(!r.aborted);
        let mut wire = Vec::new();
        Response::service_unavailable().write_to(&mut wire).unwrap();
        let expected_kbits = wire.len() as f64 * 8.0 / 1000.0;
        assert_eq!(r.records[0].retries, 1);
        assert_eq!(
            r.records[0].wasted_kbits.to_bits(),
            expected_kbits.to_bits(),
            "503 wire bytes wasted exactly once"
        );
        assert_eq!(r.records[0].level, LevelIdx(1), "re-request downshifted");
        for rec in &r.records[1..] {
            assert_eq!(rec.retries, 0);
            assert_eq!(rec.wasted_kbits, 0.0);
            assert_eq!(rec.fault_delay_secs, 0.0);
            assert_eq!(rec.level, LevelIdx(2));
        }
        assert_eq!(r.total_retries(), 1);
        assert!((r.total_wasted_kbits() - expected_kbits).abs() < 1e-12);
        assert!(r.qoe.qoe.is_finite());
    }

    #[test]
    fn timeout_fires_exactly_at_the_deadline_tick() {
        // A stalled first attempt ends at attempt_start + timeout on the
        // dot. The timeout also polices honest-but-slow attempts: on a
        // 1000 kbps link with a 2 s budget, the level-1 re-request
        // (3000 kbits) cannot finish either, so the chunk lands at level 0
        // on the third attempt. Every quantity is dyadic, so equality is
        // exact.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(1000.0, 600.0).unwrap();
        let plan = FaultPlan::scripted(vec![stall(0.5)]);
        let policy = RetryPolicy {
            timeout_secs: 2.0,
            ..RetryPolicy::no_timeout()
        };
        let mut c = Fixed(LevelIdx(2));
        let r = run_emulated_session_faulted(
            &mut c,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::parity(),
            plan,
            &policy,
        );
        assert_eq!(r.records[0].retries, 2);
        // Two timed-out attempts (2 s each) plus the first two backoffs.
        assert_eq!(r.records[0].fault_delay_secs, 2.0 + 0.25 + 2.0 + 0.5);
        // Each dead attempt's 2 s window at 1000 kbps delivered exactly
        // 2000 kbits (short of the 50 % stall point, short of the level-1
        // body) — all of it wasted.
        assert_eq!(r.records[0].wasted_kbits, 4000.0);
        assert_eq!(r.records[0].level, LevelIdx(0), "two downshifts");
        assert!(!r.aborted);
    }

    #[test]
    fn no_downshift_policy_keeps_the_requested_level() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(1000.0, 600.0).unwrap();
        let plan = FaultPlan::scripted(vec![Fault {
            kind: Some(FaultKind::NotFound),
            jitter_secs: 0.0,
        }]);
        let policy = RetryPolicy {
            downshift_on_retry: false,
            ..RetryPolicy::no_timeout()
        };
        let mut c = Fixed(LevelIdx(3));
        let r = run_emulated_session_faulted(
            &mut c,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::parity(),
            plan,
            &policy,
        );
        assert_eq!(r.records[0].retries, 1);
        assert_eq!(r.records[0].level, LevelIdx(3));
    }

    #[test]
    fn retry_budget_exhaustion_aborts_with_exact_accounting() {
        // Every attempt stalls: 5 attempts x 2 s timeouts plus backoffs
        // 0.25 + 0.5 + 1 + 2 = 13.75 s burned, then the session aborts.
        // The link is fast enough (4 Mbps) that clean level-2 chunks beat
        // the 2 s timeout — only scripted stalls fail.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(4000.0, 600.0).unwrap();
        let policy = RetryPolicy {
            timeout_secs: 2.0,
            ..RetryPolicy::no_timeout()
        };
        let expect_secs = 5.0 * 2.0 + (0.25 + 0.5 + 1.0 + 2.0);

        // Aborting on chunk 0 under FirstChunk startup: the burned time is
        // the startup delay, not a rebuffer.
        let plan = FaultPlan::new(
            3,
            FaultConfig {
                stall_prob: 1.0,
                ..FaultConfig::disabled()
            },
        );
        let mut c = Fixed(LevelIdx(2));
        let r = run_emulated_session_faulted(
            &mut c,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::parity(),
            plan,
            &policy,
        );
        assert!(r.aborted);
        assert!(r.records.is_empty());
        assert_eq!(r.abort_secs, expect_secs);
        assert_eq!(r.abort_retries, 4);
        assert_eq!(r.startup_secs, expect_secs);
        assert_eq!(r.qoe.total_rebuffer_secs, 0.0);
        assert!(r.qoe.qoe.is_finite());

        // Aborting mid-session: the burned time first drains the buffer
        // (4 s at steady state on this link), the rest is one rebuffer.
        let plan = FaultPlan::scripted(vec![
            Fault::none(),
            Fault::none(),
            Fault::none(),
            stall(0.0),
            stall(0.0),
            stall(0.0),
            stall(0.0),
            stall(0.0),
        ]);
        let mut c = Fixed(LevelIdx(2));
        let r = run_emulated_session_faulted(
            &mut c,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::parity(),
            plan,
            &policy,
        );
        assert!(r.aborted);
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.abort_secs, expect_secs);
        assert_eq!(r.abort_retries, 4);
        assert_eq!(r.abort_wasted_kbits, 0.0, "stalls at 0 % deliver nothing");
        let buffer_before = r.records[2].buffer_after_secs;
        assert!((r.qoe.total_rebuffer_secs - (expect_secs - buffer_before)).abs() < 1e-9);
        assert_eq!(r.qoe.rebuffer_events, 1);
        assert!(r.qoe.qoe.is_finite());
    }

    #[test]
    fn consecutive_failure_cap_aborts_before_retry_budget() {
        // Every request stalls, but the per-chunk retry budget is huge:
        // the consecutive-failure cap trips first.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(1000.0, 600.0).unwrap();
        let policy = RetryPolicy {
            timeout_secs: 1.0,
            max_retries: 100,
            max_consecutive_failures: 3,
            ..RetryPolicy::no_timeout()
        };
        let plan = FaultPlan::new(
            11,
            FaultConfig {
                stall_prob: 1.0,
                ..FaultConfig::disabled()
            },
        );
        let mut c = Fixed(LevelIdx(2));
        let r = run_emulated_session_faulted(
            &mut c,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::parity(),
            plan,
            &policy,
        );
        assert!(r.aborted);
        assert!(r.records.is_empty());
        assert_eq!(r.abort_retries, 2, "3 attempts = 2 retries before the cap");
    }

    #[test]
    fn faulted_sessions_all_finish_finite_for_every_controller() {
        // The acceptance bar: under a hostile mix of every fault kind, no
        // controller panics or hangs, and QoE stays finite.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let net = NetConfig::typical();
        let config = FaultConfig {
            jitter_max_secs: 0.05,
            ..FaultConfig::uniform(0.4)
        };
        let trace = Dataset::Fcc.generate(23, 1).remove(0);
        let mut algos: Vec<Box<dyn BitrateController>> = vec![
            Box::new(RateBased::paper_default()),
            Box::new(BufferBased::paper_default()),
            Box::new(Mpc::paper_default()),
            Box::new(Mpc::robust()),
        ];
        for (i, a) in algos.iter_mut().enumerate() {
            let r = run_emulated_session_faulted(
                a.as_mut(),
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
                &net,
                FaultPlan::new(100 + i as u64, config.clone()),
                &RetryPolicy::hostile(),
            );
            assert!(r.qoe.qoe.is_finite(), "{} produced non-finite QoE", r.algorithm);
            assert!(r.aborted || r.records.len() == video.num_chunks());
            assert!(r.total_secs.is_finite() && r.total_secs > 0.0);
            for rec in &r.records {
                assert!(rec.download_secs.is_finite() && rec.download_secs > 0.0);
                assert!(rec.wasted_kbits >= 0.0);
            }
        }
    }

    #[test]
    fn emulated_matches_simulator_at_zero_latency() {
        // The strongest cross-validation in the workspace: two independent
        // implementations of the streaming semantics must agree exactly
        // when the network adds nothing of its own.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        for trace in Dataset::Fcc.generate(3, 3) {
            let mut a = Mpc::robust();
            let sim = abr_sim::run_session(
                &mut a,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
            );
            let mut b = Mpc::robust();
            let emu = run_emulated_session(
                &mut b,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
                &NetConfig::parity(),
            );
            // HTTP headers add a few hundred bytes per chunk, so allow a
            // small relative tolerance rather than exact equality.
            let rel = (sim.qoe.qoe - emu.qoe.qoe).abs() / sim.qoe.qoe.abs().max(1.0);
            assert!(
                rel < 0.01,
                "sim {} vs emu {} (rel {rel})",
                sim.qoe.qoe,
                emu.qoe.qoe
            );
            // Same number of chunks, same ladder decisions almost surely.
            let same_levels = sim
                .records
                .iter()
                .zip(&emu.records)
                .filter(|(x, y)| x.level == y.level)
                .count();
            assert!(same_levels >= 60, "only {same_levels}/65 decisions agree");
        }
    }

    #[test]
    fn live_emulated_tracks_simulator_at_zero_latency() {
        // Live pacing lives in the shared stepping core, so the emulated
        // path inherits availability gating, the latency-aware QoE term and
        // catch-up skips verbatim; at zero link latency the two paths
        // differ only by HTTP header bytes.
        let video = envivio_video();
        let mut cfg = SimConfig::paper_default();
        cfg.weights.w_lat = 0.1;
        cfg.live = Some(LiveSchedule {
            encode_delay_secs: 0.0,
            max_buffer_secs: 12.0,
        });
        for trace in Dataset::Fcc.generate(7, 2) {
            let mut a = Mpc::robust();
            let sim = abr_sim::run_session(
                &mut a,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
            );
            let mut b = Mpc::robust();
            let emu = run_emulated_session(
                &mut b,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
                &NetConfig::parity(),
            );
            // Both paths must account live latency through the same hook.
            assert!(sim.qoe.total_latency_secs > 0.0);
            assert!(emu.qoe.total_latency_secs > 0.0);
            let rel = (sim.qoe.qoe - emu.qoe.qoe).abs() / sim.qoe.qoe.abs().max(1.0);
            assert!(
                rel < 0.02,
                "sim {} vs emu {} (rel {rel})",
                sim.qoe.qoe,
                emu.qoe.qoe
            );
            let same_levels = sim
                .records
                .iter()
                .zip(&emu.records)
                .filter(|(x, y)| x.level == y.level)
                .count();
            let n = sim.records.len().min(emu.records.len());
            assert!(
                same_levels * 10 >= n * 9,
                "only {same_levels}/{n} live decisions agree"
            );
            // The availability clock paces both paths identically: every
            // non-skipped record lands at a positive live latency below the
            // catch-up ceiling.
            for rec in emu.records.iter().filter(|r| !r.skipped) {
                assert!(rec.latency_secs > 0.0);
                assert!(rec.latency_secs < 12.0 + 3.0 * video.chunk_secs());
            }
        }
    }

    #[test]
    fn live_armed_but_disabled_faults_stay_bit_identical() {
        // The fault layer's deadline machinery doubles as the live edge
        // stall path; arming it with everything disabled must not perturb
        // a live session by a single bit.
        let video = envivio_video();
        let mut cfg = SimConfig::paper_default();
        cfg.weights.w_lat = 0.1;
        cfg.live = Some(LiveSchedule {
            encode_delay_secs: 2.0,
            max_buffer_secs: 10.0,
        });
        let net = NetConfig::parity();
        let trace = Dataset::Fcc.generate(29, 1).remove(0);
        let mut a = Mpc::robust();
        let plain = run_emulated_session(
            &mut a,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &net,
        );
        let mut b = Mpc::robust();
        let armed = run_emulated_session_faulted(
            &mut b,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &net,
            FaultPlan::new(5, FaultConfig::disabled()),
            &RetryPolicy::no_timeout(),
        );
        assert_eq!(plain, armed);
        assert_eq!(plain.qoe.qoe.to_bits(), armed.qoe.qoe.to_bits());
        assert_eq!(
            plain.qoe.total_latency_secs.to_bits(),
            armed.qoe.total_latency_secs.to_bits()
        );
        for (x, y) in plain.records.iter().zip(&armed.records) {
            assert_eq!(x.latency_secs.to_bits(), y.latency_secs.to_bits());
            assert_eq!(x.skipped, y.skipped);
        }
    }

    #[test]
    fn emulated_honors_mean_error_bound() {
        // The shared stepping core gives the emulated path the
        // RobustBound::MeanError branch the old duplicate loop silently
        // dropped; at zero latency it must track the simulator as closely
        // as the default max-error bound does.
        let video = envivio_video();
        let mut cfg = SimConfig::paper_default();
        cfg.robust_bound = abr_sim::RobustBound::MeanError;
        let trace = Dataset::Fcc.generate(5, 1).remove(0);
        let mut a = Mpc::robust();
        let sim =
            abr_sim::run_session(&mut a, HarmonicMean::paper_default(), &trace, &video, &cfg);
        let mut b = Mpc::robust();
        let emu = run_emulated_session(
            &mut b,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::parity(),
        );
        let rel = (sim.qoe.qoe - emu.qoe.qoe).abs() / sim.qoe.qoe.abs().max(1.0);
        assert!(rel < 0.01, "sim {} vs emu {}", sim.qoe.qoe, emu.qoe.qoe);
        let same_levels = sim
            .records
            .iter()
            .zip(&emu.records)
            .filter(|(x, y)| x.level == y.level)
            .count();
        assert!(same_levels >= 60, "only {same_levels}/65 decisions agree");
    }

    #[test]
    fn scratch_reuse_matches_fresh_emulated_runs() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let net = NetConfig::typical();
        let mut scratch = abr_sim::SessionScratch::new();
        let mut out = abr_sim::SessionResult::default();
        for trace in Dataset::Fcc.generate(11, 2) {
            let mut a = Mpc::robust();
            let fresh = run_emulated_session(
                &mut a,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
                &net,
            );
            let mut b = Mpc::robust();
            run_emulated_session_with(
                &mut scratch,
                &mut out,
                &mut b,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
                &net,
            );
            assert_eq!(fresh, out);
        }
    }

    #[test]
    fn latency_slows_the_session_down() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(2000.0, 60.0).unwrap();
        let mut a = RateBased::paper_default();
        let fast = run_emulated_session(
            &mut a,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::parity(),
        );
        let mut b = RateBased::paper_default();
        let slow = run_emulated_session(
            &mut b,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig {
                latency_secs: 0.2, // exaggerated RTT
            },
        );
        assert!(slow.total_secs > fast.total_secs);
        // Measured per-chunk throughput drops when RTT eats into it.
        assert!(
            slow.records[10].throughput_kbps < fast.records[10].throughput_kbps
        );
    }

    #[test]
    fn real_socket_session_streams_a_short_video() {
        // A tiny video (10 chunks x 0.4 s) over genuine TCP with 8 Mbps
        // receive throttling: finishes in well under a second of wall time.
        let ladder = abr_video::Ladder::new(vec![100.0, 300.0, 600.0]).unwrap();
        let video = abr_video::VideoBuilder::new(ladder)
            .chunks(10)
            .chunk_secs(0.4)
            .cbr();
        let addr = ChunkServer::spawn(video).unwrap();
        let mut controller = BufferBased::new(0.4, 1.0);
        let cfg = SimConfig {
            buffer_max_secs: 4.0,
            ..SimConfig::paper_default()
        };
        let r = run_real_session(
            addr,
            &mut controller,
            HarmonicMean::paper_default(),
            8_000.0,
            &cfg,
        )
        .unwrap();
        assert_eq!(r.records.len(), 10);
        assert!(r.qoe.qoe.is_finite());
        // Throughput measurements should be in the throttle's ballpark
        // (sleep quantization makes them noisy; just sanity-bound them).
        let measured = r.records[5].throughput_kbps;
        assert!(
            (500.0..=80_000.0).contains(&measured),
            "implausible measured throughput {measured}"
        );
    }
}
