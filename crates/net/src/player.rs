//! DASH players over the network substrate.
//!
//! [`run_emulated_session`] is the paper's testbed experiment in virtual
//! time: the player issues real HTTP requests (serialized and re-parsed
//! through the framing layer), the origin answers with byte-exact chunk
//! bodies, and transfer completion times follow a [`ShapedLink`] driven by
//! the throughput trace — the role `tc` plays on Emulab. Controller and
//! predictor see exactly the interface they see in `abr-sim`, and results
//! come back as the same [`SessionResult`] so the two paths are directly
//! comparable.
//!
//! [`run_real_session`] is the same player over genuine TCP sockets against
//! a [`ChunkServer`], with receive-side token-bucket throttling standing in
//! for link shaping. It bootstraps from the served manifest (fetch, parse,
//! stream), and runs in wall-clock time — integration tests use
//! short videos.

use crate::http::{chunk_bytes, ChunkServer, HttpClient, HttpError, Request, Response};
use crate::link::{ShapedLink, TokenBucket};
use crate::mpd;
use abr_core::{advance_buffer, BitrateController, ControllerContext};
use abr_predictor::{ErrorTracked, Predictor};
use abr_sim::{ChunkRecord, SessionResult, SimConfig, StartupPolicy};
use abr_trace::Trace;
use abr_video::{QoeBreakdown, Video};
use std::collections::VecDeque;
use std::io::{Cursor, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Network parameters of the emulated path.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// One-way latency of the shaped link, seconds.
    pub latency_secs: f64,
}

impl NetConfig {
    /// Zero-latency configuration: the emulated path then matches the
    /// analytic simulator exactly (used by the cross-validation tests).
    pub fn parity() -> Self {
        Self { latency_secs: 0.0 }
    }

    /// A typical last-mile RTT of 50 ms.
    pub fn typical() -> Self {
        Self {
            latency_secs: 0.025,
        }
    }
}

/// Runs one emulated streaming session over the shaped link.
///
/// Every chunk request is serialized, re-parsed by the origin, routed, and
/// the response re-parsed by the client — the full HTTP code path — while
/// the body's delivery time follows the trace exactly.
pub fn run_emulated_session<P: Predictor>(
    controller: &mut dyn BitrateController,
    predictor: P,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
    net: &NetConfig,
) -> SessionResult {
    controller.reset();
    let mut predictor = ErrorTracked::new(predictor, cfg.error_window);
    let server = ChunkServer::new(video.clone());

    let mut qoe = QoeBreakdown::default();
    let mut records = Vec::with_capacity(video.num_chunks());
    let link = ShapedLink::new(trace.clone(), net.latency_secs);
    let mut now = 0.0_f64;
    let mut buffer = 0.0_f64;
    let mut prev_level = None;
    let mut startup_secs = 0.0_f64;
    let mut last_throughput = None;
    let mut low_buffer_history: VecDeque<bool> =
        VecDeque::with_capacity(cfg.low_buffer_window_chunks);

    for k in 0..video.num_chunks() {
        let horizon_end = now + cfg.hint_horizon_secs.max(video.chunk_secs());
        let truth = trace.integrate_kbits(now, horizon_end) / (horizon_end - now);
        if truth > 0.0 {
            predictor.hint_future(truth);
        }
        let prediction = predictor.predict();
        let ctx = ControllerContext {
            chunk_index: k,
            buffer_secs: buffer,
            prev_level,
            prediction_kbps: prediction,
            robust_lower_kbps: predictor.robust_lower_bound(),
            last_throughput_kbps: last_throughput,
            recent_low_buffer: low_buffer_history.iter().any(|&b| b),
            startup: k == 0,
            video,
            buffer_max_secs: cfg.buffer_max_secs,
        };
        let decision = controller.decide(&ctx);
        let level = decision.level;

        if k == 0 {
            match cfg.startup {
                StartupPolicy::FirstChunk => {}
                StartupPolicy::Fixed(ts) => {
                    startup_secs = ts;
                    buffer = ts.min(cfg.buffer_max_secs);
                }
                StartupPolicy::Controller => {
                    let ts = decision.startup_wait_secs.unwrap_or(0.0);
                    startup_secs = ts;
                    buffer = ts.min(cfg.buffer_max_secs);
                }
            }
        }

        // --- The HTTP exchange, for real ---------------------------------
        // Serialize the request and let the origin parse and route it.
        let path = format!("/video/{}/{k}.m4s", level.get());
        let mut req_bytes = Vec::new();
        Request::get(&path)
            .write_to(&mut req_bytes)
            .expect("serializing to memory cannot fail");
        let parsed_req = Request::read_from(&mut Cursor::new(req_bytes))
            .expect("we produced well-formed bytes")
            .expect("request present");
        let response = server.handle(&parsed_req);
        assert_eq!(response.status, 200, "origin rejected {path}");
        // Serialize the response; its delivery is paced by the shaped link.
        let mut resp_bytes = Vec::new();
        response
            .write_to(&mut resp_bytes)
            .expect("serializing to memory cannot fail");
        // Request crosses upstream (latency), response body is trace-paced.
        let request_arrives = now + net.latency_secs;
        let done = link.transfer(resp_bytes.len(), request_arrives);
        let download_secs = done - now;
        // The client re-parses the delivered bytes.
        let parsed = Response::read_from(&mut Cursor::new(resp_bytes))
            .expect("well-formed response bytes");
        let expected_bytes = chunk_bytes(video, k, level);
        assert_eq!(parsed.body.len(), expected_bytes, "body size mismatch");
        // ------------------------------------------------------------------

        let size_kbits = video.chunk_size_kbits(k, level);
        let throughput = size_kbits / download_secs;
        let mut step =
            advance_buffer(buffer, download_secs, video.chunk_secs(), cfg.buffer_max_secs);
        if k == 0 && matches!(cfg.startup, StartupPolicy::FirstChunk) {
            startup_secs = download_secs;
            step.rebuffer_secs = 0.0;
        }

        qoe.push_chunk(&cfg.weights, video.ladder().kbps(level), step.rebuffer_secs);
        records.push(ChunkRecord {
            index: k,
            level,
            bitrate_kbps: video.ladder().kbps(level),
            size_kbits,
            start_secs: now,
            download_secs,
            rebuffer_secs: step.rebuffer_secs,
            wait_secs: step.wait_secs,
            availability_wait_secs: 0.0,
            buffer_before_secs: buffer,
            buffer_after_secs: step.next_buffer_secs,
            throughput_kbps: throughput,
            prediction_kbps: prediction,
        });

        if low_buffer_history.len() == cfg.low_buffer_window_chunks {
            low_buffer_history.pop_front();
        }
        low_buffer_history.push_back(buffer < cfg.low_buffer_threshold_secs);
        predictor.observe(throughput);
        last_throughput = Some(throughput);
        now += download_secs + step.wait_secs;
        buffer = step.next_buffer_secs;
        prev_level = Some(level);
    }

    qoe.set_startup(&cfg.weights, startup_secs);
    SessionResult {
        algorithm: controller.name().to_string(),
        records,
        startup_secs,
        total_secs: now,
        qoe,
    }
}

/// A reader that paces its consumption through a token bucket — the
/// receive-side stand-in for link shaping in the real-socket path.
struct ThrottledReader<R> {
    inner: R,
    bucket: TokenBucket,
    epoch: Instant,
}

impl<R: Read> ThrottledReader<R> {
    fn new(inner: R, rate_kbps: f64) -> Self {
        Self {
            inner,
            bucket: TokenBucket::new(rate_kbps, rate_kbps * 0.02), // 20 ms burst
            epoch: Instant::now(),
        }
    }
}

impl<R: Read> Read for ThrottledReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let cap = buf.len().min(16 * 1024);
        let n = self.inner.read(&mut buf[..cap])?;
        if n > 0 {
            let now = self.epoch.elapsed().as_secs_f64();
            let wait = self.bucket.acquire(n, now);
            if wait > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(wait));
            }
        }
        Ok(n)
    }
}

/// Runs a real-socket streaming session against a [`ChunkServer`] at
/// `addr`, throttled to `rate_kbps` at the receiver. The player fetches and
/// parses the manifest first, then streams every chunk, adapting with
/// `controller`. Wall-clock timings feed the same accounting as the
/// emulated path.
pub fn run_real_session<P: Predictor>(
    addr: SocketAddr,
    controller: &mut dyn BitrateController,
    predictor: P,
    rate_kbps: f64,
    cfg: &SimConfig,
) -> Result<SessionResult, HttpError> {
    controller.reset();
    let mut predictor = ErrorTracked::new(predictor, cfg.error_window);

    let stream = TcpStream::connect(addr)?;
    let throttled = ThrottledReader::new(stream.try_clone()?, rate_kbps);
    // Writes go to the raw stream; reads come back throttled.
    struct Duplex<R> {
        reader: R,
        writer: TcpStream,
    }
    impl<R: Read> Read for Duplex<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.reader.read(buf)
        }
    }
    impl<R> std::io::Write for Duplex<R> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.writer.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.writer.flush()
        }
    }
    let mut client = HttpClient::new(Duplex {
        reader: throttled,
        writer: stream,
    });

    // Bootstrap: fetch and parse the manifest.
    let manifest = client.get("/manifest.mpd")?;
    if manifest.status != 200 {
        return Err(HttpError::Malformed(format!(
            "manifest fetch returned {}",
            manifest.status
        )));
    }
    let video = mpd::parse(&String::from_utf8_lossy(&manifest.body))
        .map_err(|e| HttpError::Malformed(format!("manifest: {e}")))?;

    let mut qoe = QoeBreakdown::default();
    let mut records = Vec::with_capacity(video.num_chunks());
    let session_start = Instant::now();
    let mut buffer = 0.0_f64;
    let mut prev_level = None;
    let mut startup_secs = 0.0_f64;
    let mut last_throughput = None;
    let mut low_buffer_history: VecDeque<bool> =
        VecDeque::with_capacity(cfg.low_buffer_window_chunks);

    for k in 0..video.num_chunks() {
        let prediction = predictor.predict();
        let ctx = ControllerContext {
            chunk_index: k,
            buffer_secs: buffer,
            prev_level,
            prediction_kbps: prediction,
            robust_lower_kbps: predictor.robust_lower_bound(),
            last_throughput_kbps: last_throughput,
            recent_low_buffer: low_buffer_history.iter().any(|&b| b),
            startup: k == 0,
            video: &video,
            buffer_max_secs: cfg.buffer_max_secs,
        };
        let level = controller.decide(&ctx).level;

        let t0 = session_start.elapsed().as_secs_f64();
        let resp = client.get(&format!("/video/{}/{k}.m4s", level.get()))?;
        if resp.status != 200 {
            return Err(HttpError::Malformed(format!(
                "chunk {k} returned {}",
                resp.status
            )));
        }
        let download_secs = (session_start.elapsed().as_secs_f64() - t0).max(1e-6);
        let size_kbits = resp.body.len() as f64 * 8.0 / 1000.0;
        let throughput = size_kbits / download_secs;

        let mut step =
            advance_buffer(buffer, download_secs, video.chunk_secs(), cfg.buffer_max_secs);
        if k == 0 {
            startup_secs = download_secs;
            step.rebuffer_secs = 0.0;
        }
        // Real time: honour the buffer-full wait by actually sleeping.
        if step.wait_secs > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(step.wait_secs));
        }

        qoe.push_chunk(&cfg.weights, video.ladder().kbps(level), step.rebuffer_secs);
        records.push(ChunkRecord {
            index: k,
            level,
            bitrate_kbps: video.ladder().kbps(level),
            size_kbits,
            start_secs: t0,
            download_secs,
            rebuffer_secs: step.rebuffer_secs,
            wait_secs: step.wait_secs,
            availability_wait_secs: 0.0,
            buffer_before_secs: buffer,
            buffer_after_secs: step.next_buffer_secs,
            throughput_kbps: throughput,
            prediction_kbps: prediction,
        });

        if low_buffer_history.len() == cfg.low_buffer_window_chunks {
            low_buffer_history.pop_front();
        }
        low_buffer_history.push_back(buffer < cfg.low_buffer_threshold_secs);
        predictor.observe(throughput);
        last_throughput = Some(throughput);
        buffer = step.next_buffer_secs;
        prev_level = Some(level);
    }

    qoe.set_startup(&cfg.weights, startup_secs);
    Ok(SessionResult {
        algorithm: controller.name().to_string(),
        records,
        startup_secs,
        total_secs: session_start.elapsed().as_secs_f64(),
        qoe,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_baselines::{BufferBased, RateBased};
    use abr_core::Mpc;
    use abr_predictor::HarmonicMean;
    use abr_trace::Dataset;
    use abr_video::envivio_video;

    #[test]
    fn emulated_matches_simulator_at_zero_latency() {
        // The strongest cross-validation in the workspace: two independent
        // implementations of the streaming semantics must agree exactly
        // when the network adds nothing of its own.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        for trace in Dataset::Fcc.generate(3, 3) {
            let mut a = Mpc::robust();
            let sim = abr_sim::run_session(
                &mut a,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
            );
            let mut b = Mpc::robust();
            let emu = run_emulated_session(
                &mut b,
                HarmonicMean::paper_default(),
                &trace,
                &video,
                &cfg,
                &NetConfig::parity(),
            );
            // HTTP headers add a few hundred bytes per chunk, so allow a
            // small relative tolerance rather than exact equality.
            let rel = (sim.qoe.qoe - emu.qoe.qoe).abs() / sim.qoe.qoe.abs().max(1.0);
            assert!(
                rel < 0.01,
                "sim {} vs emu {} (rel {rel})",
                sim.qoe.qoe,
                emu.qoe.qoe
            );
            // Same number of chunks, same ladder decisions almost surely.
            let same_levels = sim
                .records
                .iter()
                .zip(&emu.records)
                .filter(|(x, y)| x.level == y.level)
                .count();
            assert!(same_levels >= 60, "only {same_levels}/65 decisions agree");
        }
    }

    #[test]
    fn latency_slows_the_session_down() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(2000.0, 60.0).unwrap();
        let mut a = RateBased::paper_default();
        let fast = run_emulated_session(
            &mut a,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig::parity(),
        );
        let mut b = RateBased::paper_default();
        let slow = run_emulated_session(
            &mut b,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
            &NetConfig {
                latency_secs: 0.2, // exaggerated RTT
            },
        );
        assert!(slow.total_secs > fast.total_secs);
        // Measured per-chunk throughput drops when RTT eats into it.
        assert!(
            slow.records[10].throughput_kbps < fast.records[10].throughput_kbps
        );
    }

    #[test]
    fn real_socket_session_streams_a_short_video() {
        // A tiny video (10 chunks x 0.4 s) over genuine TCP with 8 Mbps
        // receive throttling: finishes in well under a second of wall time.
        let ladder = abr_video::Ladder::new(vec![100.0, 300.0, 600.0]).unwrap();
        let video = abr_video::VideoBuilder::new(ladder)
            .chunks(10)
            .chunk_secs(0.4)
            .cbr();
        let addr = ChunkServer::spawn(video).unwrap();
        let mut controller = BufferBased::new(0.4, 1.0);
        let cfg = SimConfig {
            buffer_max_secs: 4.0,
            ..SimConfig::paper_default()
        };
        let r = run_real_session(
            addr,
            &mut controller,
            HarmonicMean::paper_default(),
            8_000.0,
            &cfg,
        )
        .unwrap();
        assert_eq!(r.records.len(), 10);
        assert!(r.qoe.qoe.is_finite());
        // Throughput measurements should be in the throttle's ballpark
        // (sleep quantization makes them noisy; just sanity-bound them).
        let measured = r.records[5].throughput_kbps;
        assert!(
            (500.0..=80_000.0).contains(&measured),
            "implausible measured throughput {measured}"
        );
    }
}
