//! Metric kernels for multi-player runs, after Yin et al., "On the
//! Efficiency and Fairness of Multiplayer HTTP-based Adaptive Video
//! Streaming": Jain fairness over allocations (and over QoE, shifted to be
//! scale-safe for negative scores), link utilization, and bitrate
//! oscillation/instability under competition.
//!
//! Pure functions over slices — no simulator types — so the harness, the
//! serve coordinator, and the tests can all use them on raw series.

/// Jain's fairness index over a set of allocations: `(Σx)² / (n·Σx²)`,
/// 1.0 = perfectly fair, `1/n` = one player takes everything.
///
/// ```
/// use abr_net::jain_index;
/// assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
/// assert!((jain_index(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Jain index over QoE scores. QoE is an interval scale (rebuffering makes
/// it negative), and Jain on raw negatives is meaningless — `(Σx)²` of
/// `[-1, 1]` is 0 — so when any score is negative the whole set is shifted
/// to put the minimum at zero first. All-equal scores (including all-equal
/// negatives) are perfectly fair: 1.0.
pub fn qoe_jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    if min < 0.0 {
        let shifted: Vec<f64> = xs.iter().map(|x| x - min).collect();
        jain_index(&shifted)
    } else {
        jain_index(xs)
    }
}

/// Number of bitrate-level switches in a decision sequence: adjacent
/// unequal pairs. The multiplayer paper's "instability count".
pub fn oscillation_count(levels: &[usize]) -> usize {
    levels.windows(2).filter(|w| w[0] != w[1]).count()
}

/// Relative bitrate instability of one player's chunk series:
/// `Σ|b[k+1] − b[k]| / Σ b[k]` — 0.0 for a constant (or empty) series,
/// larger the more the player oscillates relative to what it streams.
pub fn bitrate_instability(kbps: &[f64]) -> f64 {
    let denom: f64 = kbps.iter().sum();
    if denom <= 0.0 {
        return 0.0;
    }
    let switched: f64 = kbps.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    switched / denom
}

/// Link utilization: fraction of the bottleneck's integrated capacity that
/// carried useful (or wasted-but-transferred) video bytes. 0.0 when the
/// link had no capacity at all over the window.
pub fn link_utilization(delivered_kbits: f64, capacity_kbits: f64) -> f64 {
    if capacity_kbits <= 0.0 {
        return 0.0;
    }
    delivered_kbits / capacity_kbits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_basics() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert!(jain_index(&[]) == 1.0);
        let mixed = jain_index(&[2.0, 1.0]);
        assert!(mixed > 0.5 && mixed < 1.0);
    }

    #[test]
    fn jain_index_hand_computed() {
        // x = [4, 2]: (4+2)² / (2·(16+4)) = 36/40 = 0.9.
        assert!((jain_index(&[4.0, 2.0]) - 0.9).abs() < 1e-12);
        // x = [3, 1, 0]: 16 / (3·10) = 8/15.
        assert!((jain_index(&[3.0, 1.0, 0.0]) - 8.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerates() {
        // One player is trivially fair.
        assert_eq!(jain_index(&[123.4]), 1.0);
        // Zero throughput everywhere: nobody is being favored.
        assert_eq!(jain_index(&[0.0, 0.0, 0.0]), 1.0);
    }

    #[test]
    fn qoe_jain_shifts_negative_scores() {
        // Raw Jain on [-1, 1] would be 0 (sum is 0); shifted to [0, 2] it is
        // 4 / (2·4) = 0.5.
        assert!((qoe_jain(&[-1.0, 1.0]) - 0.5).abs() < 1e-12);
        // All-equal negative scores are perfectly fair.
        assert_eq!(qoe_jain(&[-3.0, -3.0, -3.0]), 1.0);
        // Non-negative input takes the plain Jain path bit-for-bit.
        assert_eq!(
            qoe_jain(&[4.0, 2.0]).to_bits(),
            jain_index(&[4.0, 2.0]).to_bits()
        );
        // Degenerates.
        assert_eq!(qoe_jain(&[]), 1.0);
        assert_eq!(qoe_jain(&[-7.0]), 1.0);
    }

    #[test]
    fn oscillation_count_hand_computed() {
        assert_eq!(oscillation_count(&[]), 0);
        assert_eq!(oscillation_count(&[2]), 0);
        assert_eq!(oscillation_count(&[2, 2, 2, 2]), 0);
        // 1→2, 2→1, 1→1 (no), 1→4: three switches.
        assert_eq!(oscillation_count(&[1, 2, 1, 1, 4]), 3);
        assert_eq!(oscillation_count(&[0, 1, 0, 1]), 3);
    }

    #[test]
    fn bitrate_instability_hand_computed() {
        assert_eq!(bitrate_instability(&[]), 0.0);
        assert_eq!(bitrate_instability(&[750.0]), 0.0);
        assert_eq!(bitrate_instability(&[750.0, 750.0, 750.0]), 0.0);
        // |1200−300| + |1200−1200| = 900 over Σ = 2700: 1/3.
        assert!((bitrate_instability(&[300.0, 1200.0, 1200.0]) - 1.0 / 3.0).abs() < 1e-12);
        // |1200−300| + |300−1200| = 1800 over Σ = 1800: 1.
        assert!((bitrate_instability(&[300.0, 1200.0, 300.0]) - 1.0).abs() < 1e-12);
        // Zero throughput series never divides by zero.
        assert_eq!(bitrate_instability(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn link_utilization_hand_computed() {
        assert!((link_utilization(500.0, 1000.0) - 0.5).abs() < 1e-12);
        assert_eq!(link_utilization(0.0, 1000.0), 0.0);
        // Dead link: utilization is defined as 0, not NaN/inf.
        assert_eq!(link_utilization(500.0, 0.0), 0.0);
        assert_eq!(link_utilization(0.0, 0.0), 0.0);
    }
}
