//! Multiple players sharing a bottleneck link — the extension the paper's
//! Section 8 sketches ("a natural question is to extend these insights to
//! multiple players and interaction with cross traffic").
//!
//! The model is the standard one from the FESTIVE line of work: `N` players
//! stream (the same video) through one bottleneck whose capacity `C(t)`
//! follows a throughput trace; at any instant the active downloads share
//! the capacity **equally** (idealized TCP fair share), so a player
//! downloading alone gets `C(t)` while `k` concurrent downloads get
//! `C(t)/k` each. Players that pause (full buffer, or between decisions)
//! free their share for the others — which is exactly the ON/OFF dynamic
//! that makes multi-player adaptation interesting: a player's *observed*
//! per-chunk throughput depends on everyone else's schedule, so throughput
//! estimates are biased, and aggressive algorithms can starve timid ones.
//!
//! [`run_shared_session`] advances all players in one event-driven virtual
//! timeline (events: chunk completions, idle wake-ups, timeouts, trace
//! rate changes) and returns one [`SessionResult`](abr_sim::SessionResult)
//! per player plus link accounting and the multiplayer fairness metrics
//! ([`jain_index`], [`qoe_jain`], [`link_utilization`],
//! [`bitrate_instability`], [`oscillation_count`]).
//!
//! Two schedulers, one timeline: the [`engine`] module runs the indexed
//! fleet-scale loop (timer heap + downloading set, O(active + log n) per
//! event) that all public entry points use, and [`reference`] preserves
//! the original O(n)-per-event small-N loop as the differential oracle —
//! `tests/multiplayer_differential.rs` pins the two bit-identical.

mod engine;
pub mod metrics;
pub mod reference;
mod rt;

pub use metrics::{
    bitrate_instability, jain_index, link_utilization, oscillation_count, qoe_jain,
};

use crate::fault::{FaultConfig, FaultPlan, RetryPolicy};
use abr_core::BitrateController;
use abr_predictor::Predictor;
use abr_sim::{SessionResult, SimConfig};
use abr_trace::Trace;
use abr_video::Video;

/// One player's slot in the shared session.
pub struct SharedPlayer {
    /// The adaptation algorithm.
    pub controller: Box<dyn BitrateController>,
    /// The throughput predictor (fed per-flow observed throughput).
    pub predictor: Box<dyn Predictor>,
    /// When this player joins the bottleneck, seconds.
    pub start_offset_secs: f64,
}

/// Outcome of a shared-bottleneck run.
pub struct SharedOutcome {
    /// One result per player, in input order.
    pub sessions: Vec<SessionResult>,
    /// Jain fairness index over the players' average bitrates.
    pub bitrate_fairness: f64,
    /// Jain fairness index over the players' QoE scores (shifted to be
    /// scale-safe when rebuffering drives scores negative).
    pub qoe_fairness: f64,
    /// Fraction of the link's integrated capacity actually transferred.
    pub utilization: f64,
    /// Per-player bitrate-switch counts, in input order.
    pub oscillations: Vec<usize>,
    /// Per-player relative bitrate instability (`Σ|Δb| / Σb`), in input
    /// order.
    pub instabilities: Vec<f64>,
    /// Total kilobits delivered across all players.
    pub delivered_kbits: f64,
    /// Wall-clock span of the whole run, seconds.
    pub span_secs: f64,
}

/// Fault injection for a shared-bottleneck run: per-request odds, the
/// retry policy every player follows, and the base seed (player `i` draws
/// from an independent stream derived from it).
#[derive(Debug, Clone)]
pub struct SharedFaults {
    /// Per-request fault odds, shared by all players.
    pub config: FaultConfig,
    /// Timeout/retry/backoff policy, shared by all players.
    pub policy: RetryPolicy,
    /// Base seed; player `i` uses `seed ^ i · φ64`.
    pub seed: u64,
}

impl SharedFaults {
    pub(crate) fn plan_for(&self, player: usize) -> FaultPlan {
        let seed = self.seed ^ (player as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        FaultPlan::new(seed, self.config.clone())
    }
}

/// Runs `players` against a shared bottleneck following `trace`.
///
/// All players stream `video` under `cfg` (only the `FirstChunk` startup
/// policy is supported in the shared setting). Returns per-player results
/// and fairness accounting.
pub fn run_shared_session(
    players: Vec<SharedPlayer>,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
) -> SharedOutcome {
    run_shared_session_faulted(players, trace, video, cfg, None)
}

/// [`run_shared_session`] over a hostile bottleneck: when `faults` is set,
/// every player's requests draw from an independent deterministic fault
/// stream and survive via the shared [`RetryPolicy`]. With `faults` at
/// `None` this *is* `run_shared_session` — the fault bookkeeping sits
/// entirely outside the fault-free arithmetic.
pub fn run_shared_session_faulted(
    players: Vec<SharedPlayer>,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
    faults: Option<&SharedFaults>,
) -> SharedOutcome {
    engine::run_shared_session_faulted(players, trace, video, cfg, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_baselines::{BufferBased, RateBased};
    use abr_core::{ControllerContext, Mpc};
    use abr_predictor::HarmonicMean;
    use abr_video::{envivio_video, LevelIdx};

    fn player(
        controller: Box<dyn BitrateController>,
        offset: f64,
    ) -> SharedPlayer {
        SharedPlayer {
            controller,
            predictor: Box::new(HarmonicMean::paper_default()),
            start_offset_secs: offset,
        }
    }

    #[test]
    fn single_player_matches_solo_simulator() {
        // With one player the shared bottleneck degenerates to the plain
        // simulator: identical decisions and QoE.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::new(vec![(30.0, 2200.0), (30.0, 900.0)]).unwrap();
        let shared = run_shared_session(
            vec![player(Box::new(Mpc::robust()), 0.0)],
            &trace,
            &video,
            &cfg,
        );
        let mut solo_ctrl = Mpc::robust();
        let solo = abr_sim::run_session(
            &mut solo_ctrl,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
        );
        let s = &shared.sessions[0];
        assert_eq!(s.records.len(), 65);
        let rel = (s.qoe.qoe - solo.qoe.qoe).abs() / solo.qoe.qoe.abs().max(1.0);
        // The solo simulator also hints oracle predictors and computes
        // integrals identically; harmonic-mean prediction makes the paths
        // equivalent up to float noise.
        assert!(
            rel < 1e-6,
            "shared(1) {} vs solo {}",
            s.qoe.qoe,
            solo.qoe.qoe
        );
        assert!((shared.bitrate_fairness - 1.0).abs() < 1e-12);
        assert!((shared.qoe_fairness - 1.0).abs() < 1e-12);
        assert!(shared.utilization > 0.0 && shared.utilization <= 1.0 + 1e-9);
        assert_eq!(shared.oscillations.len(), 1);
        assert_eq!(shared.instabilities.len(), 1);
    }

    #[test]
    fn two_identical_players_share_fairly() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(4000.0, 60.0).unwrap();
        let shared = run_shared_session(
            vec![
                player(Box::new(BufferBased::paper_default()), 0.0),
                player(Box::new(BufferBased::paper_default()), 0.0),
            ],
            &trace,
            &video,
            &cfg,
        );
        assert!(shared.bitrate_fairness > 0.98, "{}", shared.bitrate_fairness);
        for s in &shared.sessions {
            assert_eq!(s.records.len(), 65);
            // 2000 kbps fair share: nobody should average above it long-run
            // by much, nor collapse to the floor.
            let avg = s.avg_bitrate_kbps();
            assert!((350.0..=2300.0).contains(&avg), "avg {avg}");
        }
    }

    #[test]
    fn contention_lowers_observed_throughput() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(3000.0, 60.0).unwrap();
        // Fixed-level controllers isolate the bandwidth accounting.
        struct Fixed;
        impl BitrateController for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn decide(&mut self, _ctx: &ControllerContext<'_>) -> abr_core::Decision {
                abr_core::Decision::level(LevelIdx(2))
            }
        }
        let solo = run_shared_session(
            vec![player(Box::new(Fixed), 0.0)],
            &trace,
            &video,
            &cfg,
        );
        let duo = run_shared_session(
            vec![player(Box::new(Fixed), 0.0), player(Box::new(Fixed), 0.0)],
            &trace,
            &video,
            &cfg,
        );
        let solo_thr = solo.sessions[0].records[1].throughput_kbps;
        let duo_thr = duo.sessions[0].records[1].throughput_kbps;
        assert!((solo_thr - 3000.0).abs() < 1.0, "{solo_thr}");
        // With both flows active the early chunks see ~half the link.
        assert!(
            duo_thr < 2000.0,
            "expected contention to bite: {duo_thr} kbps"
        );
    }

    #[test]
    fn on_off_dynamics_let_late_joiner_in() {
        // Player 1 fills its buffer and goes ON/OFF; a late joiner must
        // still complete and get a reasonable share.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(3000.0, 60.0).unwrap();
        let shared = run_shared_session(
            vec![
                player(Box::new(RateBased::paper_default()), 0.0),
                player(Box::new(RateBased::paper_default()), 40.0),
            ],
            &trace,
            &video,
            &cfg,
        );
        assert_eq!(shared.sessions[1].records.len(), 65);
        assert!(shared.sessions[1].avg_bitrate_kbps() > 350.0);
        assert!(shared.bitrate_fairness > 0.8, "{}", shared.bitrate_fairness);
    }

    #[test]
    fn delivered_volume_matches_sessions() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(5000.0, 60.0).unwrap();
        let shared = run_shared_session(
            vec![
                player(Box::new(BufferBased::paper_default()), 0.0),
                player(Box::new(RateBased::paper_default()), 5.0),
            ],
            &trace,
            &video,
            &cfg,
        );
        let session_total: f64 = shared
            .sessions
            .iter()
            .flat_map(|s| s.records.iter())
            .map(|r| r.size_kbits)
            .sum();
        assert!(
            (shared.delivered_kbits - session_total).abs() < 1e-3 * session_total,
            "link accounting {} vs session accounting {session_total}",
            shared.delivered_kbits
        );
    }

    fn hostile_faults(seed: u64) -> SharedFaults {
        SharedFaults {
            config: FaultConfig::uniform(0.25),
            policy: RetryPolicy::hostile(),
            seed,
        }
    }

    #[test]
    fn faulted_shared_run_is_deterministic_and_finite() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::new(vec![(40.0, 2500.0), (40.0, 1200.0)]).unwrap();
        let faults = hostile_faults(11);
        let run = |_: ()| {
            run_shared_session_faulted(
                vec![
                    player(Box::new(BufferBased::paper_default()), 0.0),
                    player(Box::new(RateBased::paper_default()), 3.0),
                ],
                &trace,
                &video,
                &cfg,
                Some(&faults),
            )
        };
        let a = run(());
        let b = run(());
        assert_eq!(a.sessions.len(), b.sessions.len());
        for (sa, sb) in a.sessions.iter().zip(&b.sessions) {
            assert!(sa.qoe.qoe.is_finite());
            assert_eq!(sa.qoe.qoe.to_bits(), sb.qoe.qoe.to_bits());
            assert_eq!(sa.records.len(), sb.records.len());
            assert_eq!(sa.aborted, sb.aborted);
            assert_eq!(sa.total_retries(), sb.total_retries());
            assert_eq!(
                sa.total_wasted_kbits().to_bits(),
                sb.total_wasted_kbits().to_bits()
            );
            for (ra, rb) in sa.records.iter().zip(&sb.records) {
                assert_eq!(ra.level, rb.level);
                assert_eq!(ra.download_secs.to_bits(), rb.download_secs.to_bits());
                assert_eq!(ra.wasted_kbits.to_bits(), rb.wasted_kbits.to_bits());
            }
        }
        // A quarter of requests faulted: some retry traffic must show up
        // somewhere across both players.
        let activity: u32 = a.sessions.iter().map(|s| s.total_retries()).sum();
        assert!(activity > 0, "hostile plan produced no retries");
    }

    #[test]
    fn faulted_players_with_different_seeds_diverge() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(3000.0, 60.0).unwrap();
        let run = |seed| {
            run_shared_session_faulted(
                vec![player(Box::new(BufferBased::paper_default()), 0.0)],
                &trace,
                &video,
                &cfg,
                Some(&hostile_faults(seed)),
            )
        };
        let a = run(5);
        let b = run(6);
        let fingerprint = |o: &SharedOutcome| {
            (
                o.sessions[0].total_retries(),
                o.sessions[0].total_wasted_kbits().to_bits(),
                o.sessions[0].records.len(),
            )
        };
        assert_ne!(
            fingerprint(&a),
            fingerprint(&b),
            "different seeds should schedule different faults"
        );
    }

    #[test]
    fn shared_fault_accounting_lands_in_records() {
        // All-stall plan with a single retry budget: the session aborts and
        // every wasted byte / retry is accounted on the result.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(2000.0, 60.0).unwrap();
        let faults = SharedFaults {
            config: FaultConfig {
                stall_prob: 1.0,
                ..FaultConfig::disabled()
            },
            policy: RetryPolicy {
                timeout_secs: 2.0,
                max_retries: 1,
                ..RetryPolicy::hostile()
            },
            seed: 3,
        };
        let out = run_shared_session_faulted(
            vec![player(Box::new(BufferBased::paper_default()), 0.0)],
            &trace,
            &video,
            &cfg,
            Some(&faults),
        );
        let s = &out.sessions[0];
        assert!(s.aborted, "all requests stall: the session must abort");
        assert!(s.records.is_empty());
        // Two attempts, each timed out after 2 s, one backoff in between.
        assert_eq!(s.abort_retries, 1);
        let expected = 2.0 + faults.policy.backoff_secs(0) + 2.0;
        assert!(
            (s.abort_secs - expected).abs() < 0.1,
            "abort after {} (expected ~{expected})",
            s.abort_secs
        );
        assert!(s.abort_wasted_kbits > 0.0, "stalled bytes must be wasted");
        assert!(s.qoe.qoe.is_finite());
    }

    #[test]
    fn scaled_engine_matches_reference_on_mixed_faulted_run() {
        // Spot check of the differential contract (the proptest sweeps the
        // space): a faulted 4-player mixed-controller run must come out of
        // the indexed engine and the preserved reference loop bit-identical.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::new(vec![(25.0, 3500.0), (20.0, 1400.0), (30.0, 2600.0)]).unwrap();
        let faults = hostile_faults(17);
        let make_players = || {
            vec![
                player(Box::new(Mpc::robust()), 0.0),
                player(Box::new(BufferBased::paper_default()), 2.5),
                player(Box::new(RateBased::paper_default()), 7.0),
                player(Box::new(BufferBased::paper_default()), 11.0),
            ]
        };
        let fast =
            run_shared_session_faulted(make_players(), &trace, &video, &cfg, Some(&faults));
        let slow = reference::run_shared_session_faulted(
            make_players(),
            &trace,
            &video,
            &cfg,
            Some(&faults),
        );
        assert_eq!(fast.span_secs.to_bits(), slow.span_secs.to_bits());
        assert_eq!(fast.delivered_kbits.to_bits(), slow.delivered_kbits.to_bits());
        assert_eq!(fast.bitrate_fairness.to_bits(), slow.bitrate_fairness.to_bits());
        assert_eq!(fast.qoe_fairness.to_bits(), slow.qoe_fairness.to_bits());
        assert_eq!(fast.utilization.to_bits(), slow.utilization.to_bits());
        assert_eq!(fast.oscillations, slow.oscillations);
        for (a, b) in fast.sessions.iter().zip(&slow.sessions) {
            assert_eq!(a.qoe.qoe.to_bits(), b.qoe.qoe.to_bits());
            assert_eq!(a.records.len(), b.records.len());
            for (ra, rb) in a.records.iter().zip(&b.records) {
                assert_eq!(ra.level, rb.level);
                assert_eq!(ra.start_secs.to_bits(), rb.start_secs.to_bits());
                assert_eq!(ra.download_secs.to_bits(), rb.download_secs.to_bits());
                assert_eq!(ra.throughput_kbps.to_bits(), rb.throughput_kbps.to_bits());
            }
        }
    }

    #[test]
    fn scaled_engine_handles_a_large_fleet() {
        // 256 players on one link: the indexed engine must converge, keep
        // the link busy, and account every delivered kilobit. (The
        // reference loop at this size is exactly what the rewrite retires.)
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(200_000.0, 60.0).unwrap();
        let players: Vec<SharedPlayer> = (0..256)
            .map(|i| player(Box::new(BufferBased::paper_default()), (i % 16) as f64 * 0.5))
            .collect();
        let out = run_shared_session(players, &trace, &video, &cfg);
        assert_eq!(out.sessions.len(), 256);
        for s in &out.sessions {
            assert_eq!(s.records.len(), 65, "every player must finish");
        }
        assert!(out.utilization > 0.1, "utilization {}", out.utilization);
        assert!(out.bitrate_fairness > 0.9, "{}", out.bitrate_fairness);
        let session_total: f64 = out
            .sessions
            .iter()
            .flat_map(|s| s.records.iter())
            .map(|r| r.size_kbits)
            .sum();
        assert!((out.delivered_kbits - session_total).abs() < 1e-3 * session_total);
    }
}
