//! Fleet-scale shared-bottleneck engine.
//!
//! Same virtual timeline, same per-player transitions, same floats as the
//! [`reference`](super::reference) loop — but the three O(n) scans the
//! reference performs per event are replaced with indexes:
//!
//! - a **timer heap** of `(time, player, gen)` entries holds every idle
//!   wake-up, deferred attempt start, and timeout deadline, so the due set
//!   and the next timer bound cost O(log n) instead of a sweep;
//! - an ordered **downloading set** yields the active share set by walking
//!   only flows that are actually downloading (at ON/OFF steady state most
//!   of a fleet is OFF filling buffers, so this is far below n);
//! - a **finished counter** replaces the all-finished scan.
//!
//! Bit-identity with the reference is load-bearing — published numbers are
//! defined by that loop — and two details carry it:
//!
//! 1. **No spurious events.** A stale timer surviving a state change could
//!    split one `dt` step into two; `(r−a)−b ≠ r−(a+b)` in floats, so even
//!    a no-op extra step changes results. Every state transition bumps the
//!    player's generation counter, and heap entries are only trusted when
//!    their generation matches; stale entries are dropped lazily on pop.
//! 2. **Same order everywhere.** Due players are processed in ascending
//!    index order (the reference's `for i in 0..n` sweep), and the active
//!    set iterates ascending so `delivered` accumulates in the reference's
//!    exact order.
//!
//! `tests/multiplayer_differential.rs` pins the two loops against each
//! other — same seeds, same schedules, bit-identical outcomes.

use super::rt::{
    build_runtimes, complete_chunk, fail_attempt, finalize, start_next_download, FlowState,
    PlayerRt,
};
use super::{SharedFaults, SharedOutcome, SharedPlayer};
use crate::fault::RetryPolicy;
use abr_sim::SimConfig;
use abr_trace::Trace;
use abr_video::Video;
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeSet, BinaryHeap};

#[derive(Clone, Copy, PartialEq)]
struct Timer {
    time: f64,
    player: usize,
    gen: u64,
}

impl Eq for Timer {}

impl Ord for Timer {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.player.cmp(&other.player))
            .then_with(|| self.gen.cmp(&other.gen))
    }
}

impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Scheduling state alongside the player runtimes.
struct Scheduler {
    /// Min-heap of pending timers; entries whose `gen` no longer matches
    /// the player's current generation are stale and dropped on pop.
    heap: BinaryHeap<Reverse<Timer>>,
    /// Current generation per player; bumped on every state transition.
    gen: Vec<u64>,
    /// Players currently in `FlowState::Downloading`, ascending.
    downloading: BTreeSet<usize>,
    /// Mirror of `downloading` membership for O(1) transition checks.
    in_downloading: Vec<bool>,
    finished: usize,
    done: Vec<bool>,
    /// Valid-but-due entries set aside while peeking for the next future
    /// timer; re-queued immediately (processed next iteration, exactly as
    /// the reference leaves them for its next sweep).
    stash: Vec<Reverse<Timer>>,
}

impl Scheduler {
    fn new(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(4 * n),
            gen: vec![0; n],
            downloading: BTreeSet::new(),
            in_downloading: vec![false; n],
            finished: 0,
            done: vec![false; n],
            stash: Vec::new(),
        }
    }

    fn push(&mut self, player: usize, time: f64) {
        if time.is_finite() {
            self.heap.push(Reverse(Timer {
                time,
                player,
                gen: self.gen[player],
            }));
        }
    }

    /// Re-index player `i` after a state transition: invalidate its old
    /// timers, schedule the new state's timers, and maintain the
    /// downloading set and finished count.
    fn resync(&mut self, i: usize, state: &FlowState) {
        self.gen[i] += 1;
        match *state {
            FlowState::IdleUntil(t) => self.push(i, t),
            FlowState::Downloading {
                started, deadline, ..
            } => {
                self.push(i, started);
                self.push(i, deadline);
            }
            FlowState::Stalled { deadline } => self.push(i, deadline),
            FlowState::Finished => {}
        }
        let dl = matches!(state, FlowState::Downloading { .. });
        if dl != self.in_downloading[i] {
            if dl {
                self.downloading.insert(i);
            } else {
                self.downloading.remove(&i);
            }
            self.in_downloading[i] = dl;
        }
        if matches!(state, FlowState::Finished) && !self.done[i] {
            self.done[i] = true;
            self.finished += 1;
        }
    }

    /// Drains every timer due at `now` into `due` (deduplicated,
    /// ascending player index). Stale entries are consumed here too — a
    /// due player whose condition no longer holds is a no-op in the
    /// reference sweep as well.
    fn drain_due(&mut self, now: f64, due: &mut Vec<usize>) {
        due.clear();
        while let Some(&Reverse(t)) = self.heap.peek() {
            if t.time > now + 1e-12 {
                break;
            }
            self.heap.pop();
            due.push(t.player);
        }
        due.sort_unstable();
        due.dedup();
    }

    /// Earliest *valid* timer strictly after `now` — the heap's share of
    /// the reference's next-event scan. Valid entries that are already due
    /// (pushed while processing this very iteration, e.g. a zero-backoff
    /// retry) are kept for the next iteration's due drain, never treated
    /// as future events.
    fn next_timer_after(&mut self, now: f64) -> f64 {
        let mut next = f64::INFINITY;
        while let Some(&Reverse(t)) = self.heap.peek() {
            if t.gen != self.gen[t.player] {
                self.heap.pop();
                continue;
            }
            if t.time <= now + 1e-12 {
                let e = self.heap.pop().unwrap();
                self.stash.push(e);
                continue;
            }
            next = t.time;
            break;
        }
        for e in self.stash.drain(..) {
            self.heap.push(e);
        }
        next
    }
}

/// [`super::run_shared_session_faulted`] on the indexed event queue:
/// O(active + log n) per event instead of O(n), bit-identical outcomes.
pub(super) fn run_shared_session_faulted(
    players: Vec<SharedPlayer>,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
    faults: Option<&SharedFaults>,
) -> SharedOutcome {
    let (mut rts, policy) = build_runtimes(players, video, cfg, faults);
    let n = rts.len();
    let mut sched = Scheduler::new(n);
    for (i, p) in rts.iter().enumerate() {
        // Initial states are IdleUntil(start offset); seed their wake-ups.
        if let FlowState::IdleUntil(t) = p.state {
            sched.push(i, t);
        }
    }

    let mut now = 0.0_f64;
    let mut delivered = 0.0_f64;
    let mut due: Vec<usize> = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    // Same hard cap and convergence contract as the reference loop.
    let max_events = 200 * n * video.num_chunks();
    for _ in 0..max_events {
        // Wake-ups and timeouts due now, in ascending player order —
        // the players for whom the reference's wake/timeout sweep would
        // do anything this iteration.
        sched.drain_due(now, &mut due);
        for &i in &due {
            let wake = matches!(rts[i].state, FlowState::IdleUntil(t) if t <= now + 1e-12);
            if wake {
                start_next_download(&mut rts[i], video, cfg, &policy, now);
                sched.resync(i, &rts[i].state);
            }
            let timed_out = match rts[i].state {
                FlowState::Stalled { deadline } => deadline <= now + 1e-12,
                FlowState::Downloading { deadline, .. } => deadline <= now + 1e-12,
                _ => false,
            };
            if timed_out {
                fail_attempt(&mut rts[i], cfg, &policy, now);
                sched.resync(i, &rts[i].state);
            }
        }

        if sched.finished == n {
            break;
        }

        // Active share set: downloading flows whose (possibly
        // jitter-deferred) attempt has begun, ascending.
        active.clear();
        active.extend(sched.downloading.iter().copied().filter(
            |&i| matches!(rts[i].state, FlowState::Downloading { started, .. } if started <= now + 1e-12),
        ));

        // Next trace rate change plus the earliest pending timer bound the
        // step — the heap stands in for the reference's per-player scan.
        let mut next_event = trace.next_boundary_after(now);
        next_event = next_event.min(sched.next_timer_after(now));

        if active.is_empty() {
            // Nothing downloading: jump to the next wake-up.
            now = next_event;
            continue;
        }

        // Equal share of the current capacity per active flow.
        let rate = trace.kbps_at(now) / active.len() as f64;
        if rate > 0.0 {
            // Earliest completion (or fault point) under the constant
            // share also bounds the step.
            for &i in &active {
                if let FlowState::Downloading {
                    remaining_kbits,
                    fault_at_kbits,
                    got_kbits,
                    ..
                } = rts[i].state
                {
                    next_event = next_event.min(now + remaining_kbits / rate);
                    if fault_at_kbits.is_finite() {
                        next_event =
                            next_event.min(now + (fault_at_kbits - got_kbits).max(0.0) / rate);
                    }
                }
            }
        }
        let dt = (next_event - now).max(1e-9);

        // Progress all active downloads by dt at the shared rate.
        for &i in &active {
            progress_flow(
                &mut rts[i], i, &mut sched, &mut delivered, rate, dt, video, cfg, &policy,
                next_event,
            );
        }
        now = next_event;
    }
    assert!(
        sched.finished == n,
        "shared session did not converge (scheduling bug)"
    );

    finalize(rts, cfg, trace, now, delivered)
}

/// One flow's share of the progress step — the reference's progress-loop
/// body verbatim, plus scheduler resyncs on the state transitions (and
/// only on transitions: the in-place `got_kbits` update keeps its timers).
#[allow(clippy::too_many_arguments)]
fn progress_flow(
    p: &mut PlayerRt,
    i: usize,
    sched: &mut Scheduler,
    delivered: &mut f64,
    rate: f64,
    dt: f64,
    video: &Video,
    cfg: &SimConfig,
    policy: &RetryPolicy,
    next_event: f64,
) {
    if let FlowState::Downloading {
        started,
        remaining_kbits,
        fault_at_kbits,
        stall,
        deadline,
        got_kbits,
    } = p.state
    {
        let got = rate * dt;
        if fault_at_kbits.is_finite() && got_kbits + got + 1e-9 >= fault_at_kbits {
            // The scheduled fault point arrives no later than completion:
            // the attempt dies here, or hangs until the deadline if it is
            // a stall. Bytes up to the fault point stay wasted.
            let frozen = fault_at_kbits.min(got_kbits + got);
            *delivered += (frozen - got_kbits).max(0.0);
            if stall {
                p.pending_wasted_kbits += frozen;
                p.state = FlowState::Stalled { deadline };
            } else {
                // Park the frozen byte count in the state so fail_attempt
                // banks it exactly once.
                p.state = FlowState::Downloading {
                    started,
                    remaining_kbits,
                    fault_at_kbits,
                    stall,
                    deadline,
                    got_kbits: frozen,
                };
                fail_attempt(p, cfg, policy, next_event);
            }
            sched.resync(i, &p.state);
        } else {
            *delivered += got.min(remaining_kbits);
            let left = remaining_kbits - got;
            if left <= 1e-9 {
                complete_chunk(p, video, cfg, started, next_event);
                sched.resync(i, &p.state);
            } else {
                p.state = FlowState::Downloading {
                    started,
                    remaining_kbits: left,
                    fault_at_kbits,
                    stall,
                    deadline,
                    got_kbits: got_kbits + got,
                };
            }
        }
    }
}
