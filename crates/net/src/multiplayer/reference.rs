//! The original small-N shared-bottleneck loop, preserved verbatim as the
//! differential oracle for the scaled [`engine`](super::engine).
//!
//! Every iteration scans all `n` players three times (wake/timeout sweep,
//! active-set build, next-event scan) — O(n) per event, which is fine for
//! the handfuls of players the published multiplayer tables use and
//! hopeless for fleets. The scaled engine replaces the scans with a timer
//! heap + active-set index and is pinned bit-identical to this loop by
//! `tests/multiplayer_differential.rs`; any change here invalidates that
//! contract and the published numbers with it.

use super::rt::{
    build_runtimes, complete_chunk, fail_attempt, finalize, start_next_download, FlowState,
};
use super::{SharedFaults, SharedOutcome, SharedPlayer};
use abr_sim::SimConfig;
use abr_trace::Trace;
use abr_video::Video;

/// [`super::run_shared_session_faulted`] on the preserved O(n)-per-event
/// reference loop. Same contract, same outcome, different scheduler.
pub fn run_shared_session_faulted(
    players: Vec<SharedPlayer>,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
    faults: Option<&SharedFaults>,
) -> SharedOutcome {
    let (mut rts, policy) = build_runtimes(players, video, cfg, faults);

    let mut now = 0.0_f64;
    let mut delivered = 0.0_f64;
    // Hard cap: no run needs more than this many events (chunks x players
    // x trace boundaries is generous); guards against scheduling bugs.
    let max_events = 200 * rts.len() * video.num_chunks();
    for _ in 0..max_events {
        // Wake any idle players whose time has come: issue their next
        // request (decision happens at issue time, per the paper's fixed
        // chunk-boundary decision model). Then declare dead any attempt
        // whose timeout has passed — stalled or still (too slowly)
        // downloading.
        for i in 0..rts.len() {
            let wake = matches!(rts[i].state, FlowState::IdleUntil(t) if t <= now + 1e-12);
            if wake {
                start_next_download(&mut rts[i], video, cfg, &policy, now);
            }
            let timed_out = match rts[i].state {
                FlowState::Stalled { deadline } => deadline <= now + 1e-12,
                FlowState::Downloading { deadline, .. } => deadline <= now + 1e-12,
                _ => false,
            };
            if timed_out {
                fail_attempt(&mut rts[i], cfg, &policy, now);
            }
        }

        if rts.iter().all(|p| matches!(p.state, FlowState::Finished)) {
            break;
        }

        // Only flows whose (possibly jitter-deferred) attempt has begun
        // share the link.
        let active: Vec<usize> = rts
            .iter()
            .enumerate()
            .filter(
                |(_, p)| matches!(p.state, FlowState::Downloading { started, .. } if started <= now + 1e-12),
            )
            .map(|(i, _)| i)
            .collect();

        // Next trace rate change, idle wake-up, deferred attempt start,
        // and timeout deadline bound the step.
        let mut next_event = trace.next_boundary_after(now);
        for p in &rts {
            match p.state {
                FlowState::IdleUntil(t) if t > now + 1e-12 => next_event = next_event.min(t),
                FlowState::Downloading { started, deadline, .. } => {
                    if started > now + 1e-12 {
                        next_event = next_event.min(started);
                    }
                    if deadline.is_finite() {
                        next_event = next_event.min(deadline);
                    }
                }
                FlowState::Stalled { deadline } => next_event = next_event.min(deadline),
                _ => {}
            }
        }

        if active.is_empty() {
            // Nothing downloading: jump to the next wake-up.
            now = next_event;
            continue;
        }

        // Equal share of the current capacity per active flow.
        let rate = trace.kbps_at(now) / active.len() as f64;
        if rate > 0.0 {
            // Earliest completion (or fault point) under the constant
            // share also bounds the step.
            for &i in &active {
                if let FlowState::Downloading {
                    remaining_kbits,
                    fault_at_kbits,
                    got_kbits,
                    ..
                } = rts[i].state
                {
                    next_event = next_event.min(now + remaining_kbits / rate);
                    if fault_at_kbits.is_finite() {
                        next_event =
                            next_event.min(now + (fault_at_kbits - got_kbits).max(0.0) / rate);
                    }
                }
            }
        }
        let dt = (next_event - now).max(1e-9);

        // Progress all active downloads by dt at the shared rate.
        for &i in &active {
            if let FlowState::Downloading {
                started,
                remaining_kbits,
                fault_at_kbits,
                stall,
                deadline,
                got_kbits,
            } = rts[i].state
            {
                let got = rate * dt;
                if fault_at_kbits.is_finite() && got_kbits + got + 1e-9 >= fault_at_kbits {
                    // The scheduled fault point arrives no later than
                    // completion (the fraction is clamped to the body): the
                    // attempt dies here, or hangs until the deadline if it
                    // is a stall. Bytes up to the fault point stay wasted.
                    let frozen = fault_at_kbits.min(got_kbits + got);
                    delivered += (frozen - got_kbits).max(0.0);
                    let p = &mut rts[i];
                    if stall {
                        p.pending_wasted_kbits += frozen;
                        p.state = FlowState::Stalled { deadline };
                    } else {
                        // Park the frozen byte count in the state so
                        // fail_attempt banks it exactly once.
                        p.state = FlowState::Downloading {
                            started,
                            remaining_kbits,
                            fault_at_kbits,
                            stall,
                            deadline,
                            got_kbits: frozen,
                        };
                        fail_attempt(p, cfg, &policy, next_event);
                    }
                } else {
                    delivered += got.min(remaining_kbits);
                    let left = remaining_kbits - got;
                    if left <= 1e-9 {
                        complete_chunk(&mut rts[i], video, cfg, started, next_event);
                    } else {
                        rts[i].state = FlowState::Downloading {
                            started,
                            remaining_kbits: left,
                            fault_at_kbits,
                            stall,
                            deadline,
                            got_kbits: got_kbits + got,
                        };
                    }
                }
            }
        }
        now = next_event;
    }
    assert!(
        rts.iter().all(|p| matches!(p.state, FlowState::Finished)),
        "shared session did not converge (scheduling bug)"
    );

    finalize(rts, cfg, trace, now, delivered)
}
