//! Per-player runtime shared by both shared-bottleneck engines.
//!
//! The [`reference`](super::reference) loop and the scaled
//! [`engine`](super::engine) differ only in *how they find the next event*;
//! everything a player does when an event fires — issuing a request,
//! charging a dead attempt, completing a chunk — lives here and is executed
//! by both engines, so the differential proptest pins the scheduling layer
//! alone.

use super::metrics::{bitrate_instability, jain_index, link_utilization, oscillation_count, qoe_jain};
use super::{SharedFaults, SharedOutcome, SharedPlayer};
use crate::fault::{FaultKind, FaultPlan, RetryPolicy};
use abr_core::{advance_buffer, BitrateController, ControllerContext};
use abr_predictor::{ErrorTracked, Predictor};
use abr_sim::{ChunkRecord, SessionResult, SimConfig, StartupPolicy};
use abr_trace::Trace;
use abr_video::{QoeBreakdown, Video};
use std::collections::VecDeque;

pub(crate) enum FlowState {
    /// Waiting to issue the next request at the given time.
    IdleUntil(f64),
    /// Downloading chunk `k` at `level` with `remaining_kbits` to go. A
    /// flow only joins the active share set once `started <= now` (jitter
    /// defers it); `fault_at_kbits`/`deadline` are infinite on the
    /// fault-free path so its arithmetic is untouched.
    Downloading {
        started: f64,
        remaining_kbits: f64,
        /// Delivered kilobits at which a link-level fault fires.
        fault_at_kbits: f64,
        /// The fault at `fault_at_kbits` is a stall (else reset/truncate).
        stall: bool,
        /// This attempt's timeout instant.
        deadline: f64,
        /// Kilobits delivered to this attempt so far.
        got_kbits: f64,
    },
    /// The transfer stalled: no bytes flow (the flow leaves the share set)
    /// until the deadline declares the attempt dead.
    Stalled {
        /// When the player's timeout fires.
        deadline: f64,
    },
    Finished,
}

pub(crate) struct PlayerRt {
    pub(crate) controller: Box<dyn BitrateController>,
    pub(crate) predictor: ErrorTracked<Box<dyn Predictor>>,
    pub(crate) state: FlowState,
    pub(crate) chunk: usize,
    pub(crate) level: abr_video::LevelIdx,
    pub(crate) buffer: f64,
    pub(crate) prev_level: Option<abr_video::LevelIdx>,
    pub(crate) last_throughput: Option<f64>,
    pub(crate) low_buffer: VecDeque<bool>,
    pub(crate) startup_secs: f64,
    pub(crate) qoe: QoeBreakdown,
    pub(crate) records: Vec<ChunkRecord>,
    // Fault state (inert when `plan` is None).
    pub(crate) plan: Option<FaultPlan>,
    pub(crate) decided_level: abr_video::LevelIdx,
    pub(crate) retrying: bool,
    pub(crate) attempt_failures: u32,
    pub(crate) consecutive_failures: u32,
    pub(crate) pending_retries: u32,
    pub(crate) pending_wasted_kbits: f64,
    pub(crate) pending_fault_delay: f64,
    pub(crate) chunk_started: f64,
    pub(crate) attempt_issue: f64,
    pub(crate) aborted: bool,
    pub(crate) abort_secs: f64,
    pub(crate) abort_retries: u32,
    pub(crate) abort_wasted_kbits: f64,
}

/// Validates the run configuration and builds the per-player runtimes in
/// input order. Shared verbatim by both engines so their initial states are
/// identical by construction.
pub(crate) fn build_runtimes(
    players: Vec<SharedPlayer>,
    video: &Video,
    cfg: &SimConfig,
    faults: Option<&SharedFaults>,
) -> (Vec<PlayerRt>, RetryPolicy) {
    assert!(!players.is_empty(), "need at least one player");
    assert!(
        matches!(cfg.startup, StartupPolicy::FirstChunk),
        "shared sessions support the FirstChunk startup policy only"
    );
    if let Some(f) = faults {
        assert!(
            f.config.stall_prob == 0.0 || f.policy.timeout_secs.is_finite(),
            "a plan that can stall needs a finite RetryPolicy::timeout_secs"
        );
    }
    let policy = faults.map_or_else(RetryPolicy::no_timeout, |f| f.policy.clone());
    let rts = players
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let mut controller = p.controller;
            controller.reset();
            PlayerRt {
                controller,
                predictor: ErrorTracked::new(p.predictor, cfg.error_window),
                state: FlowState::IdleUntil(p.start_offset_secs.max(0.0)),
                chunk: 0,
                level: video.ladder().lowest(),
                buffer: 0.0,
                prev_level: None,
                last_throughput: None,
                low_buffer: VecDeque::with_capacity(cfg.low_buffer_window_chunks),
                startup_secs: 0.0,
                qoe: QoeBreakdown::default(),
                records: Vec::with_capacity(video.num_chunks()),
                plan: faults.map(|f| f.plan_for(i)),
                decided_level: video.ladder().lowest(),
                retrying: false,
                attempt_failures: 0,
                consecutive_failures: 0,
                pending_retries: 0,
                pending_wasted_kbits: 0.0,
                pending_fault_delay: 0.0,
                chunk_started: 0.0,
                attempt_issue: 0.0,
                aborted: false,
                abort_secs: 0.0,
                abort_retries: 0,
                abort_wasted_kbits: 0.0,
            }
        })
        .collect();
    (rts, policy)
}

pub(crate) fn start_next_download(
    p: &mut PlayerRt,
    video: &Video,
    cfg: &SimConfig,
    policy: &RetryPolicy,
    now: f64,
) {
    if p.chunk >= video.num_chunks() {
        p.state = FlowState::Finished;
        return;
    }
    if p.retrying {
        // A re-request re-issues the same chunk without consulting the
        // controller, downshifted one level per failure if the policy
        // says so.
        p.retrying = false;
        p.level = if policy.downshift_on_retry {
            abr_video::LevelIdx(
                p.decided_level
                    .get()
                    .saturating_sub(p.attempt_failures as usize),
            )
        } else {
            p.decided_level
        };
    } else {
        let prediction = p.predictor.predict();
        let ctx = ControllerContext {
            chunk_index: p.chunk,
            buffer_secs: p.buffer,
            prev_level: p.prev_level,
            prediction_kbps: prediction,
            robust_lower_kbps: p.predictor.robust_lower_bound(),
            last_throughput_kbps: p.last_throughput,
            recent_low_buffer: p.low_buffer.iter().any(|&b| b),
            startup: p.chunk == 0,
            video,
            buffer_max_secs: cfg.buffer_max_secs,
            // Shared-bottleneck fleets are VOD sessions: live pacing is a
            // single-player concern handled by the shared stepping core.
            live: None,
        };
        let decision = p.controller.decide(&ctx);
        p.level = decision.level;
        p.decided_level = decision.level;
        p.chunk_started = now;
        p.pending_retries = 0;
        p.pending_wasted_kbits = 0.0;
        p.pending_fault_delay = 0.0;
        p.attempt_failures = 0;
    }
    p.attempt_issue = now;
    let size_kbits = video.chunk_size_kbits(p.chunk, p.level);
    let (started, fault_at_kbits, stall, deadline) = match p.plan.as_mut() {
        None => (now, f64::INFINITY, false, f64::INFINITY),
        Some(plan) => {
            let fault = plan.next_fault();
            let deadline = now + fault.jitter_secs + policy.timeout_secs;
            let (at, stall) = match fault.kind {
                None => (f64::INFINITY, false),
                Some(
                    FaultKind::ConnectionReset { body_fraction }
                    | FaultKind::Truncate { body_fraction },
                ) => (size_kbits * body_fraction.clamp(0.0, 1.0), false),
                Some(FaultKind::Stall { body_fraction }) => {
                    (size_kbits * body_fraction.clamp(0.0, 1.0), true)
                }
                // HTTP-level faults kill the request before any video byte
                // flows.
                Some(FaultKind::NotFound | FaultKind::ServiceUnavailable) => (0.0, false),
            };
            (now + fault.jitter_secs, at, stall, deadline)
        }
    };
    p.state = FlowState::Downloading {
        started,
        remaining_kbits: size_kbits,
        fault_at_kbits,
        stall,
        deadline,
        got_kbits: 0.0,
    };
}

/// The current attempt is dead (fault, timeout, or stall deadline): charge
/// it, then either back off and retry or abort the session.
pub(crate) fn fail_attempt(p: &mut PlayerRt, cfg: &SimConfig, policy: &RetryPolicy, now: f64) {
    if let FlowState::Stalled { .. } | FlowState::Downloading { .. } = p.state {
        if let FlowState::Downloading { got_kbits, .. } = p.state {
            // Whatever arrived on this attempt is wasted. Stalls banked
            // their bytes when they froze (the Stalled state carries none).
            p.pending_wasted_kbits += got_kbits;
        }
        p.attempt_failures += 1;
        p.consecutive_failures += 1;
        p.pending_fault_delay += now - p.attempt_issue;
        if p.attempt_failures > policy.max_retries
            || p.consecutive_failures >= policy.max_consecutive_failures
        {
            let elapsed = now - p.chunk_started;
            if p.chunk == 0 {
                p.startup_secs = elapsed;
            } else {
                p.qoe
                    .push_rebuffer(&cfg.weights, (elapsed - p.buffer).max(0.0));
            }
            p.aborted = true;
            p.abort_secs = elapsed;
            p.abort_retries = p.pending_retries;
            p.abort_wasted_kbits = p.pending_wasted_kbits;
            p.state = FlowState::Finished;
        } else {
            let backoff = policy.backoff_secs(p.attempt_failures - 1);
            p.pending_fault_delay += backoff;
            p.pending_retries += 1;
            p.retrying = true;
            p.state = FlowState::IdleUntil(now + backoff);
        }
    }
}

pub(crate) fn complete_chunk(
    p: &mut PlayerRt,
    video: &Video,
    cfg: &SimConfig,
    started: f64,
    now: f64,
) {
    let download_secs = (now - p.chunk_started).max(1e-9);
    let size_kbits = video.chunk_size_kbits(p.chunk, p.level);
    let throughput = size_kbits / (now - p.attempt_issue).max(1e-9);
    let mut step = advance_buffer(p.buffer, download_secs, video.chunk_secs(), cfg.buffer_max_secs);
    if p.chunk == 0 {
        p.startup_secs = download_secs;
        step.rebuffer_secs = 0.0;
    }
    let prediction = p.predictor.predict();
    p.qoe.push_chunk(
        &cfg.weights,
        video.ladder().kbps(p.level),
        step.rebuffer_secs,
    );
    p.records.push(ChunkRecord {
        index: p.chunk,
        level: p.level,
        bitrate_kbps: video.ladder().kbps(p.level),
        size_kbits,
        start_secs: started,
        download_secs,
        rebuffer_secs: step.rebuffer_secs,
        wait_secs: step.wait_secs,
        availability_wait_secs: 0.0,
        buffer_before_secs: p.buffer,
        buffer_after_secs: step.next_buffer_secs,
        throughput_kbps: throughput,
        prediction_kbps: prediction,
        retries: p.pending_retries,
        wasted_kbits: p.pending_wasted_kbits,
        fault_delay_secs: p.pending_fault_delay,
        skipped: false,
        latency_secs: 0.0,
    });
    if p.low_buffer.len() == cfg.low_buffer_window_chunks {
        p.low_buffer.pop_front();
    }
    p.low_buffer.push_back(p.buffer < cfg.low_buffer_threshold_secs);
    p.predictor.observe(throughput);
    p.last_throughput = Some(throughput);
    p.buffer = step.next_buffer_secs;
    p.prev_level = Some(p.level);
    p.chunk += 1;
    p.pending_retries = 0;
    p.pending_wasted_kbits = 0.0;
    p.pending_fault_delay = 0.0;
    p.attempt_failures = 0;
    p.consecutive_failures = 0;
    p.retrying = false;
    p.state = if p.chunk >= video.num_chunks() {
        FlowState::Finished
    } else {
        FlowState::IdleUntil(now + step.wait_secs)
    };
}

/// Folds the finished runtimes into a [`SharedOutcome`], attaching the
/// multi-player fairness/efficiency/stability metrics. Shared by both
/// engines so the differential test can compare outcomes field-for-field.
pub(crate) fn finalize(
    rts: Vec<PlayerRt>,
    cfg: &SimConfig,
    trace: &Trace,
    now: f64,
    delivered: f64,
) -> SharedOutcome {
    let sessions: Vec<SessionResult> = rts
        .into_iter()
        .map(|mut p| {
            p.qoe.set_startup(&cfg.weights, p.startup_secs);
            SessionResult {
                algorithm: p.controller.name().to_string(),
                records: p.records,
                startup_secs: p.startup_secs,
                total_secs: now,
                qoe: p.qoe,
                aborted: p.aborted,
                abort_secs: p.abort_secs,
                abort_retries: p.abort_retries,
                abort_wasted_kbits: p.abort_wasted_kbits,
            }
        })
        .collect();
    let bitrates: Vec<f64> = sessions.iter().map(|s| s.avg_bitrate_kbps()).collect();
    let qoes: Vec<f64> = sessions.iter().map(|s| s.qoe.qoe).collect();
    let oscillations: Vec<usize> = sessions
        .iter()
        .map(|s| {
            let levels: Vec<usize> = s.records.iter().map(|r| r.level.get()).collect();
            oscillation_count(&levels)
        })
        .collect();
    let instabilities: Vec<f64> = sessions
        .iter()
        .map(|s| {
            let kbps: Vec<f64> = s.records.iter().map(|r| r.bitrate_kbps).collect();
            bitrate_instability(&kbps)
        })
        .collect();
    let capacity_kbits = trace.integrate_kbits(0.0, now);
    SharedOutcome {
        bitrate_fairness: jain_index(&bitrates),
        qoe_fairness: qoe_jain(&qoes),
        utilization: link_utilization(delivered, capacity_kbits),
        oscillations,
        instabilities,
        delivered_kbits: delivered,
        span_secs: now,
        sessions,
    }
}
