//! Multiple players sharing a bottleneck link — the extension the paper's
//! Section 8 sketches ("a natural question is to extend these insights to
//! multiple players and interaction with cross traffic").
//!
//! The model is the standard one from the FESTIVE line of work: `N` players
//! stream (the same video) through one bottleneck whose capacity `C(t)`
//! follows a throughput trace; at any instant the active downloads share
//! the capacity **equally** (idealized TCP fair share), so a player
//! downloading alone gets `C(t)` while `k` concurrent downloads get
//! `C(t)/k` each. Players that pause (full buffer, or between decisions)
//! free their share for the others — which is exactly the ON/OFF dynamic
//! that makes multi-player adaptation interesting: a player's *observed*
//! per-chunk throughput depends on everyone else's schedule, so throughput
//! estimates are biased, and aggressive algorithms can starve timid ones.
//!
//! [`run_shared_session`] advances all players in one event-driven virtual
//! timeline (events: chunk completions, idle wake-ups, trace rate changes)
//! and returns one [`SessionResult`] per player plus link accounting.
//! [`jain_index`] quantifies bitrate fairness.

use crate::fault::{FaultConfig, FaultKind, FaultPlan, RetryPolicy};
use abr_core::{advance_buffer, BitrateController, ControllerContext};
use abr_predictor::{ErrorTracked, Predictor};
use abr_sim::{ChunkRecord, SessionResult, SimConfig, StartupPolicy};
use abr_trace::Trace;
use abr_video::{QoeBreakdown, Video};
use std::collections::VecDeque;

/// One player's slot in the shared session.
pub struct SharedPlayer {
    /// The adaptation algorithm.
    pub controller: Box<dyn BitrateController>,
    /// The throughput predictor (fed per-flow observed throughput).
    pub predictor: Box<dyn Predictor>,
    /// When this player joins the bottleneck, seconds.
    pub start_offset_secs: f64,
}

/// Jain's fairness index over a set of allocations: `(Σx)² / (n·Σx²)`,
/// 1.0 = perfectly fair, `1/n` = one player takes everything.
///
/// ```
/// use abr_net::jain_index;
/// assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
/// assert!((jain_index(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Outcome of a shared-bottleneck run.
pub struct SharedOutcome {
    /// One result per player, in input order.
    pub sessions: Vec<SessionResult>,
    /// Jain fairness index over the players' average bitrates.
    pub bitrate_fairness: f64,
    /// Total kilobits delivered across all players.
    pub delivered_kbits: f64,
    /// Wall-clock span of the whole run, seconds.
    pub span_secs: f64,
}

/// Fault injection for a shared-bottleneck run: per-request odds, the
/// retry policy every player follows, and the base seed (player `i` draws
/// from an independent stream derived from it).
#[derive(Debug, Clone)]
pub struct SharedFaults {
    /// Per-request fault odds, shared by all players.
    pub config: FaultConfig,
    /// Timeout/retry/backoff policy, shared by all players.
    pub policy: RetryPolicy,
    /// Base seed; player `i` uses `seed ^ i · φ64`.
    pub seed: u64,
}

impl SharedFaults {
    fn plan_for(&self, player: usize) -> FaultPlan {
        let seed = self.seed ^ (player as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        FaultPlan::new(seed, self.config.clone())
    }
}

enum FlowState {
    /// Waiting to issue the next request at the given time.
    IdleUntil(f64),
    /// Downloading chunk `k` at `level` with `remaining_kbits` to go. A
    /// flow only joins the active share set once `started <= now` (jitter
    /// defers it); `fault_at_kbits`/`deadline` are infinite on the
    /// fault-free path so its arithmetic is untouched.
    Downloading {
        started: f64,
        remaining_kbits: f64,
        /// Delivered kilobits at which a link-level fault fires.
        fault_at_kbits: f64,
        /// The fault at `fault_at_kbits` is a stall (else reset/truncate).
        stall: bool,
        /// This attempt's timeout instant.
        deadline: f64,
        /// Kilobits delivered to this attempt so far.
        got_kbits: f64,
    },
    /// The transfer stalled: no bytes flow (the flow leaves the share set)
    /// until the deadline declares the attempt dead.
    Stalled {
        /// When the player's timeout fires.
        deadline: f64,
    },
    Finished,
}

struct PlayerRt {
    controller: Box<dyn BitrateController>,
    predictor: ErrorTracked<Box<dyn Predictor>>,
    state: FlowState,
    chunk: usize,
    level: abr_video::LevelIdx,
    buffer: f64,
    prev_level: Option<abr_video::LevelIdx>,
    last_throughput: Option<f64>,
    low_buffer: VecDeque<bool>,
    startup_secs: f64,
    qoe: QoeBreakdown,
    records: Vec<ChunkRecord>,
    // Fault state (inert when `plan` is None).
    plan: Option<FaultPlan>,
    decided_level: abr_video::LevelIdx,
    retrying: bool,
    attempt_failures: u32,
    consecutive_failures: u32,
    pending_retries: u32,
    pending_wasted_kbits: f64,
    pending_fault_delay: f64,
    chunk_started: f64,
    attempt_issue: f64,
    aborted: bool,
    abort_secs: f64,
    abort_retries: u32,
    abort_wasted_kbits: f64,
}

/// Runs `players` against a shared bottleneck following `trace`.
///
/// All players stream `video` under `cfg` (only the `FirstChunk` startup
/// policy is supported in the shared setting). Returns per-player results
/// and fairness accounting.
pub fn run_shared_session(
    players: Vec<SharedPlayer>,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
) -> SharedOutcome {
    run_shared_session_faulted(players, trace, video, cfg, None)
}

/// [`run_shared_session`] over a hostile bottleneck: when `faults` is set,
/// every player's requests draw from an independent deterministic fault
/// stream and survive via the shared [`RetryPolicy`]. With `faults` at
/// `None` this *is* `run_shared_session` — the fault bookkeeping sits
/// entirely outside the fault-free arithmetic.
pub fn run_shared_session_faulted(
    players: Vec<SharedPlayer>,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
    faults: Option<&SharedFaults>,
) -> SharedOutcome {
    assert!(!players.is_empty(), "need at least one player");
    assert!(
        matches!(cfg.startup, StartupPolicy::FirstChunk),
        "shared sessions support the FirstChunk startup policy only"
    );
    if let Some(f) = faults {
        assert!(
            f.config.stall_prob == 0.0 || f.policy.timeout_secs.is_finite(),
            "a plan that can stall needs a finite RetryPolicy::timeout_secs"
        );
    }
    let policy = faults.map_or_else(RetryPolicy::no_timeout, |f| f.policy.clone());
    let mut rts: Vec<PlayerRt> = players
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let mut controller = p.controller;
            controller.reset();
            PlayerRt {
                controller,
                predictor: ErrorTracked::new(p.predictor, cfg.error_window),
                state: FlowState::IdleUntil(p.start_offset_secs.max(0.0)),
                chunk: 0,
                level: video.ladder().lowest(),
                buffer: 0.0,
                prev_level: None,
                last_throughput: None,
                low_buffer: VecDeque::with_capacity(cfg.low_buffer_window_chunks),
                startup_secs: 0.0,
                qoe: QoeBreakdown::default(),
                records: Vec::with_capacity(video.num_chunks()),
                plan: faults.map(|f| f.plan_for(i)),
                decided_level: video.ladder().lowest(),
                retrying: false,
                attempt_failures: 0,
                consecutive_failures: 0,
                pending_retries: 0,
                pending_wasted_kbits: 0.0,
                pending_fault_delay: 0.0,
                chunk_started: 0.0,
                attempt_issue: 0.0,
                aborted: false,
                abort_secs: 0.0,
                abort_retries: 0,
                abort_wasted_kbits: 0.0,
            }
        })
        .collect();

    let mut now = 0.0_f64;
    let mut delivered = 0.0_f64;
    // Hard cap: no run needs more than this many events (chunks x players
    // x trace boundaries is generous); guards against scheduling bugs.
    let max_events = 200 * rts.len() * video.num_chunks();
    for _ in 0..max_events {
        // Wake any idle players whose time has come: issue their next
        // request (decision happens at issue time, per the paper's fixed
        // chunk-boundary decision model). Then declare dead any attempt
        // whose timeout has passed — stalled or still (too slowly)
        // downloading.
        for i in 0..rts.len() {
            let wake = matches!(rts[i].state, FlowState::IdleUntil(t) if t <= now + 1e-12);
            if wake {
                start_next_download(&mut rts[i], video, cfg, &policy, now);
            }
            let timed_out = match rts[i].state {
                FlowState::Stalled { deadline } => deadline <= now + 1e-12,
                FlowState::Downloading { deadline, .. } => deadline <= now + 1e-12,
                _ => false,
            };
            if timed_out {
                fail_attempt(&mut rts[i], cfg, &policy, now);
            }
        }

        if rts.iter().all(|p| matches!(p.state, FlowState::Finished)) {
            break;
        }

        // Only flows whose (possibly jitter-deferred) attempt has begun
        // share the link.
        let active: Vec<usize> = rts
            .iter()
            .enumerate()
            .filter(
                |(_, p)| matches!(p.state, FlowState::Downloading { started, .. } if started <= now + 1e-12),
            )
            .map(|(i, _)| i)
            .collect();

        // Next trace rate change, idle wake-up, deferred attempt start,
        // and timeout deadline bound the step.
        let mut next_event = trace.next_boundary_after(now);
        for p in &rts {
            match p.state {
                FlowState::IdleUntil(t) if t > now + 1e-12 => next_event = next_event.min(t),
                FlowState::Downloading { started, deadline, .. } => {
                    if started > now + 1e-12 {
                        next_event = next_event.min(started);
                    }
                    if deadline.is_finite() {
                        next_event = next_event.min(deadline);
                    }
                }
                FlowState::Stalled { deadline } => next_event = next_event.min(deadline),
                _ => {}
            }
        }

        if active.is_empty() {
            // Nothing downloading: jump to the next wake-up.
            now = next_event;
            continue;
        }

        // Equal share of the current capacity per active flow.
        let rate = trace.kbps_at(now) / active.len() as f64;
        if rate > 0.0 {
            // Earliest completion (or fault point) under the constant
            // share also bounds the step.
            for &i in &active {
                if let FlowState::Downloading {
                    remaining_kbits,
                    fault_at_kbits,
                    got_kbits,
                    ..
                } = rts[i].state
                {
                    next_event = next_event.min(now + remaining_kbits / rate);
                    if fault_at_kbits.is_finite() {
                        next_event =
                            next_event.min(now + (fault_at_kbits - got_kbits).max(0.0) / rate);
                    }
                }
            }
        }
        let dt = (next_event - now).max(1e-9);

        // Progress all active downloads by dt at the shared rate.
        for &i in &active {
            if let FlowState::Downloading {
                started,
                remaining_kbits,
                fault_at_kbits,
                stall,
                deadline,
                got_kbits,
            } = rts[i].state
            {
                let got = rate * dt;
                if fault_at_kbits.is_finite() && got_kbits + got + 1e-9 >= fault_at_kbits {
                    // The scheduled fault point arrives no later than
                    // completion (the fraction is clamped to the body): the
                    // attempt dies here, or hangs until the deadline if it
                    // is a stall. Bytes up to the fault point stay wasted.
                    let frozen = fault_at_kbits.min(got_kbits + got);
                    delivered += (frozen - got_kbits).max(0.0);
                    let p = &mut rts[i];
                    if stall {
                        p.pending_wasted_kbits += frozen;
                        p.state = FlowState::Stalled { deadline };
                    } else {
                        // Park the frozen byte count in the state so
                        // fail_attempt banks it exactly once.
                        p.state = FlowState::Downloading {
                            started,
                            remaining_kbits,
                            fault_at_kbits,
                            stall,
                            deadline,
                            got_kbits: frozen,
                        };
                        fail_attempt(p, cfg, &policy, next_event);
                    }
                } else {
                    delivered += got.min(remaining_kbits);
                    let left = remaining_kbits - got;
                    if left <= 1e-9 {
                        complete_chunk(&mut rts[i], video, cfg, started, next_event);
                    } else {
                        rts[i].state = FlowState::Downloading {
                            started,
                            remaining_kbits: left,
                            fault_at_kbits,
                            stall,
                            deadline,
                            got_kbits: got_kbits + got,
                        };
                    }
                }
            }
        }
        now = next_event;
    }
    assert!(
        rts.iter().all(|p| matches!(p.state, FlowState::Finished)),
        "shared session did not converge (scheduling bug)"
    );

    let sessions: Vec<SessionResult> = rts
        .into_iter()
        .map(|mut p| {
            p.qoe.set_startup(&cfg.weights, p.startup_secs);
            SessionResult {
                algorithm: p.controller.name().to_string(),
                records: p.records,
                startup_secs: p.startup_secs,
                total_secs: now,
                qoe: p.qoe,
                aborted: p.aborted,
                abort_secs: p.abort_secs,
                abort_retries: p.abort_retries,
                abort_wasted_kbits: p.abort_wasted_kbits,
            }
        })
        .collect();
    let bitrates: Vec<f64> = sessions.iter().map(|s| s.avg_bitrate_kbps()).collect();
    SharedOutcome {
        bitrate_fairness: jain_index(&bitrates),
        delivered_kbits: delivered,
        span_secs: now,
        sessions,
    }
}

fn start_next_download(
    p: &mut PlayerRt,
    video: &Video,
    cfg: &SimConfig,
    policy: &RetryPolicy,
    now: f64,
) {
    if p.chunk >= video.num_chunks() {
        p.state = FlowState::Finished;
        return;
    }
    if p.retrying {
        // A re-request re-issues the same chunk without consulting the
        // controller, downshifted one level per failure if the policy
        // says so.
        p.retrying = false;
        p.level = if policy.downshift_on_retry {
            abr_video::LevelIdx(
                p.decided_level
                    .get()
                    .saturating_sub(p.attempt_failures as usize),
            )
        } else {
            p.decided_level
        };
    } else {
        let prediction = p.predictor.predict();
        let ctx = ControllerContext {
            chunk_index: p.chunk,
            buffer_secs: p.buffer,
            prev_level: p.prev_level,
            prediction_kbps: prediction,
            robust_lower_kbps: p.predictor.robust_lower_bound(),
            last_throughput_kbps: p.last_throughput,
            recent_low_buffer: p.low_buffer.iter().any(|&b| b),
            startup: p.chunk == 0,
            video,
            buffer_max_secs: cfg.buffer_max_secs,
        };
        let decision = p.controller.decide(&ctx);
        p.level = decision.level;
        p.decided_level = decision.level;
        p.chunk_started = now;
        p.pending_retries = 0;
        p.pending_wasted_kbits = 0.0;
        p.pending_fault_delay = 0.0;
        p.attempt_failures = 0;
    }
    p.attempt_issue = now;
    let size_kbits = video.chunk_size_kbits(p.chunk, p.level);
    let (started, fault_at_kbits, stall, deadline) = match p.plan.as_mut() {
        None => (now, f64::INFINITY, false, f64::INFINITY),
        Some(plan) => {
            let fault = plan.next_fault();
            let deadline = now + fault.jitter_secs + policy.timeout_secs;
            let (at, stall) = match fault.kind {
                None => (f64::INFINITY, false),
                Some(
                    FaultKind::ConnectionReset { body_fraction }
                    | FaultKind::Truncate { body_fraction },
                ) => (size_kbits * body_fraction.clamp(0.0, 1.0), false),
                Some(FaultKind::Stall { body_fraction }) => {
                    (size_kbits * body_fraction.clamp(0.0, 1.0), true)
                }
                // HTTP-level faults kill the request before any video byte
                // flows.
                Some(FaultKind::NotFound | FaultKind::ServiceUnavailable) => (0.0, false),
            };
            (now + fault.jitter_secs, at, stall, deadline)
        }
    };
    p.state = FlowState::Downloading {
        started,
        remaining_kbits: size_kbits,
        fault_at_kbits,
        stall,
        deadline,
        got_kbits: 0.0,
    };
}

/// The current attempt is dead (fault, timeout, or stall deadline): charge
/// it, then either back off and retry or abort the session.
fn fail_attempt(p: &mut PlayerRt, cfg: &SimConfig, policy: &RetryPolicy, now: f64) {
    if let FlowState::Stalled { .. } | FlowState::Downloading { .. } = p.state {
        if let FlowState::Downloading { got_kbits, .. } = p.state {
            // Whatever arrived on this attempt is wasted. Stalls banked
            // their bytes when they froze (the Stalled state carries none).
            p.pending_wasted_kbits += got_kbits;
        }
        p.attempt_failures += 1;
        p.consecutive_failures += 1;
        p.pending_fault_delay += now - p.attempt_issue;
        if p.attempt_failures > policy.max_retries
            || p.consecutive_failures >= policy.max_consecutive_failures
        {
            let elapsed = now - p.chunk_started;
            if p.chunk == 0 {
                p.startup_secs = elapsed;
            } else {
                p.qoe
                    .push_rebuffer(&cfg.weights, (elapsed - p.buffer).max(0.0));
            }
            p.aborted = true;
            p.abort_secs = elapsed;
            p.abort_retries = p.pending_retries;
            p.abort_wasted_kbits = p.pending_wasted_kbits;
            p.state = FlowState::Finished;
        } else {
            let backoff = policy.backoff_secs(p.attempt_failures - 1);
            p.pending_fault_delay += backoff;
            p.pending_retries += 1;
            p.retrying = true;
            p.state = FlowState::IdleUntil(now + backoff);
        }
    }
}

fn complete_chunk(p: &mut PlayerRt, video: &Video, cfg: &SimConfig, started: f64, now: f64) {
    let download_secs = (now - p.chunk_started).max(1e-9);
    let size_kbits = video.chunk_size_kbits(p.chunk, p.level);
    let throughput = size_kbits / (now - p.attempt_issue).max(1e-9);
    let mut step = advance_buffer(p.buffer, download_secs, video.chunk_secs(), cfg.buffer_max_secs);
    if p.chunk == 0 {
        p.startup_secs = download_secs;
        step.rebuffer_secs = 0.0;
    }
    let prediction = p.predictor.predict();
    p.qoe.push_chunk(
        &cfg.weights,
        video.ladder().kbps(p.level),
        step.rebuffer_secs,
    );
    p.records.push(ChunkRecord {
        index: p.chunk,
        level: p.level,
        bitrate_kbps: video.ladder().kbps(p.level),
        size_kbits,
        start_secs: started,
        download_secs,
        rebuffer_secs: step.rebuffer_secs,
        wait_secs: step.wait_secs,
        availability_wait_secs: 0.0,
        buffer_before_secs: p.buffer,
        buffer_after_secs: step.next_buffer_secs,
        throughput_kbps: throughput,
        prediction_kbps: prediction,
        retries: p.pending_retries,
        wasted_kbits: p.pending_wasted_kbits,
        fault_delay_secs: p.pending_fault_delay,
    });
    if p.low_buffer.len() == cfg.low_buffer_window_chunks {
        p.low_buffer.pop_front();
    }
    p.low_buffer.push_back(p.buffer < cfg.low_buffer_threshold_secs);
    p.predictor.observe(throughput);
    p.last_throughput = Some(throughput);
    p.buffer = step.next_buffer_secs;
    p.prev_level = Some(p.level);
    p.chunk += 1;
    p.pending_retries = 0;
    p.pending_wasted_kbits = 0.0;
    p.pending_fault_delay = 0.0;
    p.attempt_failures = 0;
    p.consecutive_failures = 0;
    p.retrying = false;
    p.state = if p.chunk >= video.num_chunks() {
        FlowState::Finished
    } else {
        FlowState::IdleUntil(now + step.wait_secs)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_baselines::{BufferBased, RateBased};
    use abr_core::Mpc;
    use abr_predictor::HarmonicMean;
    use abr_video::{envivio_video, LevelIdx};

    fn player(
        controller: Box<dyn BitrateController>,
        offset: f64,
    ) -> SharedPlayer {
        SharedPlayer {
            controller,
            predictor: Box::new(HarmonicMean::paper_default()),
            start_offset_secs: offset,
        }
    }

    #[test]
    fn jain_index_basics() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert!(jain_index(&[]) == 1.0);
        let mixed = jain_index(&[2.0, 1.0]);
        assert!(mixed > 0.5 && mixed < 1.0);
    }

    #[test]
    fn single_player_matches_solo_simulator() {
        // With one player the shared bottleneck degenerates to the plain
        // simulator: identical decisions and QoE.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::new(vec![(30.0, 2200.0), (30.0, 900.0)]).unwrap();
        let shared = run_shared_session(
            vec![player(Box::new(Mpc::robust()), 0.0)],
            &trace,
            &video,
            &cfg,
        );
        let mut solo_ctrl = Mpc::robust();
        let solo = abr_sim::run_session(
            &mut solo_ctrl,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
        );
        let s = &shared.sessions[0];
        assert_eq!(s.records.len(), 65);
        let rel = (s.qoe.qoe - solo.qoe.qoe).abs() / solo.qoe.qoe.abs().max(1.0);
        // The solo simulator also hints oracle predictors and computes
        // integrals identically; harmonic-mean prediction makes the paths
        // equivalent up to float noise.
        assert!(
            rel < 1e-6,
            "shared(1) {} vs solo {}",
            s.qoe.qoe,
            solo.qoe.qoe
        );
        assert!((shared.bitrate_fairness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_identical_players_share_fairly() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(4000.0, 60.0).unwrap();
        let shared = run_shared_session(
            vec![
                player(Box::new(BufferBased::paper_default()), 0.0),
                player(Box::new(BufferBased::paper_default()), 0.0),
            ],
            &trace,
            &video,
            &cfg,
        );
        assert!(shared.bitrate_fairness > 0.98, "{}", shared.bitrate_fairness);
        for s in &shared.sessions {
            assert_eq!(s.records.len(), 65);
            // 2000 kbps fair share: nobody should average above it long-run
            // by much, nor collapse to the floor.
            let avg = s.avg_bitrate_kbps();
            assert!((350.0..=2300.0).contains(&avg), "avg {avg}");
        }
    }

    #[test]
    fn contention_lowers_observed_throughput() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(3000.0, 60.0).unwrap();
        // Fixed-level controllers isolate the bandwidth accounting.
        struct Fixed;
        impl BitrateController for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn decide(&mut self, _ctx: &ControllerContext<'_>) -> abr_core::Decision {
                abr_core::Decision::level(LevelIdx(2))
            }
        }
        let solo = run_shared_session(
            vec![player(Box::new(Fixed), 0.0)],
            &trace,
            &video,
            &cfg,
        );
        let duo = run_shared_session(
            vec![player(Box::new(Fixed), 0.0), player(Box::new(Fixed), 0.0)],
            &trace,
            &video,
            &cfg,
        );
        let solo_thr = solo.sessions[0].records[1].throughput_kbps;
        let duo_thr = duo.sessions[0].records[1].throughput_kbps;
        assert!((solo_thr - 3000.0).abs() < 1.0, "{solo_thr}");
        // With both flows active the early chunks see ~half the link.
        assert!(
            duo_thr < 2000.0,
            "expected contention to bite: {duo_thr} kbps"
        );
    }

    #[test]
    fn on_off_dynamics_let_late_joiner_in() {
        // Player 1 fills its buffer and goes ON/OFF; a late joiner must
        // still complete and get a reasonable share.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(3000.0, 60.0).unwrap();
        let shared = run_shared_session(
            vec![
                player(Box::new(RateBased::paper_default()), 0.0),
                player(Box::new(RateBased::paper_default()), 40.0),
            ],
            &trace,
            &video,
            &cfg,
        );
        assert_eq!(shared.sessions[1].records.len(), 65);
        assert!(shared.sessions[1].avg_bitrate_kbps() > 350.0);
        assert!(shared.bitrate_fairness > 0.8, "{}", shared.bitrate_fairness);
    }

    #[test]
    fn delivered_volume_matches_sessions() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(5000.0, 60.0).unwrap();
        let shared = run_shared_session(
            vec![
                player(Box::new(BufferBased::paper_default()), 0.0),
                player(Box::new(RateBased::paper_default()), 5.0),
            ],
            &trace,
            &video,
            &cfg,
        );
        let session_total: f64 = shared
            .sessions
            .iter()
            .flat_map(|s| s.records.iter())
            .map(|r| r.size_kbits)
            .sum();
        assert!(
            (shared.delivered_kbits - session_total).abs() < 1e-3 * session_total,
            "link accounting {} vs session accounting {session_total}",
            shared.delivered_kbits
        );
    }

    fn hostile_faults(seed: u64) -> SharedFaults {
        SharedFaults {
            config: FaultConfig::uniform(0.25),
            policy: RetryPolicy::hostile(),
            seed,
        }
    }

    #[test]
    fn faulted_shared_run_is_deterministic_and_finite() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::new(vec![(40.0, 2500.0), (40.0, 1200.0)]).unwrap();
        let faults = hostile_faults(11);
        let run = |_: ()| {
            run_shared_session_faulted(
                vec![
                    player(Box::new(BufferBased::paper_default()), 0.0),
                    player(Box::new(RateBased::paper_default()), 3.0),
                ],
                &trace,
                &video,
                &cfg,
                Some(&faults),
            )
        };
        let a = run(());
        let b = run(());
        assert_eq!(a.sessions.len(), b.sessions.len());
        for (sa, sb) in a.sessions.iter().zip(&b.sessions) {
            assert!(sa.qoe.qoe.is_finite());
            assert_eq!(sa.qoe.qoe.to_bits(), sb.qoe.qoe.to_bits());
            assert_eq!(sa.records.len(), sb.records.len());
            assert_eq!(sa.aborted, sb.aborted);
            assert_eq!(sa.total_retries(), sb.total_retries());
            assert_eq!(
                sa.total_wasted_kbits().to_bits(),
                sb.total_wasted_kbits().to_bits()
            );
            for (ra, rb) in sa.records.iter().zip(&sb.records) {
                assert_eq!(ra.level, rb.level);
                assert_eq!(ra.download_secs.to_bits(), rb.download_secs.to_bits());
                assert_eq!(ra.wasted_kbits.to_bits(), rb.wasted_kbits.to_bits());
            }
        }
        // A quarter of requests faulted: some retry traffic must show up
        // somewhere across both players.
        let activity: u32 = a.sessions.iter().map(|s| s.total_retries()).sum();
        assert!(activity > 0, "hostile plan produced no retries");
    }

    #[test]
    fn faulted_players_with_different_seeds_diverge() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(3000.0, 60.0).unwrap();
        let run = |seed| {
            run_shared_session_faulted(
                vec![player(Box::new(BufferBased::paper_default()), 0.0)],
                &trace,
                &video,
                &cfg,
                Some(&hostile_faults(seed)),
            )
        };
        let a = run(5);
        let b = run(6);
        let fingerprint = |o: &SharedOutcome| {
            (
                o.sessions[0].total_retries(),
                o.sessions[0].total_wasted_kbits().to_bits(),
                o.sessions[0].records.len(),
            )
        };
        assert_ne!(
            fingerprint(&a),
            fingerprint(&b),
            "different seeds should schedule different faults"
        );
    }

    #[test]
    fn shared_fault_accounting_lands_in_records() {
        // All-stall plan with a single retry budget: the session aborts and
        // every wasted byte / retry is accounted on the result.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(2000.0, 60.0).unwrap();
        let faults = SharedFaults {
            config: FaultConfig {
                stall_prob: 1.0,
                ..FaultConfig::disabled()
            },
            policy: RetryPolicy {
                timeout_secs: 2.0,
                max_retries: 1,
                ..RetryPolicy::hostile()
            },
            seed: 3,
        };
        let out = run_shared_session_faulted(
            vec![player(Box::new(BufferBased::paper_default()), 0.0)],
            &trace,
            &video,
            &cfg,
            Some(&faults),
        );
        let s = &out.sessions[0];
        assert!(s.aborted, "all requests stall: the session must abort");
        assert!(s.records.is_empty());
        // Two attempts, each timed out after 2 s, one backoff in between.
        assert_eq!(s.abort_retries, 1);
        let expected = 2.0 + faults.policy.backoff_secs(0) + 2.0;
        assert!(
            (s.abort_secs - expected).abs() < 0.1,
            "abort after {} (expected ~{expected})",
            s.abort_secs
        );
        assert!(s.abort_wasted_kbits > 0.0, "stalled bytes must be wasted");
        assert!(s.qoe.qoe.is_finite());
    }
}
