//! Multiple players sharing a bottleneck link — the extension the paper's
//! Section 8 sketches ("a natural question is to extend these insights to
//! multiple players and interaction with cross traffic").
//!
//! The model is the standard one from the FESTIVE line of work: `N` players
//! stream (the same video) through one bottleneck whose capacity `C(t)`
//! follows a throughput trace; at any instant the active downloads share
//! the capacity **equally** (idealized TCP fair share), so a player
//! downloading alone gets `C(t)` while `k` concurrent downloads get
//! `C(t)/k` each. Players that pause (full buffer, or between decisions)
//! free their share for the others — which is exactly the ON/OFF dynamic
//! that makes multi-player adaptation interesting: a player's *observed*
//! per-chunk throughput depends on everyone else's schedule, so throughput
//! estimates are biased, and aggressive algorithms can starve timid ones.
//!
//! [`run_shared_session`] advances all players in one event-driven virtual
//! timeline (events: chunk completions, idle wake-ups, trace rate changes)
//! and returns one [`SessionResult`] per player plus link accounting.
//! [`jain_index`] quantifies bitrate fairness.

use abr_core::{advance_buffer, BitrateController, ControllerContext};
use abr_predictor::{ErrorTracked, Predictor};
use abr_sim::{ChunkRecord, SessionResult, SimConfig, StartupPolicy};
use abr_trace::Trace;
use abr_video::{QoeBreakdown, Video};
use std::collections::VecDeque;

/// One player's slot in the shared session.
pub struct SharedPlayer {
    /// The adaptation algorithm.
    pub controller: Box<dyn BitrateController>,
    /// The throughput predictor (fed per-flow observed throughput).
    pub predictor: Box<dyn Predictor>,
    /// When this player joins the bottleneck, seconds.
    pub start_offset_secs: f64,
}

/// Jain's fairness index over a set of allocations: `(Σx)² / (n·Σx²)`,
/// 1.0 = perfectly fair, `1/n` = one player takes everything.
///
/// ```
/// use abr_net::jain_index;
/// assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
/// assert!((jain_index(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Outcome of a shared-bottleneck run.
pub struct SharedOutcome {
    /// One result per player, in input order.
    pub sessions: Vec<SessionResult>,
    /// Jain fairness index over the players' average bitrates.
    pub bitrate_fairness: f64,
    /// Total kilobits delivered across all players.
    pub delivered_kbits: f64,
    /// Wall-clock span of the whole run, seconds.
    pub span_secs: f64,
}

enum FlowState {
    /// Waiting to issue the next request at the given time.
    IdleUntil(f64),
    /// Downloading chunk `k` at `level` with `remaining_kbits` to go.
    Downloading {
        started: f64,
        remaining_kbits: f64,
    },
    Finished,
}

struct PlayerRt {
    controller: Box<dyn BitrateController>,
    predictor: ErrorTracked<Box<dyn Predictor>>,
    state: FlowState,
    chunk: usize,
    level: abr_video::LevelIdx,
    buffer: f64,
    prev_level: Option<abr_video::LevelIdx>,
    last_throughput: Option<f64>,
    low_buffer: VecDeque<bool>,
    startup_secs: f64,
    qoe: QoeBreakdown,
    records: Vec<ChunkRecord>,
}

/// Runs `players` against a shared bottleneck following `trace`.
///
/// All players stream `video` under `cfg` (only the `FirstChunk` startup
/// policy is supported in the shared setting). Returns per-player results
/// and fairness accounting.
pub fn run_shared_session(
    players: Vec<SharedPlayer>,
    trace: &Trace,
    video: &Video,
    cfg: &SimConfig,
) -> SharedOutcome {
    assert!(!players.is_empty(), "need at least one player");
    assert!(
        matches!(cfg.startup, StartupPolicy::FirstChunk),
        "shared sessions support the FirstChunk startup policy only"
    );
    let mut rts: Vec<PlayerRt> = players
        .into_iter()
        .map(|p| {
            let mut controller = p.controller;
            controller.reset();
            PlayerRt {
                controller,
                predictor: ErrorTracked::new(p.predictor, cfg.error_window),
                state: FlowState::IdleUntil(p.start_offset_secs.max(0.0)),
                chunk: 0,
                level: video.ladder().lowest(),
                buffer: 0.0,
                prev_level: None,
                last_throughput: None,
                low_buffer: VecDeque::with_capacity(cfg.low_buffer_window_chunks),
                startup_secs: 0.0,
                qoe: QoeBreakdown::default(),
                records: Vec::with_capacity(video.num_chunks()),
            }
        })
        .collect();

    let mut now = 0.0_f64;
    let mut delivered = 0.0_f64;
    // Hard cap: no run needs more than this many events (chunks x players
    // x trace boundaries is generous); guards against scheduling bugs.
    let max_events = 200 * rts.len() * video.num_chunks();
    for _ in 0..max_events {
        // Wake any idle players whose time has come: issue their next
        // request (decision happens at issue time, per the paper's fixed
        // chunk-boundary decision model).
        for i in 0..rts.len() {
            let wake = matches!(rts[i].state, FlowState::IdleUntil(t) if t <= now + 1e-12);
            if wake {
                start_next_download(&mut rts[i], video, cfg, now);
            }
        }

        if rts.iter().all(|p| matches!(p.state, FlowState::Finished)) {
            break;
        }

        let active: Vec<usize> = rts
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.state, FlowState::Downloading { .. }))
            .map(|(i, _)| i)
            .collect();

        // Next trace rate change and next idle wake-up bound the step.
        let mut next_event = trace.next_boundary_after(now);
        for p in &rts {
            if let FlowState::IdleUntil(t) = p.state {
                if t > now + 1e-12 {
                    next_event = next_event.min(t);
                }
            }
        }

        if active.is_empty() {
            // Nothing downloading: jump to the next wake-up.
            now = next_event;
            continue;
        }

        // Equal share of the current capacity per active flow.
        let rate = trace.kbps_at(now) / active.len() as f64;
        if rate > 0.0 {
            // Earliest completion under the constant share also bounds the
            // step.
            for &i in &active {
                if let FlowState::Downloading { remaining_kbits, .. } = rts[i].state {
                    next_event = next_event.min(now + remaining_kbits / rate);
                }
            }
        }
        let dt = (next_event - now).max(1e-9);

        // Progress all active downloads by dt at the shared rate.
        for &i in &active {
            if let FlowState::Downloading {
                started,
                remaining_kbits,
            } = rts[i].state
            {
                let got = rate * dt;
                delivered += got.min(remaining_kbits);
                let left = remaining_kbits - got;
                if left <= 1e-9 {
                    complete_chunk(&mut rts[i], video, cfg, started, next_event);
                } else {
                    rts[i].state = FlowState::Downloading {
                        started,
                        remaining_kbits: left,
                    };
                }
            }
        }
        now = next_event;
    }
    assert!(
        rts.iter().all(|p| matches!(p.state, FlowState::Finished)),
        "shared session did not converge (scheduling bug)"
    );

    let sessions: Vec<SessionResult> = rts
        .into_iter()
        .map(|mut p| {
            p.qoe.set_startup(&cfg.weights, p.startup_secs);
            SessionResult {
                algorithm: p.controller.name().to_string(),
                records: p.records,
                startup_secs: p.startup_secs,
                total_secs: now,
                qoe: p.qoe,
            }
        })
        .collect();
    let bitrates: Vec<f64> = sessions.iter().map(|s| s.avg_bitrate_kbps()).collect();
    SharedOutcome {
        bitrate_fairness: jain_index(&bitrates),
        delivered_kbits: delivered,
        span_secs: now,
        sessions,
    }
}

fn start_next_download(p: &mut PlayerRt, video: &Video, cfg: &SimConfig, now: f64) {
    if p.chunk >= video.num_chunks() {
        p.state = FlowState::Finished;
        return;
    }
    let prediction = p.predictor.predict();
    let ctx = ControllerContext {
        chunk_index: p.chunk,
        buffer_secs: p.buffer,
        prev_level: p.prev_level,
        prediction_kbps: prediction,
        robust_lower_kbps: p.predictor.robust_lower_bound(),
        last_throughput_kbps: p.last_throughput,
        recent_low_buffer: p.low_buffer.iter().any(|&b| b),
        startup: p.chunk == 0,
        video,
        buffer_max_secs: cfg.buffer_max_secs,
    };
    let decision = p.controller.decide(&ctx);
    p.level = decision.level;
    p.state = FlowState::Downloading {
        started: now,
        remaining_kbits: video.chunk_size_kbits(p.chunk, p.level),
    };
}

fn complete_chunk(p: &mut PlayerRt, video: &Video, cfg: &SimConfig, started: f64, now: f64) {
    let download_secs = (now - started).max(1e-9);
    let size_kbits = video.chunk_size_kbits(p.chunk, p.level);
    let throughput = size_kbits / download_secs;
    let mut step = advance_buffer(p.buffer, download_secs, video.chunk_secs(), cfg.buffer_max_secs);
    if p.chunk == 0 {
        p.startup_secs = download_secs;
        step.rebuffer_secs = 0.0;
    }
    let prediction = p.predictor.predict();
    p.qoe.push_chunk(
        &cfg.weights,
        video.ladder().kbps(p.level),
        step.rebuffer_secs,
    );
    p.records.push(ChunkRecord {
        index: p.chunk,
        level: p.level,
        bitrate_kbps: video.ladder().kbps(p.level),
        size_kbits,
        start_secs: started,
        download_secs,
        rebuffer_secs: step.rebuffer_secs,
        wait_secs: step.wait_secs,
            availability_wait_secs: 0.0,
        buffer_before_secs: p.buffer,
        buffer_after_secs: step.next_buffer_secs,
        throughput_kbps: throughput,
        prediction_kbps: prediction,
    });
    if p.low_buffer.len() == cfg.low_buffer_window_chunks {
        p.low_buffer.pop_front();
    }
    p.low_buffer.push_back(p.buffer < cfg.low_buffer_threshold_secs);
    p.predictor.observe(throughput);
    p.last_throughput = Some(throughput);
    p.buffer = step.next_buffer_secs;
    p.prev_level = Some(p.level);
    p.chunk += 1;
    p.state = if p.chunk >= video.num_chunks() {
        FlowState::Finished
    } else {
        FlowState::IdleUntil(now + step.wait_secs)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_baselines::{BufferBased, RateBased};
    use abr_core::Mpc;
    use abr_predictor::HarmonicMean;
    use abr_video::{envivio_video, LevelIdx};

    fn player(
        controller: Box<dyn BitrateController>,
        offset: f64,
    ) -> SharedPlayer {
        SharedPlayer {
            controller,
            predictor: Box::new(HarmonicMean::paper_default()),
            start_offset_secs: offset,
        }
    }

    #[test]
    fn jain_index_basics() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert!(jain_index(&[]) == 1.0);
        let mixed = jain_index(&[2.0, 1.0]);
        assert!(mixed > 0.5 && mixed < 1.0);
    }

    #[test]
    fn single_player_matches_solo_simulator() {
        // With one player the shared bottleneck degenerates to the plain
        // simulator: identical decisions and QoE.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::new(vec![(30.0, 2200.0), (30.0, 900.0)]).unwrap();
        let shared = run_shared_session(
            vec![player(Box::new(Mpc::robust()), 0.0)],
            &trace,
            &video,
            &cfg,
        );
        let mut solo_ctrl = Mpc::robust();
        let solo = abr_sim::run_session(
            &mut solo_ctrl,
            HarmonicMean::paper_default(),
            &trace,
            &video,
            &cfg,
        );
        let s = &shared.sessions[0];
        assert_eq!(s.records.len(), 65);
        let rel = (s.qoe.qoe - solo.qoe.qoe).abs() / solo.qoe.qoe.abs().max(1.0);
        // The solo simulator also hints oracle predictors and computes
        // integrals identically; harmonic-mean prediction makes the paths
        // equivalent up to float noise.
        assert!(
            rel < 1e-6,
            "shared(1) {} vs solo {}",
            s.qoe.qoe,
            solo.qoe.qoe
        );
        assert!((shared.bitrate_fairness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_identical_players_share_fairly() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(4000.0, 60.0).unwrap();
        let shared = run_shared_session(
            vec![
                player(Box::new(BufferBased::paper_default()), 0.0),
                player(Box::new(BufferBased::paper_default()), 0.0),
            ],
            &trace,
            &video,
            &cfg,
        );
        assert!(shared.bitrate_fairness > 0.98, "{}", shared.bitrate_fairness);
        for s in &shared.sessions {
            assert_eq!(s.records.len(), 65);
            // 2000 kbps fair share: nobody should average above it long-run
            // by much, nor collapse to the floor.
            let avg = s.avg_bitrate_kbps();
            assert!((350.0..=2300.0).contains(&avg), "avg {avg}");
        }
    }

    #[test]
    fn contention_lowers_observed_throughput() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(3000.0, 60.0).unwrap();
        // Fixed-level controllers isolate the bandwidth accounting.
        struct Fixed;
        impl BitrateController for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn decide(&mut self, _ctx: &ControllerContext<'_>) -> abr_core::Decision {
                abr_core::Decision::level(LevelIdx(2))
            }
        }
        let solo = run_shared_session(
            vec![player(Box::new(Fixed), 0.0)],
            &trace,
            &video,
            &cfg,
        );
        let duo = run_shared_session(
            vec![player(Box::new(Fixed), 0.0), player(Box::new(Fixed), 0.0)],
            &trace,
            &video,
            &cfg,
        );
        let solo_thr = solo.sessions[0].records[1].throughput_kbps;
        let duo_thr = duo.sessions[0].records[1].throughput_kbps;
        assert!((solo_thr - 3000.0).abs() < 1.0, "{solo_thr}");
        // With both flows active the early chunks see ~half the link.
        assert!(
            duo_thr < 2000.0,
            "expected contention to bite: {duo_thr} kbps"
        );
    }

    #[test]
    fn on_off_dynamics_let_late_joiner_in() {
        // Player 1 fills its buffer and goes ON/OFF; a late joiner must
        // still complete and get a reasonable share.
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(3000.0, 60.0).unwrap();
        let shared = run_shared_session(
            vec![
                player(Box::new(RateBased::paper_default()), 0.0),
                player(Box::new(RateBased::paper_default()), 40.0),
            ],
            &trace,
            &video,
            &cfg,
        );
        assert_eq!(shared.sessions[1].records.len(), 65);
        assert!(shared.sessions[1].avg_bitrate_kbps() > 350.0);
        assert!(shared.bitrate_fairness > 0.8, "{}", shared.bitrate_fairness);
    }

    #[test]
    fn delivered_volume_matches_sessions() {
        let video = envivio_video();
        let cfg = SimConfig::paper_default();
        let trace = Trace::constant(5000.0, 60.0).unwrap();
        let shared = run_shared_session(
            vec![
                player(Box::new(BufferBased::paper_default()), 0.0),
                player(Box::new(RateBased::paper_default()), 5.0),
            ],
            &trace,
            &video,
            &cfg,
        );
        let session_total: f64 = shared
            .sessions
            .iter()
            .flat_map(|s| s.records.iter())
            .map(|r| r.size_kbits)
            .sum();
        assert!(
            (shared.delivered_kbits - session_total).abs() < 1e-3 * session_total,
            "link accounting {} vs session accounting {session_total}",
            shared.delivered_kbits
        );
    }
}
