//! A miniature DASH MPD manifest.
//!
//! The paper observes that "a key requirement for any control algorithm is
//! to know the size (in bytes) of each video chunk, but the standard does
//! not mandate the manifest to report chunk sizes, which may be a key
//! shortcoming of the current specification" (Section 6). Our manifest
//! therefore carries an explicit `<SegmentSizes>` element (kilobits per
//! chunk, one list per representation) so the controller has what the
//! paper says it needs.
//!
//! The grammar is a small, fixed subset of MPD — enough to round-trip every
//! [`Video`] this workspace can express. Parsing is hand-rolled (tag/attr
//! scanning) to stay dependency-free and is strict: structural problems are
//! reported as [`MpdError`], never panics.
//!
//! Segment sizes and durations are written with Rust's shortest
//! round-trip-exact `f64` formatting, so `parse(generate(v))` reproduces
//! every chunk size bit-for-bit. The decision service relies on this: a
//! session registered over the wire must solve the exact same MPC problem
//! as its in-process twin.

use abr_video::{Ladder, Video, VideoBuilder};

/// Errors parsing a manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum MpdError {
    /// A required tag was missing.
    MissingTag(&'static str),
    /// A required attribute was missing from a tag.
    MissingAttr(&'static str),
    /// An attribute failed to parse as the required type.
    BadValue(String),
    /// Representations disagreed on segment counts or ladder ordering.
    Inconsistent(String),
}

impl std::fmt::Display for MpdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpdError::MissingTag(t) => write!(f, "missing <{t}>"),
            MpdError::MissingAttr(a) => write!(f, "missing attribute {a}"),
            MpdError::BadValue(v) => write!(f, "bad value: {v}"),
            MpdError::Inconsistent(w) => write!(f, "inconsistent manifest: {w}"),
        }
    }
}

impl std::error::Error for MpdError {}

/// Renders `video` as an MPD document.
pub fn generate(video: &Video) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n");
    out.push_str(&format!(
        "<MPD xmlns=\"urn:mpeg:dash:schema:mpd:2011\" type=\"static\" \
         mediaPresentationDuration=\"PT{:.3}S\">\n",
        video.duration_secs()
    ));
    out.push_str(" <Period>\n");
    out.push_str(&format!(
        "  <AdaptationSet mimeType=\"video/mp4\" segmentDuration=\"{}\" \
         segmentCount=\"{}\">\n",
        video.chunk_secs(),
        video.num_chunks()
    ));
    for level in video.ladder().iter() {
        out.push_str(&format!(
            "   <Representation id=\"{}\" bandwidth=\"{}\">\n",
            level.get(),
            (video.ladder().kbps(level) * 1000.0).round() as u64
        ));
        out.push_str("    <SegmentSizes>");
        for k in 0..video.num_chunks() {
            if k > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{}", video.chunk_size_kbits(k, level)));
        }
        out.push_str("</SegmentSizes>\n");
        out.push_str("   </Representation>\n");
    }
    out.push_str("  </AdaptationSet>\n </Period>\n</MPD>\n");
    out
}

/// Extracts `name="value"` from a tag's attribute region.
fn attr<'a>(tag: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("{name}=\"");
    let start = tag.find(&pat)? + pat.len();
    let end = tag[start..].find('"')? + start;
    Some(&tag[start..end])
}

/// Finds the next occurrence of `<tag ...>` after `from`, returning the
/// attribute region and the offset just past the tag.
fn find_tag<'a>(doc: &'a str, tag: &str, from: usize) -> Option<(&'a str, usize)> {
    let pat = format!("<{tag}");
    let start = doc[from..].find(&pat)? + from;
    let after = start + pat.len();
    // The attribute region must start with whitespace or '>' (so "MPD"
    // doesn't match "MPDX").
    let rest = &doc[after..];
    if !rest.starts_with(|c: char| c.is_whitespace() || c == '>' || c == '/') {
        return find_tag(doc, tag, after);
    }
    let end = rest.find('>')? + after;
    Some((&doc[after..end], end + 1))
}

/// Extracts the text content between `pos` (just after an opening tag) and
/// the matching `</tag>`.
fn text_until_close<'a>(doc: &'a str, tag: &str, pos: usize) -> Option<(&'a str, usize)> {
    let close = format!("</{tag}>");
    let end = doc[pos..].find(&close)? + pos;
    Some((&doc[pos..end], end + close.len()))
}

/// Parses a manifest back into a [`Video`].
pub fn parse(doc: &str) -> Result<Video, MpdError> {
    let (_, _) = find_tag(doc, "MPD", 0).ok_or(MpdError::MissingTag("MPD"))?;
    let (aset_attrs, mut pos) =
        find_tag(doc, "AdaptationSet", 0).ok_or(MpdError::MissingTag("AdaptationSet"))?;
    let chunk_secs: f64 = attr(aset_attrs, "segmentDuration")
        .ok_or(MpdError::MissingAttr("segmentDuration"))?
        .parse()
        .map_err(|_| MpdError::BadValue("segmentDuration".into()))?;
    let count: usize = attr(aset_attrs, "segmentCount")
        .ok_or(MpdError::MissingAttr("segmentCount"))?
        .parse()
        .map_err(|_| MpdError::BadValue("segmentCount".into()))?;
    if count == 0 || !(chunk_secs > 0.0) {
        return Err(MpdError::BadValue(
            "segmentCount/segmentDuration must be positive".into(),
        ));
    }

    let mut levels_kbps: Vec<f64> = Vec::new();
    let mut sizes_by_level: Vec<Vec<f64>> = Vec::new();
    while let Some((rep_attrs, after_rep)) = find_tag(doc, "Representation", pos) {
        let bandwidth: f64 = attr(rep_attrs, "bandwidth")
            .ok_or(MpdError::MissingAttr("bandwidth"))?
            .parse()
            .map_err(|_| MpdError::BadValue("bandwidth".into()))?;
        let (_, after_sizes_open) = find_tag(doc, "SegmentSizes", after_rep)
            .ok_or(MpdError::MissingTag("SegmentSizes"))?;
        let (sizes_text, next) = text_until_close(doc, "SegmentSizes", after_sizes_open)
            .ok_or(MpdError::MissingTag("/SegmentSizes"))?;
        let sizes: Result<Vec<f64>, _> = sizes_text
            .split_whitespace()
            .map(|s| s.parse::<f64>())
            .collect();
        let sizes = sizes.map_err(|_| MpdError::BadValue("segment size".into()))?;
        if sizes.len() != count {
            return Err(MpdError::Inconsistent(format!(
                "representation has {} sizes, expected {count}",
                sizes.len()
            )));
        }
        levels_kbps.push(bandwidth / 1000.0);
        sizes_by_level.push(sizes);
        pos = next;
    }
    if levels_kbps.is_empty() {
        return Err(MpdError::MissingTag("Representation"));
    }

    let ladder = Ladder::new(levels_kbps)
        .map_err(|e| MpdError::Inconsistent(format!("ladder: {e}")))?;
    // Transpose level-major sizes into chunk-major rows.
    let sizes: Vec<Vec<f64>> = (0..count)
        .map(|k| sizes_by_level.iter().map(|row| row[k]).collect())
        .collect();
    VideoBuilder::new(ladder)
        .chunks(count)
        .chunk_secs(chunk_secs)
        .explicit_sizes(sizes)
        .ok_or_else(|| MpdError::Inconsistent("segment sizes violate invariants".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::{envivio_video, Ladder, LevelIdx, VideoBuilder};

    #[test]
    fn round_trip_cbr() {
        let v = envivio_video();
        let doc = generate(&v);
        let back = parse(&doc).unwrap();
        assert_eq!(back.num_chunks(), 65);
        assert_eq!(back.chunk_secs().to_bits(), 4.0f64.to_bits());
        assert_eq!(back.ladder().len(), 5);
        for k in 0..65 {
            for l in 0..5 {
                assert_eq!(
                    back.chunk_size_kbits(k, LevelIdx(l)).to_bits(),
                    v.chunk_size_kbits(k, LevelIdx(l)).to_bits(),
                    "chunk {k} level {l}"
                );
            }
        }
    }

    #[test]
    fn round_trip_vbr() {
        let ladder = Ladder::new(vec![500.0, 1500.0]).unwrap();
        let v = VideoBuilder::new(ladder)
            .chunks(7)
            .chunk_secs(2.0)
            .vbr(|k| 0.8 + 0.1 * (k % 4) as f64);
        let back = parse(&generate(&v)).unwrap();
        for k in 0..7 {
            for l in 0..2 {
                assert_eq!(
                    back.chunk_size_kbits(k, LevelIdx(l)).to_bits(),
                    v.chunk_size_kbits(k, LevelIdx(l)).to_bits(),
                    "chunk {k} level {l}"
                );
            }
        }
    }

    #[test]
    fn manifest_advertises_bandwidths_in_bps() {
        let doc = generate(&envivio_video());
        assert!(doc.contains("bandwidth=\"350000\""));
        assert!(doc.contains("bandwidth=\"3000000\""));
        assert!(doc.contains("segmentCount=\"65\""));
    }

    #[test]
    fn parse_rejects_missing_pieces() {
        assert_eq!(parse("<foo/>").unwrap_err(), MpdError::MissingTag("MPD"));
        let no_reps = "<MPD><Period><AdaptationSet segmentDuration=\"4\" \
                       segmentCount=\"2\"></AdaptationSet></Period></MPD>";
        assert_eq!(
            parse(no_reps).unwrap_err(),
            MpdError::MissingTag("Representation")
        );
    }

    #[test]
    fn parse_rejects_wrong_size_count() {
        let doc = "<MPD><Period><AdaptationSet segmentDuration=\"4\" segmentCount=\"3\">\
                   <Representation id=\"0\" bandwidth=\"500000\">\
                   <SegmentSizes>100 200</SegmentSizes></Representation>\
                   </AdaptationSet></Period></MPD>";
        assert!(matches!(parse(doc), Err(MpdError::Inconsistent(_))));
    }

    #[test]
    fn parse_rejects_garbage_values() {
        let doc = "<MPD><Period><AdaptationSet segmentDuration=\"abc\" segmentCount=\"3\">\
                   </AdaptationSet></Period></MPD>";
        assert!(matches!(parse(doc), Err(MpdError::BadValue(_))));
    }

    #[test]
    fn parse_rejects_unsorted_ladder() {
        let doc = "<MPD><Period><AdaptationSet segmentDuration=\"4\" segmentCount=\"1\">\
                   <Representation id=\"0\" bandwidth=\"900000\">\
                   <SegmentSizes>3600</SegmentSizes></Representation>\
                   <Representation id=\"1\" bandwidth=\"500000\">\
                   <SegmentSizes>2000</SegmentSizes></Representation>\
                   </AdaptationSet></Period></MPD>";
        assert!(matches!(parse(doc), Err(MpdError::Inconsistent(_))));
    }
}
