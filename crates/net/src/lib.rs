//! Network substrate for the emulation-path evaluation (Sections 6–7.2).
//!
//! The paper's "real player" experiments run dash.js in Chrome against a
//! node.js HTTP server over a link throttled with Linux `tc` on Emulab. None
//! of that is available here, so this crate rebuilds the pieces that matter
//! for the experiment — the HTTP request/response path and a link whose
//! available bandwidth follows a throughput trace — in-process:
//!
//! * [`http`] — a small, fully tested HTTP/1.1 implementation (request and
//!   response framing with `Content-Length`, keep-alive) over any
//!   `Read + Write` transport, plus the [`http::ChunkServer`] that serves a
//!   DASH manifest and video segments (over real `TcpStream`s too);
//! * [`mpd`] — a miniature DASH MPD manifest: generation and parsing,
//!   including per-chunk segment sizes (the paper notes the standard omits
//!   chunk sizes and argues they are required for principled control — our
//!   manifest carries them);
//! * [`link`] — the shaped link: exact virtual-time transfer scheduling
//!   that follows a [`abr_trace::Trace`], plus a token-bucket shaper for
//!   real-time use;
//! * [`player`] — the emulated DASH player: drives real HTTP messages
//!   through an in-memory transport whose transfer times follow the shaped
//!   link in virtual time, with the same controller/predictor interface as
//!   `abr-sim`. Also a real-socket player used by integration tests.
//! * [`fault`] — seeded, deterministic per-request fault injection
//!   (resets, truncation, stalls, 404/503, RTT jitter) plus the
//!   [`fault::RetryPolicy`] the player survives them with.
//! * [`poll`] — raw-syscall `epoll`/`eventfd`/`accept4` wrappers and
//!   non-blocking fd I/O, the readiness substrate for `abr-serve`'s
//!   event-driven server and multiplexed load generator;
//! * [`mmap`] — read-only memory-mapped files over the same raw-syscall
//!   plumbing, the zero-copy substrate for `abr-fastmpc`'s warm table
//!   tier.
//!
//! The simulation path (`abr-sim`) and this emulation path implement the
//! same streaming semantics through entirely different mechanisms; the
//! integration suite checks they agree, which is the strongest correctness
//! evidence this reproduction has (the paper similarly cross-validates its
//! simulator against testbed results).

// `deny` rather than `forbid`: the `poll` and `mmap` modules opt back in
// with a module-scoped allow — they are the only places raw syscalls live.
// Every other module stays unsafe-free, enforced at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod http;
pub mod link;
pub mod mmap;
pub mod mpd;
pub mod multiplayer;
pub mod player;
pub mod poll;

pub use fault::{Fault, FaultConfig, FaultKind, FaultPlan, RetryPolicy};
pub use link::{FaultedTransfer, ShapedLink, TokenBucket};
pub use multiplayer::{
    bitrate_instability, jain_index, link_utilization, oscillation_count, qoe_jain,
    run_shared_session, run_shared_session_faulted, SharedFaults, SharedOutcome, SharedPlayer,
};
pub use player::{
    run_emulated_session, run_emulated_session_faulted, run_emulated_session_faulted_with,
    run_emulated_session_with, EmulatedDownloader, NetConfig,
};
