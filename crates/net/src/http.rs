//! A minimal HTTP/1.1 implementation: request/response framing with
//! `Content-Length` bodies and keep-alive connections, over any
//! `Read + Write` transport — real `TcpStream`s in the integration tests,
//! in-memory buffers in the emulation path.
//!
//! Scope is what DASH streaming plus the `abr-serve` decision service need
//! (the paper's client issues plain `GET`s against a node.js static server;
//! the FastMPC deployment of Section 6 POSTs player state to the server):
//! `GET`/`POST` requests with `Content-Length` bodies, `200/400/404`
//! responses, byte-exact bodies. The parser is strict about framing —
//! malformed input yields an error, never a panic — and hardened for
//! server use: a malformed request line, oversized headers, or a `POST`
//! without `Content-Length` are [`HttpError::Malformed`], which connection
//! loops answer with a `400` instead of dying; a body over the (per-server
//! configurable) cap is [`HttpError::BodyTooLarge`], answered with `413`.

use crate::mpd;
use abr_video::{LevelIdx, Video};
use bytes::Bytes;
use std::borrow::Cow;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};

/// Errors from HTTP parsing or I/O.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// Malformed request/status line or header.
    Malformed(String),
    /// Body shorter than its declared `Content-Length`.
    TruncatedBody {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// Declared `Content-Length` exceeds the request-body cap. Unlike
    /// [`Malformed`](Self::Malformed) this is well-formed framing with an
    /// oversized payload, so servers answer `413`, not `400`.
    BodyTooLarge {
        /// Bytes the header declared.
        len: usize,
        /// The cap in force.
        cap: usize,
    },
    /// The peer closed the connection before a complete message arrived.
    ConnectionClosed,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed http: {what}"),
            HttpError::TruncatedBody { expected, got } => {
                write!(f, "truncated body: expected {expected} bytes, got {got}")
            }
            HttpError::BodyTooLarge { len, cap } => {
                write!(f, "request body of {len} bytes exceeds the {cap}-byte cap")
            }
            HttpError::ConnectionClosed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Longest accepted request/status/header line, bytes. Anything longer is
/// malformed input, not a legitimate message from this workspace.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Cap on the total size of a header block, bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Cap on a *request* body (`POST` payloads are small manifests and
/// key-value state reports). Response bodies — video chunks — are not
/// subject to this limit.
pub const MAX_REQUEST_BODY_BYTES: usize = 1024 * 1024;

fn read_line(r: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_LINE_BYTES {
        return Err(HttpError::Malformed(format!("line exceeds {MAX_LINE_BYTES} bytes")));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn read_headers(r: &mut impl BufRead) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line = read_line(r)?.ok_or(HttpError::ConnectionClosed)?;
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len() + 2;
        if total > MAX_HEADER_BYTES {
            return Err(HttpError::Malformed(format!(
                "headers exceed {MAX_HEADER_BYTES} bytes"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

/// Reads exactly `len` body bytes.
fn read_body(r: &mut impl BufRead, len: usize) -> Result<Bytes, HttpError> {
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        let n = r.read(&mut body[got..])?;
        if n == 0 {
            return Err(HttpError::TruncatedBody { expected: len, got });
        }
        got += n;
    }
    Ok(Bytes::from(body))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let lower = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(n, _)| *n == lower)
        .map(|(_, v)| v.as_str())
}

/// An HTTP request: `GET`s for chunks and manifests, `POST`s with
/// `Content-Length` bodies for the decision service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, e.g. `GET`.
    pub method: String,
    /// Request path, e.g. `/video/2/17.m4s`.
    pub path: String,
    /// Headers as lowercase-name/value pairs.
    pub headers: Vec<(String, String)>,
    /// The body (empty for bodyless requests).
    pub body: Bytes,
}

impl Request {
    /// A `GET` request for `path`.
    pub fn get(path: &str) -> Self {
        Self {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: vec![("connection".into(), "keep-alive".into())],
            body: Bytes::new(),
        }
    }

    /// A `POST` of `body` to `path` (keep-alive, `Content-Length` framed).
    pub fn post(path: &str, body: Bytes, content_type: &str) -> Self {
        Self {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: vec![
                ("connection".into(), "keep-alive".into()),
                ("content-type".into(), content_type.into()),
                ("content-length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// Value of a header (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, name)
    }

    /// Serializes onto a transport.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), HttpError> {
        write!(w, "{} {} HTTP/1.1\r\n", self.method, self.path)?;
        for (n, v) in &self.headers {
            write!(w, "{n}: {v}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }

    /// Parses a request from a transport. `Ok(None)` on clean EOF before
    /// the first byte (keep-alive peer went away).
    ///
    /// Server hardening: a garbled request line, a header block over
    /// [`MAX_HEADER_BYTES`] and a `POST`/`PUT` without `Content-Length`
    /// (the body would be unframed, poisoning keep-alive) all yield
    /// [`HttpError::Malformed`], which a serving loop maps to `400`
    /// without tearing the worker down. A body over
    /// [`MAX_REQUEST_BODY_BYTES`] is [`HttpError::BodyTooLarge`] — the
    /// framing is fine, the payload is not — which maps to `413`.
    pub fn read_from(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
        Self::read_from_with_cap(r, MAX_REQUEST_BODY_BYTES)
    }

    /// [`read_from`](Self::read_from) with an explicit request-body cap,
    /// for servers whose expected payloads are far from the default —
    /// the bulk decision endpoint raises it, a chunk origin could lower
    /// it. A declared `Content-Length` of exactly `cap` bytes is
    /// accepted; `cap + 1` is [`HttpError::BodyTooLarge`].
    pub fn read_from_with_cap(
        r: &mut impl BufRead,
        cap: usize,
    ) -> Result<Option<Request>, HttpError> {
        let line = match read_line(r)? {
            None => return Ok(None),
            Some(l) => l,
        };
        let mut parts = line.split_whitespace();
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) => (m, p, v),
            _ => return Err(HttpError::Malformed(format!("request line '{line}'"))),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!("version '{version}'")));
        }
        let headers = read_headers(r)?;
        let body = match header(&headers, "content-length") {
            Some(v) => {
                let len: usize = v
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("content-length '{v}'")))?;
                if len > cap {
                    return Err(HttpError::BodyTooLarge { len, cap });
                }
                read_body(r, len)?
            }
            None if matches!(method, "POST" | "PUT") => {
                return Err(HttpError::Malformed(format!(
                    "{method} without content-length"
                )));
            }
            None => Bytes::new(),
        };
        Ok(Some(Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body,
        }))
    }
}

/// An HTTP response with a `Content-Length` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Reason phrase, e.g. `OK`.
    pub reason: String,
    /// Headers as lowercase-name/value pairs.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Bytes,
}

impl Response {
    /// A `200 OK` with the given body and content type.
    pub fn ok(body: Bytes, content_type: &str) -> Self {
        Self {
            status: 200,
            reason: "OK".into(),
            headers: vec![
                ("content-type".into(), content_type.into()),
                ("content-length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// A `404 Not Found`.
    pub fn not_found() -> Self {
        let body = Bytes::from_static(b"not found");
        Self {
            status: 404,
            reason: "Not Found".into(),
            headers: vec![
                ("content-type".into(), "text/plain".into()),
                ("content-length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// A `503 Service Unavailable` (the overloaded-origin fault).
    pub fn service_unavailable() -> Self {
        let body = Bytes::from_static(b"service unavailable");
        Self {
            status: 503,
            reason: "Service Unavailable".into(),
            headers: vec![
                ("content-type".into(), "text/plain".into()),
                ("content-length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// A `400 Bad Request` describing what was wrong with the input — the
    /// answer a hardened server gives to malformed framing instead of
    /// killing its worker.
    pub fn bad_request(what: &str) -> Self {
        let body = Bytes::from(format!("bad request: {what}"));
        Self {
            status: 400,
            reason: "Bad Request".into(),
            headers: vec![
                ("content-type".into(), "text/plain".into()),
                ("content-length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// A `413 Payload Too Large` naming the declared size and the cap it
    /// broke — the answer to a well-framed request whose body the server
    /// refuses to buffer.
    pub fn payload_too_large(len: usize, cap: usize) -> Self {
        let body = Bytes::from(format!(
            "payload too large: {len} bytes declared, cap is {cap}"
        ));
        Self {
            status: 413,
            reason: "Payload Too Large".into(),
            headers: vec![
                ("content-type".into(), "text/plain".into()),
                ("content-length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// Value of a header (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        header(&self.headers, name)
    }

    /// Serializes onto a transport.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), HttpError> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, self.reason)?;
        for (n, v) in &self.headers {
            write!(w, "{n}: {v}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }

    /// Parses a response (status line, headers, exactly `Content-Length`
    /// body bytes).
    pub fn read_from(r: &mut impl BufRead) -> Result<Response, HttpError> {
        let line = read_line(r)?.ok_or(HttpError::ConnectionClosed)?;
        let mut parts = line.splitn(3, ' ');
        let (version, status, reason) = match (parts.next(), parts.next(), parts.next()) {
            (Some(v), Some(s), reason) => (v, s, reason.unwrap_or("")),
            _ => return Err(HttpError::Malformed(format!("status line '{line}'"))),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!("version '{version}'")));
        }
        let status: u16 = status
            .parse()
            .map_err(|_| HttpError::Malformed(format!("status '{status}'")))?;
        let headers = read_headers(r)?;
        let len: usize = header(&headers, "content-length")
            .unwrap_or("0")
            .parse()
            .map_err(|_| HttpError::Malformed("content-length".into()))?;
        let body = read_body(r, len)?;
        Ok(Response {
            status,
            reason: reason.to_string(),
            headers,
            body,
        })
    }
}

// ---------------------------------------------------------------------------
// Incremental parsing — the event-driven front end
// ---------------------------------------------------------------------------

/// Outcome of one incremental parse step ([`RequestParser::next_request`] /
/// [`ResponseParser::next_response`]).
#[derive(Debug)]
pub enum ParseStep<T> {
    /// A complete message was parsed and consumed from the buffer. Call
    /// again — pipelined keep-alive peers may have buffered another.
    Complete(T),
    /// The buffered bytes are a valid (possibly empty) message prefix;
    /// feed more when the socket becomes readable.
    Incomplete,
    /// Parse failure. When `recoverable`, the parser has already moved
    /// past the offending input (skipping the declared body, or resyncing
    /// to the next line/blank line) and the connection can keep serving —
    /// answer 400/413 and continue. Otherwise the framing is poisoned and
    /// the connection must close after the error response drains.
    Failed {
        /// What went wrong — the same [`HttpError`] the one-shot parser
        /// reports for this input.
        error: HttpError,
        /// Whether the parser resynced and the connection may live on.
        recoverable: bool,
    },
}

/// Post-error resynchronisation: what to discard before parsing resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resync {
    None,
    /// Discard this many declared-but-refused body bytes (413 path).
    Body(usize),
    /// Discard through the next `\n` (over-long line: the rest of the
    /// line is garbage, whatever follows it may be a fresh request).
    ToNewline,
    /// Discard through the next blank line (runaway header block).
    /// `all_cr` carries the blank-line detector state across feeds.
    ToBlankLine {
        /// Whether the current line's bytes so far are all `\r`.
        all_cr: bool,
    },
}

/// Progress of the head-completeness scan (find the blank line that
/// terminates the request/status line + headers), kept across feeds so
/// trickled input is scanned once, not re-scanned per byte.
#[derive(Debug, Clone, Copy)]
struct HeadScan {
    /// Next unexamined byte, relative to the unconsumed buffer start.
    idx: usize,
    /// Content bytes in the current line so far (terminator excluded).
    line_len: usize,
    /// Whether every content byte of the current line is `\r` — the
    /// one-shot parser strips all trailing `\r`/`\n`, so "blank line"
    /// means *all-`\r'` content*, and this scan matches it exactly.
    all_cr: bool,
    /// Total head bytes scanned.
    total: usize,
}

impl HeadScan {
    fn new() -> Self {
        Self { idx: 0, line_len: 0, all_cr: true, total: 0 }
    }
}

/// Hard ceiling on buffered head bytes before the scan gives up: the
/// one-shot parser is guaranteed to have rejected the block by this point
/// (`MAX_HEADER_BYTES` of accounted headers plus one `MAX_LINE_BYTES`
/// line in flight), so the guard never fires on input the one-shot
/// parser would accept.
const HEAD_SCAN_LIMIT: usize = MAX_HEADER_BYTES + MAX_LINE_BYTES + 4;

/// The shared incremental machinery: byte buffer, head scan, resync.
#[derive(Debug)]
struct Incremental {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    pos: usize,
    scan: HeadScan,
    /// `(head_len, total_len)` once the head is complete and the body
    /// length known — avoids re-parsing the head while a body trickles in.
    pending: Option<(usize, usize)>,
    resync: Resync,
}

impl Incremental {
    fn new() -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            scan: HeadScan::new(),
            pending: None,
            resync: Resync::None,
        }
    }

    fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes.
    fn avail(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// No partial message, no pending resync: EOF here is a clean close.
    fn is_clean(&self) -> bool {
        self.avail() == 0 && self.resync == Resync::None
    }

    /// Reclaims the consumed prefix. Scan/pending offsets are relative to
    /// `pos`, so dropping the prefix never invalidates them.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 8 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Runs any pending resync against the buffer. Returns `true` when
    /// resync is finished and normal parsing may resume.
    fn run_resync(&mut self) -> bool {
        match self.resync {
            Resync::None => true,
            Resync::Body(remaining) => {
                let take = remaining.min(self.avail());
                self.pos += take;
                if take == remaining {
                    self.resync = Resync::None;
                    true
                } else {
                    self.resync = Resync::Body(remaining - take);
                    false
                }
            }
            Resync::ToNewline => {
                match self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        self.pos += i + 1;
                        self.resync = Resync::None;
                        true
                    }
                    None => {
                        self.pos = self.buf.len();
                        false
                    }
                }
            }
            Resync::ToBlankLine { mut all_cr } => {
                while self.pos < self.buf.len() {
                    let b = self.buf[self.pos];
                    self.pos += 1;
                    match b {
                        b'\n' if all_cr => {
                            self.resync = Resync::None;
                            return true;
                        }
                        b'\n' => all_cr = true,
                        b'\r' => {}
                        _ => all_cr = false,
                    }
                }
                self.resync = Resync::ToBlankLine { all_cr };
                false
            }
        }
    }

    /// Advances the head scan. `Ok(Some(head_len))` once the terminating
    /// blank line is buffered; `Ok(None)` to wait for more bytes; `Err`
    /// when a size cap proves the head can never become valid (the
    /// one-shot parser is guaranteed to reject such a head too).
    fn scan_head(&mut self) -> Result<Option<usize>, HttpError> {
        while self.pos + self.scan.idx < self.buf.len() {
            let b = self.buf[self.pos + self.scan.idx];
            self.scan.idx += 1;
            self.scan.total += 1;
            if b == b'\n' {
                if self.scan.all_cr {
                    return Ok(Some(self.scan.idx));
                }
                self.scan.line_len = 0;
                self.scan.all_cr = true;
            } else {
                self.scan.line_len += 1;
                if b != b'\r' {
                    self.scan.all_cr = false;
                }
                if self.scan.line_len > MAX_LINE_BYTES {
                    return Err(HttpError::Malformed(format!(
                        "line exceeds {MAX_LINE_BYTES} bytes"
                    )));
                }
            }
            if self.scan.total > HEAD_SCAN_LIMIT {
                return Err(HttpError::Malformed(format!(
                    "headers exceed {MAX_HEADER_BYTES} bytes"
                )));
            }
        }
        Ok(None)
    }

    /// Marks `consumed` bytes done and resets per-message state.
    fn consume(&mut self, consumed: usize) {
        self.pos += consumed;
        self.scan = HeadScan::new();
        self.pending = None;
        self.compact();
    }

    /// Enters a recoverable-failure resync, dropping everything scanned.
    fn fail_into(&mut self, resync: Resync) {
        self.pos += self.scan.idx;
        self.scan = HeadScan::new();
        self.pending = None;
        self.resync = resync;
        self.compact();
    }
}

/// Incremental request parser for non-blocking connections: feed whatever
/// bytes the socket yields, pull zero or more complete [`Request`]s.
///
/// Parsing is *delegated*: once the head is complete, the buffered bytes
/// go through [`Request::read_from_with_cap`] itself, so every accepted
/// or rejected message is byte-for-byte identical to what the one-shot
/// parser would produce — the incremental layer only decides *when*
/// enough bytes have arrived, never *how* they parse. The head scan's
/// size guards fire only on input the one-shot parser is already
/// guaranteed to reject, with the same error text.
#[derive(Debug)]
pub struct RequestParser {
    inner: Incremental,
    cap: usize,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser enforcing the default [`MAX_REQUEST_BODY_BYTES`] cap.
    pub fn new() -> Self {
        Self::with_cap(MAX_REQUEST_BODY_BYTES)
    }

    /// A parser with an explicit request-body cap (mirrors
    /// [`Request::read_from_with_cap`]).
    pub fn with_cap(cap: usize) -> Self {
        Self { inner: Incremental::new(), cap }
    }

    /// Appends bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.inner.feed(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete message.
    pub fn buffered(&self) -> usize {
        self.inner.avail()
    }

    /// True when no partial message is buffered — EOF now is a clean
    /// keep-alive close, not a truncation.
    pub fn is_clean(&self) -> bool {
        self.inner.is_clean()
    }

    /// Attempts to parse the next buffered request. Call in a loop after
    /// each [`feed`](Self::feed) until it stops returning
    /// [`ParseStep::Complete`].
    pub fn next_request(&mut self) -> ParseStep<Request> {
        if !self.inner.run_resync() {
            return ParseStep::Incomplete;
        }
        let head_len = match self.inner.pending {
            Some((head_len, total)) => {
                if self.inner.avail() < total {
                    return ParseStep::Incomplete;
                }
                head_len
            }
            None => match self.inner.scan_head() {
                Ok(Some(h)) => h,
                Ok(None) => return ParseStep::Incomplete,
                Err(error) => {
                    // Over-long line: resync to the next line. Runaway
                    // header block: resync to the next blank line. Either
                    // way the connection survives with a 400.
                    let resync = if let HttpError::Malformed(ref w) = error {
                        if w.starts_with("line exceeds") {
                            Resync::ToNewline
                        } else {
                            Resync::ToBlankLine { all_cr: self.inner.scan.all_cr }
                        }
                    } else {
                        Resync::ToNewline
                    };
                    self.inner.fail_into(resync);
                    return ParseStep::Failed { error, recoverable: true };
                }
            },
        };
        let mut cur = std::io::Cursor::new(&self.inner.buf[self.inner.pos..]);
        match Request::read_from_with_cap(&mut cur, self.cap) {
            Ok(Some(req)) => {
                let consumed = cur.position() as usize;
                self.inner.consume(consumed);
                ParseStep::Complete(req)
            }
            // A complete head cannot re-read as EOF; defensively wait.
            Ok(None) => ParseStep::Incomplete,
            Err(HttpError::TruncatedBody { expected, .. }) => {
                // Head done, body still in flight: remember the exact
                // byte count so trickling bodies re-parse nothing.
                self.inner.pending = Some((head_len, head_len + expected));
                ParseStep::Incomplete
            }
            Err(HttpError::ConnectionClosed) => ParseStep::Incomplete,
            Err(error @ HttpError::BodyTooLarge { len, .. }) => {
                // Well-framed, oversized: skip the declared body and the
                // connection survives with a 413.
                self.inner.scan.idx = head_len;
                self.inner.fail_into(Resync::Body(len));
                ParseStep::Failed { error, recoverable: true }
            }
            Err(error) => ParseStep::Failed { error, recoverable: false },
        }
    }
}

/// Incremental response parser — the load generator's side of the same
/// contract: delegation to [`Response::read_from`] once the head (and
/// then the declared body) is buffered. Responses come from our own
/// server, so any parse failure is terminal for the connection
/// (`recoverable` is always `false`).
#[derive(Debug)]
pub struct ResponseParser {
    inner: Incremental,
}

impl Default for ResponseParser {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseParser {
    /// A fresh parser.
    pub fn new() -> Self {
        Self { inner: Incremental::new() }
    }

    /// Appends bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.inner.feed(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete message.
    pub fn buffered(&self) -> usize {
        self.inner.avail()
    }

    /// True when no partial message is buffered.
    pub fn is_clean(&self) -> bool {
        self.inner.is_clean()
    }

    /// Attempts to parse the next buffered response.
    pub fn next_response(&mut self) -> ParseStep<Response> {
        let cap_err = |error| ParseStep::Failed { error, recoverable: false };
        let inner = &mut self.inner;
        let head_len = match inner.pending {
            Some((head_len, total)) => {
                if inner.avail() < total {
                    return ParseStep::Incomplete;
                }
                head_len
            }
            None => match inner.scan_head() {
                Ok(Some(h)) => h,
                Ok(None) => return ParseStep::Incomplete,
                Err(error) => return cap_err(error),
            },
        };
        let mut cur = std::io::Cursor::new(&inner.buf[inner.pos..]);
        match Response::read_from(&mut cur) {
            Ok(resp) => {
                let consumed = cur.position() as usize;
                inner.consume(consumed);
                ParseStep::Complete(resp)
            }
            Err(HttpError::TruncatedBody { expected, .. }) => {
                inner.pending = Some((head_len, head_len + expected));
                ParseStep::Incomplete
            }
            Err(HttpError::ConnectionClosed) => ParseStep::Incomplete,
            Err(error) => cap_err(error),
        }
    }
}

/// Size in bytes of chunk `k` at `level` as served over HTTP.
pub fn chunk_bytes(video: &Video, k: usize, level: LevelIdx) -> usize {
    (video.chunk_size_kbits(k, level) * 1000.0 / 8.0).ceil() as usize
}

/// A DASH origin server: serves `/manifest.mpd` and
/// `/video/{level}/{chunk}.m4s` with deterministic filler bodies of the
/// exact encoded size.
///
/// The video is held as a [`Cow`] so the emulated path can borrow the
/// caller's `Video` (thousands of per-session servers, zero clones) while
/// the TCP path owns it (threads need `'static`). The manifest is generated
/// lazily on first request — emulated sessions never fetch it, so they
/// never pay for it.
#[derive(Debug)]
pub struct ChunkServer<'a> {
    video: Cow<'a, Video>,
    manifest: OnceLock<String>,
}

impl ChunkServer<'static> {
    /// Builds a server owning `video`.
    pub fn new(video: Video) -> Self {
        Self {
            video: Cow::Owned(video),
            manifest: OnceLock::new(),
        }
    }

    /// Binds to an ephemeral localhost port and serves in a background
    /// thread. Returns the bound address.
    pub fn spawn(video: Video) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let server = Arc::new(ChunkServer::new(video));
        std::thread::spawn(move || server.serve_tcp(listener));
        Ok(addr)
    }

    /// Serves keep-alive connections on a real TCP listener until the
    /// listener errors (e.g. is dropped). One thread per connection.
    pub fn serve_tcp(self: Arc<Self>, listener: TcpListener) {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { break };
            let server = Arc::clone(&self);
            std::thread::spawn(move || {
                let _ = server.serve_connection(stream);
            });
        }
    }
}

impl<'a> ChunkServer<'a> {
    /// Builds a server borrowing `video` (the allocation-lean emulated
    /// path).
    pub fn borrowed(video: &'a Video) -> Self {
        Self {
            video: Cow::Borrowed(video),
            manifest: OnceLock::new(),
        }
    }

    /// The video being served.
    pub fn video(&self) -> &Video {
        &self.video
    }

    /// The MPD manifest (generated on first access).
    pub fn manifest(&self) -> &str {
        self.manifest.get_or_init(|| mpd::generate(&self.video))
    }

    /// Routes one request to a response (pure function of the request —
    /// usable from any transport).
    pub fn handle(&self, req: &Request) -> Response {
        if req.method != "GET" {
            return Response::not_found();
        }
        if req.path == "/manifest.mpd" {
            return Response::ok(
                Bytes::from(self.manifest().to_owned()),
                "application/dash+xml",
            );
        }
        if let Some(rest) = req.path.strip_prefix("/video/") {
            if let Some((level_s, chunk_s)) = rest.split_once('/') {
                if let (Ok(level), Some(chunk_s)) =
                    (level_s.parse::<usize>(), chunk_s.strip_suffix(".m4s"))
                {
                    if let Ok(k) = chunk_s.parse::<usize>() {
                        if level < self.video.ladder().len() && k < self.video.num_chunks() {
                            let n = chunk_bytes(&self.video, k, LevelIdx(level));
                            // Deterministic filler: level/chunk tagged bytes.
                            let tag = (level * 31 + k) as u8;
                            return Response::ok(Bytes::from(vec![tag; n]), "video/mp4");
                        }
                    }
                }
            }
        }
        Response::not_found()
    }

    /// [`handle`](Self::handle) under a scheduled fault: the HTTP-level
    /// kinds replace the origin's answer (a 404 as if the chunk vanished,
    /// a 503 as if the origin buckled); every other kind — including the
    /// link-level ones, which corrupt delivery rather than routing — is
    /// answered normally.
    pub fn handle_faulted(&self, req: &Request, fault: &crate::fault::Fault) -> Response {
        match fault.kind {
            Some(crate::fault::FaultKind::NotFound) => Response::not_found(),
            Some(crate::fault::FaultKind::ServiceUnavailable) => Response::service_unavailable(),
            _ => self.handle(req),
        }
    }

    /// Handles one keep-alive connection to completion. Malformed input is
    /// answered with a `400`, an over-cap body with a `413`, and the
    /// connection is closed (the unread body would poison keep-alive
    /// framing) — the serving thread itself survives.
    pub fn serve_connection(&self, stream: TcpStream) -> Result<(), HttpError> {
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        loop {
            match Request::read_from(&mut reader) {
                Ok(None) => break,
                Ok(Some(req)) => {
                    self.handle(&req).write_to(&mut writer)?;
                    if req.header("connection") == Some("close") {
                        break;
                    }
                }
                Err(HttpError::Malformed(what)) => {
                    let _ = Response::bad_request(&what).write_to(&mut writer);
                    break;
                }
                Err(HttpError::BodyTooLarge { len, cap }) => {
                    let _ = Response::payload_too_large(len, cap).write_to(&mut writer);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// A keep-alive HTTP client over any `Read + Write` transport.
#[derive(Debug)]
pub struct HttpClient<T: Read + Write> {
    reader: BufReader<T>,
}

impl<T: Read + Write> HttpClient<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> Self {
        Self {
            reader: BufReader::new(transport),
        }
    }

    /// Issues a `GET` and reads the full response.
    pub fn get(&mut self, path: &str) -> Result<Response, HttpError> {
        self.send(&Request::get(path))
    }

    /// `POST`s `body` to `path` and reads the full response.
    pub fn post(&mut self, path: &str, body: Bytes, content_type: &str) -> Result<Response, HttpError> {
        self.send(&Request::post(path, body, content_type))
    }

    /// Sends any request and reads the full response.
    pub fn send(&mut self, req: &Request) -> Result<Response, HttpError> {
        req.write_to(self.reader.get_mut())?;
        Response::read_from(&mut self.reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::envivio_video;
    use std::io::Cursor;

    fn round_trip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        Request::read_from(&mut Cursor::new(buf)).unwrap().unwrap()
    }

    #[test]
    fn request_round_trip() {
        let req = Request::get("/video/3/42.m4s");
        let back = round_trip_request(&req);
        assert_eq!(req, back);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::ok(Bytes::from_static(b"hello world"), "text/plain");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = Response::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn post_round_trip_carries_body() {
        let req = Request::post("/decision", Bytes::from_static(b"sid 1\nchunk 0\n"), "text/plain");
        let back = round_trip_request(&req);
        assert_eq!(req, back);
        assert_eq!(back.body.as_ref(), b"sid 1\nchunk 0\n");
        assert_eq!(back.header("content-length"), Some("14"));
    }

    #[test]
    fn post_without_content_length_is_malformed() {
        let raw = b"POST /session HTTP/1.1\r\nconnection: keep-alive\r\n\r\nbody".to_vec();
        let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(ref w) if w.contains("content-length")), "{err:?}");
    }

    #[test]
    fn get_without_content_length_has_empty_body() {
        let raw = b"GET / HTTP/1.1\r\n\r\n".to_vec();
        let req = Request::read_from(&mut Cursor::new(raw)).unwrap().unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_header_block_is_malformed() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..4 {
            raw.extend_from_slice(format!("x-{i}: {}\r\n", "v".repeat(7000)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(ref w) if w.contains("headers exceed")), "{err:?}");
    }

    #[test]
    fn oversized_request_line_is_malformed() {
        let mut raw = b"GET /".to_vec();
        raw.extend_from_slice("x".repeat(MAX_LINE_BYTES).as_bytes());
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn oversized_request_body_is_body_too_large() {
        let raw = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_REQUEST_BODY_BYTES + 1
        )
        .into_bytes();
        let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
        assert!(
            matches!(
                err,
                HttpError::BodyTooLarge {
                    len,
                    cap: MAX_REQUEST_BODY_BYTES,
                } if len == MAX_REQUEST_BODY_BYTES + 1
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn body_cap_is_inclusive_and_configurable() {
        let at_cap = |len: usize| {
            format!("POST /x HTTP/1.1\r\ncontent-length: {len}\r\n\r\n{}", "b".repeat(len))
                .into_bytes()
        };
        // Exactly cap bytes pass; one more is rejected as too large, with
        // the custom cap reported.
        let req = Request::read_from_with_cap(&mut Cursor::new(at_cap(16)), 16)
            .unwrap()
            .unwrap();
        assert_eq!(req.body.len(), 16);
        let err = Request::read_from_with_cap(&mut Cursor::new(at_cap(17)), 16).unwrap_err();
        assert!(
            matches!(err, HttpError::BodyTooLarge { len: 17, cap: 16 }),
            "{err:?}"
        );
        // The default entry point enforces the default cap.
        let req = Request::read_from(&mut Cursor::new(at_cap(MAX_REQUEST_BODY_BYTES)))
            .unwrap()
            .unwrap();
        assert_eq!(req.body.len(), MAX_REQUEST_BODY_BYTES);
    }

    #[test]
    fn payload_too_large_response_round_trips() {
        let resp = Response::payload_too_large(2_000_000, MAX_REQUEST_BODY_BYTES);
        assert_eq!(resp.status, 413);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = Response::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back.status, 413);
        let body = String::from_utf8_lossy(&back.body).to_string();
        assert!(body.contains("2000000"), "{body}");
        assert!(body.contains(&MAX_REQUEST_BODY_BYTES.to_string()), "{body}");
    }

    #[test]
    fn oversized_body_over_tcp_gets_413_and_server_survives() {
        use std::io::Write as _;
        let addr = ChunkServer::spawn(envivio_video()).unwrap();
        let mut big = TcpStream::connect(addr).unwrap();
        let head = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_REQUEST_BODY_BYTES + 1
        );
        big.write_all(head.as_bytes()).unwrap();
        big.flush().unwrap();
        let resp = Response::read_from(&mut BufReader::new(&mut big)).unwrap();
        assert_eq!(resp.status, 413);
        drop(big);
        // The worker pool is intact: a well-formed request still succeeds.
        let mut client = HttpClient::new(TcpStream::connect(addr).unwrap());
        assert_eq!(client.get("/manifest.mpd").unwrap().status, 200);
    }

    #[test]
    fn truncated_request_body_detected() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc".to_vec();
        let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, HttpError::TruncatedBody { expected: 10, got: 3 }));
    }

    #[test]
    fn bad_request_describes_the_problem() {
        let resp = Response::bad_request("POST without content-length");
        assert_eq!(resp.status, 400);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = Response::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back.status, 400);
        assert!(String::from_utf8_lossy(&back.body).contains("content-length"));
    }

    #[test]
    fn malformed_request_over_tcp_gets_400_and_server_survives() {
        use std::io::Write as _;
        let addr = ChunkServer::spawn(envivio_video()).unwrap();
        // Garbage on the first connection: expect a 400 answer, not silence.
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(b"NOT-HTTP-AT-ALL\r\n\r\n").unwrap();
        bad.flush().unwrap();
        let resp = Response::read_from(&mut BufReader::new(&mut bad)).unwrap();
        assert_eq!(resp.status, 400);
        drop(bad);
        // A POST without content-length is also a 400.
        let mut bad2 = TcpStream::connect(addr).unwrap();
        bad2.write_all(b"POST /x HTTP/1.1\r\n\r\n").unwrap();
        bad2.flush().unwrap();
        let resp2 = Response::read_from(&mut BufReader::new(&mut bad2)).unwrap();
        assert_eq!(resp2.status, 400);
        drop(bad2);
        // The server still serves well-formed requests afterwards.
        let mut client = HttpClient::new(TcpStream::connect(addr).unwrap());
        assert_eq!(client.get("/manifest.mpd").unwrap().status, 200);
    }

    #[test]
    fn eof_before_request_is_none() {
        assert!(Request::read_from(&mut Cursor::new(Vec::new()))
            .unwrap()
            .is_none());
    }

    #[test]
    fn malformed_request_line_rejected() {
        let err = Request::read_from(&mut Cursor::new(b"GARBAGE\r\n\r\n".to_vec())).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
        let err2 =
            Request::read_from(&mut Cursor::new(b"GET / SPDY/9\r\n\r\n".to_vec())).unwrap_err();
        assert!(matches!(err2, HttpError::Malformed(_)));
    }

    #[test]
    fn malformed_header_rejected() {
        let raw = b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec();
        let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn truncated_body_detected() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nabc".to_vec();
        let err = Response::read_from(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(
            err,
            HttpError::TruncatedBody {
                expected: 10,
                got: 3
            }
        ));
    }

    #[test]
    fn headers_are_case_insensitive() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nX-Thing: Yes\r\n\r\nok".to_vec();
        let resp = Response::read_from(&mut Cursor::new(raw)).unwrap();
        assert_eq!(resp.header("content-length"), Some("2"));
        assert_eq!(resp.header("X-THING"), Some("Yes"));
        assert_eq!(resp.body.as_ref(), b"ok");
    }

    #[test]
    fn server_serves_manifest_and_chunks() {
        let server = ChunkServer::new(envivio_video());
        let m = server.handle(&Request::get("/manifest.mpd"));
        assert_eq!(m.status, 200);
        assert!(String::from_utf8_lossy(&m.body).contains("MPD"));

        let c = server.handle(&Request::get("/video/4/0.m4s"));
        assert_eq!(c.status, 200);
        // 3000 kbps * 4 s = 12,000 kbits = 1,500,000 bytes.
        assert_eq!(c.body.len(), 1_500_000);
    }

    #[test]
    fn server_404s() {
        let server = ChunkServer::new(envivio_video());
        for path in [
            "/nope",
            "/video/9/0.m4s",    // level out of range
            "/video/0/999.m4s",  // chunk out of range
            "/video/0/0.mp4",    // wrong extension
            "/video/abc/0.m4s",  // non-numeric
        ] {
            assert_eq!(server.handle(&Request::get(path)).status, 404, "{path}");
        }
        let mut post = Request::get("/manifest.mpd");
        post.method = "POST".into();
        assert_eq!(server.handle(&post).status, 404);
    }

    #[test]
    fn service_unavailable_round_trips() {
        let resp = Response::service_unavailable();
        assert_eq!(resp.status, 503);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = Response::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn faulted_handler_overrides_only_http_kinds() {
        use crate::fault::{Fault, FaultKind};
        let server = ChunkServer::new(envivio_video());
        let req = Request::get("/video/2/7.m4s");
        let clean = server.handle(&req);
        assert_eq!(clean.status, 200);
        let with = |kind| Fault { kind: Some(kind), jitter_secs: 0.0 };
        assert_eq!(
            server.handle_faulted(&req, &with(FaultKind::NotFound)).status,
            404
        );
        assert_eq!(
            server
                .handle_faulted(&req, &with(FaultKind::ServiceUnavailable))
                .status,
            503
        );
        // Link-level kinds and clean requests are routed normally.
        for fault in [
            Fault::none(),
            with(FaultKind::ConnectionReset { body_fraction: 0.5 }),
            with(FaultKind::Truncate { body_fraction: 0.5 }),
            with(FaultKind::Stall { body_fraction: 0.5 }),
        ] {
            assert_eq!(server.handle_faulted(&req, &fault), clean);
        }
    }

    #[test]
    fn borrowed_server_matches_owning_server() {
        let video = envivio_video();
        let owned = ChunkServer::new(video.clone());
        let borrowed = ChunkServer::borrowed(&video);
        for path in ["/manifest.mpd", "/video/2/7.m4s", "/nope"] {
            let req = Request::get(path);
            assert_eq!(owned.handle(&req), borrowed.handle(&req), "{path}");
        }
        assert_eq!(owned.manifest(), borrowed.manifest());
    }

    #[test]
    fn chunk_bytes_rounds_up() {
        let v = envivio_video();
        // 350 kbps * 4 s = 1400 kbits = 175,000 bytes exactly.
        assert_eq!(chunk_bytes(&v, 0, LevelIdx(0)), 175_000);
    }

    mod incremental {
        use super::super::*;
        use std::io::Cursor;

        fn complete(step: ParseStep<Request>) -> Request {
            match step {
                ParseStep::Complete(r) => r,
                other => panic!("expected Complete, got {other:?}"),
            }
        }

        #[test]
        fn byte_at_a_time_matches_one_shot() {
            let mut wire = Vec::new();
            Request::post("/decision", Bytes::from_static(b"sid 1\nchunk 0\n"), "text/plain")
                .write_to(&mut wire)
                .unwrap();
            let expect = Request::read_from(&mut Cursor::new(wire.clone()))
                .unwrap()
                .unwrap();
            let mut p = RequestParser::new();
            let mut got = None;
            for (i, b) in wire.iter().enumerate() {
                p.feed(std::slice::from_ref(b));
                match p.next_request() {
                    ParseStep::Complete(r) => {
                        assert_eq!(i, wire.len() - 1, "completed early at byte {i}");
                        got = Some(r);
                    }
                    ParseStep::Incomplete => assert!(i < wire.len() - 1),
                    ParseStep::Failed { error, .. } => panic!("failed at byte {i}: {error}"),
                }
            }
            assert_eq!(got.unwrap(), expect);
            assert!(p.is_clean());
        }

        #[test]
        fn pipelined_requests_parse_in_order() {
            let mut wire = Vec::new();
            for k in 0..3 {
                Request::post(
                    &format!("/decision/{k}"),
                    Bytes::from(format!("chunk {k}\n")),
                    "text/plain",
                )
                .write_to(&mut wire)
                .unwrap();
            }
            Request::get("/metrics").write_to(&mut wire).unwrap();
            let mut p = RequestParser::new();
            p.feed(&wire);
            for k in 0..3 {
                let r = complete(p.next_request());
                assert_eq!(r.path, format!("/decision/{k}"));
                assert_eq!(r.body.as_ref(), format!("chunk {k}\n").as_bytes());
            }
            assert_eq!(complete(p.next_request()).path, "/metrics");
            assert!(matches!(p.next_request(), ParseStep::Incomplete));
            assert!(p.is_clean());
        }

        #[test]
        fn split_across_body_boundary() {
            let mut wire = Vec::new();
            Request::post("/x", Bytes::from_static(b"0123456789"), "text/plain")
                .write_to(&mut wire)
                .unwrap();
            // Split mid-body: head + 4 body bytes, then the rest.
            let cut = wire.len() - 6;
            let mut p = RequestParser::new();
            p.feed(&wire[..cut]);
            assert!(matches!(p.next_request(), ParseStep::Incomplete));
            assert!(!p.is_clean());
            p.feed(&wire[cut..]);
            let r = complete(p.next_request());
            assert_eq!(r.body.as_ref(), b"0123456789");
        }

        #[test]
        fn body_too_large_is_recoverable() {
            let mut wire =
                format!("POST /big HTTP/1.1\r\ncontent-length: 64\r\n\r\n{}", "b".repeat(64))
                    .into_bytes();
            Request::get("/after").write_to(&mut wire).unwrap();
            let mut p = RequestParser::with_cap(16);
            p.feed(&wire);
            match p.next_request() {
                ParseStep::Failed { error, recoverable } => {
                    assert!(matches!(error, HttpError::BodyTooLarge { len: 64, cap: 16 }));
                    assert!(recoverable);
                }
                other => panic!("{other:?}"),
            }
            // The declared body was skipped; the next request parses.
            assert_eq!(complete(p.next_request()).path, "/after");
        }

        #[test]
        fn body_too_large_resyncs_across_trickled_body() {
            let head = b"POST /big HTTP/1.1\r\ncontent-length: 64\r\n\r\n";
            let mut p = RequestParser::with_cap(16);
            p.feed(head);
            assert!(matches!(
                p.next_request(),
                ParseStep::Failed { recoverable: true, .. }
            ));
            // Refused body arrives in dribs; parser discards silently.
            for _ in 0..4 {
                p.feed(&[b'b'; 16]);
                if let ParseStep::Complete(r) = p.next_request() {
                    panic!("phantom request {r:?}");
                }
            }
            let mut after = Vec::new();
            Request::get("/after").write_to(&mut after).unwrap();
            p.feed(&after);
            assert_eq!(complete(p.next_request()).path, "/after");
        }

        #[test]
        fn overlong_line_is_recoverable_and_resyncs() {
            let mut wire = Vec::new();
            wire.extend_from_slice(b"GET /");
            wire.extend_from_slice("x".repeat(2 * MAX_LINE_BYTES).as_bytes());
            wire.extend_from_slice(b" HTTP/1.1\r\n\r\n");
            let mut after = Vec::new();
            Request::get("/after").write_to(&mut after).unwrap();
            wire.extend_from_slice(&after);
            let mut p = RequestParser::new();
            p.feed(&wire);
            match p.next_request() {
                ParseStep::Failed { error, recoverable } => {
                    assert!(
                        matches!(error, HttpError::Malformed(ref w) if w.contains("line exceeds")),
                        "{error:?}"
                    );
                    assert!(recoverable);
                }
                other => panic!("{other:?}"),
            }
            // Resynced to the next line; the stray "\r\n" blank line after
            // the overlong request line reads as an empty request line —
            // malformed, but the parser must not hang or panic.
            match p.next_request() {
                ParseStep::Failed { error, .. } => {
                    assert!(matches!(error, HttpError::Malformed(_)))
                }
                ParseStep::Complete(r) => assert_eq!(r.path, "/after"),
                ParseStep::Incomplete => panic!("stuck"),
            }
        }

        #[test]
        fn runaway_headers_are_recoverable_and_resync_to_blank_line() {
            let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
            // Many sub-cap lines, blank line far beyond the head limit.
            for i in 0..8 {
                wire.extend_from_slice(
                    format!("x-{i}: {}\r\n", "v".repeat(MAX_LINE_BYTES - 64)).as_bytes(),
                );
            }
            wire.extend_from_slice(b"\r\n");
            let mut after = Vec::new();
            Request::get("/after").write_to(&mut after).unwrap();
            wire.extend_from_slice(&after);
            let mut p = RequestParser::new();
            p.feed(&wire);
            match p.next_request() {
                ParseStep::Failed { error, recoverable } => {
                    assert!(
                        matches!(error, HttpError::Malformed(ref w) if w.contains("headers exceed")),
                        "{error:?}"
                    );
                    assert!(recoverable);
                }
                other => panic!("{other:?}"),
            }
            assert_eq!(complete(p.next_request()).path, "/after");
        }

        #[test]
        fn garbage_request_line_is_terminal() {
            let mut p = RequestParser::new();
            p.feed(b"NOT-HTTP-AT-ALL\r\n\r\n");
            match p.next_request() {
                ParseStep::Failed { error, recoverable } => {
                    assert!(matches!(error, HttpError::Malformed(_)));
                    assert!(!recoverable);
                }
                other => panic!("{other:?}"),
            }
        }

        #[test]
        fn post_without_content_length_is_terminal() {
            let mut p = RequestParser::new();
            p.feed(b"POST /x HTTP/1.1\r\n\r\n");
            match p.next_request() {
                ParseStep::Failed { error, recoverable } => {
                    assert!(
                        matches!(error, HttpError::Malformed(ref w) if w.contains("content-length"))
                    );
                    assert!(!recoverable);
                }
                other => panic!("{other:?}"),
            }
        }

        #[test]
        fn response_parser_matches_one_shot_bytewise() {
            let resp = Response::ok(Bytes::from_static(b"level 3\nstartup 0.0\n"), "text/plain");
            let mut wire = Vec::new();
            resp.write_to(&mut wire).unwrap();
            let expect = Response::read_from(&mut Cursor::new(wire.clone())).unwrap();
            let mut p = ResponseParser::new();
            let mut got = None;
            for (i, b) in wire.iter().enumerate() {
                p.feed(std::slice::from_ref(b));
                match p.next_response() {
                    ParseStep::Complete(r) => {
                        assert_eq!(i, wire.len() - 1);
                        got = Some(r);
                    }
                    ParseStep::Incomplete => {}
                    ParseStep::Failed { error, .. } => panic!("byte {i}: {error}"),
                }
            }
            assert_eq!(got.unwrap(), expect);
            assert!(p.is_clean());
        }

        #[test]
        fn pipelined_responses_parse_in_order() {
            let mut wire = Vec::new();
            for k in 0..4 {
                Response::ok(Bytes::from(format!("level {k}\n")), "text/plain")
                    .write_to(&mut wire)
                    .unwrap();
            }
            let mut p = ResponseParser::new();
            p.feed(&wire);
            for k in 0..4 {
                match p.next_response() {
                    ParseStep::Complete(r) => {
                        assert_eq!(r.body.as_ref(), format!("level {k}\n").as_bytes())
                    }
                    other => panic!("{other:?}"),
                }
            }
            assert!(matches!(p.next_response(), ParseStep::Incomplete));
        }

        #[test]
        fn zero_length_body_and_keep_alive_boundary() {
            // A GET (no body) followed immediately by a POST with an empty
            // body: both boundaries are head-only.
            let mut wire = Vec::new();
            Request::get("/a").write_to(&mut wire).unwrap();
            Request::post("/b", Bytes::new(), "text/plain")
                .write_to(&mut wire)
                .unwrap();
            let mut p = RequestParser::new();
            p.feed(&wire);
            assert_eq!(complete(p.next_request()).path, "/a");
            let b = complete(p.next_request());
            assert_eq!(b.path, "/b");
            assert!(b.body.is_empty());
            assert!(p.is_clean());
        }
    }

    mod fuzz {
        use super::super::*;
        use proptest::prelude::*;
        use std::io::Cursor;

        proptest! {
            /// Arbitrary bytes must never panic the request parser — only
            /// return an error, a request, or clean EOF.
            #[test]
            fn request_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let _ = Request::read_from(&mut Cursor::new(bytes));
            }

            /// Same for the response parser.
            #[test]
            fn response_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let _ = Response::read_from(&mut Cursor::new(bytes));
            }

            /// Structured-ish garbage: a valid prefix with random tail.
            #[test]
            fn response_parser_survives_corrupted_frames(
                status in 0u32..2000,
                len_decl in 0usize..64,
                body in proptest::collection::vec(any::<u8>(), 0..64),
            ) {
                let mut raw = format!("HTTP/1.1 {status} X\r\ncontent-length: {len_decl}\r\n\r\n")
                    .into_bytes();
                raw.extend_from_slice(&body);
                match Response::read_from(&mut Cursor::new(raw)) {
                    Ok(resp) => prop_assert_eq!(resp.body.len(), len_decl),
                    Err(_) => {} // malformed/truncated is an acceptable outcome
                }
            }

            /// The server must answer *something* well-formed for any path.
            #[test]
            fn server_handles_arbitrary_paths(path in "[ -~]{0,80}") {
                let server = ChunkServer::new(abr_video::envivio_video());
                let resp = server.handle(&Request::get(&path));
                prop_assert!(resp.status == 200 || resp.status == 404);
                let mut buf = Vec::new();
                resp.write_to(&mut buf).unwrap();
                let back = Response::read_from(&mut Cursor::new(buf)).unwrap();
                prop_assert_eq!(back.status, resp.status);
            }
        }
    }

    #[test]
    fn real_tcp_round_trip() {
        let addr = ChunkServer::spawn(envivio_video()).unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = HttpClient::new(stream);
        // Keep-alive: several requests on one connection.
        let manifest = client.get("/manifest.mpd").unwrap();
        assert_eq!(manifest.status, 200);
        let chunk = client.get("/video/0/3.m4s").unwrap();
        assert_eq!(chunk.status, 200);
        assert_eq!(chunk.body.len(), 175_000);
        let missing = client.get("/video/0/9999.m4s").unwrap();
        assert_eq!(missing.status, 404);
    }
}
