//! Read-only memory-mapped files via raw `mmap`/`munmap` syscalls.
//!
//! The warm tier of `abr-fastmpc`'s tiered table store serves decision
//! tables straight from on-disk `FMPC` binaries without copying them into
//! owned vectors. `std` exposes no `mmap`, and the workspace takes no
//! external dependencies, so the two syscalls are issued through the same
//! inline-assembly plumbing as [`crate::poll`] ([`poll::syscall6`] is
//! shared; the per-arch numbers live here). Everything else — opening the
//! file and reading its length — goes through ordinary `std::fs`, keeping
//! the unsafe surface to exactly two calls.
//!
//! Safety argument for the mapping itself:
//!
//! * the kernel validates every argument to `mmap`; on success the
//!   returned address is a live, page-aligned, `len`-byte readable region
//!   that stays valid until `munmap` — which only [`Mmap::drop`] issues;
//! * the mapping is `MAP_PRIVATE` + `PROT_READ`: no alias of the slice is
//!   ever writable through this process, so `&[u8]` derived from it obeys
//!   Rust's shared-reference contract as long as the underlying file is
//!   not truncated while mapped (documented on [`Mmap::open`]; the table
//!   store's spill files are written once and never rewritten in place);
//! * a zero-length file maps nothing: the slice is empty and no syscall
//!   is issued (Linux rejects `mmap` with `len == 0`).

#![allow(unsafe_code)]

use crate::poll::syscall6;
use std::fs::File;
use std::io;
use std::ops::Deref;
use std::os::fd::AsRawFd;
use std::path::Path;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const MMAP: usize = 9;
    pub const MUNMAP: usize = 11;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const MMAP: usize = 222;
    pub const MUNMAP: usize = 215;
}

const PROT_READ: usize = 0x1;
const MAP_PRIVATE: usize = 0x02;

/// The highest `-errno` the kernel returns; `mmap` results in
/// `[-4095, -1]` are errors, anything else is a mapped address.
const MAX_ERRNO: isize = 4095;

/// A read-only memory mapping of a whole file, unmapped on drop.
///
/// Dereferences to `&[u8]` covering the file's bytes at `open` time. The
/// mapping is private, so later writes by other processes may or may not
/// be visible — but the table store never rewrites a spill file in place,
/// it writes to a temp name and renames, so an open mapping always sees
/// the bytes that were validated against it.
#[derive(Debug)]
pub struct Mmap {
    /// Base address of the mapping; dangling (never dereferenced) when
    /// `len == 0`.
    ptr: *const u8,
    len: usize,
}

// Safety: the mapping is immutable for its whole lifetime (PROT_READ,
// private), so shared access from any thread is sound, and unmapping is
// confined to `Drop`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only in its entirety.
    ///
    /// The caller must not truncate the file while the mapping is alive —
    /// faulting a page past a shrunken end raises `SIGBUS`, which no user
    /// -space check can catch after the fact. Write-once-and-rename file
    /// management (what the table store's warm tier does) satisfies this.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Self { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 });
        }
        // Safety: no pointer arguments cross the boundary (addr hint 0);
        // the fd is live for the duration of the call. The kernel
        // validates everything else.
        let ret = unsafe {
            syscall6(
                nr::MMAP,
                0,
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd() as usize,
                0,
            )
        };
        if (-MAX_ERRNO..0).contains(&ret) {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        // The fd can be closed immediately (File drops here): a mapping
        // keeps its own reference to the underlying inode.
        Ok(Self { ptr: ret as *const u8, len })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // Safety: `ptr` is the base of a live PROT_READ mapping of
        // exactly `len` bytes (kernel-guaranteed), unmapped only in Drop,
        // and never writable through this process.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // Safety: `ptr`/`len` describe exactly the region mmap
            // returned, and no `&[u8]` borrowed from it can outlive
            // `self`. An munmap failure leaks the pages, nothing worse.
            let _ = unsafe { syscall6(nr::MUNMAP, self.ptr as usize, self.len, 0, 0, 0, 0) };
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("abr_mmap_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.as_ref(), &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Mmap::open(Path::new("/nonexistent/abr_mmap_test")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn mapping_survives_many_concurrent_readers() {
        let path = temp_path("concurrent");
        let payload = vec![7u8; 1 << 20];
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = std::sync::Arc::new(Mmap::open(&path).unwrap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let map = std::sync::Arc::clone(&map);
                s.spawn(move || {
                    assert!(map.iter().all(|&b| b == 7));
                });
            }
        });
        std::fs::remove_file(&path).unwrap();
    }
}
