//! Thin raw-syscall wrappers for Linux readiness-based I/O: `epoll`,
//! `eventfd`, `accept4`, and non-blocking `read`/`write` on raw fds.
//!
//! The workspace takes no external dependencies, and `std` exposes neither
//! `epoll` nor `eventfd`, so the handful of syscalls an event loop needs
//! are issued directly via inline assembly (x86_64 and aarch64). Together
//! with the sibling [`crate::mmap`] module (which borrows [`syscall6`] for
//! `mmap`/`munmap`), this is the only place in the workspace that contains
//! `unsafe`; everything it exports is a safe wrapper whose invariants are
//! local:
//!
//! * every syscall here is memory-safe for any argument values (the kernel
//!   validates fds and flags and answers `EBADF`/`EINVAL`);
//! * the only pointers passed cross the boundary with their correct
//!   lengths, derived from Rust slices that outlive the call;
//! * raw fds are wrapped in [`OwnedFd`]-style RAII ([`Epoll`], [`EventFd`])
//!   or returned as plain `i32`s whose ownership the caller tracks
//!   explicitly (accepted sockets, closed via [`close`]).
//!
//! Errors come back as `std::io::Error` built from the raw negative-errno
//! return, so callers match on `ErrorKind` exactly as they would with std
//! I/O. `WouldBlock` is surfaced as `Ok(None)` from the read/write/accept
//! wrappers — the readiness loop's common case, not an error.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

// ---------------------------------------------------------------------------
// Raw syscall plumbing (x86_64 + aarch64 Linux).
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const SETSOCKOPT: usize = 54;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const ACCEPT4: usize = 288;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const SETSOCKOPT: usize = 208;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const ACCEPT4: usize = 242;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

/// Issues a raw syscall with up to 6 arguments, returning the kernel's raw
/// result (negative values are `-errno`).
///
/// # Safety
///
/// Pointer-typed arguments must point to live memory of the size the
/// syscall expects for the duration of the call.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) unsafe fn syscall6(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize, a6: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") nr as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret
}

/// aarch64 variant of [`syscall6`].
///
/// # Safety
///
/// Same contract as the x86_64 variant.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
pub(crate) unsafe fn syscall6(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize, a6: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "svc 0",
        inlateout("x8") nr as isize => _,
        inlateout("x0") a1 as isize => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        options(nostack)
    );
    ret
}

/// Maps a raw syscall return to `io::Result<usize>`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// `Ok(Some(n))` on success, `Ok(None)` on `EAGAIN`/`EWOULDBLOCK` — the
/// readiness loop's "try again later", not a failure.
fn check_nonblocking(ret: isize) -> io::Result<Option<usize>> {
    const EAGAIN: isize = 11;
    const EINTR: isize = 4;
    match ret {
        r if r >= 0 => Ok(Some(r as usize)),
        r if r == -EAGAIN => Ok(None),
        // A signal landing mid-call is indistinguishable from "nothing
        // ready yet" for a non-blocking fd; the loop simply retries.
        r if r == -EINTR => Ok(None),
        r => Err(io::Error::from_raw_os_error(-r as i32)),
    }
}

// ---------------------------------------------------------------------------
// epoll
// ---------------------------------------------------------------------------

/// Readiness: the fd has bytes to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept more outgoing bytes.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported, need not be requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup: the peer closed both directions (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// The peer shut down its writing half (must be requested).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0x80000;

/// One readiness notification: the event mask and the caller's token.
///
/// Matches the kernel's `struct epoll_event` layout (packed on x86_64,
/// naturally aligned elsewhere), so a `&mut [Event]` is passed to
/// `epoll_wait` directly.
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub struct Event {
    events: u32,
    token: u64,
}

impl Event {
    /// The readiness mask (`EPOLLIN | ...`).
    pub fn readiness(&self) -> u32 {
        // A packed field cannot be borrowed; copy it out.
        let e = self.events;
        e
    }

    /// The token registered with the fd.
    pub fn token(&self) -> u64 {
        let t = self.token;
        t
    }

    /// Whether the fd is readable (or has an accept pending).
    pub fn readable(&self) -> bool {
        self.readiness() & EPOLLIN != 0
    }

    /// Whether the fd is writable.
    pub fn writable(&self) -> bool {
        self.readiness() & EPOLLOUT != 0
    }

    /// Whether the kernel flagged an error or hangup (connection dead or
    /// half-closed by the peer).
    pub fn closed(&self) -> bool {
        self.readiness() & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }
}

/// An epoll instance. Closes its fd on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Self> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Self { fd: fd as RawFd })
    }

    fn ctl(&self, op: usize, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = Event { events: interest, token };
        let ptr = if op == EPOLL_CTL_DEL { 0 } else { &mut ev as *mut Event as usize };
        // Safety: `ev` lives across the call; DEL ignores the pointer.
        check(unsafe { syscall6(nr::EPOLL_CTL, self.fd as usize, op, fd as usize, ptr, 0, 0) })?;
        Ok(())
    }

    /// Registers `fd` for `interest`, tagging readiness events with
    /// `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest mask (and token) of a registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (-1 = forever) for readiness, filling
    /// `events` from the front. Returns how many events arrived (0 on
    /// timeout, also 0 if a signal interrupted the wait).
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        // Safety: the events buffer outlives the call and its length is
        // passed alongside; the null sigmask makes this plain epoll_wait.
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.fd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0, // sigmask: none
                8, // sigsetsize (ignored with a null mask on Linux)
            )
        };
        match check_nonblocking(ret)? {
            Some(n) => Ok(n),
            None => Ok(0),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = close(self.fd);
    }
}

// ---------------------------------------------------------------------------
// eventfd — the cross-thread wakeup primitive
// ---------------------------------------------------------------------------

/// A non-blocking `eventfd`: one loop registers it in its epoll, other
/// threads [`signal`](Self::signal) it to force a wakeup. Closes on drop.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<Self> {
        const EFD_CLOEXEC: usize = 0x80000;
        const EFD_NONBLOCK: usize = 0x800;
        let fd = check(unsafe {
            syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0)
        })?;
        Ok(Self { fd: fd as RawFd })
    }

    /// The raw fd, for epoll registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes whoever is polling this fd (adds 1 to the counter).
    pub fn signal(&self) -> io::Result<()> {
        let one: u64 = 1;
        // Safety: 8 bytes of a live u64.
        let ret = unsafe {
            syscall6(nr::WRITE, self.fd as usize, &one as *const u64 as usize, 8, 0, 0, 0)
        };
        // A full counter (EAGAIN) still leaves the fd readable — the wakeup
        // is already pending, so that outcome is success too.
        check_nonblocking(ret).map(|_| ())
    }

    /// Consumes all pending signals so the next epoll wait can sleep.
    pub fn drain(&self) -> io::Result<()> {
        let mut buf = 0u64;
        // Safety: 8 bytes of a live u64.
        let ret = unsafe {
            syscall6(nr::READ, self.fd as usize, &mut buf as *mut u64 as usize, 8, 0, 0, 0)
        };
        check_nonblocking(ret).map(|_| ())
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        let _ = close(self.fd);
    }
}

// ---------------------------------------------------------------------------
// Socket syscalls
// ---------------------------------------------------------------------------

/// `accept4(listener, NULL, NULL, SOCK_NONBLOCK | SOCK_CLOEXEC)`:
/// `Ok(Some(fd))` with the accepted socket already non-blocking,
/// `Ok(None)` when the accept queue is empty. The caller owns the fd and
/// must [`close`] it.
pub fn accept4(listener: RawFd) -> io::Result<Option<RawFd>> {
    const SOCK_NONBLOCK: usize = 0x800;
    const SOCK_CLOEXEC: usize = 0x80000;
    const ECONNABORTED: i32 = 103;
    // Safety: null addr/addrlen are explicitly allowed by accept4.
    let ret = unsafe {
        syscall6(
            nr::ACCEPT4,
            listener as usize,
            0,
            0,
            SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
            0,
        )
    };
    match check_nonblocking(ret) {
        Ok(Some(fd)) => Ok(Some(fd as RawFd)),
        Ok(None) => Ok(None),
        // The peer gave up between SYN and accept: not a listener problem.
        Err(e) if e.raw_os_error() == Some(ECONNABORTED) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Non-blocking read: `Ok(Some(0))` is EOF, `Ok(None)` is "would block".
pub fn read(fd: RawFd, buf: &mut [u8]) -> io::Result<Option<usize>> {
    // Safety: the buffer is a live slice and its exact length is passed.
    let ret = unsafe {
        syscall6(nr::READ, fd as usize, buf.as_mut_ptr() as usize, buf.len(), 0, 0, 0)
    };
    check_nonblocking(ret)
}

/// Non-blocking write: `Ok(Some(n))` wrote `n <= buf.len()` bytes,
/// `Ok(None)` is "would block" (socket send buffer full).
pub fn write(fd: RawFd, buf: &[u8]) -> io::Result<Option<usize>> {
    // Safety: the buffer is a live slice and its exact length is passed.
    let ret = unsafe {
        syscall6(nr::WRITE, fd as usize, buf.as_ptr() as usize, buf.len(), 0, 0, 0)
    };
    check_nonblocking(ret)
}

/// Closes a raw fd owned by the caller.
pub fn close(fd: RawFd) -> io::Result<()> {
    check(unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) }).map(|_| ())
}

/// Sets `TCP_NODELAY` on a raw socket fd (decision requests are tiny and
/// latency-bound; Nagle would serialize them behind ACKs).
pub fn set_tcp_nodelay(fd: RawFd) -> io::Result<()> {
    const IPPROTO_TCP: usize = 6;
    const TCP_NODELAY: usize = 1;
    let one: i32 = 1;
    // Safety: 4 bytes of a live i32, length passed alongside.
    check(unsafe {
        syscall6(
            nr::SETSOCKOPT,
            fd as usize,
            IPPROTO_TCP,
            TCP_NODELAY,
            &one as *const i32 as usize,
            4,
            0,
        )
    })
    .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();
        let mut events = [Event::default(); 8];

        // Nothing to read yet: the wait times out empty.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert!(events[0].readable());

        // Level-triggered: unread bytes keep the fd ready.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        let mut buf = [0u8; 16];
        assert_eq!(read(server.as_raw_fd(), &mut buf).unwrap(), Some(4));
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_reports_peer_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 1).unwrap();
        drop(client);
        let mut events = [Event::default(); 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].closed(), "mask {:#x}", events[0].readiness());
        // And the read wrapper reports clean EOF.
        let mut buf = [0u8; 8];
        assert_eq!(read(server.as_raw_fd(), &mut buf).unwrap(), Some(0));
    }

    #[test]
    fn modify_and_delete_change_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        // Writable-only interest on an idle socket: immediately ready.
        ep.add(server.as_raw_fd(), EPOLLOUT, 3).unwrap();
        let mut events = [Event::default(); 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable());

        // Switch to read-only interest: no longer ready until bytes arrive.
        ep.modify(server.as_raw_fd(), EPOLLIN, 4).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        client.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 4);

        // Deregister: readiness stops being reported at all.
        ep.delete(server.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn accept4_yields_nonblocking_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        // Empty queue: None, not an error.
        assert_eq!(accept4(listener.as_raw_fd()).unwrap(), None);

        let mut client = TcpStream::connect(addr).unwrap();
        // The connect may take a moment to land in the accept queue.
        let fd = loop {
            if let Some(fd) = accept4(listener.as_raw_fd()).unwrap() {
                break fd;
            }
            std::thread::yield_now();
        };
        // The accepted socket is already non-blocking: a read with no data
        // answers WouldBlock (None), not a hang.
        let mut buf = [0u8; 8];
        assert_eq!(read(fd, &mut buf).unwrap(), None);
        client.write_all(b"hi").unwrap();
        loop {
            match read(fd, &mut buf).unwrap() {
                Some(n) => {
                    assert_eq!(&buf[..n], b"hi");
                    break;
                }
                None => std::thread::yield_now(),
            }
        }
        assert_eq!(write(fd, b"ok").unwrap(), Some(2));
        let mut back = [0u8; 2];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ok");
        set_tcp_nodelay(fd).unwrap();
        close(fd).unwrap();
        // Double close is an error (EBADF), proving the fd was released.
        assert!(close(fd).is_err());
    }

    #[test]
    fn eventfd_wakes_a_waiting_epoll() {
        let ef = EventFd::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(ef.fd(), EPOLLIN, 99).unwrap();
        let mut events = [Event::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // Signal from another thread while this one waits.
        std::thread::scope(|s| {
            s.spawn(|| ef.signal().unwrap());
            let n = ep.wait(&mut events, 2000).unwrap();
            assert_eq!(n, 1);
            assert_eq!(events[0].token(), 99);
        });
        // Drained, the wakeup stops firing; signal twice, drain once
        // (the counter coalesces), and it is quiet again.
        ef.drain().unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ef.signal().unwrap();
        ef.signal().unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        ef.drain().unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn write_to_a_full_socket_would_block() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let fd = server.as_raw_fd();
        // Stuff the send buffer until the kernel pushes back.
        let chunk = vec![0u8; 64 * 1024];
        let mut saw_block = false;
        for _ in 0..10_000 {
            match write(fd, &chunk).unwrap() {
                Some(_) => {}
                None => {
                    saw_block = true;
                    break;
                }
            }
        }
        assert!(saw_block, "send buffer never filled");
    }
}
