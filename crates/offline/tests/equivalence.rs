//! Differential contract of the offline solver pipeline: the scratch-based
//! solver, the thread-local convenience wrappers, the cache, and the
//! preserved reference implementation must agree **exactly** — same QoE
//! bits, same rate path, same rebuffer/startup schedule — on arbitrary
//! ladders, traces, videos and DP resolutions.

use abr_offline::{reference, OfflineConfig, OfflineResult, OfflineScratch, OptCache};
use abr_trace::Trace;
use abr_video::{Ladder, QoePreference, QoeWeights, QualityFn, VideoBuilder};
use proptest::prelude::*;

fn assert_bits_equal(a: &OfflineResult, b: &OfflineResult, what: &str) {
    assert_eq!(
        a.qoe.to_bits(),
        b.qoe.to_bits(),
        "{what}: qoe {} vs {}",
        a.qoe,
        b.qoe
    );
    assert_eq!(
        a.total_rebuffer_secs.to_bits(),
        b.total_rebuffer_secs.to_bits(),
        "{what}: rebuffer {} vs {}",
        a.total_rebuffer_secs,
        b.total_rebuffer_secs
    );
    assert_eq!(
        a.startup_secs.to_bits(),
        b.startup_secs.to_bits(),
        "{what}: startup {} vs {}",
        a.startup_secs,
        b.startup_secs
    );
    assert_eq!(a.rates_kbps.len(), b.rates_kbps.len(), "{what}: path length");
    for (i, (x, y)) in a.rates_kbps.iter().zip(&b.rates_kbps).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: rate {i}: {x} vs {y}");
    }
}

/// An arbitrary strictly-ascending bitrate ladder with 2..=5 levels.
fn ladder_strategy() -> impl Strategy<Value = Ladder> {
    (
        100.0f64..800.0,
        proptest::collection::vec(1.15f64..2.2, 1..5),
    )
        .prop_map(|(lo, steps)| {
            let mut levels = vec![lo];
            for s in steps {
                levels.push(levels.last().unwrap() * s);
            }
            Ladder::new(levels).expect("ascending positive levels")
        })
}

/// An arbitrary cyclic trace with 1..=6 segments, at least one non-zero.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0.5f64..20.0, 0.0f64..6_000.0), 1..6)
        .prop_filter("need a non-zero segment", |segs| {
            segs.iter().any(|&(_, c)| c > 0.0)
        })
        .prop_map(|segs| Trace::new(segs).expect("valid segments"))
}

fn weights_strategy() -> impl Strategy<Value = QoeWeights> {
    (0u8..4, 0.0f64..5.0, 0.0f64..500.0).prop_map(|(kind, lambda, mu_event)| {
        let mut w = match kind {
            0 => QoeWeights::balanced(),
            1 => QoeWeights::preset(QoePreference::AvoidInstability),
            2 => QoeWeights::preset(QoePreference::AvoidRebuffering),
            _ => QoeWeights {
                lambda: 1.0,
                mu: 3000.0,
                mu_s: 3000.0,
                mu_event: 0.0,
                w_lat: 0.0,
                quality: QualityFn::Saturating { cap_kbps: 1200.0 },
            },
        };
        w.lambda = lambda;
        w.mu_event = mu_event;
        w
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scratch solver, thread-local wrapper, cache hit and cache miss all
    /// reproduce the reference solver bit-for-bit on random instances.
    #[test]
    fn all_paths_agree_exactly(
        ladder in ladder_strategy(),
        trace in trace_strategy(),
        chunks in 1usize..16,
        chunk_secs in 1.0f64..6.0,
        rate_grid in 2usize..16,
        buffer_bins in 2usize..60,
        buffer_max in 8.0f64..40.0,
        weights in weights_strategy(),
        vbr_amp in 0.0f64..0.5,
    ) {
        let video = VideoBuilder::new(ladder)
            .chunks(chunks)
            .chunk_secs(chunk_secs)
            // Deterministic per-chunk VBR wobble exercises per-layer sizes.
            .vbr(|k| 1.0 + vbr_amp * (((k * 7919) % 13) as f64 / 13.0 - 0.5));
        let cfg = OfflineConfig {
            rate_grid,
            buffer_bins,
            buffer_max_secs: buffer_max,
            weights,
        };

        let expected = reference::optimal_qoe(&trace, &video, &cfg);

        let mut scratch = OfflineScratch::new();
        assert_bits_equal(
            scratch.optimal_qoe(&trace, &video, &cfg),
            &expected,
            "scratch vs reference",
        );
        assert_bits_equal(
            &abr_offline::optimal_qoe(&trace, &video, &cfg),
            &expected,
            "thread-local wrapper vs reference",
        );

        let cache = OptCache::new();
        let miss = cache.get_or_solve(&trace, &video, &cfg);
        assert_bits_equal(&miss, &expected, "cache miss vs reference");
        let hit = cache.get_or_solve(&trace, &video, &cfg);
        assert_bits_equal(&hit, &expected, "cache hit vs reference");
        prop_assert_eq!(cache.stats().solves, 1);
        prop_assert_eq!(cache.stats().hits, 1);

        // Disk round-trip preserves the exact bytes too.
        let restored = OptCache::new();
        restored.merge_bytes(&cache.to_bytes()).expect("valid bytes");
        assert_bits_equal(
            &restored.get_or_solve(&trace, &video, &cfg),
            &expected,
            "preloaded cache vs reference",
        );
        prop_assert_eq!(restored.stats().solves, 0, "preload must prevent the solve");
    }

    /// Same contract for the ladder-restricted (discrete) solver.
    #[test]
    fn discrete_paths_agree_exactly(
        ladder in ladder_strategy(),
        trace in trace_strategy(),
        chunks in 1usize..16,
        chunk_secs in 1.0f64..6.0,
        buffer_bins in 2usize..60,
    ) {
        let video = VideoBuilder::new(ladder)
            .chunks(chunks)
            .chunk_secs(chunk_secs)
            .cbr();
        let cfg = OfflineConfig {
            buffer_bins,
            ..OfflineConfig::paper_default()
        };
        let expected = reference::optimal_qoe_discrete(&trace, &video, &cfg);
        let mut scratch = OfflineScratch::new();
        assert_bits_equal(
            scratch.optimal_qoe_discrete(&trace, &video, &cfg),
            &expected,
            "scratch discrete vs reference",
        );
        assert_bits_equal(
            &abr_offline::optimal_qoe_discrete(&trace, &video, &cfg),
            &expected,
            "thread-local discrete vs reference",
        );
    }

    /// One scratch reused across a random sequence of differently-shaped
    /// instances never leaks state between solves.
    #[test]
    fn scratch_reuse_is_stateless(
        instances in proptest::collection::vec(
            (ladder_strategy(), trace_strategy(), 1usize..10, 2usize..40),
            2..5,
        ),
    ) {
        let mut scratch = OfflineScratch::new();
        for (ladder, trace, chunks, buffer_bins) in instances {
            let video = VideoBuilder::new(ladder).chunks(chunks).cbr();
            let cfg = OfflineConfig {
                buffer_bins,
                ..OfflineConfig::paper_default()
            };
            assert_bits_equal(
                scratch.optimal_qoe(&trace, &video, &cfg),
                &reference::optimal_qoe(&trace, &video, &cfg),
                "reused scratch vs reference",
            );
        }
    }
}
