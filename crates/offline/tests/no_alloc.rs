//! Proves the scratch-based offline DP is allocation-free on the hot path:
//! after a warm-up solve has sized the scratch buffers, further solves of
//! same-or-smaller instances — every DP layer, the argmax, reconstruction
//! and the replay — perform zero heap allocations.
//!
//! Lives in its own integration-test binary so the counting global
//! allocator cannot interfere with any other test.

use abr_offline::{OfflineConfig, OfflineScratch};
use abr_trace::Trace;
use abr_video::envivio_video;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counter is process-global, so measured sections from concurrently
/// running tests would pollute each other; this lock serializes them.
static MEASURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

fn traces() -> Vec<Trace> {
    vec![
        Trace::constant(1500.0, 60.0).unwrap(),
        Trace::new(vec![(30.0, 300.0), (30.0, 5000.0)]).unwrap(),
        Trace::new(vec![(8.0, 2000.0), (8.0, 600.0), (10.0, 1500.0), (5.0, 0.0)]).unwrap(),
        Trace::constant(200.0, 60.0).unwrap(),
    ]
}

#[test]
fn offline_solves_do_not_allocate_after_warmup() {
    let video = envivio_video();
    let cfg = OfflineConfig::paper_default();
    let ts = traces();
    let mut scratch = OfflineScratch::new();
    // Warm-up: one solve per trace sizes every buffer, including the trace
    // scan cache at the largest segment count.
    for t in &ts {
        scratch.optimal_qoe(t, &video, &cfg);
    }

    let (allocs, qoe_sum) = allocations(|| {
        let mut acc = 0.0_f64;
        for _ in 0..3 {
            for t in &ts {
                acc += scratch.optimal_qoe(t, &video, &cfg).qoe;
            }
        }
        acc
    });
    assert!(qoe_sum.is_finite());
    assert_eq!(allocs, 0, "steady-state offline solves must not allocate");
}

#[test]
fn discrete_solves_do_not_allocate_after_warmup() {
    let video = envivio_video();
    let cfg = OfflineConfig::paper_default();
    let ts = traces();
    let mut scratch = OfflineScratch::new();
    // The continuous grid (24 rates) warms buffers larger than the 5-level
    // ladder needs, so discrete solves after one continuous warm-up stay
    // allocation-free too.
    scratch.optimal_qoe(&ts[0], &video, &cfg);
    for t in &ts {
        scratch.optimal_qoe_discrete(t, &video, &cfg);
    }

    let (allocs, qoe_sum) = allocations(|| {
        let mut acc = 0.0_f64;
        for t in &ts {
            acc += scratch.optimal_qoe_discrete(t, &video, &cfg).qoe;
        }
        acc
    });
    assert!(qoe_sum.is_finite());
    assert_eq!(allocs, 0, "steady-state discrete solves must not allocate");
}
