//! Cross-experiment cache of offline-optimal results.
//!
//! Every normalized-QoE figure divides by `QoE(OPT)`, and several
//! experiments (fig8/9/10, fig11, fig12, the ablation, the levels sweep)
//! evaluate the *same* trace corpus under the *same* offline configuration.
//! [`OptCache`] memoizes whole [`OfflineResult`]s keyed by a content hash of
//! `(trace, video, config, mode)`, so a full harness run performs exactly
//! one DP solve per distinct problem, fills misses in parallel via
//! [`abr_par::par_map`], and can persist the table to disk
//! (`results/opt_cache.bin`) in a small validating binary format in the
//! style of `abr-fastmpc`'s table codec, letting repeated invocations skip
//! the DP entirely.
//!
//! Keys are content hashes (FNV-1a over the exact `f64` bit patterns of the
//! trace segments, video sizes and config), so a cache entry can never be
//! served for a different problem than the one it was solved for — and
//! because the solver itself is bit-deterministic, a hit returns exactly the
//! bytes a fresh solve would produce.

use crate::{optimal_qoe, optimal_qoe_discrete, OfflineConfig, OfflineResult};
use abr_par::OnceMap;
use abr_trace::Trace;
use abr_video::{LevelIdx, QualityFn, Video};
use std::collections::HashSet;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which solver a cached result came from (part of the cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptMode {
    /// The continuous-relaxation optimum ([`crate::optimal_qoe`]).
    Continuous,
    /// The ladder-restricted optimum ([`crate::optimal_qoe_discrete`]).
    Discrete,
}

// 128-bit FNV-1a: cheap, dependency-free, and wide enough that accidental
// collisions across a few thousand cached problems are not a concern.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

struct Fnv(u128);

impl Fnv {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u128::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn f64(&mut self, v: f64) {
        self.bytes(&v.to_bits().to_le_bytes());
    }

    fn len(&mut self, v: usize) {
        self.bytes(&(v as u64).to_le_bytes());
    }
}

/// Content hash identifying one offline problem instance: the exact trace
/// segments, the video's timing/ladder/per-chunk sizes, every field of the
/// [`OfflineConfig`] (including the quality function), and the solver mode.
/// All floats are hashed by bit pattern, so any observable difference in the
/// problem yields a different key.
pub fn content_key(trace: &Trace, video: &Video, cfg: &OfflineConfig, mode: OptMode) -> u128 {
    let mut h = Fnv::new();
    h.byte(match mode {
        OptMode::Continuous => 0,
        OptMode::Discrete => 1,
    });
    // Trace: segment count then every (duration, kbps) pair.
    h.len(trace.num_segments());
    for i in 0..trace.num_segments() {
        let (d, c) = trace.segment(i);
        h.f64(d);
        h.f64(c);
    }
    // Video: timing, ladder, and per-chunk per-level sizes (covers VBR).
    h.f64(video.chunk_secs());
    h.len(video.num_chunks());
    h.len(video.ladder().len());
    for &r in video.ladder().levels() {
        h.f64(r);
    }
    for k in 0..video.num_chunks() {
        for l in 0..video.ladder().len() {
            h.f64(video.chunk_size_kbits(k, LevelIdx(l)));
        }
    }
    // Config.
    h.len(cfg.rate_grid);
    h.len(cfg.buffer_bins);
    h.f64(cfg.buffer_max_secs);
    let w = &cfg.weights;
    h.f64(w.lambda);
    h.f64(w.mu);
    h.f64(w.mu_s);
    h.f64(w.mu_event);
    match &w.quality {
        QualityFn::Identity => h.byte(0),
        QualityFn::Log { r0, scale } => {
            h.byte(1);
            h.f64(*r0);
            h.f64(*scale);
        }
        QualityFn::Saturating { cap_kbps } => {
            h.byte(2);
            h.f64(*cap_kbps);
        }
        QualityFn::Table { knots } => {
            h.byte(3);
            h.len(knots.len());
            for &(b, q) in knots {
                h.f64(b);
                h.f64(q);
            }
        }
    }
    h.0
}

/// Counters describing what an [`OptCache`] has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptCacheStats {
    /// Distinct problems currently cached.
    pub entries: usize,
    /// Results computed by running the DP (cache misses).
    pub solves: u64,
    /// Results served without solving (cache hits).
    pub hits: u64,
    /// Results loaded from disk rather than solved in this process.
    pub preloaded: u64,
}

/// A thread-safe memo table of offline-optimal results.
///
/// `ensure` resolves a whole batch at once: misses are deduplicated, solved
/// in parallel with [`abr_par::par_map`], and inserted; everything else is a
/// hit. With a single `OptCache` shared across a harness run, each distinct
/// `(trace, video, config, mode)` problem is solved exactly once — the
/// `solves` counter equals the number of entries not loaded from disk, which
/// the overhead report surfaces as the exactly-once check.
#[derive(Debug, Default)]
pub struct OptCache {
    map: OnceMap<u128, OfflineResult>,
    solves: AtomicU64,
    hits: AtomicU64,
    preloaded: AtomicU64,
}

impl OptCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct problems cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> OptCacheStats {
        OptCacheStats {
            entries: self.len(),
            solves: self.solves.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            preloaded: self.preloaded.load(Ordering::Relaxed),
        }
    }

    /// Returns the continuous-relaxation optimum for every trace, solving
    /// only the ones not already cached (in parallel, deduplicated within
    /// the batch). `out[i]` corresponds to `traces[i]`.
    pub fn ensure(
        &self,
        traces: &[Trace],
        video: &Video,
        cfg: &OfflineConfig,
    ) -> Vec<Arc<OfflineResult>> {
        self.ensure_mode(traces, video, cfg, OptMode::Continuous)
    }

    /// [`ensure`](Self::ensure) for an explicit solver mode.
    pub fn ensure_mode(
        &self,
        traces: &[Trace],
        video: &Video,
        cfg: &OfflineConfig,
        mode: OptMode,
    ) -> Vec<Arc<OfflineResult>> {
        let keys: Vec<u128> = traces
            .iter()
            .map(|t| content_key(t, video, cfg, mode))
            .collect();
        // Indices of the first occurrence of each missing key.
        let mut missing: Vec<usize> = Vec::new();
        let mut queued = HashSet::new();
        for (i, k) in keys.iter().enumerate() {
            if self.map.get(k).is_none() && queued.insert(*k) {
                missing.push(i);
            }
        }
        if !missing.is_empty() {
            let solved = abr_par::par_map(missing.len(), |j| {
                let t = &traces[missing[j]];
                Arc::new(match mode {
                    OptMode::Continuous => optimal_qoe(t, video, cfg),
                    OptMode::Discrete => optimal_qoe_discrete(t, video, cfg),
                })
            });
            for (j, res) in solved.into_iter().enumerate() {
                // First writer wins: a racing batch that beat us to this
                // key keeps its (bit-identical) result.
                self.map.insert(keys[missing[j]], res);
            }
            self.solves.fetch_add(missing.len() as u64, Ordering::Relaxed);
        }
        self.hits
            .fetch_add((keys.len() - missing.len()) as u64, Ordering::Relaxed);
        keys.iter()
            .map(|k| self.map.get(k).expect("filled above"))
            .collect()
    }

    /// Single-trace convenience wrapper around [`ensure`](Self::ensure).
    pub fn get_or_solve(
        &self,
        trace: &Trace,
        video: &Video,
        cfg: &OfflineConfig,
    ) -> Arc<OfflineResult> {
        self.ensure(std::slice::from_ref(trace), video, cfg)
            .pop()
            .expect("one input, one output")
    }

    /// Serializes every cached entry to the compact validating binary
    /// format (entries sorted by key, so equal caches produce equal bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut entries: Vec<(u128, Arc<OfflineResult>)> = self.map.snapshot();
        entries.sort_by_key(|(k, _)| *k);
        let mut w = Writer::default();
        w.out.extend_from_slice(&MAGIC);
        w.u16(VERSION);
        w.u32(entries.len() as u32);
        for (k, r) in entries {
            w.out.extend_from_slice(&k.to_le_bytes());
            w.f64(r.qoe);
            w.f64(r.total_rebuffer_secs);
            w.f64(r.startup_secs);
            w.u32(r.rates_kbps.len() as u32);
            for &rate in &r.rates_kbps {
                w.f64(rate);
            }
        }
        w.out
    }

    /// Validates `bytes` and merges its entries into the cache (existing
    /// keys win, so in-process solves are never overwritten). Returns the
    /// number of entries added; they count as `preloaded` in the stats.
    pub fn merge_bytes(&self, bytes: &[u8]) -> Result<usize, CacheCodecError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(CacheCodecError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(CacheCodecError::UnsupportedVersion(version));
        }
        let count = r.u32()? as usize;
        let mut decoded: Vec<(u128, OfflineResult)> = Vec::with_capacity(count);
        let mut seen = HashSet::new();
        for _ in 0..count {
            let key = u128::from_le_bytes(
                r.take(16)?
                    .try_into()
                    .expect("take(16) yields exactly 16 bytes"),
            );
            if !seen.insert(key) {
                return Err(CacheCodecError::Invalid("duplicate cache key"));
            }
            let qoe = r.finite()?;
            let total_rebuffer_secs = r.finite()?;
            let startup_secs = r.finite()?;
            if total_rebuffer_secs < 0.0 || startup_secs < 0.0 {
                return Err(CacheCodecError::Invalid("negative time"));
            }
            let n = r.u32()? as usize;
            let mut rates_kbps = Vec::with_capacity(n);
            for _ in 0..n {
                let rate = r.finite()?;
                if rate <= 0.0 {
                    return Err(CacheCodecError::Invalid("non-positive bitrate"));
                }
                rates_kbps.push(rate);
            }
            decoded.push((
                key,
                OfflineResult {
                    qoe,
                    rates_kbps,
                    total_rebuffer_secs,
                    startup_secs,
                },
            ));
        }
        if r.pos != bytes.len() {
            return Err(CacheCodecError::Truncated);
        }
        let mut added = 0usize;
        for (key, res) in decoded {
            // First writer wins: in-process solves are never overwritten.
            if self.map.insert(key, Arc::new(res)) {
                added += 1;
            }
        }
        self.preloaded.fetch_add(added as u64, Ordering::Relaxed);
        Ok(added)
    }

    /// Writes the cache to `path` (see [`to_bytes`](Self::to_bytes)).
    pub fn save_file(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_bytes())
    }

    /// Loads and merges a cache file previously written by
    /// [`save_file`](Self::save_file). Returns the number of entries added.
    pub fn load_file(&self, path: &Path) -> io::Result<usize> {
        let bytes = std::fs::read(path)?;
        self.merge_bytes(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

const MAGIC: [u8; 4] = *b"OPTC";
const VERSION: u16 = 1;

/// Errors from decoding a serialized [`OptCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheCodecError {
    /// Input ended early or has trailing bytes.
    Truncated,
    /// The magic header is not `OPTC`.
    BadMagic,
    /// Encoded with a format version this build does not understand.
    UnsupportedVersion(u16),
    /// Structurally well-formed but semantically invalid.
    Invalid(&'static str),
}

impl std::fmt::Display for CacheCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheCodecError::Truncated => write!(f, "truncated or oversized opt-cache data"),
            CacheCodecError::BadMagic => write!(f, "not an opt-cache file (bad magic)"),
            CacheCodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported opt-cache format version {v}")
            }
            CacheCodecError::Invalid(what) => write!(f, "invalid opt-cache data: {what}"),
        }
    }
}

impl std::error::Error for CacheCodecError {}

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CacheCodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(CacheCodecError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, CacheCodecError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("exact size"),
        ))
    }

    fn u32(&mut self) -> Result<u32, CacheCodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("exact size"),
        ))
    }

    fn finite(&mut self) -> Result<f64, CacheCodecError> {
        let v = f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("exact size"),
        ));
        if !v.is_finite() {
            return Err(CacheCodecError::Invalid("non-finite float"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::envivio_video;

    fn traces() -> Vec<Trace> {
        vec![
            Trace::constant(1500.0, 60.0).unwrap(),
            Trace::new(vec![(30.0, 300.0), (30.0, 5000.0)]).unwrap(),
            Trace::constant(1500.0, 60.0).unwrap(), // duplicate of [0]
        ]
    }

    #[test]
    fn ensure_solves_each_distinct_problem_once() {
        let cache = OptCache::new();
        let v = envivio_video();
        let cfg = OfflineConfig::paper_default();
        let ts = traces();
        let first = cache.ensure(&ts, &v, &cfg);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2, "duplicate trace deduplicated");
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.hits, 1, "in-batch duplicate counts as a hit");
        // Second pass: all hits, no new solves.
        let second = cache.ensure(&ts, &v, &cfg);
        let stats = cache.stats();
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.hits, 4);
        for (a, b) in first.iter().zip(&second) {
            assert!(Arc::ptr_eq(a, b), "hits return the cached allocation");
        }
    }

    #[test]
    fn cached_results_match_direct_solves_exactly() {
        let cache = OptCache::new();
        let v = envivio_video();
        let cfg = OfflineConfig::paper_default();
        for t in &traces() {
            let cached = cache.get_or_solve(t, &v, &cfg);
            let direct = optimal_qoe(t, &v, &cfg);
            assert_eq!(*cached, direct);
            assert_eq!(cached.qoe.to_bits(), direct.qoe.to_bits());
        }
    }

    #[test]
    fn key_separates_modes_configs_and_traces() {
        let v = envivio_video();
        let cfg = OfflineConfig::paper_default();
        let t0 = Trace::constant(1500.0, 60.0).unwrap();
        let t1 = Trace::constant(1500.0, 61.0).unwrap();
        let base = content_key(&t0, &v, &cfg, OptMode::Continuous);
        assert_ne!(base, content_key(&t1, &v, &cfg, OptMode::Continuous));
        assert_ne!(base, content_key(&t0, &v, &cfg, OptMode::Discrete));
        let mut cfg2 = cfg.clone();
        cfg2.buffer_bins += 1;
        assert_ne!(base, content_key(&t0, &v, &cfg2, OptMode::Continuous));
        let mut cfg3 = cfg.clone();
        cfg3.weights.mu += 1.0;
        assert_ne!(base, content_key(&t0, &v, &cfg3, OptMode::Continuous));
        // Same inputs, same key.
        assert_eq!(base, content_key(&t0, &v, &cfg, OptMode::Continuous));
    }

    #[test]
    fn codec_roundtrips_and_counts_preloads() {
        let cache = OptCache::new();
        let v = envivio_video();
        let cfg = OfflineConfig::paper_default();
        cache.ensure(&traces(), &v, &cfg);
        let bytes = cache.to_bytes();

        let restored = OptCache::new();
        assert_eq!(restored.merge_bytes(&bytes).unwrap(), 2);
        let stats = restored.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.preloaded, 2);
        assert_eq!(stats.solves, 0);
        // A run over the same corpus is now solve-free.
        restored.ensure(&traces(), &v, &cfg);
        assert_eq!(restored.stats().solves, 0);
        assert_eq!(restored.to_bytes(), bytes, "serialization is canonical");
        // Merging the same bytes again adds nothing.
        assert_eq!(restored.merge_bytes(&bytes).unwrap(), 0);
    }

    #[test]
    fn codec_rejects_corruption() {
        let cache = OptCache::new();
        let v = envivio_video();
        let cfg = OfflineConfig::paper_default();
        cache.ensure(&traces()[..1], &v, &cfg);
        let bytes = cache.to_bytes();

        let probe = OptCache::new();
        assert_eq!(
            probe.merge_bytes(&bytes[..3]).unwrap_err(),
            CacheCodecError::Truncated
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            probe.merge_bytes(&bad_magic).unwrap_err(),
            CacheCodecError::BadMagic
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert_eq!(
            probe.merge_bytes(&bad_version).unwrap_err(),
            CacheCodecError::UnsupportedVersion(99)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            probe.merge_bytes(&trailing).unwrap_err(),
            CacheCodecError::Truncated
        );
        let mut nan = bytes.clone();
        // First f64 (the qoe) starts after magic+version+count+key.
        let qoe_off = 4 + 2 + 4 + 16;
        nan[qoe_off..qoe_off + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(
            probe.merge_bytes(&nan).unwrap_err(),
            CacheCodecError::Invalid("non-finite float")
        );
        assert!(probe.is_empty(), "rejected data must not merge partially");
    }

    #[test]
    fn save_and_load_roundtrip_via_disk() {
        let cache = OptCache::new();
        let v = envivio_video();
        let cfg = OfflineConfig::paper_default();
        cache.ensure(&traces(), &v, &cfg);
        let dir = std::env::temp_dir().join("abr_offline_optcache_test");
        let path = dir.join("opt_cache.bin");
        cache.save_file(&path).unwrap();
        let restored = OptCache::new();
        assert_eq!(restored.load_file(&path).unwrap(), 2);
        assert_eq!(restored.to_bytes(), cache.to_bytes());
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
}
