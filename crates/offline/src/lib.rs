//! Offline-optimal QoE — the denominator of the paper's normalized QoE
//! metric (Section 7.1.2).
//!
//! `QoE(OPT)` is "the maximum QoE that can be achieved with perfect
//! knowledge of future throughputs over the entire horizon", computed with
//! the paper's tractability relaxation: bitrates may be chosen from a
//! *continuous* range `[R_min, R_max]` (footnote 6). We solve it by dynamic
//! programming over `(chunk, buffer bin, bitrate index)`:
//!
//! * the bitrate axis is a fine geometric grid over `[R_min, R_max]` for the
//!   continuous relaxation ([`optimal_qoe`]), or the video's actual ladder
//!   for the discrete optimum ([`optimal_qoe_discrete`]);
//! * the buffer axis is binned for **dominance only**: paths landing in the
//!   same (buffer bin, bitrate) bucket are pruned to the best-QoE one, but
//!   every surviving state carries its *exact* (unrounded) buffer and
//!   wall-clock time, so downloads, rebuffering and waits are computed
//!   exactly against the trace and the reported optimum is an *achievable*
//!   plan — no phantom buffer from rounding. (Pruning can in principle
//!   discard a lower-QoE-now/higher-buffer path that would win later; with
//!   fine bins the effect is negligible and tests validate the DP against
//!   exhaustive search on small instances.)
//!
//! Startup matches the convention the whole workspace uses for fair
//! comparison: playback begins when the first chunk lands, so `T_s` equals
//! the first download time and the first chunk incurs no rebuffering.
//!
//! # Performance
//!
//! The DP sits on the critical path of every normalized-QoE figure, so the
//! hot solver is written around a reusable [`OfflineScratch`]: candidate
//! chunk sizes are computed once per layer (not once per surviving state),
//! the four layer arrays are double-buffered instead of reallocated per
//! chunk, parents live in one flat `u32` slab, a live-state list keeps dead
//! `(bin, rate)` buckets from ever touching the trace, and the trace scan
//! reuses a [`TraceScanCache`](abr_trace::TraceScanCache) so per-state
//! download times need no per-call prefix recomputation. Per surviving
//! state the relaxation runs as a branch-free *compute* pass over all
//! candidate rates (quality-minus-switch penalties come from a precomputed
//! table, buffer binning uses an exact branchless `round`, and candidate
//! value/buffer/clock/bin are staged in small arrays the compiler can
//! vectorize) followed by a scalar *commit* pass for the scattered
//! first-writer-wins updates. After one warm-up solve the scratch solver
//! performs **zero heap allocations** (`tests/no_alloc.rs`) and its output
//! is **bit-identical** to the straightforward solver preserved in
//! [`reference`] (`tests/equivalence.rs`). [`cache::OptCache`] memoizes
//! whole [`OfflineResult`]s across experiments keyed by a content hash of
//! `(trace, video, config)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abr_core::advance_buffer;
use abr_trace::{Trace, TraceScanCache};
use abr_video::{QoeWeights, Video};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

pub mod cache;

pub use cache::{OptCache, OptCacheStats};

/// Configuration of the offline DP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineConfig {
    /// Number of bitrate grid points for the continuous relaxation.
    pub rate_grid: usize,
    /// Number of buffer bins over `[0, B_max]`.
    pub buffer_bins: usize,
    /// Buffer capacity, seconds.
    pub buffer_max_secs: f64,
    /// QoE weights.
    pub weights: QoeWeights,
}

impl OfflineConfig {
    /// Defaults tuned so the DP sits on the saturating part of the accuracy
    /// curve while solving a 65-chunk trace in tens of milliseconds.
    pub fn paper_default() -> Self {
        Self {
            rate_grid: 24,
            buffer_bins: 81,
            buffer_max_secs: 30.0,
            weights: QoeWeights::balanced(),
        }
    }
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The offline optimum for one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OfflineResult {
    /// Optimal QoE (Eq. 5 total, including the startup term).
    pub qoe: f64,
    /// The optimal per-chunk bitrates, kbps.
    pub rates_kbps: Vec<f64>,
    /// Total rebuffering of the optimal plan, seconds.
    pub total_rebuffer_secs: f64,
    /// Startup delay of the optimal plan (first download time), seconds.
    pub startup_secs: f64,
}

thread_local! {
    static SCRATCH: RefCell<OfflineScratch> = RefCell::new(OfflineScratch::new());
}

/// Solves the continuous-relaxation offline optimum (the paper's
/// `QoE(OPT)`).
///
/// Uses a thread-local [`OfflineScratch`], so repeated calls on one thread
/// reuse the DP workspace; hold your own scratch to also avoid the result
/// clone.
pub fn optimal_qoe(trace: &Trace, video: &Video, cfg: &OfflineConfig) -> OfflineResult {
    SCRATCH.with(|s| s.borrow_mut().optimal_qoe(trace, video, cfg).clone())
}

/// Solves the ladder-restricted offline optimum (useful for gauging how much
/// of the OPT gap is the continuous relaxation vs. clairvoyance).
pub fn optimal_qoe_discrete(trace: &Trace, video: &Video, cfg: &OfflineConfig) -> OfflineResult {
    SCRATCH.with(|s| s.borrow_mut().optimal_qoe_discrete(trace, video, cfg).clone())
}

/// Builds the geometric bitrate grid of the continuous relaxation into
/// `rates` (cleared first). Shared by the scratch solver and the cache so
/// every caller sees bit-identical grid points.
fn build_rate_grid(video: &Video, cfg: &OfflineConfig, rates: &mut Vec<f64>) {
    let lo = video.ladder().min_kbps();
    let hi = video.ladder().max_kbps();
    let n = cfg.rate_grid.max(2);
    let ratio = (hi / lo).powf(1.0 / (n as f64 - 1.0));
    rates.clear();
    rates.reserve(n);
    for i in 0..n {
        rates.push(lo * ratio.powi(i as i32));
    }
    *rates.last_mut().expect("n >= 2") = hi;
}

/// `x.round()` (round half away from zero) without the libm `round` call
/// the intrinsic lowers to on x86-64 — that call dominated the DP's
/// per-candidate cost. Exact for every finite `x`, so it is bit-identical
/// to `f64::round` (both produce *the* mathematically rounded value):
/// `x + 2^52 - 2^52` yields the nearest integer with ties to even for
/// `|x| < 2^52` (musl's `round` uses the same identity), and the two tie
/// branches move halfway cases away from zero. Inputs with `|x| >= 2^52`
/// (including infinities) are already integers; NaN propagates.
#[inline]
fn round_half_away(x: f64) -> f64 {
    const TOINT: f64 = 4_503_599_627_370_496.0; // 2^52
    let ax = x.abs();
    // `y = n - ax` is exact (|n - ax| <= 0.5 with n the nearest-even
    // integer), so the tie tests and the final additions are all exact.
    // `adj` nudges halfway cases away from zero; it is computed branchlessly
    // because the tie tests depend on the fractional part and mispredict.
    let y = ax + TOINT - TOINT - ax;
    let adj = ((y <= -0.5) as u8 as f64) - ((y > 0.5) as u8 as f64);
    // `y + ax` is the nearest-even integer: never -0.0 for ax >= 0, so
    // adding `adj = 0.0` is the bitwise identity and `copysign` restores
    // the sign (mapping e.g. -0.3 to -0.0, exactly like `round`).
    let r = (y + ax + adj).copysign(x);
    if ax < TOINT {
        r
    } else {
        x // already integral (or NaN / infinite)
    }
}

/// Reusable workspace for the offline DP.
///
/// All per-solve storage — the bitrate grid, per-layer state arrays, the
/// flat parent slab, the live-state list and the trace scan cache — lives
/// here and is recycled between solves, so after a warm-up solve of the
/// largest instance the solver allocates nothing. Results are bit-identical
/// to [`reference::optimal_qoe`] / [`reference::optimal_qoe_discrete`].
///
/// The free functions [`optimal_qoe`] / [`optimal_qoe_discrete`] wrap a
/// thread-local scratch and clone the result out; hold an `OfflineScratch`
/// directly to borrow the result in place.
#[derive(Debug, Clone, Default)]
pub struct OfflineScratch {
    /// Candidate bitrates (grid or ladder), ascending.
    rates: Vec<f64>,
    /// `q(rates[i])` — the quality function evaluated once per candidate.
    q_of: Vec<f64>,
    /// Current chunk's candidate sizes in kbits (once per layer).
    sizes: Vec<f64>,
    /// Quality-minus-switch-penalty table, `nr * nr` entries:
    /// `qsw[prev * nr + next] = q(next) - λ·|q(next) − q(prev)|`. The rate
    /// grid is layer-invariant, so this prefix of every transition's QoE
    /// contribution is computed once per solve instead of once per candidate.
    qsw: Vec<f64>,
    /// Download times of `sizes` from the current state's clock.
    downloads: Vec<f64>,
    // Per-candidate staging arrays (one entry per rate): the branch-free
    // compute pass writes candidate value / buffer / clock / bin here so the
    // compiler can vectorize it; a scalar commit pass applies the scattered
    // `>`-updates afterwards.
    cand_v: Vec<f64>,
    cand_buf: Vec<f64>,
    cand_time: Vec<f64>,
    cand_bin: Vec<f64>,
    // Double-buffered layer arrays: (qoe, buf_exact, time) is the current
    // layer, (nqoe, nbuf, ntime) the one being built.
    qoe: Vec<f64>,
    buf_exact: Vec<f64>,
    time: Vec<f64>,
    nqoe: Vec<f64>,
    nbuf: Vec<f64>,
    ntime: Vec<f64>,
    /// Feasible state indices of the current layer, ascending.
    live: Vec<u32>,
    /// Flat parent slab, `k_total * states` entries.
    parents: Vec<u32>,
    /// Prefix sums + cycle volume of the trace being solved.
    scan: TraceScanCache,
    /// The last solve's result (buffers reused across solves).
    result: OfflineResult,
}

impl OfflineScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Continuous-relaxation optimum; see [`optimal_qoe`]. The returned
    /// reference borrows the scratch's internal result buffer.
    pub fn optimal_qoe(
        &mut self,
        trace: &Trace,
        video: &Video,
        cfg: &OfflineConfig,
    ) -> &OfflineResult {
        build_rate_grid(video, cfg, &mut self.rates);
        self.solve(trace, video, cfg);
        &self.result
    }

    /// Ladder-restricted optimum; see [`optimal_qoe_discrete`].
    pub fn optimal_qoe_discrete(
        &mut self,
        trace: &Trace,
        video: &Video,
        cfg: &OfflineConfig,
    ) -> &OfflineResult {
        self.rates.clear();
        self.rates.extend_from_slice(video.ladder().levels());
        self.solve(trace, video, cfg);
        &self.result
    }

    /// The result of the most recent solve.
    pub fn last_result(&self) -> &OfflineResult {
        &self.result
    }

    /// The DP over `self.rates`. Identical arithmetic, iteration order and
    /// tie-breaking to [`reference`]'s solver — only the storage strategy
    /// differs — which is what makes the two bit-identical.
    fn solve(&mut self, trace: &Trace, video: &Video, cfg: &OfflineConfig) {
        let Self {
            rates,
            q_of,
            sizes,
            qsw,
            downloads,
            cand_v,
            cand_buf,
            cand_time,
            cand_bin,
            qoe,
            buf_exact,
            time,
            nqoe,
            nbuf,
            ntime,
            live,
            parents,
            scan,
            result,
        } = self;
        assert!(!rates.is_empty());
        assert!(cfg.buffer_bins >= 2, "need at least two buffer bins");
        let k_total = video.num_chunks();
        let nb = cfg.buffer_bins;
        let nr = rates.len();
        let bmax = cfg.buffer_max_secs;
        let w = &cfg.weights;
        let bin_width = bmax / (nb - 1) as f64;
        let bin_of =
            |buf: f64| -> usize { (round_half_away(buf / bin_width) as usize).min(nb - 1) };

        let idx = |b: usize, r: usize| -> usize { b * nr + r };
        let states = nb * nr;
        let neg = f64::NEG_INFINITY;

        scan.rebuild(trace);
        q_of.clear();
        q_of.extend(rates.iter().map(|&r| w.q(r)));
        // `q − λ·|q − q_prev|` is the leading subexpression of
        // `QoeWeights::chunk_contribution` (left-associated, so precomputing
        // it preserves the exact operation order and therefore the bits).
        qsw.clear();
        qsw.resize(nr * nr, 0.0);
        for j in 0..nr {
            let q_prev = q_of[j];
            for i in 0..nr {
                let q = q_of[i];
                qsw[j * nr + i] = q - w.lambda * (q - q_prev).abs();
            }
        }
        cand_v.clear();
        cand_v.resize(nr, 0.0);
        cand_buf.clear();
        cand_buf.resize(nr, 0.0);
        cand_time.clear();
        cand_time.resize(nr, 0.0);
        cand_bin.clear();
        cand_bin.resize(nr, 0.0);

        // Layer arrays (bins bucket states for dominance pruning only; each
        // surviving state keeps its exact buffer and wall-clock time so every
        // transition is computed against the trace without rounding).
        qoe.clear();
        qoe.resize(states, neg);
        buf_exact.clear();
        buf_exact.resize(states, 0.0);
        time.clear();
        time.resize(states, 0.0);
        nqoe.clear();
        nqoe.resize(states, neg);
        nbuf.clear();
        nbuf.resize(states, 0.0);
        ntime.clear();
        ntime.resize(states, 0.0);
        parents.clear();
        parents.resize(k_total * states, u32::MAX);
        live.clear();
        live.reserve(states);

        // Layer 0: choose the first chunk's rate. Startup rule: playback
        // begins when chunk 0 lands — startup penalty µ_s · download, no
        // rebuffer, buffer = L afterwards.
        sizes.clear();
        sizes.extend(rates.iter().map(|&r| chunk_size_kbits(video, 0, r)));
        for r_i in 0..nr {
            let dl = trace.time_to_download(sizes[r_i], 0.0);
            let b_after = video.chunk_secs().min(bmax);
            let s = idx(bin_of(b_after), r_i);
            let value = q_of[r_i] - w.mu_s * dl;
            if value > qoe[s] {
                qoe[s] = value;
                buf_exact[s] = b_after;
                time[s] = dl;
                parents[s] = r_i as u32; // layer 0 encodes the chosen rate
            }
        }
        live.extend((0..states as u32).filter(|&s| qoe[s as usize] != neg));

        // Layers 1..K-1. Only live (feasible) states are visited, so dead
        // buckets never touch the trace; the live list is rebuilt by an
        // ascending scan so states are processed in the same order (and with
        // the same `>`-tie-breaking) as a dense loop over all buckets.
        let chunk_secs = video.chunk_secs();
        let (mu, mu_event) = (w.mu, w.mu_event);
        for k in 1..k_total {
            // One size per candidate rate, hoisted out of the state loop.
            sizes.clear();
            sizes.extend(rates.iter().map(|&r| chunk_size_kbits(video, k, r)));
            nqoe.fill(neg);
            nbuf.fill(0.0);
            ntime.fill(0.0);
            let nparent = &mut parents[k * states..(k + 1) * states];
            for &s32 in live.iter() {
                let s = s32 as usize;
                let t0 = time[s];
                let buf = buf_exact[s];
                let base = qoe[s];
                let qsw_row = &qsw[(s % nr) * nr..(s % nr) * nr + nr];
                // One pass over the trace yields the download time of every
                // candidate rate (sizes are ascending in the rate grid).
                // Candidates the trace can never deliver come back as
                // INFINITY; their value is `-inf` (or NaN when µ = 0), so the
                // commit pass's `v > nqoe[s2]` can never accept them.
                trace.times_to_download_with(scan, sizes, t0, downloads);
                // Compute pass: straight-line arithmetic per candidate (the
                // `event` conditional is a select), so the compiler can
                // vectorize it. The bin is staged as the rounded f64 — the
                // integer cast would block vectorization on baseline x86-64.
                let dls = &downloads[..nr];
                let (cand_v, cand_buf) = (&mut cand_v[..nr], &mut cand_buf[..nr]);
                let (cand_time, cand_bin) = (&mut cand_time[..nr], &mut cand_bin[..nr]);
                for r_i in 0..nr {
                    let dl = dls[r_i];
                    let step = advance_buffer(buf, dl, chunk_secs, bmax);
                    let rebuf = step.rebuffer_secs;
                    let event = if rebuf > 0.0 { mu_event } else { 0.0 };
                    let gain = (qsw_row[r_i] - mu * rebuf) - event;
                    cand_v[r_i] = base + gain;
                    cand_buf[r_i] = step.next_buffer_secs;
                    cand_time[r_i] = t0 + dl + step.wait_secs;
                    cand_bin[r_i] = round_half_away(step.next_buffer_secs / bin_width);
                }
                // Commit pass: scattered first-writer-wins `>`-updates, in
                // ascending candidate order like the reference.
                for r_i in 0..nr {
                    let s2 = (cand_bin[r_i] as usize).min(nb - 1) * nr + r_i;
                    let v = cand_v[r_i];
                    if v > nqoe[s2] {
                        nqoe[s2] = v;
                        nbuf[s2] = cand_buf[r_i];
                        ntime[s2] = cand_time[r_i];
                        nparent[s2] = s32;
                    }
                }
            }
            std::mem::swap(qoe, nqoe);
            std::mem::swap(buf_exact, nbuf);
            std::mem::swap(time, ntime);
            live.clear();
            live.extend((0..states as u32).filter(|&s| qoe[s as usize] != neg));
        }

        // Best terminal state.
        let (best_state, &best_qoe) = qoe
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN in DP"))
            .expect("non-empty DP");
        assert!(
            best_qoe > neg,
            "DP found no feasible plan (trace cannot deliver the video)"
        );

        // Reconstruct the rate path into the reused result buffer.
        let rates_path = &mut result.rates_kbps;
        rates_path.clear();
        rates_path.resize(k_total, 0.0);
        let mut s = best_state;
        for k in (1..k_total).rev() {
            rates_path[k] = rates[s % nr];
            s = parents[k * states + s] as usize;
        }
        rates_path[0] = rates[if k_total == 1 {
            parents[s] as usize
        } else {
            s % nr
        }];

        // Replay the plan (all dynamics were exact, so this reproduces the DP
        // value; it is how we report startup and rebuffering).
        let mut replay_qoe = 0.0;
        let mut buf = 0.0_f64;
        let mut t = 0.0_f64;
        let mut rebuf_total = 0.0;
        let mut startup = 0.0;
        let mut q_prev: Option<f64> = None;
        for (k, &r) in rates_path.iter().enumerate() {
            let dl = trace.time_to_download(chunk_size_kbits(video, k, r), t);
            let mut step = advance_buffer(buf, dl, video.chunk_secs(), bmax);
            if k == 0 {
                startup = dl;
                step.rebuffer_secs = 0.0;
            }
            let q = w.q(r);
            replay_qoe +=
                w.chunk_contribution(q, q_prev.map_or(0.0, |p| (q - p).abs()), step.rebuffer_secs);
            rebuf_total += step.rebuffer_secs;
            q_prev = Some(q);
            buf = step.next_buffer_secs;
            t += dl + step.wait_secs;
        }
        replay_qoe -= w.mu_s * startup;
        debug_assert!(
            (replay_qoe - best_qoe).abs() < 1e-6 * (1.0 + best_qoe.abs()),
            "replay {replay_qoe} diverged from DP value {best_qoe}"
        );

        result.qoe = replay_qoe;
        result.total_rebuffer_secs = rebuf_total;
        result.startup_secs = startup;
    }
}

/// Exhaustive exact optimum over the discrete ladder — ground truth for
/// validating the DP on small instances. Enumerates all `|R|^K` plans, so
/// it refuses instances beyond ~10 million plans.
pub fn exhaustive_optimal_discrete(
    trace: &Trace,
    video: &Video,
    cfg: &OfflineConfig,
) -> OfflineResult {
    let n = video.ladder().len();
    let k_total = video.num_chunks();
    let plans = (n as f64).powi(k_total as i32);
    assert!(
        plans <= 1e7,
        "instance too large for exhaustive search ({plans:.0} plans)"
    );
    let w = &cfg.weights;
    let bmax = cfg.buffer_max_secs;
    let mut best_qoe = f64::NEG_INFINITY;
    let mut best_plan = vec![0usize; k_total];
    let mut plan = vec![0usize; k_total];
    loop {
        // Score the current plan exactly.
        let mut qoe = 0.0;
        let mut buf = 0.0_f64;
        let mut t = 0.0_f64;
        let mut q_prev: Option<f64> = None;
        for (k, &lvl) in plan.iter().enumerate() {
            let r = video.ladder().kbps(abr_video::LevelIdx(lvl));
            let dl = trace.time_to_download(video.chunk_size_kbits(k, abr_video::LevelIdx(lvl)), t);
            let mut step = advance_buffer(buf, dl, video.chunk_secs(), bmax);
            if k == 0 {
                qoe -= w.mu_s * dl;
                step.rebuffer_secs = 0.0;
            }
            let q = w.q(r);
            qoe += w.chunk_contribution(
                q,
                q_prev.map_or(0.0, |p| (q - p).abs()),
                step.rebuffer_secs,
            );
            q_prev = Some(q);
            buf = step.next_buffer_secs;
            t += dl + step.wait_secs;
        }
        if qoe > best_qoe {
            best_qoe = qoe;
            best_plan.copy_from_slice(&plan);
        }
        // Advance the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == k_total {
                // Replay the winner for rebuffer/startup reporting.
                let rates: Vec<f64> = best_plan
                    .iter()
                    .map(|&l| video.ladder().kbps(abr_video::LevelIdx(l)))
                    .collect();
                let mut buf = 0.0_f64;
                let mut t = 0.0_f64;
                let mut rebuf = 0.0;
                let mut startup = 0.0;
                for (k, &lvl) in best_plan.iter().enumerate() {
                    let dl = trace.time_to_download(
                        video.chunk_size_kbits(k, abr_video::LevelIdx(lvl)),
                        t,
                    );
                    let mut step = advance_buffer(buf, dl, video.chunk_secs(), bmax);
                    if k == 0 {
                        startup = dl;
                        step.rebuffer_secs = 0.0;
                    }
                    rebuf += step.rebuffer_secs;
                    buf = step.next_buffer_secs;
                    t += dl + step.wait_secs;
                }
                return OfflineResult {
                    qoe: best_qoe,
                    rates_kbps: rates,
                    total_rebuffer_secs: rebuf,
                    startup_secs: startup,
                };
            }
            plan[i] += 1;
            if plan[i] < n {
                break;
            }
            plan[i] = 0;
            i += 1;
        }
    }
}

/// Chunk size in kilobits when streaming chunk `k` at an arbitrary bitrate
/// `r` (continuous relaxation): the CBR size `L·r` scaled by the chunk's
/// VBR factor (ratio of its actual lowest-level size to the CBR size).
fn chunk_size_kbits(video: &Video, k: usize, r: f64) -> f64 {
    let base_level = video.ladder().lowest();
    let vbr_scale = video.chunk_size_kbits(k, base_level)
        / (video.chunk_secs() * video.ladder().min_kbps());
    video.chunk_secs() * r * vbr_scale
}

pub mod reference {
    //! The straightforward per-layer-allocating solver this crate originally
    //! shipped, preserved verbatim as the differential-testing and
    //! benchmarking baseline. The scratch solver in the crate root must stay
    //! **bit-identical** to these functions (`tests/equivalence.rs` asserts
    //! it over random instances); any change to the DP must land in both.

    use super::{chunk_size_kbits, OfflineConfig, OfflineResult};
    use abr_core::advance_buffer;
    use abr_trace::Trace;
    use abr_video::Video;

    /// Continuous-relaxation optimum, baseline implementation; see
    /// [`super::optimal_qoe`].
    pub fn optimal_qoe(trace: &Trace, video: &Video, cfg: &OfflineConfig) -> OfflineResult {
        let lo = video.ladder().min_kbps();
        let hi = video.ladder().max_kbps();
        let n = cfg.rate_grid.max(2);
        let ratio = (hi / lo).powf(1.0 / (n as f64 - 1.0));
        let mut rates = Vec::with_capacity(n);
        for i in 0..n {
            rates.push(lo * ratio.powi(i as i32));
        }
        *rates.last_mut().expect("n >= 2") = hi;
        solve(trace, video, cfg, &rates)
    }

    /// Ladder-restricted optimum, baseline implementation; see
    /// [`super::optimal_qoe_discrete`].
    pub fn optimal_qoe_discrete(
        trace: &Trace,
        video: &Video,
        cfg: &OfflineConfig,
    ) -> OfflineResult {
        solve(trace, video, cfg, video.ladder().levels())
    }

    fn solve(trace: &Trace, video: &Video, cfg: &OfflineConfig, rates: &[f64]) -> OfflineResult {
        assert!(!rates.is_empty());
        assert!(cfg.buffer_bins >= 2, "need at least two buffer bins");
        let k_total = video.num_chunks();
        let nb = cfg.buffer_bins;
        let nr = rates.len();
        let bmax = cfg.buffer_max_secs;
        let w = &cfg.weights;
        let bin_width = bmax / (nb - 1) as f64;
        let bin_of = |buf: f64| -> usize { ((buf / bin_width).round() as usize).min(nb - 1) };

        let idx = |b: usize, r: usize| -> usize { b * nr + r };
        let states = nb * nr;
        let neg = f64::NEG_INFINITY;

        // Per-layer DP arrays. Bins bucket states for dominance pruning only;
        // each surviving state keeps its exact buffer and wall-clock time so
        // every transition is computed against the trace without rounding.
        let mut qoe = vec![neg; states];
        let mut buf_exact = vec![0.0_f64; states];
        let mut time = vec![0.0_f64; states];
        let mut parents: Vec<Vec<u32>> = Vec::with_capacity(k_total);

        // Layer 0: choose the first chunk's rate. Startup rule: playback
        // begins when chunk 0 lands — startup penalty µ_s · download, no
        // rebuffer, buffer = L afterwards.
        let mut parent0 = vec![u32::MAX; states];
        for (r_i, &r) in rates.iter().enumerate() {
            let dl = trace.time_to_download(chunk_size_kbits(video, 0, r), 0.0);
            let b_after = video.chunk_secs().min(bmax);
            let s = idx(bin_of(b_after), r_i);
            let value = w.q(r) - w.mu_s * dl;
            if value > qoe[s] {
                qoe[s] = value;
                buf_exact[s] = b_after;
                time[s] = dl;
                parent0[s] = r_i as u32; // encodes the chosen first rate
            }
        }
        parents.push(parent0);

        // Layers 1..K-1.
        for k in 1..k_total {
            let mut nqoe = vec![neg; states];
            let mut nbuf = vec![0.0_f64; states];
            let mut ntime = vec![0.0_f64; states];
            let mut nparent = vec![u32::MAX; states];
            for b in 0..nb {
                for r_prev in 0..nr {
                    let s = idx(b, r_prev);
                    if qoe[s] == neg {
                        continue;
                    }
                    let t0 = time[s];
                    let buf = buf_exact[s];
                    let q_prev = w.q(rates[r_prev]);
                    // One pass over the trace yields the download time of
                    // every candidate rate (sizes are ascending in the grid).
                    let sizes: Vec<f64> = rates
                        .iter()
                        .map(|&r| chunk_size_kbits(video, k, r))
                        .collect();
                    let downloads = trace.times_to_download(&sizes, t0);
                    for (r_i, &r) in rates.iter().enumerate() {
                        let dl = downloads[r_i];
                        let step = advance_buffer(buf, dl, video.chunk_secs(), bmax);
                        let q = w.q(r);
                        let gain =
                            w.chunk_contribution(q, (q - q_prev).abs(), step.rebuffer_secs);
                        let s2 = idx(bin_of(step.next_buffer_secs), r_i);
                        let v = qoe[s] + gain;
                        if v > nqoe[s2] {
                            nqoe[s2] = v;
                            nbuf[s2] = step.next_buffer_secs;
                            ntime[s2] = t0 + dl + step.wait_secs;
                            nparent[s2] = s as u32;
                        }
                    }
                }
            }
            qoe = nqoe;
            buf_exact = nbuf;
            time = ntime;
            parents.push(nparent);
        }

        // Best terminal state.
        let (best_state, &best_qoe) = qoe
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN in DP"))
            .expect("non-empty DP");
        assert!(
            best_qoe > neg,
            "DP found no feasible plan (trace cannot deliver the video)"
        );

        // Reconstruct the rate path.
        let mut rates_path = vec![0.0_f64; k_total];
        let mut s = best_state;
        for k in (1..k_total).rev() {
            rates_path[k] = rates[s % nr];
            s = parents[k][s] as usize;
        }
        rates_path[0] = rates[if k_total == 1 {
            parents[0][s] as usize
        } else {
            s % nr
        }];

        // Replay the plan (all dynamics were exact, so this reproduces the
        // DP value; it is how we report startup and rebuffering).
        let mut replay_qoe = 0.0;
        let mut buf = 0.0_f64;
        let mut t = 0.0_f64;
        let mut rebuf_total = 0.0;
        let mut startup = 0.0;
        let mut q_prev: Option<f64> = None;
        for (k, &r) in rates_path.iter().enumerate() {
            let dl = trace.time_to_download(chunk_size_kbits(video, k, r), t);
            let mut step = advance_buffer(buf, dl, video.chunk_secs(), bmax);
            if k == 0 {
                startup = dl;
                step.rebuffer_secs = 0.0;
            }
            let q = w.q(r);
            replay_qoe +=
                w.chunk_contribution(q, q_prev.map_or(0.0, |p| (q - p).abs()), step.rebuffer_secs);
            rebuf_total += step.rebuffer_secs;
            q_prev = Some(q);
            buf = step.next_buffer_secs;
            t += dl + step.wait_secs;
        }
        replay_qoe -= w.mu_s * startup;
        debug_assert!(
            (replay_qoe - best_qoe).abs() < 1e-6 * (1.0 + best_qoe.abs()),
            "replay {replay_qoe} diverged from DP value {best_qoe}"
        );

        OfflineResult {
            qoe: replay_qoe,
            rates_kbps: rates_path,
            total_rebuffer_secs: rebuf_total,
            startup_secs: startup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::{envivio_video, Ladder, LevelIdx, VideoBuilder};
    use proptest::prelude::*;

    fn cfg() -> OfflineConfig {
        OfflineConfig::paper_default()
    }

    /// Exact QoE of a fixed discrete-level plan under the workspace startup
    /// convention (used as a lower bound on OPT and for brute force).
    fn plan_qoe_exact(trace: &Trace, video: &Video, plan: &[LevelIdx], w: &QoeWeights) -> f64 {
        let mut qoe = 0.0;
        let mut buf = 0.0;
        let mut t = 0.0;
        let mut q_prev: Option<f64> = None;
        for (k, &lvl) in plan.iter().enumerate() {
            let dl = trace.time_to_download(video.chunk_size_kbits(k, lvl), t);
            let mut step = advance_buffer(buf, dl, video.chunk_secs(), 30.0);
            if k == 0 {
                qoe -= w.mu_s * dl;
                step.rebuffer_secs = 0.0;
            }
            let q = w.q(video.ladder().kbps(lvl));
            qoe += w.chunk_contribution(
                q,
                q_prev.map_or(0.0, |p| (q - p).abs()),
                step.rebuffer_secs,
            );
            q_prev = Some(q);
            buf = step.next_buffer_secs;
            t += dl + step.wait_secs;
        }
        qoe
    }

    /// Bit-level equality of two results (the contract between the scratch
    /// solver and the reference solver).
    fn assert_bit_identical(a: &OfflineResult, b: &OfflineResult) {
        assert_eq!(a.qoe.to_bits(), b.qoe.to_bits(), "qoe bits differ");
        assert_eq!(
            a.total_rebuffer_secs.to_bits(),
            b.total_rebuffer_secs.to_bits(),
            "rebuffer bits differ"
        );
        assert_eq!(
            a.startup_secs.to_bits(),
            b.startup_secs.to_bits(),
            "startup bits differ"
        );
        assert_eq!(a.rates_kbps.len(), b.rates_kbps.len());
        for (i, (x, y)) in a.rates_kbps.iter().zip(&b.rates_kbps).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "rate {i} differs: {x} vs {y}");
        }
    }

    #[test]
    fn constant_trace_streams_near_capacity() {
        let v = envivio_video();
        let t = Trace::constant(1500.0, 60.0).unwrap();
        let r = optimal_qoe(&t, &v, &cfg());
        // The finite rate grid cannot hit 1500 exactly and the optimistic
        // buffer rounding can briefly overshoot, so allow a trickle of
        // rebuffering rather than demanding exactly zero.
        assert!(r.total_rebuffer_secs < 3.0, "{}", r.total_rebuffer_secs);
        // Middle chunks should sit close to the link rate (within the grid
        // spacing), definitely between the neighbouring ladder levels.
        for &rate in &r.rates_kbps[5..60] {
            assert!(
                (1000.0..=1650.0).contains(&rate),
                "mid-stream rate {rate} too far from the 1500 kbps link"
            );
        }
        // QoE close to the ideal K*C (switches/startup cost a little;
        // optimistic binning can credit at most one grid step above C).
        assert!(r.qoe > 0.85 * 65.0 * 1500.0, "qoe {}", r.qoe);
        assert!(r.qoe <= 1.1 * 65.0 * 1500.0, "implausibly high: {}", r.qoe);
    }

    #[test]
    fn fast_link_streams_at_ladder_max() {
        let v = envivio_video();
        let t = Trace::constant(20_000.0, 60.0).unwrap();
        let r = optimal_qoe(&t, &v, &cfg());
        for &rate in &r.rates_kbps[1..] {
            assert!((rate - 3000.0).abs() < 1e-6, "rate {rate}");
        }
        assert!(r.total_rebuffer_secs < 1e-9);
    }

    #[test]
    fn discrete_never_beats_continuous() {
        let v = envivio_video();
        for (d, c) in [(20.0, 800.0), (20.0, 2500.0), (20.0, 1200.0)]
            .windows(1)
            .map(|w| w[0])
            .map(|seg| (seg.0, seg.1))
        {
            let t = Trace::constant(c, d).unwrap();
            let cont = optimal_qoe(&t, &v, &cfg());
            let disc = optimal_qoe_discrete(&t, &v, &cfg());
            assert!(
                disc.qoe <= cont.qoe + 1e-6 + 0.01 * cont.qoe.abs(),
                "discrete {} vs continuous {} at {c} kbps",
                disc.qoe,
                cont.qoe
            );
        }
    }

    #[test]
    fn discrete_dp_matches_brute_force_on_small_instance() {
        // 5 chunks, 3 levels: 243 plans, exhaustively scoreable.
        let ladder = Ladder::new(vec![400.0, 1000.0, 2500.0]).unwrap();
        let video = VideoBuilder::new(ladder).chunks(5).chunk_secs(4.0).cbr();
        let trace = Trace::new(vec![(8.0, 2000.0), (8.0, 600.0), (10.0, 1500.0)]).unwrap();
        let w = QoeWeights::balanced();
        let mut best = f64::NEG_INFINITY;
        for code in 0..3usize.pow(5) {
            let mut plan = Vec::new();
            let mut rem = code;
            for _ in 0..5 {
                plan.push(LevelIdx(rem % 3));
                rem /= 3;
            }
            best = best.max(plan_qoe_exact(&trace, &video, &plan, &w));
        }
        let dp = optimal_qoe_discrete(
            &trace,
            &video,
            &OfflineConfig {
                buffer_bins: 601, // fine bins: binning error negligible
                ..cfg()
            },
        );
        let rel = (dp.qoe - best).abs() / best.abs().max(1.0);
        assert!(
            rel < 0.02,
            "DP {} vs brute force {best} (rel {rel})",
            dp.qoe
        );
        // DP may exceed brute force only via its optimistic binning.
        assert!(dp.qoe >= best - 1e-6, "DP must not miss the optimum");
    }

    #[test]
    fn exhaustive_matches_dp_on_small_instance() {
        let ladder = Ladder::new(vec![400.0, 1000.0, 2500.0]).unwrap();
        let video = VideoBuilder::new(ladder).chunks(6).chunk_secs(4.0).cbr();
        let trace = Trace::new(vec![(10.0, 1800.0), (10.0, 700.0)]).unwrap();
        let cfg = OfflineConfig {
            buffer_bins: 601,
            ..OfflineConfig::paper_default()
        };
        let exact = exhaustive_optimal_discrete(&trace, &video, &cfg);
        let dp = optimal_qoe_discrete(&trace, &video, &cfg);
        let rel = (exact.qoe - dp.qoe).abs() / exact.qoe.abs().max(1.0);
        assert!(rel < 0.02, "exhaustive {} vs DP {}", exact.qoe, dp.qoe);
        assert!(dp.qoe <= exact.qoe + 1e-6, "DP may only miss, never exceed");
        assert_eq!(exact.rates_kbps.len(), 6);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exhaustive_refuses_big_instances() {
        let v = envivio_video(); // 5^65 plans
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let _ = exhaustive_optimal_discrete(&t, &v, &OfflineConfig::paper_default());
    }

    #[test]
    fn opt_upper_bounds_fixed_plans() {
        let v = envivio_video();
        let t = Trace::new(vec![(40.0, 1800.0), (40.0, 700.0)]).unwrap();
        let opt = optimal_qoe(&t, &v, &cfg());
        let w = QoeWeights::balanced();
        for lvl in 0..5 {
            let plan = vec![LevelIdx(lvl); 65];
            let fixed = plan_qoe_exact(&t, &v, &plan, &w);
            assert!(
                opt.qoe >= fixed - 1e-6,
                "OPT {} below fixed level {lvl} plan {fixed}",
                opt.qoe
            );
        }
    }

    #[test]
    fn rates_stay_within_ladder_range() {
        let v = envivio_video();
        let t = Trace::new(vec![(30.0, 300.0), (30.0, 5000.0)]).unwrap();
        let r = optimal_qoe(&t, &v, &cfg());
        for &rate in &r.rates_kbps {
            assert!((350.0 - 1e-9..=3000.0 + 1e-9).contains(&rate), "{rate}");
        }
    }

    #[test]
    fn starved_link_forces_rebuffering_but_stays_finite() {
        let v = envivio_video();
        // 200 kbps < R_min = 350: rebuffering is unavoidable.
        let t = Trace::constant(200.0, 60.0).unwrap();
        let r = optimal_qoe(&t, &v, &cfg());
        assert!(r.total_rebuffer_secs > 0.0);
        assert!(r.qoe.is_finite());
        // Optimal under starvation: bottom rate everywhere.
        for &rate in &r.rates_kbps[1..] {
            assert!(rate < 500.0, "{rate}");
        }
    }

    #[test]
    fn scratch_matches_reference_bit_for_bit() {
        let v = envivio_video();
        let traces = [
            Trace::constant(1500.0, 60.0).unwrap(),
            Trace::new(vec![(30.0, 300.0), (30.0, 5000.0)]).unwrap(),
            Trace::new(vec![(8.0, 2000.0), (8.0, 600.0), (10.0, 1500.0)]).unwrap(),
            Trace::constant(200.0, 60.0).unwrap(),
        ];
        let mut scratch = OfflineScratch::new();
        for t in &traces {
            assert_bit_identical(
                scratch.optimal_qoe(t, &v, &cfg()),
                &reference::optimal_qoe(t, &v, &cfg()),
            );
            assert_bit_identical(
                scratch.optimal_qoe_discrete(t, &v, &cfg()),
                &reference::optimal_qoe_discrete(t, &v, &cfg()),
            );
        }
    }

    #[test]
    fn scratch_survives_dimension_changes() {
        // Reusing one scratch across differently-shaped instances (grid
        // size, bins, chunk count, ladder) must not leak state between
        // solves.
        let mut scratch = OfflineScratch::new();
        let big = envivio_video();
        let small = VideoBuilder::new(Ladder::new(vec![400.0, 1000.0, 2500.0]).unwrap())
            .chunks(5)
            .chunk_secs(4.0)
            .cbr();
        let t = Trace::new(vec![(20.0, 1800.0), (20.0, 700.0)]).unwrap();
        let configs = [
            cfg(),
            OfflineConfig {
                rate_grid: 7,
                buffer_bins: 13,
                ..cfg()
            },
            OfflineConfig {
                buffer_bins: 201,
                ..cfg()
            },
        ];
        for c in &configs {
            for v in [&big, &small] {
                assert_bit_identical(
                    scratch.optimal_qoe(&t, v, c),
                    &reference::optimal_qoe(&t, v, c),
                );
            }
        }
    }

    #[test]
    fn single_chunk_video_reconstructs() {
        let v = VideoBuilder::new(Ladder::new(vec![400.0, 1000.0]).unwrap())
            .chunks(1)
            .chunk_secs(4.0)
            .cbr();
        let t = Trace::constant(1200.0, 30.0).unwrap();
        let mut scratch = OfflineScratch::new();
        let got = scratch.optimal_qoe(&t, &v, &cfg()).clone();
        assert_bit_identical(&got, &reference::optimal_qoe(&t, &v, &cfg()));
        assert_eq!(got.rates_kbps.len(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Scaling the trace up never lowers the optimum.
        #[test]
        fn opt_monotone_in_throughput(scale in 1.0f64..3.0) {
            let v = envivio_video();
            let base = Trace::new(vec![(30.0, 900.0), (30.0, 1600.0)]).unwrap();
            let lo = optimal_qoe(&base, &v, &cfg());
            let hi = optimal_qoe(&base.scaled(scale), &v, &cfg());
            prop_assert!(hi.qoe >= lo.qoe - 1e-6);
        }

        /// Finer buffer bins never report a smaller optimum than the replay
        /// floor and stay internally consistent.
        #[test]
        fn finer_bins_consistent(bins in 40usize..200) {
            let v = envivio_video();
            let t = Trace::new(vec![(30.0, 1200.0), (30.0, 2400.0)]).unwrap();
            let r = optimal_qoe(&t, &v, &OfflineConfig { buffer_bins: bins, ..cfg() });
            prop_assert!(r.qoe.is_finite());
            prop_assert_eq!(r.rates_kbps.len(), 65);
        }
    }
}
