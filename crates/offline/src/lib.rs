//! Offline-optimal QoE — the denominator of the paper's normalized QoE
//! metric (Section 7.1.2).
//!
//! `QoE(OPT)` is "the maximum QoE that can be achieved with perfect
//! knowledge of future throughputs over the entire horizon", computed with
//! the paper's tractability relaxation: bitrates may be chosen from a
//! *continuous* range `[R_min, R_max]` (footnote 6). We solve it by dynamic
//! programming over `(chunk, buffer bin, bitrate index)`:
//!
//! * the bitrate axis is a fine geometric grid over `[R_min, R_max]` for the
//!   continuous relaxation ([`optimal_qoe`]), or the video's actual ladder
//!   for the discrete optimum ([`optimal_qoe_discrete`]);
//! * the buffer axis is binned for **dominance only**: paths landing in the
//!   same (buffer bin, bitrate) bucket are pruned to the best-QoE one, but
//!   every surviving state carries its *exact* (unrounded) buffer and
//!   wall-clock time, so downloads, rebuffering and waits are computed
//!   exactly against the trace and the reported optimum is an *achievable*
//!   plan — no phantom buffer from rounding. (Pruning can in principle
//!   discard a lower-QoE-now/higher-buffer path that would win later; with
//!   fine bins the effect is negligible and tests validate the DP against
//!   exhaustive search on small instances.)
//!
//! Startup matches the convention the whole workspace uses for fair
//! comparison: playback begins when the first chunk lands, so `T_s` equals
//! the first download time and the first chunk incurs no rebuffering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abr_core::advance_buffer;
use abr_trace::Trace;
use abr_video::{QoeWeights, Video};
use serde::{Deserialize, Serialize};

/// Configuration of the offline DP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineConfig {
    /// Number of bitrate grid points for the continuous relaxation.
    pub rate_grid: usize,
    /// Number of buffer bins over `[0, B_max]`.
    pub buffer_bins: usize,
    /// Buffer capacity, seconds.
    pub buffer_max_secs: f64,
    /// QoE weights.
    pub weights: QoeWeights,
}

impl OfflineConfig {
    /// Defaults tuned so the DP sits on the saturating part of the accuracy
    /// curve while solving a 65-chunk trace in tens of milliseconds.
    pub fn paper_default() -> Self {
        Self {
            rate_grid: 24,
            buffer_bins: 81,
            buffer_max_secs: 30.0,
            weights: QoeWeights::balanced(),
        }
    }
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The offline optimum for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfflineResult {
    /// Optimal QoE (Eq. 5 total, including the startup term).
    pub qoe: f64,
    /// The optimal per-chunk bitrates, kbps.
    pub rates_kbps: Vec<f64>,
    /// Total rebuffering of the optimal plan, seconds.
    pub total_rebuffer_secs: f64,
    /// Startup delay of the optimal plan (first download time), seconds.
    pub startup_secs: f64,
}

/// Solves the continuous-relaxation offline optimum (the paper's
/// `QoE(OPT)`).
pub fn optimal_qoe(trace: &Trace, video: &Video, cfg: &OfflineConfig) -> OfflineResult {
    let lo = video.ladder().min_kbps();
    let hi = video.ladder().max_kbps();
    let n = cfg.rate_grid.max(2);
    let ratio = (hi / lo).powf(1.0 / (n as f64 - 1.0));
    let mut rates = Vec::with_capacity(n);
    for i in 0..n {
        rates.push(lo * ratio.powi(i as i32));
    }
    *rates.last_mut().expect("n >= 2") = hi;
    solve(trace, video, cfg, &rates)
}

/// Solves the ladder-restricted offline optimum (useful for gauging how much
/// of the OPT gap is the continuous relaxation vs. clairvoyance).
pub fn optimal_qoe_discrete(trace: &Trace, video: &Video, cfg: &OfflineConfig) -> OfflineResult {
    solve(trace, video, cfg, video.ladder().levels())
}

/// Exhaustive exact optimum over the discrete ladder — ground truth for
/// validating the DP on small instances. Enumerates all `|R|^K` plans, so
/// it refuses instances beyond ~10 million plans.
pub fn exhaustive_optimal_discrete(
    trace: &Trace,
    video: &Video,
    cfg: &OfflineConfig,
) -> OfflineResult {
    let n = video.ladder().len();
    let k_total = video.num_chunks();
    let plans = (n as f64).powi(k_total as i32);
    assert!(
        plans <= 1e7,
        "instance too large for exhaustive search ({plans:.0} plans)"
    );
    let w = &cfg.weights;
    let bmax = cfg.buffer_max_secs;
    let mut best_qoe = f64::NEG_INFINITY;
    let mut best_plan = vec![0usize; k_total];
    let mut plan = vec![0usize; k_total];
    loop {
        // Score the current plan exactly.
        let mut qoe = 0.0;
        let mut buf = 0.0_f64;
        let mut t = 0.0_f64;
        let mut q_prev: Option<f64> = None;
        for (k, &lvl) in plan.iter().enumerate() {
            let r = video.ladder().kbps(abr_video::LevelIdx(lvl));
            let dl = trace.time_to_download(video.chunk_size_kbits(k, abr_video::LevelIdx(lvl)), t);
            let mut step = advance_buffer(buf, dl, video.chunk_secs(), bmax);
            if k == 0 {
                qoe -= w.mu_s * dl;
                step.rebuffer_secs = 0.0;
            }
            let q = w.q(r);
            qoe += w.chunk_contribution(
                q,
                q_prev.map_or(0.0, |p| (q - p).abs()),
                step.rebuffer_secs,
            );
            q_prev = Some(q);
            buf = step.next_buffer_secs;
            t += dl + step.wait_secs;
        }
        if qoe > best_qoe {
            best_qoe = qoe;
            best_plan.copy_from_slice(&plan);
        }
        // Advance the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == k_total {
                // Replay the winner for rebuffer/startup reporting.
                let rates: Vec<f64> = best_plan
                    .iter()
                    .map(|&l| video.ladder().kbps(abr_video::LevelIdx(l)))
                    .collect();
                let mut buf = 0.0_f64;
                let mut t = 0.0_f64;
                let mut rebuf = 0.0;
                let mut startup = 0.0;
                for (k, &lvl) in best_plan.iter().enumerate() {
                    let dl = trace.time_to_download(
                        video.chunk_size_kbits(k, abr_video::LevelIdx(lvl)),
                        t,
                    );
                    let mut step = advance_buffer(buf, dl, video.chunk_secs(), bmax);
                    if k == 0 {
                        startup = dl;
                        step.rebuffer_secs = 0.0;
                    }
                    rebuf += step.rebuffer_secs;
                    buf = step.next_buffer_secs;
                    t += dl + step.wait_secs;
                }
                return OfflineResult {
                    qoe: best_qoe,
                    rates_kbps: rates,
                    total_rebuffer_secs: rebuf,
                    startup_secs: startup,
                };
            }
            plan[i] += 1;
            if plan[i] < n {
                break;
            }
            plan[i] = 0;
            i += 1;
        }
    }
}

/// Chunk size in kilobits when streaming chunk `k` at an arbitrary bitrate
/// `r` (continuous relaxation): the CBR size `L·r` scaled by the chunk's
/// VBR factor (ratio of its actual lowest-level size to the CBR size).
fn chunk_size_kbits(video: &Video, k: usize, r: f64) -> f64 {
    let base_level = video.ladder().lowest();
    let vbr_scale = video.chunk_size_kbits(k, base_level)
        / (video.chunk_secs() * video.ladder().min_kbps());
    video.chunk_secs() * r * vbr_scale
}

fn solve(trace: &Trace, video: &Video, cfg: &OfflineConfig, rates: &[f64]) -> OfflineResult {
    assert!(!rates.is_empty());
    assert!(cfg.buffer_bins >= 2, "need at least two buffer bins");
    let k_total = video.num_chunks();
    let nb = cfg.buffer_bins;
    let nr = rates.len();
    let bmax = cfg.buffer_max_secs;
    let w = &cfg.weights;
    let bin_width = bmax / (nb - 1) as f64;
    let bin_of = |buf: f64| -> usize { ((buf / bin_width).round() as usize).min(nb - 1) };

    let idx = |b: usize, r: usize| -> usize { b * nr + r };
    let states = nb * nr;
    let neg = f64::NEG_INFINITY;

    // Per-layer DP arrays. Bins bucket states for dominance pruning only;
    // each surviving state keeps its exact buffer and wall-clock time so
    // every transition is computed against the trace without rounding.
    let mut qoe = vec![neg; states];
    let mut buf_exact = vec![0.0_f64; states];
    let mut time = vec![0.0_f64; states];
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(k_total);

    // Layer 0: choose the first chunk's rate. Startup rule: playback begins
    // when chunk 0 lands — startup penalty µ_s · download, no rebuffer,
    // buffer = L afterwards.
    let mut parent0 = vec![u32::MAX; states];
    for (r_i, &r) in rates.iter().enumerate() {
        let dl = trace.time_to_download(chunk_size_kbits(video, 0, r), 0.0);
        let b_after = video.chunk_secs().min(bmax);
        let s = idx(bin_of(b_after), r_i);
        let value = w.q(r) - w.mu_s * dl;
        if value > qoe[s] {
            qoe[s] = value;
            buf_exact[s] = b_after;
            time[s] = dl;
            parent0[s] = r_i as u32; // encodes the chosen first rate
        }
    }
    parents.push(parent0);

    // Layers 1..K-1.
    for k in 1..k_total {
        let mut nqoe = vec![neg; states];
        let mut nbuf = vec![0.0_f64; states];
        let mut ntime = vec![0.0_f64; states];
        let mut nparent = vec![u32::MAX; states];
        for b in 0..nb {
            for r_prev in 0..nr {
                let s = idx(b, r_prev);
                if qoe[s] == neg {
                    continue;
                }
                let t0 = time[s];
                let buf = buf_exact[s];
                let q_prev = w.q(rates[r_prev]);
                // One pass over the trace yields the download time of every
                // candidate rate (sizes are ascending in the rate grid).
                let sizes: Vec<f64> = rates
                    .iter()
                    .map(|&r| chunk_size_kbits(video, k, r))
                    .collect();
                let downloads = trace.times_to_download(&sizes, t0);
                for (r_i, &r) in rates.iter().enumerate() {
                    let dl = downloads[r_i];
                    let step = advance_buffer(buf, dl, video.chunk_secs(), bmax);
                    let q = w.q(r);
                    let gain =
                        w.chunk_contribution(q, (q - q_prev).abs(), step.rebuffer_secs);
                    let s2 = idx(bin_of(step.next_buffer_secs), r_i);
                    let v = qoe[s] + gain;
                    if v > nqoe[s2] {
                        nqoe[s2] = v;
                        nbuf[s2] = step.next_buffer_secs;
                        ntime[s2] = t0 + dl + step.wait_secs;
                        nparent[s2] = s as u32;
                    }
                }
            }
        }
        qoe = nqoe;
        buf_exact = nbuf;
        time = ntime;
        parents.push(nparent);
    }

    // Best terminal state.
    let (best_state, &best_qoe) = qoe
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN in DP"))
        .expect("non-empty DP");
    assert!(
        best_qoe > neg,
        "DP found no feasible plan (trace cannot deliver the video)"
    );

    // Reconstruct the rate path.
    let mut rates_path = vec![0.0_f64; k_total];
    let mut s = best_state;
    for k in (1..k_total).rev() {
        rates_path[k] = rates[s % nr];
        s = parents[k][s] as usize;
    }
    rates_path[0] = rates[if k_total == 1 {
        parents[0][s] as usize
    } else {
        s % nr
    }];

    // Replay the plan (all dynamics were exact, so this reproduces the DP
    // value; it is how we report startup and rebuffering).
    let mut replay_qoe = 0.0;
    let mut buf = 0.0_f64;
    let mut t = 0.0_f64;
    let mut rebuf_total = 0.0;
    let mut startup = 0.0;
    let mut q_prev: Option<f64> = None;
    for (k, &r) in rates_path.iter().enumerate() {
        let dl = trace.time_to_download(chunk_size_kbits(video, k, r), t);
        let mut step = advance_buffer(buf, dl, video.chunk_secs(), bmax);
        if k == 0 {
            startup = dl;
            step.rebuffer_secs = 0.0;
        }
        let q = w.q(r);
        replay_qoe +=
            w.chunk_contribution(q, q_prev.map_or(0.0, |p| (q - p).abs()), step.rebuffer_secs);
        rebuf_total += step.rebuffer_secs;
        q_prev = Some(q);
        buf = step.next_buffer_secs;
        t += dl + step.wait_secs;
    }
    replay_qoe -= w.mu_s * startup;
    debug_assert!(
        (replay_qoe - best_qoe).abs() < 1e-6 * (1.0 + best_qoe.abs()),
        "replay {replay_qoe} diverged from DP value {best_qoe}"
    );

    OfflineResult {
        qoe: replay_qoe,
        rates_kbps: rates_path,
        total_rebuffer_secs: rebuf_total,
        startup_secs: startup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_video::{envivio_video, Ladder, LevelIdx, VideoBuilder};
    use proptest::prelude::*;

    fn cfg() -> OfflineConfig {
        OfflineConfig::paper_default()
    }

    /// Exact QoE of a fixed discrete-level plan under the workspace startup
    /// convention (used as a lower bound on OPT and for brute force).
    fn plan_qoe_exact(trace: &Trace, video: &Video, plan: &[LevelIdx], w: &QoeWeights) -> f64 {
        let mut qoe = 0.0;
        let mut buf = 0.0;
        let mut t = 0.0;
        let mut q_prev: Option<f64> = None;
        for (k, &lvl) in plan.iter().enumerate() {
            let dl = trace.time_to_download(video.chunk_size_kbits(k, lvl), t);
            let mut step = advance_buffer(buf, dl, video.chunk_secs(), 30.0);
            if k == 0 {
                qoe -= w.mu_s * dl;
                step.rebuffer_secs = 0.0;
            }
            let q = w.q(video.ladder().kbps(lvl));
            qoe += w.chunk_contribution(
                q,
                q_prev.map_or(0.0, |p| (q - p).abs()),
                step.rebuffer_secs,
            );
            q_prev = Some(q);
            buf = step.next_buffer_secs;
            t += dl + step.wait_secs;
        }
        qoe
    }

    #[test]
    fn constant_trace_streams_near_capacity() {
        let v = envivio_video();
        let t = Trace::constant(1500.0, 60.0).unwrap();
        let r = optimal_qoe(&t, &v, &cfg());
        // The finite rate grid cannot hit 1500 exactly and the optimistic
        // buffer rounding can briefly overshoot, so allow a trickle of
        // rebuffering rather than demanding exactly zero.
        assert!(r.total_rebuffer_secs < 3.0, "{}", r.total_rebuffer_secs);
        // Middle chunks should sit close to the link rate (within the grid
        // spacing), definitely between the neighbouring ladder levels.
        for &rate in &r.rates_kbps[5..60] {
            assert!(
                (1000.0..=1650.0).contains(&rate),
                "mid-stream rate {rate} too far from the 1500 kbps link"
            );
        }
        // QoE close to the ideal K*C (switches/startup cost a little;
        // optimistic binning can credit at most one grid step above C).
        assert!(r.qoe > 0.85 * 65.0 * 1500.0, "qoe {}", r.qoe);
        assert!(r.qoe <= 1.1 * 65.0 * 1500.0, "implausibly high: {}", r.qoe);
    }

    #[test]
    fn fast_link_streams_at_ladder_max() {
        let v = envivio_video();
        let t = Trace::constant(20_000.0, 60.0).unwrap();
        let r = optimal_qoe(&t, &v, &cfg());
        for &rate in &r.rates_kbps[1..] {
            assert!((rate - 3000.0).abs() < 1e-6, "rate {rate}");
        }
        assert!(r.total_rebuffer_secs < 1e-9);
    }

    #[test]
    fn discrete_never_beats_continuous() {
        let v = envivio_video();
        for (d, c) in [(20.0, 800.0), (20.0, 2500.0), (20.0, 1200.0)]
            .windows(1)
            .map(|w| w[0])
            .map(|seg| (seg.0, seg.1))
        {
            let t = Trace::constant(c, d).unwrap();
            let cont = optimal_qoe(&t, &v, &cfg());
            let disc = optimal_qoe_discrete(&t, &v, &cfg());
            assert!(
                disc.qoe <= cont.qoe + 1e-6 + 0.01 * cont.qoe.abs(),
                "discrete {} vs continuous {} at {c} kbps",
                disc.qoe,
                cont.qoe
            );
        }
    }

    #[test]
    fn discrete_dp_matches_brute_force_on_small_instance() {
        // 5 chunks, 3 levels: 243 plans, exhaustively scoreable.
        let ladder = Ladder::new(vec![400.0, 1000.0, 2500.0]).unwrap();
        let video = VideoBuilder::new(ladder).chunks(5).chunk_secs(4.0).cbr();
        let trace = Trace::new(vec![(8.0, 2000.0), (8.0, 600.0), (10.0, 1500.0)]).unwrap();
        let w = QoeWeights::balanced();
        let mut best = f64::NEG_INFINITY;
        for code in 0..3usize.pow(5) {
            let mut plan = Vec::new();
            let mut rem = code;
            for _ in 0..5 {
                plan.push(LevelIdx(rem % 3));
                rem /= 3;
            }
            best = best.max(plan_qoe_exact(&trace, &video, &plan, &w));
        }
        let dp = optimal_qoe_discrete(
            &trace,
            &video,
            &OfflineConfig {
                buffer_bins: 601, // fine bins: binning error negligible
                ..cfg()
            },
        );
        let rel = (dp.qoe - best).abs() / best.abs().max(1.0);
        assert!(
            rel < 0.02,
            "DP {} vs brute force {best} (rel {rel})",
            dp.qoe
        );
        // DP may exceed brute force only via its optimistic binning.
        assert!(dp.qoe >= best - 1e-6, "DP must not miss the optimum");
    }

    #[test]
    fn exhaustive_matches_dp_on_small_instance() {
        let ladder = Ladder::new(vec![400.0, 1000.0, 2500.0]).unwrap();
        let video = VideoBuilder::new(ladder).chunks(6).chunk_secs(4.0).cbr();
        let trace = Trace::new(vec![(10.0, 1800.0), (10.0, 700.0)]).unwrap();
        let cfg = OfflineConfig {
            buffer_bins: 601,
            ..OfflineConfig::paper_default()
        };
        let exact = exhaustive_optimal_discrete(&trace, &video, &cfg);
        let dp = optimal_qoe_discrete(&trace, &video, &cfg);
        let rel = (exact.qoe - dp.qoe).abs() / exact.qoe.abs().max(1.0);
        assert!(rel < 0.02, "exhaustive {} vs DP {}", exact.qoe, dp.qoe);
        assert!(dp.qoe <= exact.qoe + 1e-6, "DP may only miss, never exceed");
        assert_eq!(exact.rates_kbps.len(), 6);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exhaustive_refuses_big_instances() {
        let v = envivio_video(); // 5^65 plans
        let t = Trace::constant(1000.0, 60.0).unwrap();
        let _ = exhaustive_optimal_discrete(&t, &v, &OfflineConfig::paper_default());
    }

    #[test]
    fn opt_upper_bounds_fixed_plans() {
        let v = envivio_video();
        let t = Trace::new(vec![(40.0, 1800.0), (40.0, 700.0)]).unwrap();
        let opt = optimal_qoe(&t, &v, &cfg());
        let w = QoeWeights::balanced();
        for lvl in 0..5 {
            let plan = vec![LevelIdx(lvl); 65];
            let fixed = plan_qoe_exact(&t, &v, &plan, &w);
            assert!(
                opt.qoe >= fixed - 1e-6,
                "OPT {} below fixed level {lvl} plan {fixed}",
                opt.qoe
            );
        }
    }

    #[test]
    fn rates_stay_within_ladder_range() {
        let v = envivio_video();
        let t = Trace::new(vec![(30.0, 300.0), (30.0, 5000.0)]).unwrap();
        let r = optimal_qoe(&t, &v, &cfg());
        for &rate in &r.rates_kbps {
            assert!((350.0 - 1e-9..=3000.0 + 1e-9).contains(&rate), "{rate}");
        }
    }

    #[test]
    fn starved_link_forces_rebuffering_but_stays_finite() {
        let v = envivio_video();
        // 200 kbps < R_min = 350: rebuffering is unavoidable.
        let t = Trace::constant(200.0, 60.0).unwrap();
        let r = optimal_qoe(&t, &v, &cfg());
        assert!(r.total_rebuffer_secs > 0.0);
        assert!(r.qoe.is_finite());
        // Optimal under starvation: bottom rate everywhere.
        for &rate in &r.rates_kbps[1..] {
            assert!(rate < 500.0, "{rate}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Scaling the trace up never lowers the optimum.
        #[test]
        fn opt_monotone_in_throughput(scale in 1.0f64..3.0) {
            let v = envivio_video();
            let base = Trace::new(vec![(30.0, 900.0), (30.0, 1600.0)]).unwrap();
            let lo = optimal_qoe(&base, &v, &cfg());
            let hi = optimal_qoe(&base.scaled(scale), &v, &cfg());
            prop_assert!(hi.qoe >= lo.qoe - 1e-6);
        }

        /// Finer buffer bins never report a smaller optimum than the replay
        /// floor and stay internally consistent.
        #[test]
        fn finer_bins_consistent(bins in 40usize..200) {
            let v = envivio_video();
            let t = Trace::new(vec![(30.0, 1200.0), (30.0, 2400.0)]).unwrap();
            let r = optimal_qoe(&t, &v, &OfflineConfig { buffer_bins: bins, ..cfg() });
            prop_assert!(r.qoe.is_finite());
            prop_assert_eq!(r.rates_kbps.len(), 65);
        }
    }
}
